//! A VGG-16 convolution layer tile on VIP (§IV-B's template).
//!
//! Runs an independent tile of a 64-channel convolution layer on a 4-PE
//! vault: filters stream through the scratchpad in resident groups, a
//! ring of input columns is prefetched while `m.v.mul.add` applies the
//! filters (Equations 5a-5d), and bias+ReLU are fused into the store
//! path. The output is verified against the golden reference and the
//! tile is extrapolated to the full layer per the paper's §V-A
//! methodology.
//!
//! ```sh
//! cargo run --release -p vip-examples --example vgg_layer
//! ```

use vip_core::{cycles_to_ms, System, SystemConfig};
use vip_kernels::cnn::{self, conv_tile_programs, ConvLayer, ConvLayout, ConvMode};

fn pattern(n: usize, scale: i16, offset: i16) -> Vec<i16> {
    (0..n)
        .map(|i| ((i * 7 + 3) % 11) as i16 * scale - offset)
        .collect()
}

fn main() {
    // An independent tile of a c2_x-like layer: 64 input channels, 8
    // resident output channels, 16x8 pixels.
    let layer = ConvLayer {
        name: "c2-tile",
        in_channels: 64,
        out_channels: 8,
        width: 16,
        height: 8,
        kernel: 3,
        pad: 1,
    };
    println!(
        "convolution tile: {}x{} x {} -> {} channels, {} MACs",
        layer.width,
        layer.height,
        layer.in_channels,
        layer.out_channels,
        layer.macs()
    );

    let input_raw = pattern(layer.width * layer.height * layer.in_channels, 1, 5);
    let input = cnn::pad_input(
        layer.width,
        layer.height,
        layer.in_channels,
        layer.pad,
        &input_raw,
    );
    let weights = pattern(layer.weights(), 1, 3);
    let bias = pattern(layer.out_channels, 1, 2);

    let layout = ConvLayout {
        layer,
        input_base: 0,
        weights_base: 0x40_0000,
        bias_base: 0x80_0000,
        output_base: 0xc0_0000,
        filters_per_group: 2,
        mode: ConvMode::Full,
    };
    println!(
        "scratchpad plan: {} filters resident per pass ({} passes)",
        layout.filters_per_group,
        layer.out_channels / layout.filters_per_group
    );

    let mut sys = System::new(SystemConfig::small_test());
    layout.load_into(sys.hmc_mut(), &input, &weights, &bias);
    let programs = conv_tile_programs(&layout, &layout.default_schedule());
    for (pe, p) in programs.iter().enumerate() {
        sys.load_program(pe, p);
    }
    let cycles = sys.run(100_000_000).expect("conv tile completes");

    // Verify bit-for-bit against the golden reference.
    let expect = cnn::conv_forward(&layer, &input, &weights, &bias, true);
    let got = layout.read_output(sys.hmc());
    assert_eq!(
        cnn::unpad_output(
            layer.width,
            layer.height,
            layer.out_channels,
            layer.pad,
            &got
        ),
        cnn::unpad_output(
            layer.width,
            layer.height,
            layer.out_channels,
            layer.pad,
            &expect
        ),
    );
    println!("output verified against the golden convolution");

    let stats = sys.stats();
    let point = stats.roofline();
    println!("\ntile: {cycles} cycles ({:.3} ms)", cycles_to_ms(cycles));
    println!(
        "arithmetic intensity: {:.2} Op/B",
        point.arithmetic_intensity()
    );
    println!("achieved: {:.1} GOp/s on one vault", point.gops());

    // Extrapolate to the full c2_1 layer on 32 vaults (§V-A).
    let c2_1 = ConvLayer {
        name: "c2_1",
        in_channels: 64,
        out_channels: 128,
        width: 112,
        height: 112,
        kernel: 3,
        pad: 1,
    };
    let scale = c2_1.macs() as f64 / layer.macs() as f64 / 32.0;
    println!(
        "extrapolated c2_1 ({} MMACs) on 32 vaults: {:.2} ms",
        c2_1.macs() / 1_000_000,
        cycles_to_ms((cycles as f64 * scale) as u64)
    );
}

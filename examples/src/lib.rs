//! Host crate for the runnable examples in the repository's `examples/`
//! directory. Run one with, e.g.:
//!
//! ```sh
//! cargo run --release -p vip-examples --example quickstart
//! ```

//! A fully-connected (MLP) layer on VIP (§II-C, §IV-C).
//!
//! Runs a tiled GEMV on a 4-PE vault: `m.v.mul.add` multiplies resident
//! weight chunks against the input segment (the f₆ operation), partials
//! accumulate on top of the bias, and ReLU is applied before the store.
//! The result is verified against the golden reference and compared
//! with a naive i32 dot product to show where 16-bit saturation
//! matters.
//!
//! ```sh
//! cargo run --release -p vip-examples --example mlp_inference
//! ```

use vip_core::{cycles_to_ms, System, SystemConfig};
use vip_kernels::cnn::FcLayer;
use vip_kernels::mlp::{self, FcLayout};
use vip_kernels::schedule::FcSchedule;

fn main() {
    let layer = FcLayer {
        name: "fc-demo",
        inputs: 1024,
        outputs: 64,
    };
    println!(
        "fully-connected layer: {} -> {} ({} MACs)",
        layer.inputs,
        layer.outputs,
        layer.macs()
    );

    // Pseudo-random weights stand in for trained parameters (DESIGN.md
    // substitution #5): inference cost is weight-value-independent.
    let input: Vec<i16> = (0..layer.inputs)
        .map(|i| ((i * 5 + 1) % 9) as i16 - 4)
        .collect();
    let weights: Vec<i16> = (0..layer.inputs * layer.outputs)
        .map(|i| ((i * 11 + 7) % 13) as i16 - 6)
        .collect();
    let bias: Vec<i16> = (0..layer.outputs).map(|i| (i as i16 % 17) - 8).collect();

    let layout = FcLayout {
        layer,
        input_base: 0,
        weights_base: 0x10_0100,
        bias_base: 0x80_0200,
        output_base: 0x90_0300,
        relu: true,
    };
    let mut sys = System::new(SystemConfig::small_test());
    layout.load_into(sys.hmc_mut(), &input, &weights, &bias);
    for (pe, p) in mlp::fc_tile_programs(&layout, &FcSchedule::default())
        .iter()
        .enumerate()
    {
        sys.load_program(pe, p);
    }
    let cycles = sys.run(50_000_000).expect("fc layer completes");

    let got = layout.read_output(sys.hmc());
    let expect = mlp::fc_forward(&layer, &input, &weights, &bias, true);
    assert_eq!(got, expect, "simulated output matches the golden reference");

    println!(
        "completed in {cycles} cycles ({:.3} ms)",
        cycles_to_ms(cycles)
    );
    println!("first outputs: {:?}", &got[..8]);

    let stats = sys.stats();
    let p = stats.roofline();
    println!(
        "arithmetic intensity: {:.2} Op/B (weight-streaming bound)",
        p.arithmetic_intensity()
    );
    println!("achieved {:.1} GOp/s on one vault", p.gops());

    // Where does 16-bit dynamic fixed point deviate from wide math?
    let wide: Vec<i32> = (0..layer.outputs)
        .map(|m| {
            let dot: i32 = (0..layer.inputs)
                .map(|j| i32::from(weights[m * layer.inputs + j]) * i32::from(input[j]))
                .sum();
            (dot + i32::from(bias[m])).max(0)
        })
        .collect();
    let saturated = got
        .iter()
        .zip(&wide)
        .filter(|(&g, &w)| i32::from(g) != w)
        .count();
    println!(
        "{saturated}/{} outputs differ from i32 math (16-bit saturation), as the golden model predicts",
        layer.outputs
    );
}

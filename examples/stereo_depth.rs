//! Depth-from-stereo with belief propagation — the workload VIP was
//! designed for (§II-A, §IV-A).
//!
//! Generates a synthetic stereo pair, builds the MRF data costs, runs
//! BP-M on a 4-PE VIP vault (cycle-level simulation), verifies the
//! result bit-for-bit against the golden reference, and prints the
//! recovered depth map plus performance counters.
//!
//! ```sh
//! cargo run --release -p vip-examples --example stereo_depth
//! ```

use vip_core::{cycles_to_ms, System, SystemConfig};
use vip_kernels::bp::{
    self, bp_iteration_programs, BpExtrapolation, BpLayout, Messages, Mrf, MrfParams,
};
use vip_kernels::schedule::BpSchedule;

fn main() {
    let (w, h, labels, iters) = (64, 32, 16, 2);
    println!("depth-from-stereo: {w}x{h}, {labels} disparities, {iters} BP-M iterations\n");

    // Synthetic stereo pair -> matching costs (DESIGN.md substitution #4).
    let costs = bp::stereo_data_costs(w, h, labels, 42);
    let mrf = Mrf::new(MrfParams::truncated_linear(w, h, labels, 2, 12), costs);

    // Stage the MRF into the memory stack and generate per-PE programs.
    let layout = BpLayout::new(0, w, h, labels);
    let mut sys = System::new(SystemConfig::small_test());
    layout.load_into(sys.hmc_mut(), &mrf, &Messages::new(&mrf.params));
    let programs = bp_iteration_programs(&layout, &BpSchedule::default(), iters, true);
    for (pe, p) in programs.iter().enumerate() {
        println!("PE{pe}: {} instructions", p.len());
        sys.load_program(pe, p);
    }

    let cycles = sys.run(100_000_000).expect("BP-M completes");

    // Verify against the golden reference.
    let mut expect = Messages::new(&mrf.params);
    for _ in 0..iters {
        bp::iteration(&mrf, &mut expect);
    }
    let got = layout.read_messages(sys.hmc(), true);
    assert_eq!(got.from_above, expect.from_above, "bit-exact vs golden");
    let depth = bp::labels(&mrf, &got);
    println!(
        "\nsimulated {cycles} cycles ({:.3} ms at 1.25 GHz); output verified",
        cycles_to_ms(cycles)
    );

    // Render the disparity map.
    let shades: &[u8] = b" .:-=+*#%@";
    println!("\ndisparity map:");
    for y in 0..h {
        let row: String = (0..w)
            .map(|x| {
                let d = depth[y * w + x] as usize * (shades.len() - 1) / (labels - 1);
                shades[d] as char
            })
            .collect();
        println!("  {row}");
    }

    // Performance counters and the paper-style extrapolation (§V-A).
    let stats = sys.stats();
    println!("\n{}", stats.summary());
    let ex = BpExtrapolation {
        tile_pixels: (w * h) as u64,
        tile_cycles: cycles / iters as u64,
        vaults: 32,
    };
    println!(
        "extrapolated to 32 vaults: one full-HD iteration = {:.1} ms (paper: 5.2 ms)",
        ex.frame_ms(1920 * 1080, 1)
    );
}

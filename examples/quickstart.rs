//! Quickstart: assemble the paper's Figure 2 kernel and run it on the
//! cycle-level simulator.
//!
//! The program performs one min-sum belief-propagation message update:
//! load a data-cost vector and three incoming messages from DRAM, add
//! them (Equation 1a), apply the `m.v.add.min` matrix-vector update
//! against the smoothness matrix (Equation 1b), and store the outgoing
//! message back to DRAM.
//!
//! ```sh
//! cargo run --release -p vip-examples --example quickstart
//! ```

use vip_core::{System, SystemConfig};
use vip_isa::{assemble, Reg};
use vip_kernels::sync::{bytes_to_i16s, i16s_to_bytes};

fn main() {
    const L: usize = 16; // labels

    // --- Assemble the kernel (Figure 2, plus setup and halt) ---------
    let program = assemble(
        "set.vl r61                      ; r61 = vector length (16)
         set.mr r61                      ; smoothness matrix is 16x16
         mov.imm r20, 0                  ; scratchpad: smoothness at 0
         ld.sram.i16 r20, r16, r62       ; load smoothness (r62 = 256)
         ld.sram.i16 r11, r7, r61        ; load theta
         ld.sram.i16 r12, r8, r61        ; load message from left
         ld.sram.i16 r13, r9, r61        ; load message from right
         v.v.add.i16 r11, r11, r12       ; theta-hat (Equation 1a)
         v.v.add.i16 r11, r11, r13
         m.v.add.min.i16 r10, r20, r11   ; min-sum update (Equation 1b)
         st.sram.i16 r10, r14, r61       ; store outgoing message
         memfence
         halt",
    )
    .expect("kernel assembles");
    println!("assembled {} instructions:\n{program}", program.len());

    // --- Build a system and stage inputs -----------------------------
    let mut sys = System::new(SystemConfig::small_test());
    let theta: Vec<i16> = (0..L as i16).map(|l| (l - 5).abs() * 4).collect();
    let m_left: Vec<i16> = (0..L as i16).map(|l| (l - 9).abs()).collect();
    let m_right = vec![2i16; L];
    let smoothness: Vec<i16> = (0..L * L)
        .map(|i| {
            let (a, b) = ((i / L) as i16, (i % L) as i16);
            ((a - b).abs() * 2).min(10)
        })
        .collect();
    let hmc = sys.hmc_mut();
    hmc.host_write(0x000, &i16s_to_bytes(&theta));
    hmc.host_write(0x100, &i16s_to_bytes(&m_left));
    hmc.host_write(0x200, &i16s_to_bytes(&m_right));
    hmc.host_write(0x400, &i16s_to_bytes(&smoothness));

    // --- Point the registers at the data ------------------------------
    sys.load_program(0, &program);
    for (reg, val) in [
        (7u8, 0x000u64), // theta
        (8, 0x100),      // m_left
        (9, 0x200),      // m_right
        (16, 0x400),     // smoothness
        (14, 0x600),     // output
        (10, 512),       // scratchpad address for the result
        (11, 544),       // scratchpad: theta-hat
        (12, 576),       // scratchpad: m_left
        (13, 608),       // scratchpad: m_right
        (61, L as u64),  // vector length
        (62, (L * L) as u64),
    ] {
        sys.set_reg(0, Reg::new(reg), val);
    }

    // --- Run -----------------------------------------------------------
    let cycles = sys.run(1_000_000).expect("program halts");
    let out = bytes_to_i16s(&sys.hmc().host_read(0x600, L * 2));
    println!("message update completed in {cycles} cycles");
    println!("outgoing message: {out:?}");

    // Check against a direct evaluation of Equations (1a)-(1b).
    let expect: Vec<i16> = (0..L)
        .map(|lv| {
            (0..L)
                .map(|lw| smoothness[lv * L + lw] + theta[lw] + m_left[lw] + m_right[lw])
                .min()
                .unwrap()
        })
        .collect();
    assert_eq!(out, expect, "simulated result matches Equation (1b)");
    println!("verified against the golden min-sum update");
}

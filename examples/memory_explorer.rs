//! Explore the memory system's design space through the public API —
//! the Figure 5 methodology in miniature, plus the §III-C
//! logical-to-physical bit shuffle.
//!
//! ```sh
//! cargo run --release -p vip-examples --example memory_explorer
//! ```

use vip_mem::{AddressMapping, BitShuffle, Hmc, MemConfig, MemRequest};

/// Streams `n` sequential column reads through vault 0 and reports the
/// achieved bandwidth.
fn stream_bandwidth(cfg: MemConfig, n: u64) -> f64 {
    let mut hmc = Hmc::new(cfg);
    let mut issued = 0;
    let mut responses = Vec::new();
    let mut done = 0;
    while done < n {
        if issued < n
            && hmc
                .enqueue(0, MemRequest::read(issued, issued * 32, 32))
                .is_ok()
        {
            issued += 1;
        }
        hmc.tick(&mut responses);
        done = responses.len() as u64;
    }
    hmc.stats().bandwidth_gbs()
}

fn main() {
    println!("single-vault streaming bandwidth under the Figure 5 presets:\n");
    println!(
        "{:<14} {:>12} {:>10} {:>10}",
        "config", "GB/s/vault", "row hits", "refreshes"
    );
    for cfg in MemConfig::figure5_sweep() {
        let name = cfg.name;
        let mut hmc = Hmc::new(cfg.clone());
        let mut responses = Vec::new();
        let (mut issued, mut done) = (0u64, 0u64);
        while done < 512 {
            if issued < 512
                && hmc
                    .enqueue(0, MemRequest::read(issued, issued * 32, 32))
                    .is_ok()
            {
                issued += 1;
            }
            hmc.tick(&mut responses);
            done = responses.len() as u64;
        }
        let s = hmc.stats();
        println!(
            "{name:<14} {:>12.2} {:>10} {:>10}",
            s.bandwidth_gbs(),
            s.row_hits,
            s.refreshes
        );
    }
    let _ = stream_bandwidth(MemConfig::baseline(), 64);

    // The logical-to-physical shuffle: run VIP's vault-high software
    // view on a stock low-interleaved HMC (§III-C).
    println!("\nlogical-to-physical remap (vault-high view on a low-interleaved stack):");
    let cfg = MemConfig::baseline();
    let total_bits = (cfg.total_bytes() / 32).trailing_zeros();
    let shuffle = BitShuffle::vault_high_to_low(5, total_bits, 5);
    for vault in [0usize, 1, 31] {
        let logical = cfg.vault_base(vault) + 0x40;
        let physical = shuffle.apply(logical);
        let landed = AddressMapping::LowInterleave.decode(&cfg, physical).vault;
        println!(
            "  logical {logical:#012x} (vault {vault:>2} region) -> physical {physical:#012x} -> vault {landed:>2}"
        );
        assert_eq!(landed, vault);
    }
    println!("\nevery logical vault region lands on its intended physical vault.");
}

//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the checksum
//! the NoC attaches to every packet so the receiver can detect flit
//! corruption and trigger a retransmission. Bitwise implementation: at
//! simulator packet rates a lookup table buys nothing, and the loop is
//! self-evidently the published algorithm.

/// CRC-32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in bytes {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb == 1 {
                crc ^= 0xedb8_8320;
            }
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_value() {
        // The canonical CRC-32 check vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn empty_and_sensitivity() {
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
        assert_ne!(crc32(b"abc"), crc32(b"cba"));
    }
}

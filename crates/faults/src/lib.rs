//! Deterministic, seed-driven fault injection.
//!
//! VIP sits in the logic layer of an HMC-like 3D stack, and the paper's
//! §VI-C refresh study (1x/2x/4x tREFI) is exactly the regime where DRAM
//! retention faults become visible. This crate models the fault sources
//! the simulator injects — retention bit flips on the DRAM read path,
//! flit corruption and drops on torus links, PE register-writeback
//! upsets — together with the graceful-degradation codes that absorb
//! them: a SECDED (72,64) Hamming code on the vault read path and a
//! CRC-32 on NoC packets.
//!
//! # Determinism contract
//!
//! Every fault decision is a *stateless* function of
//! `(seed, domain, a, b)` — there is no mutable RNG stream anywhere.
//! The coordinates `a`/`b` are architectural (a word address and the
//! issue cycle, a packet uid and its hop count, a PE id and its retired
//! instruction count), so the same program under the same seed sees the
//! same faults regardless of which stepping engine runs it, how PEs are
//! sharded across threads, or in what order components tick. This is
//! what lets the differential fuzzer referee fault runs too.
//!
//! With every rate at zero (or every config `None`) the injector is
//! inert and the machine must stay bit-identical to a build without it.

#![forbid(unsafe_code)]

pub mod crc;
pub mod secded;

use vip_rng::SplitMix64;
use vip_snap::{Reader, SnapError, Snapshot, Writer};

/// One million — fault rates are expressed as integer parts-per-million
/// so configs stay `Copy + Eq` (no floats).
pub const PPM_SCALE: u64 = 1_000_000;

/// The architectural site a fault draw applies to. Each domain hashes
/// differently so e.g. DRAM word 64 at cycle 3 and NoC packet 64 at hop
/// 3 are independent coin flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDomain {
    /// Retention flips in a DRAM word, keyed by (word address, issue
    /// cycle).
    DramRetention,
    /// Flit corruption/drop on a torus link, keyed by (packet uid,
    /// attempt/hop coordinates).
    NocFlit,
    /// A PE scalar register writeback upset, keyed by (pe id, retired
    /// instruction count).
    PeWriteback,
}

impl FaultDomain {
    const fn tag(self) -> u64 {
        match self {
            FaultDomain::DramRetention => 0x5eed_d0d0_d4a3_0001,
            FaultDomain::NocFlit => 0x5eed_d0d0_f117_0002,
            FaultDomain::PeWriteback => 0x5eed_d0d0_57a7_0003,
        }
    }
}

/// A stateless 64-bit hash of `(seed, domain, a, b, salt)`: three
/// chained SplitMix64 steps, each feeding the next seed. Deterministic
/// across platforms and independent of any call ordering.
fn mix(seed: u64, domain: FaultDomain, a: u64, b: u64, salt: u64) -> u64 {
    let s1 = SplitMix64::new(seed ^ domain.tag() ^ salt).next_u64();
    let s2 = SplitMix64::new(s1 ^ a).next_u64();
    SplitMix64::new(s2 ^ b).next_u64()
}

/// The raw uniform roll in `[0, PPM_SCALE)` for the fault at
/// architectural coordinates `(a, b)`. Callers partition the range into
/// outcome bands — e.g. `[0, single_ppm)` is a single-bit flip,
/// `[single_ppm, single_ppm + double_ppm)` a double-bit flip — so
/// mutually exclusive outcomes cost one draw and stay exactly
/// calibrated.
#[must_use]
pub fn fault_roll(seed: u64, domain: FaultDomain, a: u64, b: u64) -> u64 {
    mix(seed, domain, a, b, 0x9f4a) % PPM_SCALE
}

/// Whether the fault at architectural coordinates `(a, b)` fires under
/// `rate_ppm` parts-per-million. A zero rate never fires (and performs
/// no hashing), `PPM_SCALE` or more always fires.
#[must_use]
pub fn fault_fires(seed: u64, domain: FaultDomain, a: u64, b: u64, rate_ppm: u32) -> bool {
    rate_ppm > 0 && fault_roll(seed, domain, a, b) < u64::from(rate_ppm)
}

/// A uniform payload for a fault that fired (which bit to flip, which
/// byte to corrupt). Hashed with a different salt than [`fault_fires`]
/// so the two are independent draws over the same coordinates.
#[must_use]
pub fn fault_value(seed: u64, domain: FaultDomain, a: u64, b: u64) -> u64 {
    mix(seed, domain, a, b, 0x7a1e)
}

/// DRAM retention-fault rates, applied per 8-byte word per read access
/// on the vault data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramFaultConfig {
    /// Seed for the DRAM fault domain.
    pub seed: u64,
    /// Single-bit flip rate per word-read, in parts per million. SECDED
    /// corrects these.
    pub single_bit_ppm: u32,
    /// Double-bit flip rate per word-read, in ppm. SECDED only detects
    /// these: the response comes back poisoned.
    pub double_bit_ppm: u32,
}

impl DramFaultConfig {
    /// Retention faults scale with the refresh interval: the paper's 2x
    /// and 4x refresh-divisor studies leave cells un-refreshed for
    /// proportionally longer. Given the configured `t_refi_ps` and the
    /// baseline it is scaled from, returns the effective single-bit
    /// rate (integer math so all engines agree exactly).
    #[must_use]
    pub fn effective_single_bit_ppm(&self, t_refi_ps: u64, baseline_t_refi_ps: u64) -> u32 {
        if baseline_t_refi_ps == 0 {
            return self.single_bit_ppm;
        }
        let scaled = u64::from(self.single_bit_ppm) * t_refi_ps / baseline_t_refi_ps;
        u32::try_from(scaled.min(PPM_SCALE)).unwrap_or(u32::MAX)
    }
}

/// NoC link-fault rates and the retransmission protocol bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocFaultConfig {
    /// Seed for the NoC fault domain.
    pub seed: u64,
    /// Per-link-traversal flit corruption rate in ppm. The CRC catches
    /// these at the destination and the packet is retransmitted.
    pub corrupt_ppm: u32,
    /// Per-link-traversal flit drop rate in ppm. A missing flit is also
    /// a retransmission.
    pub drop_ppm: u32,
    /// How many retransmissions a packet gets before the NoC declares
    /// delivery failed (surfaced as a typed simulation error).
    pub max_retries: u32,
    /// Base retransmission backoff in cycles; doubles per attempt
    /// (capped at `backoff << 6`).
    pub backoff: u64,
}

/// PE register-writeback upset rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeFaultConfig {
    /// Seed for the PE fault domain.
    pub seed: u64,
    /// Per-scalar-writeback single-bit flip rate in ppm. The PE has no
    /// protection on its register file: these silently corrupt
    /// architectural state (and are counted, so tests can see them).
    pub writeback_flip_ppm: u32,
}

/// The full injector configuration: one optional section per layer.
/// `None` means the layer has no injector wired at all; a wired section
/// with all-zero rates is inert but exercises the fault code paths
/// (the determinism tests use exactly that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultConfig {
    /// DRAM retention faults (absorbed by SECDED on the vault read
    /// path).
    pub dram: Option<DramFaultConfig>,
    /// NoC link faults (absorbed by CRC + retransmission).
    pub noc: Option<NocFaultConfig>,
    /// PE writeback upsets (unprotected).
    pub pe: Option<PeFaultConfig>,
}

impl FaultConfig {
    /// No injector anywhere: the machine is bit-identical to a build
    /// without this crate.
    #[must_use]
    pub const fn disabled() -> Self {
        FaultConfig {
            dram: None,
            noc: None,
            pe: None,
        }
    }

    /// Every injector wired but with all rates zero: exercises the
    /// fault plumbing while provably changing nothing. Determinism
    /// tests compare this against [`FaultConfig::disabled`].
    #[must_use]
    pub const fn zero_rate(seed: u64) -> Self {
        FaultConfig {
            dram: Some(DramFaultConfig {
                seed,
                single_bit_ppm: 0,
                double_bit_ppm: 0,
            }),
            noc: Some(NocFaultConfig {
                seed,
                corrupt_ppm: 0,
                drop_ppm: 0,
                max_retries: 4,
                backoff: 8,
            }),
            pe: Some(PeFaultConfig {
                seed,
                writeback_flip_ppm: 0,
            }),
        }
    }

    /// True if no section can ever fire a fault.
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.dram
            .is_none_or(|d| d.single_bit_ppm == 0 && d.double_bit_ppm == 0)
            && self
                .noc
                .is_none_or(|n| n.corrupt_ppm == 0 && n.drop_ppm == 0)
            && self.pe.is_none_or(|p| p.writeback_flip_ppm == 0)
    }
}

impl Snapshot for DramFaultConfig {
    fn save(&self, w: &mut Writer) {
        w.u64(self.seed);
        w.u32(self.single_bit_ppm);
        w.u32(self.double_bit_ppm);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(DramFaultConfig {
            seed: r.u64()?,
            single_bit_ppm: r.u32()?,
            double_bit_ppm: r.u32()?,
        })
    }
}

impl Snapshot for NocFaultConfig {
    fn save(&self, w: &mut Writer) {
        w.u64(self.seed);
        w.u32(self.corrupt_ppm);
        w.u32(self.drop_ppm);
        w.u32(self.max_retries);
        w.u64(self.backoff);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(NocFaultConfig {
            seed: r.u64()?,
            corrupt_ppm: r.u32()?,
            drop_ppm: r.u32()?,
            max_retries: r.u32()?,
            backoff: r.u64()?,
        })
    }
}

impl Snapshot for PeFaultConfig {
    fn save(&self, w: &mut Writer) {
        w.u64(self.seed);
        w.u32(self.writeback_flip_ppm);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(PeFaultConfig {
            seed: r.u64()?,
            writeback_flip_ppm: r.u32()?,
        })
    }
}

impl Snapshot for FaultConfig {
    fn save(&self, w: &mut Writer) {
        self.dram.save(w);
        self.noc.save(w);
        self.pe.save(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(FaultConfig {
            dram: Option::restore(r)?,
            noc: Option::restore(r)?,
            pe: Option::restore(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_stateless_and_deterministic() {
        let a = fault_value(7, FaultDomain::DramRetention, 0x40, 123);
        let b = fault_value(7, FaultDomain::DramRetention, 0x40, 123);
        assert_eq!(a, b);
        // Different coordinates, domains, or seeds decorrelate.
        assert_ne!(a, fault_value(7, FaultDomain::DramRetention, 0x48, 123));
        assert_ne!(a, fault_value(7, FaultDomain::DramRetention, 0x40, 124));
        assert_ne!(a, fault_value(7, FaultDomain::NocFlit, 0x40, 123));
        assert_ne!(a, fault_value(8, FaultDomain::DramRetention, 0x40, 123));
    }

    #[test]
    fn fire_and_value_are_independent_draws() {
        // The payload draw must not be a function of the fire draw.
        let fire = mix(7, FaultDomain::NocFlit, 1, 2, 0x9f4a);
        let value = fault_value(7, FaultDomain::NocFlit, 1, 2);
        assert_ne!(fire, value);
    }

    #[test]
    fn zero_rate_never_fires_and_full_rate_always_fires() {
        for i in 0..1000 {
            assert!(!fault_fires(42, FaultDomain::DramRetention, i, i, 0));
            assert!(fault_fires(
                42,
                FaultDomain::DramRetention,
                i,
                i,
                PPM_SCALE as u32
            ));
        }
    }

    #[test]
    fn fire_rate_tracks_ppm() {
        // 5% nominal over 20k trials: expect 1000 ± a generous margin.
        let hits = (0..20_000u64)
            .filter(|&i| fault_fires(9, FaultDomain::PeWriteback, i, 0, 50_000))
            .count();
        assert!((700..1300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn refresh_scaling_is_integer_exact() {
        let cfg = DramFaultConfig {
            seed: 0,
            single_bit_ppm: 250,
            double_bit_ppm: 0,
        };
        let base = 1_950_000;
        assert_eq!(cfg.effective_single_bit_ppm(base, base), 250);
        assert_eq!(cfg.effective_single_bit_ppm(base * 2, base), 500);
        assert_eq!(cfg.effective_single_bit_ppm(base * 4, base), 1000);
        // Degenerate baseline falls back to the nominal rate.
        assert_eq!(cfg.effective_single_bit_ppm(base, 0), 250);
        // Saturates at certainty.
        assert_eq!(
            cfg.effective_single_bit_ppm(base * 100_000, base),
            PPM_SCALE as u32
        );
    }

    #[test]
    fn inertness() {
        assert!(FaultConfig::disabled().is_inert());
        assert!(FaultConfig::zero_rate(77).is_inert());
        let mut hot = FaultConfig::zero_rate(77);
        hot.dram.as_mut().unwrap().single_bit_ppm = 1;
        assert!(!hot.is_inert());
    }
}

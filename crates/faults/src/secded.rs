//! SECDED (72,64): a shortened Hamming(71,64) plus an overall parity
//! bit, the classic DRAM ECC word format (64 data bits + 8 check bits,
//! one check byte per 8-byte word).
//!
//! Codeword positions 1..=71 hold the Hamming code: check bits at the
//! power-of-two positions {1,2,4,8,16,32,64}, data bits at the
//! remaining 64 positions in ascending order. An eighth bit stores
//! parity over the whole 71-bit word. Single-bit errors produce a
//! non-zero syndrome *and* flip the overall parity, so they are
//! corrected; double-bit errors produce a non-zero syndrome with even
//! overall parity, so they are detected but not correctable.

/// Number of codeword positions carrying the Hamming code (data +
/// Hamming check bits, excluding the overall parity bit).
const CODE_POSITIONS: u32 = 71;

/// The outcome of decoding a (data, check) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// No error: the stored data is good as-is.
    Clean,
    /// A single-bit error was corrected.
    Corrected {
        /// The repaired 64-bit data word.
        data: u64,
        /// The codeword position (1-based; 72 = the overall parity bit
        /// itself) that was flipped.
        position: u32,
    },
    /// A double-bit (or otherwise invalid) error: detected, not
    /// correctable. The data cannot be trusted.
    Uncorrectable,
}

/// Maps data bit index 0..64 to its codeword position (the non-power-
/// of-two positions of 1..=71, ascending).
fn position_of_data_bit(bit: u32) -> u32 {
    debug_assert!(bit < 64);
    let mut seen = 0;
    for pos in 1..=CODE_POSITIONS {
        if !pos.is_power_of_two() {
            if seen == bit {
                return pos;
            }
            seen += 1;
        }
    }
    unreachable!("data bit index out of range")
}

/// Maps a codeword position back to its data bit index, or `None` for
/// check-bit positions.
fn data_bit_of_position(position: u32) -> Option<u32> {
    if position == 0 || position > CODE_POSITIONS || position.is_power_of_two() {
        return None;
    }
    let mut bit = 0;
    for pos in 1..position {
        if !pos.is_power_of_two() {
            bit += 1;
        }
    }
    Some(bit)
}

/// XOR of the codeword positions of all set data bits — the Hamming
/// syndrome contribution of the data half.
fn data_syndrome(data: u64) -> u32 {
    let mut syn = 0;
    for bit in 0..64 {
        if data >> bit & 1 == 1 {
            syn ^= position_of_data_bit(bit);
        }
    }
    syn
}

/// Encodes a 64-bit data word into its 8 check bits: the 7 Hamming
/// check bits in bits 0..=6 (bit `j` lives at codeword position
/// `2^j`), the overall parity in bit 7.
#[must_use]
pub fn encode(data: u64) -> u8 {
    let hamming = data_syndrome(data) as u8 & 0x7f;
    let overall = (data.count_ones() + u32::from(hamming).count_ones()) & 1;
    hamming | (overall as u8) << 7
}

/// Decodes a possibly-corrupted `(data, check)` pair.
#[must_use]
pub fn decode(data: u64, check: u8) -> Decoded {
    let stored_hamming = u32::from(check & 0x7f);
    let syndrome = data_syndrome(data) ^ stored_hamming;
    let parity_now = (data.count_ones() + stored_hamming.count_ones() + u32::from(check >> 7)) & 1;
    match (syndrome, parity_now) {
        (0, 0) => Decoded::Clean,
        // Syndrome zero but parity odd: the overall parity bit itself
        // flipped. Data is intact.
        (0, 1) => Decoded::Corrected {
            data,
            position: CODE_POSITIONS + 1,
        },
        // Non-zero syndrome with even parity: an even number of flips.
        (_, 0) => Decoded::Uncorrectable,
        (pos, _) => {
            if pos > CODE_POSITIONS {
                // Syndrome points outside the codeword: ≥3 flips.
                return Decoded::Uncorrectable;
            }
            let data = match data_bit_of_position(pos) {
                Some(bit) => data ^ 1 << bit,
                // A Hamming check bit flipped; data is intact.
                None => data,
            };
            Decoded::Corrected {
                data,
                position: pos,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_rng::SplitMix64;

    fn words(n: usize) -> Vec<u64> {
        let mut rng = SplitMix64::new(0xecc);
        let mut v: Vec<u64> = (0..n).map(|_| rng.next_u64()).collect();
        v.extend([0, u64::MAX, 1, 1 << 63]);
        v
    }

    #[test]
    fn clean_words_decode_clean() {
        for w in words(64) {
            assert_eq!(decode(w, encode(w)), Decoded::Clean, "word {w:#x}");
        }
    }

    #[test]
    fn every_single_data_bit_flip_is_corrected() {
        for w in words(16) {
            let check = encode(w);
            for bit in 0..64 {
                let corrupted = w ^ 1 << bit;
                match decode(corrupted, check) {
                    Decoded::Corrected { data, .. } => {
                        assert_eq!(data, w, "word {w:#x} bit {bit}");
                    }
                    other => panic!("word {w:#x} bit {bit}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_single_check_bit_flip_is_corrected() {
        for w in words(16) {
            let check = encode(w);
            for bit in 0..8 {
                let corrupted = check ^ 1 << bit;
                match decode(w, corrupted) {
                    Decoded::Corrected { data, .. } => {
                        assert_eq!(data, w, "word {w:#x} check bit {bit}");
                    }
                    other => panic!("word {w:#x} check bit {bit}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_double_data_bit_flip_is_detected() {
        for w in words(4) {
            let check = encode(w);
            for b1 in 0..64 {
                for b2 in (b1 + 1)..64 {
                    let corrupted = w ^ 1 << b1 ^ 1 << b2;
                    assert_eq!(
                        decode(corrupted, check),
                        Decoded::Uncorrectable,
                        "word {w:#x} bits {b1},{b2}"
                    );
                }
            }
        }
    }

    #[test]
    fn mixed_data_check_double_flips_are_detected() {
        for w in words(4) {
            let check = encode(w);
            for db in 0..64 {
                for cb in 0..8 {
                    assert_eq!(
                        decode(w ^ 1 << db, check ^ 1 << cb),
                        Decoded::Uncorrectable,
                        "word {w:#x} data bit {db} check bit {cb}"
                    );
                }
            }
        }
    }

    #[test]
    fn corrected_position_identifies_the_flipped_bit() {
        let w = 0xdead_beef_0bad_cafe;
        let check = encode(w);
        for bit in 0..64 {
            let Decoded::Corrected { position, .. } = decode(w ^ 1 << bit, check) else {
                panic!("bit {bit} not corrected");
            };
            assert_eq!(data_bit_of_position(position), Some(bit));
        }
    }
}

//! Graceful degradation under live DRAM retention faults: an MLP tile
//! run with single-bit flips injected on the vault read path must still
//! produce the golden output, because SECDED corrects every single-bit
//! fault before the data reaches a PE. The corrected-error counters
//! prove the faults actually fired — this is not a vacuous pass.

use vip_core::{System, SystemConfig, SystemStats};
use vip_faults::{DramFaultConfig, FaultConfig};
use vip_kernels::cnn::FcLayer;
use vip_kernels::mlp::{self, FcLayout};
use vip_kernels::schedule::FcSchedule;

fn pattern(n: usize, scale: i16, offset: i16) -> Vec<i16> {
    (0..n)
        .map(|i| ((i * 7 + 3) % 11) as i16 * scale - offset)
        .collect()
}

fn run_fc_under_faults(faults: &FaultConfig) -> (SystemStats, Vec<i16>, Vec<i16>) {
    let layer = FcLayer {
        name: "fc",
        inputs: 512,
        outputs: 16,
    };
    let input = pattern(512, 1, 5);
    let weights = pattern(512 * 16, 1, 5);
    let bias = pattern(16, 3, 10);
    let layout = FcLayout {
        layer,
        input_base: 0,
        weights_base: 0x10000,
        bias_base: 0x40000,
        output_base: 0x50000,
        relu: true,
    };
    let mut sys = System::new(SystemConfig::small_test().with_faults(faults));
    layout.load_into(sys.hmc_mut(), &input, &weights, &bias);
    for (pe, p) in mlp::fc_tile_programs(&layout, &FcSchedule::default())
        .iter()
        .enumerate()
    {
        sys.load_program(pe, p);
    }
    sys.run(3_000_000).expect("tile completes despite faults");
    let golden = mlp::fc_forward(&layer, &input, &weights, &bias, true);
    let got = layout.read_output(sys.hmc());
    (sys.stats(), got, golden)
}

/// ~0.5% of word reads take a single-bit hit — dozens of faults over
/// this tile's weight traffic, every one corrected in flight.
fn single_bit_faults(seed: u64) -> FaultConfig {
    FaultConfig {
        dram: Some(DramFaultConfig {
            seed,
            single_bit_ppm: 5_000,
            double_bit_ppm: 0,
        }),
        noc: None,
        pe: None,
    }
}

#[test]
fn mlp_tile_survives_single_bit_dram_faults_via_secded() {
    let (stats, got, golden) = run_fc_under_faults(&single_bit_faults(0xecc0));
    assert_eq!(got, golden, "SECDED must make faults invisible");
    assert!(
        stats.mem.retention_faults > 0,
        "the injector must actually have fired"
    );
    assert_eq!(
        stats.mem.ecc_corrected, stats.mem.retention_faults,
        "every single-bit fault is corrected"
    );
    assert_eq!(stats.mem.ecc_uncorrectable, 0);
}

#[test]
fn faulty_runs_are_reproducible_from_the_seed() {
    // Same seed → identical fault pattern, outputs, and counters: the
    // whole point of stateless seed-driven draws is that a fault run
    // can be replayed exactly from its config.
    let a = run_fc_under_faults(&single_bit_faults(0xecc1));
    let b = run_fc_under_faults(&single_bit_faults(0xecc1));
    assert_eq!(a.0, b.0, "statistics replay exactly");
    assert_eq!(a.1, b.1, "outputs replay exactly");
    // A different seed lands faults elsewhere (counters differ) but the
    // output is still golden.
    let c = run_fc_under_faults(&single_bit_faults(0x5eed));
    assert_eq!(c.1, c.2, "still golden under a different fault pattern");
}

//! Real workloads (BP, CNN, MLP) run with the fault injector wired at
//! zero rate must be bit-identical — same outputs, same cycle count,
//! same statistics — to runs with no injector wired at all. The random
//! program fuzzer covers the same contract breadth-first; these tests
//! cover it on the paper's actual kernels, whose load-store and NoC
//! traffic patterns are nothing like the fuzzer's.

use std::fmt::Debug;

use vip_core::{FuncConfig, System, SystemConfig, SystemStats};
use vip_faults::FaultConfig;
use vip_isa::Program;
use vip_kernels::bp::{
    self, strip_program, BpLayout, Messages, Mrf, MrfParams, StripParams, Sweep, VectorMachineStyle,
};
use vip_kernels::cnn::{self, conv_tile_programs, ConvLayer, ConvLayout, ConvMode, FcLayer};
use vip_kernels::mlp::{self, FcLayout};
use vip_kernels::schedule::FcSchedule;

fn pattern(n: usize, scale: i16, offset: i16) -> Vec<i16> {
    (0..n)
        .map(|i| ((i * 7 + 3) % 11) as i16 * scale - offset)
        .collect()
}

/// Runs `programs` on a system built by `setup` and returns the full
/// statistics record plus whatever output `read` extracts. With
/// `func: Some(cfg)` the run uses the two-tier functional engine.
fn run_case<R>(
    faults: &FaultConfig,
    setup: impl Fn(&mut System),
    programs: &[Program],
    max: u64,
    read: impl Fn(&System) -> R,
    func: Option<FuncConfig>,
) -> (SystemStats, R) {
    let mut sys = System::new(SystemConfig::small_test().with_faults(faults));
    setup(&mut sys);
    for (pe, p) in programs.iter().enumerate() {
        sys.load_program(pe, p);
    }
    match func {
        Some(cfg) => {
            sys.set_func_config(cfg);
            sys.run_functional(max).expect("kernel completes");
        }
        None => {
            sys.run(max).expect("kernel completes");
        }
    }
    let out = read(&sys);
    (sys.stats(), out)
}

/// Asserts the disabled-injector and zero-rate-injector runs of one
/// case are bit-identical.
fn assert_inert<R: PartialEq + Debug>(
    name: &str,
    setup: impl Fn(&mut System),
    programs: &[Program],
    max: u64,
    read: impl Fn(&System) -> R,
) {
    let (plain_stats, plain_out) =
        run_case(&FaultConfig::disabled(), &setup, programs, max, &read, None);
    let (wired_stats, wired_out) = run_case(
        &FaultConfig::zero_rate(0xd15a_b1ed),
        &setup,
        programs,
        max,
        &read,
        None,
    );
    assert_eq!(plain_out, wired_out, "{name}: output");
    assert_eq!(plain_stats, wired_stats, "{name}: cycles and statistics");
    assert_eq!(wired_stats.mem.ecc_corrected, 0, "{name}");
    assert_eq!(wired_stats.noc.retries, 0, "{name}");
    assert_eq!(wired_stats.pe.writeback_flips, 0, "{name}");

    // Same contract on the functional tier. A zero-rate injector can
    // never fire, so it must not force the run off the functional
    // path either: both runs take functional stretches (short windows
    // so these small kernels cross the tier boundary repeatedly), and
    // must be bit-identical to each other and — in architectural
    // output — to the cycle-accurate runs. Timing statistics are
    // estimates on this engine, so only the outputs are compared
    // across engines.
    let cfg = FuncConfig {
        warmup_cycles: 64,
        sample_cycles: 256,
        stretch_work: 2_000,
        quantum: 64,
        drain_cycles: 5_000,
    };
    let (func_plain_stats, func_plain_out) = run_case(
        &FaultConfig::disabled(),
        &setup,
        programs,
        max,
        &read,
        Some(cfg),
    );
    let (func_wired_stats, func_wired_out) = run_case(
        &FaultConfig::zero_rate(0xd15a_b1ed),
        &setup,
        programs,
        max,
        &read,
        Some(cfg),
    );
    assert!(
        func_plain_stats.func.functional_instructions > 0,
        "{name}: functional tier never engaged"
    );
    assert_eq!(func_plain_out, plain_out, "{name}: functional output");
    assert_eq!(
        func_plain_out, func_wired_out,
        "{name}: functional output with zero-rate injector"
    );
    assert_eq!(
        func_plain_stats, func_wired_stats,
        "{name}: functional runs diverge under a zero-rate injector"
    );
    assert_eq!(func_wired_stats.mem.ecc_corrected, 0, "{name}");
    assert_eq!(func_wired_stats.noc.retries, 0, "{name}");
    assert_eq!(func_wired_stats.pe.writeback_flips, 0, "{name}");
}

#[test]
fn bp_sweep_is_identical_with_zero_rate_injector() {
    let (w, h, l) = (16, 8, 16);
    let costs = bp::stereo_data_costs(w, h, l, 11);
    let mrf = Mrf::new(MrfParams::truncated_linear(w, h, l, 2, 12), costs);
    let layout = BpLayout::new(0, w, h, l);
    let init = Messages::new_unnormalized(&mrf.params);
    let strip = StripParams {
        layout,
        sweep: Sweep::Down,
        ortho_range: (0, w),
        normalize: false,
        style: VectorMachineStyle::SpReduce,
        group_bufs: 2,
    };
    let program = strip_program(&strip);
    assert_inert(
        "bp down sweep",
        |sys| strip.layout.load_into(sys.hmc_mut(), &mrf, &init),
        std::slice::from_ref(&program),
        2_000_000,
        |sys| layout.read_messages(sys.hmc(), false),
    );
}

#[test]
fn conv_tile_is_identical_with_zero_rate_injector() {
    let layer = ConvLayer {
        name: "t",
        in_channels: 8,
        out_channels: 4,
        width: 8,
        height: 8,
        kernel: 3,
        pad: 1,
    };
    let input = cnn::pad_input(8, 8, 8, 1, &pattern(8 * 8 * 8, 1, 5));
    let weights = pattern(layer.weights(), 1, 3);
    let bias = pattern(4, 2, 3);
    let layout = ConvLayout {
        layer,
        input_base: 0,
        weights_base: 0x10000,
        bias_base: 0x20000,
        output_base: 0x30000,
        filters_per_group: 2,
        mode: ConvMode::Full,
    };
    let programs = conv_tile_programs(&layout, &layout.default_schedule());
    assert_inert(
        "conv tile",
        |sys| layout.load_into(sys.hmc_mut(), &input, &weights, &bias),
        &programs,
        5_000_000,
        |sys| layout.read_output(sys.hmc()),
    );
}

#[test]
fn fc_tile_is_identical_with_zero_rate_injector() {
    let layer = FcLayer {
        name: "fc",
        inputs: 512,
        outputs: 16,
    };
    let input = pattern(512, 1, 5);
    let weights = pattern(512 * 16, 1, 5);
    let bias = pattern(16, 3, 10);
    let layout = FcLayout {
        layer,
        input_base: 0,
        weights_base: 0x10000,
        bias_base: 0x40000,
        output_base: 0x50000,
        relu: true,
    };
    let programs = mlp::fc_tile_programs(&layout, &FcSchedule::default());
    assert_inert(
        "fc tile",
        |sys| layout.load_into(sys.hmc_mut(), &input, &weights, &bias),
        &programs,
        3_000_000,
        |sys| layout.read_output(sys.hmc()),
    );
}

//! Seeded-random tests on the workload kernels' mathematical
//! invariants. Failures print their seed and re-run alone under
//! `VIP_TEST_SEED`.

use vip_kernels::bp::{self, Messages, Mrf, MrfParams, Sweep};
use vip_kernels::cnn::{self, ConvLayer, PoolLayer};
use vip_kernels::mlp::{self, KC};
use vip_rng::{for_each_seed, SplitMix64};

fn small_mrf(w: usize, h: usize, l: usize, seed: u64) -> Mrf {
    let costs = bp::stereo_data_costs(w, h, l, seed);
    Mrf::new(MrfParams::truncated_linear(w, h, l, 2, 10), costs)
}

/// Adding a constant to every label of every data cost does not
/// change the recovered labels (argmin shift invariance carried
/// through the whole pipeline), while values stay unsaturated.
#[test]
fn bp_labels_are_shift_invariant() {
    for_each_seed("bp_labels_are_shift_invariant", 0x5f1, 8, |seed| {
        let mut rng = SplitMix64::new(seed);
        let shift = rng.i64_in(1..50) as i16;
        let mrf = small_mrf(16, 8, 8, rng.next_u64());
        let mut shifted = mrf.clone();
        for v in &mut shifted.data_costs {
            *v += shift;
        }
        assert_eq!(bp::run(&mrf, 2), bp::run(&shifted, 2), "shift {shift}");
    });
}

/// One sweep writes exactly one plane; the other three are
/// untouched.
#[test]
fn sweeps_touch_only_their_plane() {
    for_each_seed("sweeps_touch_only_their_plane", 0x51e3, 8, |seed| {
        let mut rng = SplitMix64::new(seed);
        let dir = Sweep::iteration_order()[rng.usize_in(0..4)];
        let mrf = small_mrf(16, 8, 8, rng.next_u64());
        let mut msgs = Messages::new(&mrf.params);
        bp::iteration(&mrf, &mut msgs); // make all planes non-trivial
        let before = msgs.clone();
        bp::sweep(&mrf, &mut msgs, dir);
        // (Re-running a sweep whose inputs haven't changed is idempotent,
        // so its own plane may legitimately be unchanged; the invariant
        // is that the three *other* planes are bitwise identical.)
        if dir != Sweep::Down {
            assert_eq!(&msgs.from_above, &before.from_above);
        }
        if dir != Sweep::Up {
            assert_eq!(&msgs.from_below, &before.from_below);
        }
        if dir != Sweep::Right {
            assert_eq!(&msgs.from_left, &before.from_left);
        }
        if dir != Sweep::Left {
            assert_eq!(&msgs.from_right, &before.from_right);
        }
    });
}

/// Normalized messages always have element 0 equal to zero.
#[test]
fn normalized_messages_are_anchored() {
    for_each_seed("normalized_messages_are_anchored", 0xacc0, 8, |seed| {
        let mrf = small_mrf(16, 8, 8, seed);
        let mut msgs = Messages::new(&mrf.params);
        bp::iteration(&mrf, &mut msgs);
        // Interior vertices all received a normalized message.
        for y in 1..7 {
            for x in 1..15 {
                let at = mrf.params.at(x, y);
                assert_eq!(msgs.from_above[at], 0, "vertex ({x}, {y})");
                assert_eq!(msgs.from_left[at], 0);
            }
        }
    });
}

/// Construct (2×2 pooling of costs) commutes with cost shifting by
/// 4x the shift (it sums four vertices).
#[test]
fn construct_is_linear_in_shifts() {
    for_each_seed("construct_is_linear_in_shifts", 0xc075, 8, |seed| {
        let mut rng = SplitMix64::new(seed);
        let shift = rng.i64_in(1..20) as i16;
        let mrf = small_mrf(16, 8, 8, rng.next_u64());
        let coarse = bp::coarse_mrf(&mrf);
        let mut shifted = mrf.clone();
        for v in &mut shifted.data_costs {
            *v += shift;
        }
        let coarse_shifted = bp::coarse_mrf(&shifted);
        for (a, b) in coarse.data_costs.iter().zip(&coarse_shifted.data_costs) {
            assert_eq!(*b, a + 4 * shift);
        }
    });
}

/// A convolution with an all-zero kernel yields exactly the bias
/// (ReLU-clamped), regardless of input.
#[test]
fn zero_kernel_conv_is_bias() {
    for_each_seed("zero_kernel_conv_is_bias", 0xb1a5, 8, |seed| {
        let mut rng = SplitMix64::new(seed);
        let bias0 = rng.i64_in(-50..50) as i16;
        let layer = ConvLayer {
            name: "t",
            in_channels: 4,
            out_channels: 2,
            width: 4,
            height: 4,
            kernel: 3,
            pad: 1,
        };
        let input: Vec<i16> = (0..4 * 4 * 4).map(|_| rng.i64_in(-50..50) as i16).collect();
        let padded = cnn::pad_input(4, 4, 4, 1, &input);
        let weights = vec![0i16; layer.weights()];
        let out = cnn::conv_forward(&layer, &padded, &weights, &[bias0, -bias0], true);
        let inner = cnn::unpad_output(4, 4, 2, 1, &out);
        for px in inner.chunks(2) {
            assert_eq!(px[0], bias0.max(0));
            assert_eq!(px[1], (-bias0).max(0));
        }
    });
}

/// Max pooling never invents values: every output element equals
/// one of its four inputs, and it selects the maximum.
#[test]
fn pooling_selects_existing_values() {
    for_each_seed("pooling_selects_existing_values", 0x9001, 8, |seed| {
        let mut rng = SplitMix64::new(seed);
        let layer = PoolLayer {
            name: "p",
            channels: 2,
            width: 8,
            height: 8,
        };
        let data: Vec<i16> = (0..8 * 8 * 2)
            .map(|_| rng.i64_in(-100..100) as i16)
            .collect();
        let input = cnn::pad_input(8, 8, 2, 1, &data);
        let out = cnn::max_pool(&layer, &input);
        let inner = cnn::unpad_output(4, 4, 2, 1, &out);
        for oy in 0..4 {
            for ox in 0..4 {
                for c in 0..2 {
                    let got = inner[(oy * 4 + ox) * 2 + c];
                    let candidates: Vec<i16> = [(0, 0), (1, 0), (0, 1), (1, 1)]
                        .into_iter()
                        .map(|(dx, dy)| data[((2 * oy + dy) * 8 + 2 * ox + dx) * 2 + c])
                        .collect();
                    assert!(candidates.contains(&got));
                    assert_eq!(got, *candidates.iter().max().unwrap());
                }
            }
        }
    });
}

/// fc_forward with an identity-block weight matrix permutes inputs
/// through (scaled rows pick out single inputs).
#[test]
fn fc_identity_rows_select_inputs() {
    for which in 0..KC {
        let layer = vip_kernels::cnn::FcLayer {
            name: "t",
            inputs: KC,
            outputs: 4,
        };
        let input: Vec<i16> = (0..KC as i16).collect();
        let mut weights = vec![0i16; KC * 4];
        for m in 0..4 {
            weights[m * KC + (which + m) % KC] = 1;
        }
        let out = mlp::fc_forward(&layer, &input, &weights, &[0; 4], false);
        for m in 0..4 {
            assert_eq!(out[m], input[(which + m) % KC], "which {which} row {m}");
        }
    }
}

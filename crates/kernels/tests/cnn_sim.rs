//! Execution-driven verification of the generated CNN and MLP programs
//! against the golden references (§V-A's methodology).

use vip_core::{System, SystemConfig};
use vip_kernels::cnn::{
    self, accumulate_program, conv_tile_programs, pool_tile_programs, AccumulateLayout, ConvLayer,
    ConvLayout, ConvMode, FcLayer, PoolLayer, PoolLayout,
};
use vip_kernels::mlp::{self, FcLayout};
use vip_kernels::schedule::FcSchedule;
use vip_kernels::sync::i16s_to_bytes;

/// Small deterministic values that exercise signs without instantly
/// saturating.
fn pattern(n: usize, scale: i16, offset: i16) -> Vec<i16> {
    (0..n)
        .map(|i| ((i * 7 + 3) % 11) as i16 * scale - offset)
        .collect()
}

fn run_on(sys: &mut System, programs: &[vip_isa::Program], max: u64) {
    for (pe, p) in programs.iter().enumerate() {
        sys.load_program(pe, p);
    }
    sys.run(max).expect("tile completes");
}

#[test]
fn conv_tile_matches_golden() {
    let layer = ConvLayer {
        name: "t",
        in_channels: 8,
        out_channels: 4,
        width: 8,
        height: 8,
        kernel: 3,
        pad: 1,
    };
    let input = cnn::pad_input(8, 8, 8, 1, &pattern(8 * 8 * 8, 1, 5));
    let weights = pattern(layer.weights(), 1, 3);
    let bias = pattern(4, 2, 3);

    let layout = ConvLayout {
        layer,
        input_base: 0,
        weights_base: 0x10000,
        bias_base: 0x20000,
        output_base: 0x30000,
        filters_per_group: 2,
        mode: ConvMode::Full,
    };
    let mut sys = System::new(SystemConfig::small_test());
    layout.load_into(sys.hmc_mut(), &input, &weights, &bias);
    run_on(
        &mut sys,
        &conv_tile_programs(&layout, &layout.default_schedule()),
        5_000_000,
    );

    let expect = cnn::conv_forward(&layer, &input, &weights, &bias, true);
    let got = layout.read_output(sys.hmc());
    assert_eq!(
        cnn::unpad_output(8, 8, 4, 1, &got),
        cnn::unpad_output(8, 8, 4, 1, &expect),
        "convolution interior"
    );
}

#[test]
fn conv_all_filters_resident_like_c1_1() {
    // The first VGG layer's regime: 3 input channels, every filter fits
    // in one scratchpad (F = out_channels).
    let layer = ConvLayer {
        name: "c1_1-like",
        in_channels: 4,
        out_channels: 8,
        width: 8,
        height: 4,
        kernel: 3,
        pad: 1,
    };
    let input = cnn::pad_input(8, 4, 4, 1, &pattern(8 * 4 * 4, 1, 4));
    let weights = pattern(layer.weights(), 1, 3);
    let bias = pattern(8, 1, 2);
    let layout = ConvLayout {
        layer,
        input_base: 0,
        weights_base: 0x10000,
        bias_base: 0x20000,
        output_base: 0x30000,
        filters_per_group: ConvLayout::max_filters_per_group(&layer).min(8),
        mode: ConvMode::Full,
    };
    assert_eq!(layout.filters_per_group, 8, "all filters resident");
    let mut sys = System::new(SystemConfig::small_test());
    layout.load_into(sys.hmc_mut(), &input, &weights, &bias);
    run_on(
        &mut sys,
        &conv_tile_programs(&layout, &layout.default_schedule()),
        5_000_000,
    );
    let expect = cnn::conv_forward(&layer, &input, &weights, &bias, true);
    assert_eq!(
        cnn::unpad_output(8, 4, 8, 1, &layout.read_output(sys.hmc())),
        cnn::unpad_output(8, 4, 8, 1, &expect)
    );
}

#[test]
fn sharded_conv_with_accumulate_pass_matches_golden() {
    // A deep layer sharded over 2 channel groups (the §IV-B pattern for
    // z > 64), with the partial-sum accumulation pass.
    let full = ConvLayer {
        name: "deep",
        in_channels: 8,
        out_channels: 4,
        width: 8,
        height: 4,
        kernel: 3,
        pad: 1,
    };
    let shard = ConvLayer {
        in_channels: 4,
        ..full
    };
    let input_full = pattern(8 * 4 * 8, 1, 5);
    let weights_full = pattern(full.weights(), 1, 3);
    let bias = pattern(4, 2, 4);

    // Split channels [0..4) and [4..8).
    let split = |lo: usize, per_px: &[i16], stride: usize| -> Vec<i16> {
        per_px
            .chunks(stride)
            .flat_map(|px| px[lo..lo + 4].to_vec())
            .collect()
    };
    let in_shards = [split(0, &input_full, 8), split(4, &input_full, 8)];
    let w_shards = [split(0, &weights_full, 8), split(4, &weights_full, 8)];

    let mut sys = System::new(SystemConfig::small_test());
    let mut partial_bases = Vec::new();
    // Phase 1: each shard's partial convolution (run serially on the
    // same 4 PEs; on the full machine these run on different vaults).
    for (s, (inp, w)) in in_shards.iter().zip(&w_shards).enumerate() {
        let layout = ConvLayout {
            layer: shard,
            input_base: (s as u64) * 0x40000,
            weights_base: 0x100_000 + (s as u64) * 0x10000,
            bias_base: 0x120_000,
            output_base: 0x130_000 + (s as u64) * 0x10000,
            filters_per_group: 2,
            mode: ConvMode::Partial,
        };
        partial_bases.push(layout.output_base);
        let padded = cnn::pad_input(8, 4, 4, 1, inp);
        layout.load_into(sys.hmc_mut(), &padded, w, &[0; 4]);
        run_on(
            &mut sys,
            &conv_tile_programs(&layout, &layout.default_schedule()),
            5_000_000,
        );
    }
    // Phase 2: accumulate + bias + ReLU.
    let acc = AccumulateLayout {
        layer: full,
        partial_bases,
        bias_row_base: 0x200_000,
        output_base: 0x210_000,
    };
    sys.hmc_mut().host_write(
        acc.bias_row_base,
        &i16s_to_bytes(&cnn::replicate_bias(&full, &bias)),
    );
    run_on(&mut sys, &accumulate_program(&acc, 4), 5_000_000);

    // Golden: full convolution via its sharded path.
    let p0 = cnn::conv_partial(
        &shard,
        &cnn::pad_input(8, 4, 4, 1, &in_shards[0]),
        &w_shards[0],
    );
    let p1 = cnn::conv_partial(
        &shard,
        &cnn::pad_input(8, 4, 4, 1, &in_shards[1]),
        &w_shards[1],
    );
    let expect = cnn::relu_bias_sum(&full, &[&p0, &p1], &bias, true);

    let n = cnn::padded_len(8, 4, 4, 1) * 2;
    let got = vip_kernels::sync::bytes_to_i16s(&sys.hmc().host_read(acc.output_base, n));
    assert_eq!(
        cnn::unpad_output(8, 4, 4, 1, &got),
        cnn::unpad_output(8, 4, 4, 1, &expect)
    );
}

#[test]
fn pool_tile_matches_golden() {
    let layer = PoolLayer {
        name: "p",
        channels: 8,
        width: 8,
        height: 8,
    };
    let data = pattern(8 * 8 * 8, 3, 40);
    let input = cnn::pad_input(8, 8, 8, 1, &data);
    let layout = PoolLayout {
        layer,
        input_base: 0,
        output_base: 0x10000,
    };
    let mut sys = System::new(SystemConfig::small_test());
    layout.load_into(sys.hmc_mut(), &input);
    run_on(&mut sys, &pool_tile_programs(&layout, 4), 3_000_000);

    let expect = cnn::max_pool(&layer, &input);
    assert_eq!(
        cnn::unpad_output(4, 4, 8, 1, &layout.read_output(sys.hmc())),
        cnn::unpad_output(4, 4, 8, 1, &expect)
    );
}

#[test]
fn fc_tile_matches_golden() {
    let layer = FcLayer {
        name: "fc",
        inputs: 512,
        outputs: 16,
    };
    let input = pattern(512, 1, 5);
    let weights = pattern(512 * 16, 1, 5);
    let bias = pattern(16, 3, 10);
    let layout = FcLayout {
        layer,
        input_base: 0,
        weights_base: 0x10000,
        bias_base: 0x40000,
        output_base: 0x50000,
        relu: true,
    };
    let mut sys = System::new(SystemConfig::small_test());
    layout.load_into(sys.hmc_mut(), &input, &weights, &bias);
    run_on(
        &mut sys,
        &mlp::fc_tile_programs(&layout, &FcSchedule::default()),
        3_000_000,
    );

    let expect = mlp::fc_forward(&layer, &input, &weights, &bias, true);
    assert_eq!(layout.read_output(sys.hmc()), expect);
}

#[test]
fn fc_without_relu_keeps_negatives() {
    let layer = FcLayer {
        name: "fc8",
        inputs: 256,
        outputs: 16,
    };
    let input = pattern(256, 1, 5);
    let weights = pattern(256 * 16, 1, 6);
    let bias = vec![-100i16; 16];
    let layout = FcLayout {
        layer,
        input_base: 0,
        weights_base: 0x10000,
        bias_base: 0x40000,
        output_base: 0x50000,
        relu: false,
    };
    let mut sys = System::new(SystemConfig::small_test());
    layout.load_into(sys.hmc_mut(), &input, &weights, &bias);
    run_on(
        &mut sys,
        &mlp::fc_tile_programs(&layout, &FcSchedule::default()),
        3_000_000,
    );
    let expect = mlp::fc_forward(&layer, &input, &weights, &bias, false);
    assert_eq!(layout.read_output(sys.hmc()), expect);
    assert!(
        expect.iter().any(|&v| v < 0),
        "test should exercise negatives"
    );
}

#[test]
fn batched_fc_tile_matches_golden() {
    let layer = FcLayer {
        name: "fc-b",
        inputs: 256,
        outputs: 16,
    };
    let batch = 4;
    let kc = 64;
    let inputs = pattern(layer.inputs * batch, 1, 5);
    let weights = pattern(layer.inputs * layer.outputs, 1, 5);
    let bias = pattern(layer.outputs, 3, 10);
    let layout = mlp::FcBatchLayout {
        layer,
        batch,
        kc,
        input_base: 0,
        weights_base: 0x10_0100,
        bias_base: 0x40_0200,
        output_base: 0x50_0300,
        relu: true,
    };
    let mut sys = System::new(SystemConfig::small_test());
    layout.load_into(sys.hmc_mut(), &inputs, &weights, &bias);
    run_on(
        &mut sys,
        &mlp::fc_batch_tile_programs(&layout, 4),
        10_000_000,
    );

    let expect = mlp::fc_forward_batch(&layer, &inputs, &weights, &bias, true, batch, kc);
    assert_eq!(layout.read_output(sys.hmc()), expect);
}

#[test]
fn batched_fc_with_batch_16_matches_golden() {
    let layer = FcLayer {
        name: "fc-b16",
        inputs: 128,
        outputs: 16,
    };
    let (batch, kc) = (16, 64);
    let inputs = pattern(layer.inputs * batch, 1, 4);
    let weights = pattern(layer.inputs * layer.outputs, 1, 6);
    let bias = pattern(layer.outputs, 1, 3);
    let layout = mlp::FcBatchLayout {
        layer,
        batch,
        kc,
        input_base: 0,
        weights_base: 0x10_0100,
        bias_base: 0x40_0200,
        output_base: 0x50_0300,
        relu: false,
    };
    let mut sys = System::new(SystemConfig::small_test());
    layout.load_into(sys.hmc_mut(), &inputs, &weights, &bias);
    run_on(
        &mut sys,
        &mlp::fc_batch_tile_programs(&layout, 4),
        20_000_000,
    );
    let expect = mlp::fc_forward_batch(&layer, &inputs, &weights, &bias, false, batch, kc);
    assert_eq!(layout.read_output(sys.hmc()), expect);
}

//! Non-default schedules must still compute bit-identical results: the
//! autotuner trusts `Schedule::validate` to fence off every illegal
//! point, so every valid point it can visit has to be correct.

use vip_core::{System, SystemConfig};
use vip_kernels::bp::{
    self, bp_iteration_programs, BpLayout, Messages, Mrf, MrfParams, VectorMachineStyle,
};
use vip_kernels::cnn::{self, conv_tile_programs, ConvLayer, ConvLayout, ConvMode, FcLayer};
use vip_kernels::mlp::{self, FcLayout};
use vip_kernels::schedule::{BpSchedule, ConvSchedule, FcSchedule};

fn pattern(n: usize, scale: i16, offset: i16) -> Vec<i16> {
    (0..n)
        .map(|i| ((i * 7 + 3) % 11) as i16 * scale - offset)
        .collect()
}

fn run_on(sys: &mut System, programs: &[vip_isa::Program], max: u64) {
    for (pe, p) in programs.iter().enumerate() {
        sys.load_program(pe, p);
    }
    sys.run(max).expect("tile completes");
}

#[test]
fn fc_tile_is_schedule_invariant() {
    let layer = FcLayer {
        name: "fc",
        inputs: 512,
        outputs: 16,
    };
    let input = pattern(512, 1, 5);
    let weights = pattern(512 * 16, 1, 5);
    let bias = pattern(16, 3, 10);
    let layout = FcLayout {
        layer,
        input_base: 0,
        weights_base: 0x10000,
        bias_base: 0x40000,
        output_base: 0x50000,
        relu: true,
    };
    let expect = mlp::fc_forward(&layer, &input, &weights, &bias, true);

    let schedules = [
        FcSchedule {
            kc: 128,
            mr: 2,
            rc_block: 2,
            pes: 4,
        },
        FcSchedule {
            kc: 64,
            mr: 8,
            rc_block: 1,
            pes: 2,
        },
        FcSchedule {
            kc: 512,
            mr: 2,
            rc_block: 4,
            pes: 2,
        },
    ];
    for sched in &schedules {
        sched.validate(&layer).expect("variant schedule is valid");
        let mut sys = System::new(SystemConfig::small_test());
        layout.load_into_scheduled(sys.hmc_mut(), sched, &input, &weights, &bias);
        run_on(&mut sys, &mlp::fc_tile_programs(&layout, sched), 5_000_000);
        assert_eq!(
            layout.read_output(sys.hmc()),
            expect,
            "schedule {}",
            vip_kernels::schedule::Schedule::Fc(*sched).encoding()
        );
    }
}

#[test]
fn conv_tile_is_schedule_invariant() {
    let layer = ConvLayer {
        name: "t",
        in_channels: 8,
        out_channels: 4,
        width: 8,
        height: 8,
        kernel: 3,
        pad: 1,
    };
    let input = cnn::pad_input(8, 8, 8, 1, &pattern(8 * 8 * 8, 1, 5));
    let weights = pattern(layer.weights(), 1, 3);
    let bias = pattern(4, 2, 3);
    let expect = cnn::conv_forward(&layer, &input, &weights, &bias, true);

    let schedules = [
        ConvSchedule {
            filters_per_group: 2,
            ring: 8,
            interleave_rows: false,
            pes: 4,
        },
        ConvSchedule {
            filters_per_group: 2,
            ring: 4,
            interleave_rows: true,
            pes: 4,
        },
        ConvSchedule {
            filters_per_group: 4,
            ring: 8,
            interleave_rows: true,
            pes: 2,
        },
    ];
    for sched in &schedules {
        sched.validate(&layer).expect("variant schedule is valid");
        let layout = ConvLayout {
            layer,
            input_base: 0,
            weights_base: 0x10000,
            bias_base: 0x20000,
            output_base: 0x30000,
            filters_per_group: sched.filters_per_group,
            mode: ConvMode::Full,
        };
        let mut sys = System::new(SystemConfig::small_test());
        layout.load_into(sys.hmc_mut(), &input, &weights, &bias);
        run_on(&mut sys, &conv_tile_programs(&layout, sched), 5_000_000);
        assert_eq!(
            cnn::unpad_output(8, 8, 4, 1, &layout.read_output(sys.hmc())),
            cnn::unpad_output(8, 8, 4, 1, &expect),
            "schedule {}",
            vip_kernels::schedule::Schedule::Conv(*sched).encoding()
        );
    }
}

#[test]
fn bp_tile_is_schedule_invariant() {
    let (w, h, l) = (32, 32, 16);
    let costs = bp::stereo_data_costs(w, h, l, 11);
    let mrf = Mrf::new(MrfParams::truncated_linear(w, h, l, 2, 12), costs);
    let init = Messages::new(&mrf.params);
    let mut expect = init.clone();
    bp::iteration(&mrf, &mut expect);

    let schedules = [
        BpSchedule {
            style: VectorMachineStyle::SpReduce,
            row_pad: 0,
            pes: 4,
            group_bufs: 2,
        },
        BpSchedule {
            style: VectorMachineStyle::SpReduce,
            row_pad: 64,
            pes: 2,
            group_bufs: 2,
        },
        BpSchedule {
            style: VectorMachineStyle::SpReduce,
            row_pad: 512,
            pes: 4,
            group_bufs: 2,
        },
        // Flat cross-row prefetch pipeline (3 and 4 rotating buffers):
        // must produce bit-identical messages to the ping-pong emitter.
        BpSchedule {
            style: VectorMachineStyle::SpReduce,
            row_pad: 0,
            pes: 2,
            group_bufs: 3,
        },
        BpSchedule {
            style: VectorMachineStyle::SpReduce,
            row_pad: 256,
            pes: 2,
            group_bufs: 4,
        },
    ];
    for sched in &schedules {
        sched.validate(w, h, l).expect("variant schedule is valid");
        let layout = BpLayout::with_row_pad(0, w, h, l, sched.row_pad);
        let mut sys = System::new(SystemConfig::small_test());
        layout.load_into(sys.hmc_mut(), &mrf, &init);
        for (pe, p) in bp_iteration_programs(&layout, sched, 1, true)
            .iter()
            .enumerate()
        {
            sys.load_program(pe, p);
        }
        sys.run(40_000_000).expect("BP tile completes");
        let got = layout.read_messages(sys.hmc(), true);
        let enc = vip_kernels::schedule::Schedule::Bp(*sched).encoding();
        assert_eq!(got.from_above, expect.from_above, "{enc}");
        assert_eq!(got.from_below, expect.from_below, "{enc}");
        assert_eq!(got.from_left, expect.from_left, "{enc}");
        assert_eq!(got.from_right, expect.from_right, "{enc}");
    }
}

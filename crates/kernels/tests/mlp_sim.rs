//! End-to-end MLP inference on the cycle-level simulator vs. the golden
//! software reference: two fully-connected layers chained through DRAM
//! (layer 1's output region is layer 2's input region), tiled across
//! all four PEs of the small test system.

use vip_core::{System, SystemConfig};
use vip_isa::Program;
use vip_kernels::cnn::FcLayer;
use vip_kernels::mlp::{self, FcLayout};
use vip_kernels::schedule::FcSchedule;
use vip_kernels::sync::bytes_to_i16s;

fn pattern(n: usize, scale: i16, offset: i16) -> Vec<i16> {
    (0..n)
        .map(|i| ((i * 7 + 3) % 11) as i16 * scale - offset)
        .collect()
}

fn run_on(sys: &mut System, programs: &[Program], max: u64) {
    for (pe, p) in programs.iter().enumerate() {
        sys.load_program(pe, p);
    }
    sys.run(max).expect("tile completes");
}

/// A 256→256 ReLU hidden layer followed by a 256→16 linear output
/// layer. The hidden activations never leave simulated DRAM: layer 2
/// reads them from where layer 1's store stream put them, so the test
/// also covers store→load visibility between kernel launches.
#[test]
fn two_layer_mlp_matches_golden() {
    let hidden = FcLayer {
        name: "hidden",
        inputs: 256,
        outputs: 256,
    };
    let output = FcLayer {
        name: "output",
        inputs: 256,
        outputs: 16,
    };
    let input = pattern(256, 2, 9);
    let w1 = pattern(256 * 256, 1, 5);
    let b1 = pattern(256, 3, 40);
    let w2 = pattern(256 * 16, 1, 6);
    let b2 = pattern(16, 5, 25);

    let layout1 = FcLayout {
        layer: hidden,
        input_base: 0,
        weights_base: 0x10000,
        bias_base: 0x40000,
        output_base: 0x50000,
        relu: true,
    };
    let layout2 = FcLayout {
        layer: output,
        input_base: layout1.output_base, // chained through DRAM
        weights_base: 0x60000,
        bias_base: 0x70000,
        output_base: 0x80000,
        relu: false,
    };

    let sched = FcSchedule::default();
    let mut sys = System::new(SystemConfig::small_test());
    layout1.load_into(sys.hmc_mut(), &input, &w1, &b1);
    // Stage layer 2's parameters up front; its input arrives via
    // layer 1's stores.
    layout2.load_into(sys.hmc_mut(), &[], &w2, &b2);

    run_on(
        &mut sys,
        &mlp::fc_tile_programs(&layout1, &sched),
        30_000_000,
    );
    run_on(
        &mut sys,
        &mlp::fc_tile_programs(&layout2, &sched),
        40_000_000,
    );

    let hidden_golden = mlp::fc_forward(&hidden, &input, &w1, &b1, true);
    let out_golden = mlp::fc_forward(&output, &hidden_golden, &w2, &b2, false);

    let hidden_sim = bytes_to_i16s(&sys.hmc().host_read(layout1.output_base, 256 * 2));
    assert_eq!(hidden_sim, hidden_golden, "hidden layer");
    let out_sim = bytes_to_i16s(&sys.hmc().host_read(layout2.output_base, 16 * 2));
    assert_eq!(out_sim, out_golden, "output layer");
    assert!(
        hidden_golden.contains(&0) && hidden_golden.iter().any(|&v| v > 0),
        "ReLU boundary actually exercised"
    );
}

//! Execution-driven verification of the generated BP-M programs against
//! the golden reference (the paper's §V-A methodology: "We verify that
//! the simulated code is correct by comparing its outputs against a
//! reference C++ implementation").

use vip_core::{System, SystemConfig};
use vip_kernels::bp::{
    self, bp_iteration_programs, labels, strip_program, BpLayout, Messages, Mrf, MrfParams,
    StripParams, Sweep, VectorMachineStyle,
};
use vip_kernels::schedule::BpSchedule;

fn stereo_mrf(w: usize, h: usize, l: usize, seed: u64) -> Mrf {
    let costs = bp::stereo_data_costs(w, h, l, seed);
    Mrf::new(MrfParams::truncated_linear(w, h, l, 2, 12), costs)
}

fn single_strip_system(mrf: &Mrf, msgs: &Messages, strip: &StripParams) -> System {
    let mut sys = System::new(SystemConfig::small_test());
    strip.layout.load_into(sys.hmc_mut(), mrf, msgs);
    sys.load_program(0, &strip_program(strip));
    sys
}

#[test]
fn down_sweep_matches_golden_bit_for_bit() {
    let (w, h, l) = (32, 16, 16);
    let mrf = stereo_mrf(w, h, l, 11);
    let layout = BpLayout::new(0, w, h, l);
    let init = Messages::new_unnormalized(&mrf.params);

    let strip = StripParams {
        layout,
        sweep: Sweep::Down,
        ortho_range: (0, w),
        normalize: false,
        style: VectorMachineStyle::SpReduce,
        group_bufs: 2,
    };
    let mut sys = single_strip_system(&mrf, &init, &strip);
    sys.run(2_000_000).expect("strip completes");

    let mut expect = init.clone();
    bp::sweep(&mrf, &mut expect, Sweep::Down);

    let got = layout.read_messages(sys.hmc(), false);
    assert_eq!(got.from_above, expect.from_above, "down sweep output");
    assert_eq!(got.from_below, expect.from_below, "untouched plane");
}

#[test]
fn all_four_sweeps_match_golden() {
    let (w, h, l) = (16, 16, 16);
    let mrf = stereo_mrf(w, h, l, 5);
    let layout = BpLayout::new(0, w, h, l);

    // Seed with one golden iteration so every plane is non-trivial.
    let mut state = Messages::new(&mrf.params);
    bp::iteration(&mrf, &mut state);

    for sweep in [Sweep::Down, Sweep::Up, Sweep::Right, Sweep::Left] {
        let strip = StripParams {
            layout,
            sweep,
            ortho_range: (0, 16),
            normalize: true,
            style: VectorMachineStyle::SpReduce,
            group_bufs: 2,
        };
        let mut sys = single_strip_system(&mrf, &state, &strip);
        sys.run(4_000_000)
            .unwrap_or_else(|e| panic!("{sweep:?}: {e}"));

        let mut expect = state.clone();
        bp::sweep(&mrf, &mut expect, sweep);
        let got = layout.read_messages(sys.hmc(), true);
        assert_eq!(got.from_above, expect.from_above, "{sweep:?}");
        assert_eq!(got.from_below, expect.from_below, "{sweep:?}");
        assert_eq!(got.from_left, expect.from_left, "{sweep:?}");
        assert_eq!(got.from_right, expect.from_right, "{sweep:?}");
    }
}

#[test]
fn four_pe_iterations_match_golden_labels() {
    let (w, h, l) = (32, 32, 16);
    let iters = 2;
    let mrf = stereo_mrf(w, h, l, 23);
    let layout = BpLayout::new(0, w, h, l);
    let init = Messages::new(&mrf.params);

    let mut sys = System::new(SystemConfig::small_test());
    layout.load_into(sys.hmc_mut(), &mrf, &init);
    for (pe, prog) in bp_iteration_programs(&layout, &BpSchedule::default(), iters, true)
        .iter()
        .enumerate()
    {
        sys.load_program(pe, prog);
    }
    sys.run(30_000_000).expect("4-PE BP-M completes");

    let mut expect = init;
    for _ in 0..iters {
        bp::iteration(&mrf, &mut expect);
    }
    let got = layout.read_messages(sys.hmc(), true);
    assert_eq!(got.from_above, expect.from_above);
    assert_eq!(got.from_below, expect.from_below);
    assert_eq!(got.from_left, expect.from_left);
    assert_eq!(got.from_right, expect.from_right);
    assert_eq!(labels(&mrf, &got), labels(&mrf, &expect), "disparity map");
}

#[test]
fn figure4_styles_all_compute_the_same_messages() {
    let (w, h, l) = (16, 8, 16);
    let mrf = stereo_mrf(w, h, l, 31);
    let layout = BpLayout::new(0, w, h, l);
    let init = Messages::new_unnormalized(&mrf.params);

    let mut expect = init.clone();
    bp::sweep(&mrf, &mut expect, Sweep::Down);

    let mut cycles = Vec::new();
    for style in VectorMachineStyle::all() {
        let strip = StripParams {
            layout,
            sweep: Sweep::Down,
            ortho_range: (0, w),
            normalize: false,
            style,
            group_bufs: 2,
        };
        let mut sys = single_strip_system(&mrf, &init, &strip);
        let t = sys
            .run(8_000_000)
            .unwrap_or_else(|e| panic!("{}: {e}", style.label()));
        let got = layout.read_messages(sys.hmc(), false);
        assert_eq!(got.from_above, expect.from_above, "{}", style.label());
        cycles.push((style, t));
    }

    // Figure 4's ordering: the reduction unit and the scratchpad each
    // help; SP+R is fastest and RF-R slowest.
    let t = |s: VectorMachineStyle| cycles.iter().find(|(st, _)| *st == s).expect("present").1;
    assert!(
        t(VectorMachineStyle::SpReduce) < t(VectorMachineStyle::SpNoReduce),
        "reduction unit speeds up SP: {:?}",
        cycles
    );
    assert!(
        t(VectorMachineStyle::RfReduce) < t(VectorMachineStyle::RfNoReduce),
        "reduction unit speeds up RF: {:?}",
        cycles
    );
    assert!(
        t(VectorMachineStyle::SpReduce) < t(VectorMachineStyle::RfReduce),
        "scratchpad beats register file: {:?}",
        cycles
    );
}

#[test]
fn construct_phase_matches_golden() {
    let (w, h, l) = (32, 16, 16);
    let mrf = stereo_mrf(w, h, l, 13);
    let fine = BpLayout::new(0, w, h, l);
    let coarse_layout = BpLayout::new(1 << 22, w / 2, h / 2, l);

    let mut sys = System::new(SystemConfig::small_test());
    fine.load_into(sys.hmc_mut(), &mrf, &Messages::new(&mrf.params));
    for (pe, p) in bp::construct_programs(&fine, &coarse_layout, 4)
        .iter()
        .enumerate()
    {
        sys.load_program(pe, p);
    }
    sys.run(10_000_000).expect("construct completes");

    let expect = bp::coarse_mrf(&mrf);
    // Read the coarse theta plane back (plane 0 of the coarse layout)
    // row by row via a throwaway Messages read: theta is not a message
    // plane, so read it directly.
    let mut got = Vec::new();
    for y in 0..(h / 2) as u64 {
        got.extend(vip_kernels::sync::bytes_to_i16s(&sys.hmc().host_read(
            coarse_layout.base + y * coarse_layout.row_stride(),
            (w / 2) * l * 2,
        )));
    }
    assert_eq!(got, expect.data_costs, "coarse data costs");
}

#[test]
fn copy_phase_matches_golden() {
    let (w, h, l) = (32, 16, 16);
    let mrf = stereo_mrf(w, h, l, 17);
    let coarse_mrf = bp::coarse_mrf(&mrf);
    // Converge some coarse messages first (golden).
    let mut cmsgs = Messages::new(&coarse_mrf.params);
    bp::iteration(&coarse_mrf, &mut cmsgs);

    let fine = BpLayout::new(0, w, h, l);
    let coarse_layout = BpLayout::new(1 << 22, w / 2, h / 2, l);
    let mut sys = System::new(SystemConfig::small_test());
    fine.load_into(sys.hmc_mut(), &mrf, &Messages::new(&mrf.params));
    coarse_layout.load_into(sys.hmc_mut(), &coarse_mrf, &cmsgs);
    for (pe, p) in bp::copy_messages_programs(&coarse_layout, &fine, 4)
        .iter()
        .enumerate()
    {
        sys.load_program(pe, p);
    }
    sys.run(20_000_000).expect("copy completes");

    let expect = bp::refine_messages(&coarse_mrf.params, &cmsgs, &mrf.params);
    let got = fine.read_messages(sys.hmc(), true);
    assert_eq!(got.from_above, expect.from_above);
    assert_eq!(got.from_below, expect.from_below);
    assert_eq!(got.from_left, expect.from_left);
    assert_eq!(got.from_right, expect.from_right);
}

//! # vip-kernels — the paper's workloads on VIP
//!
//! Implements the three workload families the VIP paper evaluates (§II,
//! §IV), each in three forms:
//!
//! 1. a **golden reference** in plain Rust using the exact saturating
//!    16-bit fixed-point semantics of the VIP datapath
//!    ([`vip_isa::alu`]), against which simulated outputs are verified
//!    bit-for-bit;
//! 2. a **VIP code generator** emitting real VIP assembly — tiled,
//!    software-pipelined, and synchronized with full-empty variables the
//!    way §IV describes;
//! 3. an **analytical model** of operations and bytes per kernel, used
//!    for roofline placement (Figure 3) and for the paper's own
//!    independent-tile extrapolation methodology (§V-A).
//!
//! Modules:
//!
//! * [`bp`] — min-sum belief propagation (BP-M) on 2D grid Markov random
//!   fields: depth-from-stereo data costs, directional message sweeps,
//!   the hierarchical variant, and per-strip/per-tile VIP programs;
//! * [`cnn`] — convolution / ReLU / max-pool layers with the VGG-16 and
//!   VGG-19 geometries, plus the scratchpad-tiled VIP convolution
//!   template of §IV-B;
//! * [`mlp`] — fully-connected layers (tiled GEMV) per §IV-C;
//! * [`sync`] — the full-empty barrier and producer-consumer flag
//!   snippets shared by the generated programs.

pub mod bp;
pub mod cnn;
pub mod mlp;
pub mod schedule;
pub mod schedule_store;
pub mod sync;

/// Fixed-point element type used by every evaluated workload ("16-bit
/// dynamic fixed point", §IV).
pub const ELEM: vip_isa::ElemType = vip_isa::ElemType::I16;

/// Bytes per element.
pub const ELEM_BYTES: usize = 2;

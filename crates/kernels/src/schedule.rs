//! Typed, serializable codegen schedules — the autotuning search space.
//!
//! Every hand-picked knob in the kernel code generators (the FC tile's
//! column-chunk width and row-chunk blocking, the convolution's
//! filter-group size and prefetch ring, BP's machine style and
//! bank-aware row padding, and each kernel's PE split) is captured by a
//! per-kernel `*Schedule` struct. A schedule is:
//!
//! * **validated** against the kernel's shape before any code is
//!   generated ([`FcSchedule::validate`] and friends check scratchpad
//!   capacity, divisibility, and PE-split rules, so an invalid search
//!   point is rejected up front instead of panicking mid-codegen);
//! * **serializable** as a small flat JSON object ([`Schedule::to_json`]
//!   / [`Schedule::from_json`]), the on-disk artifact format the
//!   autotuner emits under `schedules/` and the bench harness loads by
//!   configuration fingerprint;
//! * **stably encodable** as a one-line key ([`Schedule::encoding`])
//!   that names search points and feeds the crash-tolerant runner's
//!   point hash.
//!
//! [`SearchSpace`] is the matching per-knob candidate grid; its
//! [`enumerate`](SearchSpace::enumerate) produces every *valid*
//! cartesian combination for a concrete kernel shape, in a stable
//! order, so a seeded search is deterministic.

use std::fmt;

use crate::bp::VectorMachineStyle;
use crate::cnn::ConvLayer;
use crate::cnn::FcLayer;

/// PE scratchpad capacity in bytes — the hard wall every schedule's
/// working set is validated against.
pub const SCRATCHPAD_BYTES: usize = 4096;

/// Why a schedule (or its JSON form) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The JSON text failed to parse at a byte offset.
    Json {
        /// Byte offset of the error.
        at: usize,
        /// What the parser expected or saw.
        what: String,
    },
    /// A required field is absent.
    MissingField(&'static str),
    /// A field is present but malformed (wrong type, unknown label).
    BadField {
        /// The field.
        field: &'static str,
        /// What was wrong.
        why: String,
    },
    /// The `kernel` discriminant names no known kernel family.
    UnknownKernel(String),
    /// The schedule parsed but fails a validity check for the kernel
    /// shape (scratchpad overflow, divisibility, PE split).
    Invalid(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Json { at, what } => write!(f, "json error at byte {at}: {what}"),
            ScheduleError::MissingField(field) => write!(f, "missing field `{field}`"),
            ScheduleError::BadField { field, why } => write!(f, "bad field `{field}`: {why}"),
            ScheduleError::UnknownKernel(k) => write!(f, "unknown kernel `{k}`"),
            ScheduleError::Invalid(why) => write!(f, "invalid schedule: {why}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

fn invalid(why: impl Into<String>) -> ScheduleError {
    ScheduleError::Invalid(why.into())
}

// ---------------------------------------------------------------------
// FC (MLP)
// ---------------------------------------------------------------------

/// Codegen schedule for the fully-connected (tiled GEMV) kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FcSchedule {
    /// Input columns per streamed weight chunk (the historical
    /// hand-picked value is 256).
    pub kc: usize,
    /// Output rows per `m.v` matrix (`set.mr`); also the weight-pack
    /// row-chunk height.
    pub mr: usize,
    /// Row chunks accumulated per input-segment load. At 1 (the
    /// historical behaviour) the input vector is re-streamed from DRAM
    /// for every row chunk; larger blocks keep several accumulators
    /// resident and reuse each loaded input segment across them.
    pub rc_block: usize,
    /// PEs the tile's row chunks are split across.
    pub pes: usize,
}

impl Default for FcSchedule {
    /// The hand-picked pre-autotuner defaults.
    fn default() -> Self {
        FcSchedule {
            kc: crate::mlp::KC,
            mr: crate::mlp::MR,
            rc_block: 1,
            pes: 4,
        }
    }
}

impl FcSchedule {
    /// Scratchpad bytes the generated code needs: one weight chunk, one
    /// input segment, `rc_block` accumulators, one partial.
    #[must_use]
    pub fn scratchpad_bytes(&self) -> usize {
        self.mr * self.kc * 2 + self.kc * 2 + self.rc_block * self.mr * 2 + self.mr * 2
    }

    /// Checks the schedule against a concrete layer shape.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Invalid`] on scratchpad overflow or any
    /// divisibility violation.
    pub fn validate(&self, layer: &FcLayer) -> Result<(), ScheduleError> {
        if self.kc == 0 || self.mr == 0 || self.rc_block == 0 || self.pes == 0 {
            return Err(invalid("fc schedule knobs must be non-zero"));
        }
        if !layer.inputs.is_multiple_of(self.kc) {
            return Err(invalid(format!(
                "kc {} does not divide {} inputs",
                self.kc, layer.inputs
            )));
        }
        if !layer.outputs.is_multiple_of(self.mr) {
            return Err(invalid(format!(
                "mr {} does not divide {} outputs",
                self.mr, layer.outputs
            )));
        }
        let row_chunks = layer.outputs / self.mr;
        if !row_chunks.is_multiple_of(self.pes) {
            return Err(invalid(format!(
                "{row_chunks} row chunks do not split across {} PEs",
                self.pes
            )));
        }
        if !(row_chunks / self.pes).is_multiple_of(self.rc_block) {
            return Err(invalid(format!(
                "rc_block {} does not divide {} row chunks per PE",
                self.rc_block,
                row_chunks / self.pes
            )));
        }
        let need = self.scratchpad_bytes();
        if need > SCRATCHPAD_BYTES {
            return Err(invalid(format!(
                "working set {need} B overflows the {SCRATCHPAD_BYTES} B scratchpad"
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Conv (CNN)
// ---------------------------------------------------------------------

/// Codegen schedule for the convolution tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvSchedule {
    /// Filters resident in the scratchpad per pass (must match the
    /// packed-weight layout the host stages).
    pub filters_per_group: usize,
    /// Input-column ring slots (and the x-loop unroll). The minimum,
    /// `kernel + 1`, is the historical value; deeper rings prefetch
    /// further ahead of the compute.
    pub ring: usize,
    /// Whether each PE takes every `pes`-th output row instead of a
    /// contiguous block — spreads concurrent row traffic across DRAM
    /// banks.
    pub interleave_rows: bool,
    /// PEs the tile's output rows are split across.
    pub pes: usize,
}

impl ConvSchedule {
    /// The hand-picked defaults for a layer: the given filter-group
    /// size, the minimal `k + 1` ring, blocked rows, 4 PEs.
    #[must_use]
    pub fn default_for(layer: &ConvLayer, filters_per_group: usize) -> Self {
        ConvSchedule {
            filters_per_group,
            ring: layer.kernel + 1,
            interleave_rows: false,
            pes: 4,
        }
    }

    /// Scratchpad bytes: packed filter group + biases + the column ring
    /// + three per-column partial vectors.
    #[must_use]
    pub fn scratchpad_bytes(&self, layer: &ConvLayer) -> usize {
        let (k, ci) = (layer.kernel, layer.in_channels);
        let f = self.filters_per_group;
        f * k * k * ci * 2 + f * 2 + self.ring * k * ci * 2 + 3 * f * 2
    }

    /// Checks the schedule against a concrete layer shape.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Invalid`] on scratchpad overflow or any
    /// divisibility violation.
    pub fn validate(&self, layer: &ConvLayer) -> Result<(), ScheduleError> {
        if self.filters_per_group == 0 || self.ring == 0 || self.pes == 0 {
            return Err(invalid("conv schedule knobs must be non-zero"));
        }
        if !layer.out_channels.is_multiple_of(self.filters_per_group) {
            return Err(invalid(format!(
                "filter group {} does not divide {} output channels",
                self.filters_per_group, layer.out_channels
            )));
        }
        if self.ring < layer.kernel + 1 {
            return Err(invalid(format!(
                "ring {} cannot hold a {}-wide window plus prefetch",
                self.ring, layer.kernel
            )));
        }
        if !layer.width.is_multiple_of(self.ring) {
            return Err(invalid(format!(
                "ring {} does not divide tile width {}",
                self.ring, layer.width
            )));
        }
        if !layer.height.is_multiple_of(self.pes) {
            return Err(invalid(format!(
                "{} rows do not split across {} PEs",
                layer.height, self.pes
            )));
        }
        let need = self.scratchpad_bytes(layer);
        if need > SCRATCHPAD_BYTES {
            return Err(invalid(format!(
                "working set {need} B overflows the {SCRATCHPAD_BYTES} B scratchpad"
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// BP
// ---------------------------------------------------------------------

/// Codegen/layout schedule for the BP-M iteration tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BpSchedule {
    /// Vector-machine style (Figure 4); `SpReduce` is VIP proper.
    pub style: VectorMachineStyle,
    /// Bank-stagger padding appended to each image row and plane of the
    /// message arrays; 0 is the densely packed (ablation) placement and
    /// 256 — one DRAM row — the historical hand-pick value.
    pub row_pad: usize,
    /// PEs each sweep's orthogonal axis is split across.
    pub pes: usize,
    /// Rotating scratchpad group buffers per strip. 2 is the historical
    /// hand-written ping-pong, which drains its prefetch pipeline at
    /// every sequential step (row/column) of a strip; 3+ switches the
    /// generator to a flat software pipeline that prefetches across
    /// step boundaries with this many rotating buffers, hiding the DMA
    /// latency the ping-pong re-exposes `seq_count` times per strip.
    pub group_bufs: usize,
}

impl Default for BpSchedule {
    /// The hand-picked pre-autotuner defaults.
    fn default() -> Self {
        BpSchedule {
            style: VectorMachineStyle::SpReduce,
            row_pad: 256,
            pes: 4,
            group_bufs: 2,
        }
    }
}

impl BpSchedule {
    /// Checks the schedule against a tile's grid shape.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::Invalid`] if the per-PE strip widths
    /// violate the generator's alignment rules or the label count
    /// overflows the scratchpad map.
    pub fn validate(
        &self,
        width: usize,
        height: usize,
        labels: usize,
    ) -> Result<(), ScheduleError> {
        if self.pes == 0 {
            return Err(invalid("bp schedule needs at least one PE"));
        }
        if !self.row_pad.is_multiple_of(32) {
            return Err(invalid(format!(
                "row pad {} is not 32-byte column aligned",
                self.row_pad
            )));
        }
        for (axis, n) in [("width", width), ("height", height)] {
            if !n.is_multiple_of(self.pes) || !(n / self.pes).is_multiple_of(8) {
                return Err(invalid(format!(
                    "{axis} {n} does not split into 8-aligned strips across {} PEs",
                    self.pes
                )));
            }
        }
        if self.group_bufs < 2 {
            return Err(invalid("bp pipeline needs at least two group buffers"));
        }
        // A buffer deeper than every strip's group count can never be
        // filled (and prefetching that far ahead would overrun the
        // along-plane stores feeding the next sequential step).
        let deepest = (width / self.pes / 4).max(height / self.pes / 4);
        if self.group_bufs > deepest {
            return Err(invalid(format!(
                "{} group buffers exceed the deepest strip's {deepest} groups",
                self.group_bufs
            )));
        }
        // Mirror of the strip generator's SpMap budget.
        let lb = labels * 2;
        let need = labels * labels * 2 + (7 + 16 * self.group_bufs) * lb;
        if need > SCRATCHPAD_BYTES {
            return Err(invalid(format!(
                "{labels} labels with {} group buffers need {need} B of scratchpad, \
                 over {SCRATCHPAD_BYTES}",
                self.group_bufs
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The tagged union + JSON
// ---------------------------------------------------------------------

/// Any kernel family's schedule, as stored in a `schedules/*.json`
/// artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Fully-connected (MLP) tile.
    Fc(FcSchedule),
    /// Convolution (CNN) tile.
    Conv(ConvSchedule),
    /// BP-M iteration tile.
    Bp(BpSchedule),
}

impl Schedule {
    /// The kernel-family discriminant used in file names and JSON.
    #[must_use]
    pub fn kernel(&self) -> &'static str {
        match self {
            Schedule::Fc(_) => "fc",
            Schedule::Conv(_) => "conv",
            Schedule::Bp(_) => "bp",
        }
    }

    /// A stable, compact one-line key naming this exact schedule —
    /// search-point names and the runner's point hash are built from
    /// it.
    #[must_use]
    pub fn encoding(&self) -> String {
        match self {
            Schedule::Fc(s) => format!("fc:kc{}:mr{}:rb{}:pe{}", s.kc, s.mr, s.rc_block, s.pes),
            Schedule::Conv(s) => format!(
                "conv:fg{}:ring{}:{}:pe{}",
                s.filters_per_group,
                s.ring,
                if s.interleave_rows { "ilv" } else { "blk" },
                s.pes
            ),
            Schedule::Bp(s) => format!(
                "bp:{}:pad{}:pe{}:gb{}",
                s.style.label(),
                s.row_pad,
                s.pes,
                s.group_bufs
            ),
        }
    }

    /// Serializes to the flat one-object JSON artifact format
    /// (deterministic field order; byte-stable for equal schedules).
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            Schedule::Fc(s) => format!(
                "{{\"kernel\": \"fc\", \"kc\": {}, \"mr\": {}, \"rc_block\": {}, \"pes\": {}}}\n",
                s.kc, s.mr, s.rc_block, s.pes
            ),
            Schedule::Conv(s) => format!(
                "{{\"kernel\": \"conv\", \"filters_per_group\": {}, \"ring\": {}, \
                 \"interleave_rows\": {}, \"pes\": {}}}\n",
                s.filters_per_group, s.ring, s.interleave_rows, s.pes
            ),
            Schedule::Bp(s) => format!(
                "{{\"kernel\": \"bp\", \"style\": \"{}\", \"row_pad\": {}, \"pes\": {}, \
                 \"group_bufs\": {}}}\n",
                s.style.label(),
                s.row_pad,
                s.pes,
                s.group_bufs
            ),
        }
    }

    /// Parses the artifact format written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] for malformed JSON, missing or
    /// mistyped fields, or an unknown kernel discriminant. Shape
    /// validity is *not* checked here — call the kernel's `validate`
    /// against the concrete shape before generating code.
    pub fn from_json(text: &str) -> Result<Schedule, ScheduleError> {
        let obj = json::parse_object(text)?;
        let kernel = obj.str_field("kernel")?;
        match kernel {
            "fc" => Ok(Schedule::Fc(FcSchedule {
                kc: obj.usize_field("kc")?,
                mr: obj.usize_field("mr")?,
                rc_block: obj.usize_field("rc_block")?,
                pes: obj.usize_field("pes")?,
            })),
            "conv" => Ok(Schedule::Conv(ConvSchedule {
                filters_per_group: obj.usize_field("filters_per_group")?,
                ring: obj.usize_field("ring")?,
                interleave_rows: obj.bool_field("interleave_rows")?,
                pes: obj.usize_field("pes")?,
            })),
            "bp" => {
                let label = obj.str_field("style")?;
                let style = VectorMachineStyle::from_label(label).ok_or_else(|| {
                    ScheduleError::BadField {
                        field: "style",
                        why: format!("unknown machine style `{label}`"),
                    }
                })?;
                Ok(Schedule::Bp(BpSchedule {
                    style,
                    row_pad: obj.usize_field("row_pad")?,
                    pes: obj.usize_field("pes")?,
                    group_bufs: obj.usize_field("group_bufs")?,
                }))
            }
            other => Err(ScheduleError::UnknownKernel(other.to_owned())),
        }
    }
}

// ---------------------------------------------------------------------
// Search spaces
// ---------------------------------------------------------------------

/// Candidate values per FC knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FcSearchSpace {
    /// Candidate column-chunk widths.
    pub kc: Vec<usize>,
    /// Candidate `m.v` row counts.
    pub mr: Vec<usize>,
    /// Candidate row-chunk block sizes.
    pub rc_block: Vec<usize>,
    /// Candidate PE splits.
    pub pes: Vec<usize>,
}

impl FcSearchSpace {
    /// The stock grid around the hand-picked defaults.
    #[must_use]
    pub fn stock() -> Self {
        FcSearchSpace {
            kc: vec![64, 128, 256, 512],
            mr: vec![2, 4, 8, 16],
            rc_block: vec![1, 2, 4, 8],
            pes: vec![2, 4],
        }
    }
}

/// Candidate values per convolution knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvSearchSpace {
    /// Candidate filter-group sizes.
    pub filters_per_group: Vec<usize>,
    /// Candidate ring depths.
    pub ring: Vec<usize>,
    /// Candidate row-assignment policies.
    pub interleave_rows: Vec<bool>,
    /// Candidate PE splits.
    pub pes: Vec<usize>,
}

impl ConvSearchSpace {
    /// The stock grid around the hand-picked defaults.
    #[must_use]
    pub fn stock() -> Self {
        ConvSearchSpace {
            filters_per_group: vec![1, 2, 4, 8],
            ring: vec![4, 8, 16],
            interleave_rows: vec![false, true],
            pes: vec![2, 4],
        }
    }
}

/// Candidate values per BP knob.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpSearchSpace {
    /// Candidate machine styles.
    pub style: Vec<VectorMachineStyle>,
    /// Candidate bank-stagger pads.
    pub row_pad: Vec<usize>,
    /// Candidate PE splits.
    pub pes: Vec<usize>,
    /// Candidate group-buffer depths.
    pub group_bufs: Vec<usize>,
}

impl BpSearchSpace {
    /// The stock grid around the hand-picked defaults.
    ///
    /// Only the scratchpad+reduction style is searched: the divide-and-
    /// conquer emulation the no-reduction styles need quadruples the
    /// code size, and a full iteration program then overflows the
    /// 1,024-entry instruction buffer (see the ablation study) — those
    /// styles exist for the Figure 4 strip kernels, not for tile search.
    #[must_use]
    pub fn stock() -> Self {
        BpSearchSpace {
            style: vec![VectorMachineStyle::SpReduce],
            row_pad: vec![0, 64, 128, 256, 512],
            pes: vec![2, 4],
            group_bufs: vec![2, 3, 4],
        }
    }
}

/// A kernel family's search space: per-knob candidate lists whose valid
/// cartesian combinations the autotuner enumerates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchSpace {
    /// FC grid.
    Fc(FcSearchSpace),
    /// Convolution grid.
    Conv(ConvSearchSpace),
    /// BP grid.
    Bp(BpSearchSpace),
}

/// The concrete kernel shape a search space is enumerated against.
#[derive(Debug, Clone, Copy)]
pub enum KernelShape {
    /// FC layer geometry.
    Fc(FcLayer),
    /// Convolution layer geometry.
    Conv(ConvLayer),
    /// BP grid geometry `(width, height, labels)`.
    Bp(usize, usize, usize),
}

impl SearchSpace {
    /// Serializes the grid as a flat JSON object with array fields
    /// (same shape as the schedule artifact, lists instead of
    /// scalars).
    #[must_use]
    pub fn to_json(&self) -> String {
        fn nums(v: &[usize]) -> String {
            let items: Vec<String> = v.iter().map(ToString::to_string).collect();
            format!("[{}]", items.join(", "))
        }
        match self {
            SearchSpace::Fc(s) => format!(
                "{{\"kernel\": \"fc\", \"kc\": {}, \"mr\": {}, \"rc_block\": {}, \"pes\": {}}}\n",
                nums(&s.kc),
                nums(&s.mr),
                nums(&s.rc_block),
                nums(&s.pes)
            ),
            SearchSpace::Conv(s) => {
                let flags: Vec<&str> = s
                    .interleave_rows
                    .iter()
                    .map(|b| if *b { "true" } else { "false" })
                    .collect();
                format!(
                    "{{\"kernel\": \"conv\", \"filters_per_group\": {}, \"ring\": {}, \
                     \"interleave_rows\": [{}], \"pes\": {}}}\n",
                    nums(&s.filters_per_group),
                    nums(&s.ring),
                    flags.join(", "),
                    nums(&s.pes)
                )
            }
            SearchSpace::Bp(s) => {
                let styles: Vec<String> = s
                    .style
                    .iter()
                    .map(|st| format!("\"{}\"", st.label()))
                    .collect();
                format!(
                    "{{\"kernel\": \"bp\", \"style\": [{}], \"row_pad\": {}, \"pes\": {}, \
                     \"group_bufs\": {}}}\n",
                    styles.join(", "),
                    nums(&s.row_pad),
                    nums(&s.pes),
                    nums(&s.group_bufs)
                )
            }
        }
    }

    /// Parses the grid format written by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a [`ScheduleError`] for malformed JSON, missing or
    /// mistyped fields, or an unknown kernel discriminant.
    pub fn from_json(text: &str) -> Result<SearchSpace, ScheduleError> {
        let obj = json::parse_object(text)?;
        match obj.str_field("kernel")? {
            "fc" => Ok(SearchSpace::Fc(FcSearchSpace {
                kc: obj.usize_list_field("kc")?,
                mr: obj.usize_list_field("mr")?,
                rc_block: obj.usize_list_field("rc_block")?,
                pes: obj.usize_list_field("pes")?,
            })),
            "conv" => Ok(SearchSpace::Conv(ConvSearchSpace {
                filters_per_group: obj.usize_list_field("filters_per_group")?,
                ring: obj.usize_list_field("ring")?,
                interleave_rows: obj.bool_list_field("interleave_rows")?,
                pes: obj.usize_list_field("pes")?,
            })),
            "bp" => {
                let mut styles = Vec::new();
                for label in obj.str_list_field("style")? {
                    styles.push(VectorMachineStyle::from_label(&label).ok_or_else(|| {
                        ScheduleError::BadField {
                            field: "style",
                            why: format!("unknown machine style `{label}`"),
                        }
                    })?);
                }
                Ok(SearchSpace::Bp(BpSearchSpace {
                    style: styles,
                    row_pad: obj.usize_list_field("row_pad")?,
                    pes: obj.usize_list_field("pes")?,
                    group_bufs: obj.usize_list_field("group_bufs")?,
                }))
            }
            other => Err(ScheduleError::UnknownKernel(other.to_owned())),
        }
    }

    /// Every valid combination for `shape`, in stable (row-major over
    /// the knob lists) order. Invalid combinations are silently
    /// filtered — an empty result means the grid and shape are
    /// incompatible.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is a different kernel family than the grid.
    #[must_use]
    pub fn enumerate(&self, shape: &KernelShape) -> Vec<Schedule> {
        let mut out = Vec::new();
        match (self, shape) {
            (SearchSpace::Fc(s), KernelShape::Fc(layer)) => {
                for &kc in &s.kc {
                    for &mr in &s.mr {
                        for &rc_block in &s.rc_block {
                            for &pes in &s.pes {
                                let cand = FcSchedule {
                                    kc,
                                    mr,
                                    rc_block,
                                    pes,
                                };
                                if cand.validate(layer).is_ok() {
                                    out.push(Schedule::Fc(cand));
                                }
                            }
                        }
                    }
                }
            }
            (SearchSpace::Conv(s), KernelShape::Conv(layer)) => {
                for &filters_per_group in &s.filters_per_group {
                    for &ring in &s.ring {
                        for &interleave_rows in &s.interleave_rows {
                            for &pes in &s.pes {
                                let cand = ConvSchedule {
                                    filters_per_group,
                                    ring,
                                    interleave_rows,
                                    pes,
                                };
                                if cand.validate(layer).is_ok() {
                                    out.push(Schedule::Conv(cand));
                                }
                            }
                        }
                    }
                }
            }
            (SearchSpace::Bp(s), KernelShape::Bp(w, h, l)) => {
                for &style in &s.style {
                    for &row_pad in &s.row_pad {
                        for &pes in &s.pes {
                            for &group_bufs in &s.group_bufs {
                                let cand = BpSchedule {
                                    style,
                                    row_pad,
                                    pes,
                                    group_bufs,
                                };
                                if cand.validate(*w, *h, *l).is_ok() {
                                    out.push(Schedule::Bp(cand));
                                }
                            }
                        }
                    }
                }
            }
            _ => panic!("search space and kernel shape are different families"),
        }
        out
    }
}

// ---------------------------------------------------------------------
// Minimal flat-object JSON
// ---------------------------------------------------------------------

/// A tiny parser for the flat one-level JSON objects the schedule
/// artifacts use: string keys mapping to strings, integers, booleans,
/// or homogeneous arrays thereof. No nesting, no floats, no escapes
/// beyond `\"` and `\\` — deliberately only what the artifact format
/// emits, so the whole round trip stays dependency-free.
mod json {
    use super::ScheduleError;

    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Str(String),
        Num(i64),
        Bool(bool),
        List(Vec<Value>),
    }

    #[derive(Debug, Clone)]
    pub struct Object {
        fields: Vec<(String, Value)>,
    }

    impl Object {
        fn get(&self, field: &'static str) -> Result<&Value, ScheduleError> {
            self.fields
                .iter()
                .find(|(k, _)| k == field)
                .map(|(_, v)| v)
                .ok_or(ScheduleError::MissingField(field))
        }

        pub fn str_field(&self, field: &'static str) -> Result<&str, ScheduleError> {
            match self.get(field)? {
                Value::Str(s) => Ok(s),
                other => Err(bad(field, "expected a string", other)),
            }
        }

        pub fn usize_field(&self, field: &'static str) -> Result<usize, ScheduleError> {
            match self.get(field)? {
                Value::Num(n) if *n >= 0 => Ok(*n as usize),
                other => Err(bad(field, "expected a non-negative integer", other)),
            }
        }

        pub fn bool_field(&self, field: &'static str) -> Result<bool, ScheduleError> {
            match self.get(field)? {
                Value::Bool(b) => Ok(*b),
                other => Err(bad(field, "expected a boolean", other)),
            }
        }

        fn list_field(&self, field: &'static str) -> Result<&[Value], ScheduleError> {
            match self.get(field)? {
                Value::List(items) => Ok(items),
                other => Err(bad(field, "expected an array", other)),
            }
        }

        pub fn usize_list_field(&self, field: &'static str) -> Result<Vec<usize>, ScheduleError> {
            self.list_field(field)?
                .iter()
                .map(|v| match v {
                    Value::Num(n) if *n >= 0 => Ok(*n as usize),
                    other => Err(bad(field, "expected non-negative integers", other)),
                })
                .collect()
        }

        pub fn bool_list_field(&self, field: &'static str) -> Result<Vec<bool>, ScheduleError> {
            self.list_field(field)?
                .iter()
                .map(|v| match v {
                    Value::Bool(b) => Ok(*b),
                    other => Err(bad(field, "expected booleans", other)),
                })
                .collect()
        }

        pub fn str_list_field(&self, field: &'static str) -> Result<Vec<String>, ScheduleError> {
            self.list_field(field)?
                .iter()
                .map(|v| match v {
                    Value::Str(s) => Ok(s.clone()),
                    other => Err(bad(field, "expected strings", other)),
                })
                .collect()
        }
    }

    fn bad(field: &'static str, expected: &str, got: &Value) -> ScheduleError {
        ScheduleError::BadField {
            field,
            why: format!("{expected}, got {got:?}"),
        }
    }

    struct Cursor<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Cursor<'a> {
        fn err(&self, what: impl Into<String>) -> ScheduleError {
            ScheduleError::Json {
                at: self.pos,
                what: what.into(),
            }
        }

        fn skip_ws(&mut self) {
            while self
                .bytes
                .get(self.pos)
                .is_some_and(|b| b.is_ascii_whitespace())
            {
                self.pos += 1;
            }
        }

        fn peek(&mut self) -> Option<u8> {
            self.skip_ws();
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), ScheduleError> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(self.err(format!("expected `{}`", b as char)))
            }
        }

        fn string(&mut self) -> Result<String, ScheduleError> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bytes.get(self.pos).copied() {
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        match self.bytes.get(self.pos + 1).copied() {
                            Some(c @ (b'"' | b'\\')) => out.push(c as char),
                            _ => return Err(self.err("unsupported escape")),
                        }
                        self.pos += 2;
                    }
                    Some(c) => {
                        out.push(c as char);
                        self.pos += 1;
                    }
                    None => return Err(self.err("unterminated string")),
                }
            }
        }

        fn value(&mut self, depth: usize) -> Result<Value, ScheduleError> {
            match self.peek() {
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') | Some(b'f') => {
                    for (word, val) in [("true", true), ("false", false)] {
                        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                            self.pos += word.len();
                            return Ok(Value::Bool(val));
                        }
                    }
                    Err(self.err("expected `true` or `false`"))
                }
                Some(b'[') if depth == 0 => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Value::List(items));
                    }
                    loop {
                        items.push(self.value(depth + 1)?);
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b']') => {
                                self.pos += 1;
                                return Ok(Value::List(items));
                            }
                            _ => return Err(self.err("expected `,` or `]`")),
                        }
                    }
                }
                Some(c) if c == b'-' || c.is_ascii_digit() => {
                    let start = self.pos;
                    if c == b'-' {
                        self.pos += 1;
                    }
                    while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.bytes[start..self.pos])
                        .expect("ascii digits are utf-8");
                    text.parse()
                        .map(Value::Num)
                        .map_err(|_| self.err(format!("bad integer `{text}`")))
                }
                _ => Err(self.err("expected a value")),
            }
        }
    }

    /// Parses one flat JSON object.
    pub fn parse_object(text: &str) -> Result<Object, ScheduleError> {
        let mut c = Cursor {
            bytes: text.as_bytes(),
            pos: 0,
        };
        c.expect(b'{')?;
        let mut fields = Vec::new();
        if c.peek() == Some(b'}') {
            c.pos += 1;
        } else {
            loop {
                let key = c.string()?;
                c.expect(b':')?;
                let value = c.value(0)?;
                fields.push((key, value));
                match c.peek() {
                    Some(b',') => c.pos += 1,
                    Some(b'}') => {
                        c.pos += 1;
                        break;
                    }
                    _ => return Err(c.err("expected `,` or `}`")),
                }
            }
        }
        c.skip_ws();
        if c.pos != c.bytes.len() {
            return Err(c.err("trailing bytes after the object"));
        }
        Ok(Object { fields })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fc_layer() -> FcLayer {
        FcLayer {
            name: "t",
            inputs: 2048,
            outputs: 64,
        }
    }

    #[test]
    fn default_schedules_validate() {
        assert_eq!(FcSchedule::default().validate(&fc_layer()), Ok(()));
        let conv = ConvLayer {
            name: "t",
            in_channels: 64,
            out_channels: 64,
            width: 16,
            height: 8,
            kernel: 3,
            pad: 1,
        };
        assert_eq!(ConvSchedule::default_for(&conv, 2).validate(&conv), Ok(()));
        assert_eq!(BpSchedule::default().validate(64, 32, 16), Ok(()));
    }

    #[test]
    fn scratchpad_overflow_rejected() {
        let fat = FcSchedule {
            kc: 512,
            mr: 4,
            rc_block: 1,
            pes: 4,
        };
        let err = fat.validate(&fc_layer()).unwrap_err();
        assert!(matches!(err, ScheduleError::Invalid(_)), "{err}");
        assert!(err.to_string().contains("scratchpad"), "{err}");
    }

    #[test]
    fn divisibility_rejected() {
        let bad = FcSchedule {
            kc: 96,
            ..FcSchedule::default()
        };
        assert!(bad.validate(&fc_layer()).is_err());
        let bad = BpSchedule {
            pes: 3,
            ..BpSchedule::default()
        };
        assert!(bad.validate(64, 32, 16).is_err());
    }

    #[test]
    fn json_round_trips_every_family() {
        let scheds = [
            Schedule::Fc(FcSchedule {
                kc: 128,
                mr: 8,
                rc_block: 2,
                pes: 4,
            }),
            Schedule::Conv(ConvSchedule {
                filters_per_group: 4,
                ring: 8,
                interleave_rows: true,
                pes: 2,
            }),
            Schedule::Bp(BpSchedule {
                style: VectorMachineStyle::RfReduce,
                row_pad: 128,
                pes: 4,
                group_bufs: 3,
            }),
        ];
        for s in scheds {
            let text = s.to_json();
            let back = Schedule::from_json(&text).expect("round trip parses");
            assert_eq!(back, s, "{text}");
            // Byte-stable re-serialization — resume relies on it.
            assert_eq!(back.to_json(), text);
        }
    }

    #[test]
    fn search_space_round_trips_and_enumerates() {
        for space in [
            SearchSpace::Fc(FcSearchSpace::stock()),
            SearchSpace::Conv(ConvSearchSpace::stock()),
            SearchSpace::Bp(BpSearchSpace::stock()),
        ] {
            let text = space.to_json();
            assert_eq!(SearchSpace::from_json(&text).expect("parses"), space);
        }
        let cands = SearchSpace::Fc(FcSearchSpace::stock()).enumerate(&KernelShape::Fc(fc_layer()));
        assert!(!cands.is_empty());
        assert!(cands.contains(&Schedule::Fc(FcSchedule::default())));
        // Everything enumerated validates; nothing overflows.
        for s in &cands {
            let Schedule::Fc(fc) = s else { unreachable!() };
            assert!(fc.scratchpad_bytes() <= SCRATCHPAD_BYTES);
        }
    }

    #[test]
    fn parse_errors_are_typed() {
        assert!(matches!(
            Schedule::from_json("{\"kernel\": \"fc\"}"),
            Err(ScheduleError::MissingField("kc"))
        ));
        assert!(matches!(
            Schedule::from_json("{\"kernel\": \"gemm\"}"),
            Err(ScheduleError::UnknownKernel(_))
        ));
        assert!(matches!(
            Schedule::from_json("not json"),
            Err(ScheduleError::Json { .. })
        ));
        assert!(matches!(
            Schedule::from_json(
                "{\"kernel\": \"bp\", \"style\": \"XX\", \"row_pad\": 0, \"pes\": 4}"
            ),
            Err(ScheduleError::BadField { field: "style", .. })
        ));
    }
}

//! Multi-layer perceptrons / fully-connected layers (§II-C, §IV-C).
//!
//! A fully-connected layer is a tiled GEMV: the generated code streams
//! `MR × KC` weight chunks through the scratchpad, multiplies each
//! against the resident input segment with `m.v.mul.add` (the f₆
//! operation), and accumulates partials with `v.v.add`, starting the
//! accumulator at the bias so Equation (4)'s bias add costs nothing
//! extra. The golden reference reproduces the chunked accumulation
//! order exactly, so saturation behaviour matches bit-for-bit.

use vip_isa::alu::{sat_add16, sat_mul16};
use vip_isa::{Asm, ElemType, HorizontalOp, Program, Reg, VerticalOp};
use vip_mem::Hmc;

use crate::cnn::FcLayer;
use crate::schedule::FcSchedule;
use crate::sync::{bytes_to_i16s, i16s_to_bytes};

const TY: ElemType = ElemType::I16;

/// Rows per `m.v` (the matrix-rows configuration) in the default
/// schedule.
pub const MR: usize = 4;
/// Input columns per chunk in the default schedule.
pub const KC: usize = 256;

/// Golden fully-connected forward pass with the generated code's
/// chunked accumulation order: `acc = bias; for each KC chunk: acc +=
/// (chunk partial computed from zero)`, then optional ReLU.
///
/// `weights` are row-major `[outputs][inputs]`.
///
/// # Panics
///
/// Panics on length mismatches or if `inputs` is not a multiple of
/// [`KC`].
#[must_use]
pub fn fc_forward(
    layer: &FcLayer,
    input: &[i16],
    weights: &[i16],
    bias: &[i16],
    relu: bool,
) -> Vec<i16> {
    fc_forward_kc(layer, input, weights, bias, relu, KC)
}

/// [`fc_forward`] with an explicit column-chunk width — the golden
/// reference for a scheduled tile, since the saturating partial-sum
/// boundaries move with `kc`.
///
/// # Panics
///
/// Panics on length mismatches or if `inputs % kc != 0`.
#[must_use]
pub fn fc_forward_kc(
    layer: &FcLayer,
    input: &[i16],
    weights: &[i16],
    bias: &[i16],
    relu: bool,
    kc: usize,
) -> Vec<i16> {
    assert_eq!(input.len(), layer.inputs);
    assert_eq!(bias.len(), layer.outputs);
    fc_forward_batch(layer, input, weights, bias, relu, 1, kc)
}

/// Batched golden forward pass: `inputs` holds `batch` concatenated
/// input vectors; the result concatenates `batch` output vectors. The
/// accumulation order matches [`fc_batch_tile_programs`]: per row chunk
/// and column chunk, the weight chunk is applied to every batch element
/// before moving on (weights stream once — the §II-C batching
/// economics), using `kc`-column chunks.
///
/// # Panics
///
/// Panics on length mismatches or if `inputs_len % kc != 0`.
#[must_use]
pub fn fc_forward_batch(
    layer: &FcLayer,
    inputs: &[i16],
    weights: &[i16],
    bias: &[i16],
    relu: bool,
    batch: usize,
    kc: usize,
) -> Vec<i16> {
    assert_eq!(inputs.len(), layer.inputs * batch);
    assert_eq!(weights.len(), layer.inputs * layer.outputs);
    assert_eq!(layer.inputs % kc, 0);
    let mut out = vec![0i16; layer.outputs * batch];
    for m in 0..layer.outputs {
        for b in 0..batch {
            let x = &inputs[b * layer.inputs..][..layer.inputs];
            let mut acc = bias[m];
            for chunk in 0..layer.inputs / kc {
                let mut partial = 0i16;
                for j in 0..kc {
                    let col = chunk * kc + j;
                    partial =
                        sat_add16(partial, sat_mul16(weights[m * layer.inputs + col], x[col]));
                }
                acc = sat_add16(acc, partial);
            }
            out[b * layer.outputs + m] = if relu { acc.max(0) } else { acc };
        }
    }
    out
}

/// Packs row-major weights into the `[row_chunk][col_chunk][mr][kc]`
/// stream the generated code loads contiguously, with the default
/// schedule's chunk shape.
///
/// # Panics
///
/// Panics unless `outputs % MR == 0` and `inputs % KC == 0`.
#[must_use]
pub fn pack_weights(layer: &FcLayer, weights: &[i16]) -> Vec<i16> {
    pack_weights_with(layer, weights, MR, KC)
}

/// [`pack_weights`] with an explicit column-chunk width (the batched
/// tile uses a narrower `kc` so `batch` input segments fit beside the
/// weight chunk).
///
/// # Panics
///
/// Panics unless `outputs % MR == 0` and `inputs % kc == 0`.
#[must_use]
pub fn pack_weights_kc(layer: &FcLayer, weights: &[i16], kc: usize) -> Vec<i16> {
    pack_weights_with(layer, weights, MR, kc)
}

/// [`pack_weights`] with an explicit chunk shape — the packing for a
/// scheduled tile must use the schedule's `(mr, kc)`.
///
/// # Panics
///
/// Panics unless `outputs % mr == 0` and `inputs % kc == 0`.
#[must_use]
pub fn pack_weights_with(layer: &FcLayer, weights: &[i16], mr: usize, kc: usize) -> Vec<i16> {
    assert_eq!(weights.len(), layer.inputs * layer.outputs);
    assert_eq!(layer.outputs % mr, 0);
    assert_eq!(layer.inputs % kc, 0);
    let mut out = Vec::with_capacity(weights.len());
    for rc in 0..layer.outputs / mr {
        for cc in 0..layer.inputs / kc {
            for m in 0..mr {
                let row = rc * mr + m;
                let col0 = cc * kc;
                out.extend_from_slice(&weights[row * layer.inputs + col0..][..kc]);
            }
        }
    }
    out
}

/// DRAM layout of one fully-connected tile.
#[derive(Debug, Clone, Copy)]
pub struct FcLayout {
    /// Layer geometry.
    pub layer: FcLayer,
    /// Input vector, `[inputs]`.
    pub input_base: u64,
    /// Packed weights (see [`pack_weights`]).
    pub weights_base: u64,
    /// Bias vector, `[outputs]`.
    pub bias_base: u64,
    /// Output vector, `[outputs]`.
    pub output_base: u64,
    /// Apply ReLU (all VGG fully-connected layers except fc8).
    pub relu: bool,
}

impl FcLayout {
    /// Stages inputs, packed weights, and biases (host side), packed
    /// for the default schedule.
    pub fn load_into(&self, hmc: &mut Hmc, input: &[i16], weights: &[i16], bias: &[i16]) {
        self.load_into_scheduled(hmc, &FcSchedule::default(), input, weights, bias);
    }

    /// Stages the tile with the weight packing `sched`'s generated code
    /// expects — staging and [`fc_tile_programs`] must use the same
    /// schedule.
    pub fn load_into_scheduled(
        &self,
        hmc: &mut Hmc,
        sched: &FcSchedule,
        input: &[i16],
        weights: &[i16],
        bias: &[i16],
    ) {
        hmc.host_write(self.input_base, &i16s_to_bytes(input));
        hmc.host_write(
            self.weights_base,
            &i16s_to_bytes(&pack_weights_with(&self.layer, weights, sched.mr, sched.kc)),
        );
        hmc.host_write(self.bias_base, &i16s_to_bytes(bias));
    }

    /// Reads the output vector (host side).
    #[must_use]
    pub fn read_output(&self, hmc: &Hmc) -> Vec<i16> {
        bytes_to_i16s(&hmc.host_read(self.output_base, self.layer.outputs * 2))
    }
}

/// Generates per-PE programs for one fully-connected tile under an
/// explicit schedule, splitting output-row chunks across the
/// schedule's PEs. The staged weights must be packed with the same
/// schedule ([`FcLayout::load_into_scheduled`]).
///
/// The schedule's `rc_block` keeps that many row-chunk accumulators
/// resident per column sweep, so each input segment is streamed from
/// DRAM once per *block* instead of once per row chunk — the dominant
/// non-weight traffic term of the tile.
///
/// # Panics
///
/// Panics if `sched.validate` rejects the layer shape.
#[must_use]
pub fn fc_tile_programs(layout: &FcLayout, sched: &FcSchedule) -> Vec<Program> {
    let l = layout.layer;
    sched
        .validate(&l)
        .expect("fc schedule is valid for the layer");
    let (kc, mr, rb, pes) = (sched.kc, sched.mr, sched.rc_block, sched.pes);
    let row_chunks = l.outputs / mr;
    let chunks_per_pe = row_chunks / pes;
    let blocks_per_pe = chunks_per_pe / rb;
    let col_chunks = l.inputs / kc;
    // Scratchpad: weight chunk | input chunk | rc_block accumulators |
    // partial.
    let sp_w = 0usize;
    let sp_x = sp_w + mr * kc * 2;
    let sp_acc = sp_x + kc * 2;
    let sp_p = sp_acc + rb * mr * 2;
    let w_chunk_bytes = (mr * kc * 2) as i32;
    // Distance in the packed stream between the same column chunk of
    // two consecutive row chunks.
    let rc_stride = col_chunks * mr * kc * 2;

    (0..pes)
        .map(|pe| {
            let mut next = 0u8;
            let mut reg = || {
                let r = Reg::new(next);
                next += 1;
                r
            };
            let (r_kc, r_mr, r_bm, r_w, r_x, r_p, r_zero) =
                (reg(), reg(), reg(), reg(), reg(), reg(), reg());
            let (r_pw, r_px, r_pb, r_po, r_blk, r_blkn, r_cc, r_ccn, r_t, r_t2) = (
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
            );

            let first_chunk = pe * chunks_per_pe;
            let w_start = layout.weights_base + (first_chunk * rc_stride) as u64;
            let b_start = layout.bias_base + (first_chunk * mr * 2) as u64;
            let o_start = layout.output_base + (first_chunk * mr * 2) as u64;

            let mut asm = Asm::new();
            asm.mov_imm(r_kc, kc as i64)
                .mov_imm(r_mr, mr as i64)
                .mov_imm(r_bm, (rb * mr) as i64)
                .mov_imm(r_w, sp_w as i64)
                .mov_imm(r_x, sp_x as i64)
                .mov_imm(r_p, sp_p as i64)
                .mov_imm(r_zero, 0)
                .mov_imm(r_pw, w_start as i64)
                .mov_imm(r_pb, b_start as i64)
                .mov_imm(r_po, o_start as i64)
                .set_mr(r_mr)
                .mov_imm(r_blk, 0)
                .mov_imm(r_blkn, blocks_per_pe as i64)
                .label("blk");
            // The block's accumulators start at the bias chunks, which
            // are contiguous across the block's row chunks.
            asm.set_vl(r_bm)
                .mov_imm(r_t, sp_acc as i64)
                .ld_sram(TY, r_t, r_pb, r_bm)
                .addi(r_pb, r_pb, (rb * mr * 2) as i32)
                .mov_imm(r_px, layout.input_base as i64)
                .mov_imm(r_cc, 0)
                .mov_imm(r_ccn, col_chunks as i64)
                .label("cc");
            // One input segment serves every row chunk in the block.
            asm.ld_sram(TY, r_x, r_px, r_kc)
                .addi(r_px, r_px, (kc * 2) as i32);
            for j in 0..rb {
                let w_off = i32::try_from(j * rc_stride).expect("packed row-chunk offset fits");
                asm.mov_imm(r_t, (mr * kc) as i64)
                    .addi(r_t2, r_pw, w_off)
                    .ld_sram(TY, r_w, r_t2, r_t)
                    .set_vl(r_kc)
                    .mat_vec(VerticalOp::Mul, HorizontalOp::Add, TY, r_p, r_w, r_x)
                    .set_vl(r_mr)
                    .mov_imm(r_t, (sp_acc + j * mr * 2) as i64)
                    .vec_vec(VerticalOp::Add, TY, r_t, r_t, r_p);
            }
            asm.addi(r_pw, r_pw, w_chunk_bytes)
                .addi(r_cc, r_cc, 1)
                .blt(r_cc, r_ccn, "cc");
            // Skip the block's remaining row chunks in the weight
            // stream (the column loop walked only the first).
            let w_skip = i32::try_from((rb - 1) * rc_stride).expect("block weight skip fits");
            asm.addi(r_pw, r_pw, w_skip);
            // Finish the whole block contiguously: ReLU + store.
            asm.set_vl(r_bm).mov_imm(r_t, sp_acc as i64);
            if layout.relu {
                asm.vec_scalar(VerticalOp::Max, TY, r_t, r_t, r_zero);
            }
            asm.st_sram(TY, r_t, r_po, r_bm)
                .addi(r_po, r_po, (rb * mr * 2) as i32)
                .addi(r_blk, r_blk, 1)
                .blt(r_blk, r_blkn, "blk")
                .memfence()
                .halt();
            asm.assemble().expect("fc program assembles")
        })
        .collect()
}

/// DRAM layout of a *batched* fully-connected tile: `batch` input
/// vectors share each streamed weight chunk (§II-C's batching
/// economics, Figure 3c's AI shift).
#[derive(Debug, Clone, Copy)]
pub struct FcBatchLayout {
    /// Layer geometry.
    pub layer: FcLayer,
    /// Images per batch (16 in the paper's batched experiments).
    pub batch: usize,
    /// Column-chunk width; narrower than [`KC`] so the batch's input
    /// segments fit beside the weight chunk (64 works for batch 16).
    pub kc: usize,
    /// Input matrix, `[batch][inputs]`.
    pub input_base: u64,
    /// Weights packed by [`pack_weights_kc`] with this layout's `kc`.
    pub weights_base: u64,
    /// Bias vector, `[outputs]`.
    pub bias_base: u64,
    /// Output matrix, `[batch][outputs]`.
    pub output_base: u64,
    /// Apply ReLU.
    pub relu: bool,
}

impl FcBatchLayout {
    /// Stages inputs (concatenated batch), packed weights, and biases.
    pub fn load_into(&self, hmc: &mut Hmc, inputs: &[i16], weights: &[i16], bias: &[i16]) {
        assert_eq!(inputs.len(), self.layer.inputs * self.batch);
        hmc.host_write(self.input_base, &i16s_to_bytes(inputs));
        hmc.host_write(
            self.weights_base,
            &i16s_to_bytes(&pack_weights_kc(&self.layer, weights, self.kc)),
        );
        hmc.host_write(self.bias_base, &i16s_to_bytes(bias));
    }

    /// Reads the `[batch][outputs]` result (host side).
    #[must_use]
    pub fn read_output(&self, hmc: &Hmc) -> Vec<i16> {
        bytes_to_i16s(&hmc.host_read(self.output_base, self.layer.outputs * self.batch * 2))
    }
}

/// Generates per-PE programs for a batched fully-connected tile. Each
/// weight chunk is loaded once and applied to every batch element —
/// the data reuse that moves the fc layers toward the compute roof at
/// batch 16 (Figure 3c).
///
/// # Panics
///
/// Panics unless the row chunks divide across PEs, `inputs % kc == 0`,
/// and the scratchpad fits `batch` input segments plus a weight chunk.
#[must_use]
pub fn fc_batch_tile_programs(layout: &FcBatchLayout, pes: usize) -> Vec<Program> {
    let l = layout.layer;
    let (batch, kc) = (layout.batch, layout.kc);
    assert_eq!(l.inputs % kc, 0);
    assert_eq!(l.outputs % MR, 0);
    let row_chunks = l.outputs / MR;
    assert_eq!(row_chunks % pes, 0, "row chunks must divide across PEs");
    let chunks_per_pe = row_chunks / pes;
    let col_chunks = l.inputs / kc;

    // Scratchpad: weight chunk | batch x-segments | batch accumulators |
    // partial | bias chunk.
    let sp_w = 0usize;
    let sp_x = sp_w + MR * kc * 2;
    let sp_acc = sp_x + batch * kc * 2;
    let sp_p = sp_acc + batch * MR * 2;
    let sp_bias = sp_p + MR * 2;
    assert!(
        sp_bias + MR * 2 <= 4096,
        "batched fc tile overflows the scratchpad"
    );

    (0..pes)
        .map(|pe| {
            let mut next = 0u8;
            let mut reg = || {
                let r = Reg::new(next);
                next += 1;
                r
            };
            let (r_kc, r_mr, r_w, r_p, r_bias, r_zero, r_t, r_t2) =
                (reg(), reg(), reg(), reg(), reg(), reg(), reg(), reg());
            let (r_pw, r_pb, r_ccoff, r_rcoff, r_rc, r_rcn, r_cc, r_ccn) =
                (reg(), reg(), reg(), reg(), reg(), reg(), reg(), reg());

            let first_chunk = pe * chunks_per_pe;
            let w_start = layout.weights_base + (first_chunk * col_chunks * MR * kc * 2) as u64;
            let b_start = layout.bias_base + (first_chunk * MR * 2) as u64;

            let mut asm = Asm::new();
            asm.mov_imm(r_kc, kc as i64)
                .mov_imm(r_mr, MR as i64)
                .mov_imm(r_w, sp_w as i64)
                .mov_imm(r_p, sp_p as i64)
                .mov_imm(r_bias, sp_bias as i64)
                .mov_imm(r_zero, 0)
                .mov_imm(r_pw, w_start as i64)
                .mov_imm(r_pb, b_start as i64)
                .mov_imm(r_rcoff, (first_chunk * MR * 2) as i64)
                .set_mr(r_mr)
                .mov_imm(r_rc, 0)
                .mov_imm(r_rcn, chunks_per_pe as i64)
                .label("rc");
            // Bias chunk -> every batch accumulator.
            asm.set_vl(r_mr)
                .ld_sram(TY, r_bias, r_pb, r_mr)
                .addi(r_pb, r_pb, (MR * 2) as i32);
            for b in 0..batch {
                asm.mov_imm(r_t, (sp_acc + b * MR * 2) as i64).vec_scalar(
                    VerticalOp::Add,
                    TY,
                    r_t,
                    r_bias,
                    r_zero,
                );
            }
            asm.mov_imm(r_ccoff, 0)
                .mov_imm(r_cc, 0)
                .mov_imm(r_ccn, col_chunks as i64)
                .label("cc");
            // One weight chunk, applied to all batch elements.
            asm.mov_imm(r_t, (MR * kc) as i64)
                .ld_sram(TY, r_w, r_pw, r_t)
                .addi(r_pw, r_pw, (MR * kc * 2) as i32);
            for b in 0..batch {
                // Load x_b's kc-segment: input_base + b*inputs*2 + ccoff.
                asm.mov_imm(r_t, (layout.input_base + (b * l.inputs * 2) as u64) as i64)
                    .add(r_t, r_t, r_ccoff)
                    .mov_imm(r_t2, (sp_x + b * kc * 2) as i64)
                    .ld_sram(TY, r_t2, r_t, r_kc);
            }
            for b in 0..batch {
                asm.mov_imm(r_t2, (sp_x + b * kc * 2) as i64)
                    .set_vl(r_kc)
                    .mat_vec(VerticalOp::Mul, HorizontalOp::Add, TY, r_p, r_w, r_t2)
                    .set_vl(r_mr)
                    .mov_imm(r_t, (sp_acc + b * MR * 2) as i64)
                    .vec_vec(VerticalOp::Add, TY, r_t, r_t, r_p);
            }
            asm.addi(r_ccoff, r_ccoff, (kc * 2) as i32)
                .addi(r_cc, r_cc, 1)
                .blt(r_cc, r_ccn, "cc");
            // Finish the row chunk: ReLU + store per batch element.
            for b in 0..batch {
                asm.mov_imm(r_t, (sp_acc + b * MR * 2) as i64);
                if layout.relu {
                    asm.vec_scalar(VerticalOp::Max, TY, r_t, r_t, r_zero);
                }
                asm.mov_imm(
                    r_t2,
                    (layout.output_base + (b * l.outputs * 2) as u64) as i64,
                )
                .add(r_t2, r_t2, r_rcoff)
                .st_sram(TY, r_t, r_t2, r_mr);
            }
            asm.addi(r_rcoff, r_rcoff, (MR * 2) as i32)
                .addi(r_rc, r_rc, 1)
                .blt(r_rc, r_rcn, "rc")
                .memfence()
                .halt();
            asm.assemble().expect("batched fc program assembles")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_weights_layout() {
        let layer = FcLayer {
            name: "t",
            inputs: KC * 2,
            outputs: MR * 2,
        };
        let weights: Vec<i16> = (0..layer.inputs * layer.outputs)
            .map(|i| i as i16)
            .collect();
        let packed = pack_weights(&layer, &weights);
        assert_eq!(packed.len(), weights.len());
        // First packed row is row 0's first KC columns.
        assert_eq!(&packed[..KC], &weights[..KC]);
        // Second packed row is row 1's first KC columns.
        assert_eq!(
            &packed[KC..2 * KC],
            &weights[layer.inputs..layer.inputs + KC]
        );
    }

    #[test]
    fn golden_matches_naive_when_unsaturated() {
        let layer = FcLayer {
            name: "t",
            inputs: KC,
            outputs: 4,
        };
        let input: Vec<i16> = (0..KC).map(|i| (i % 5) as i16 - 2).collect();
        let weights: Vec<i16> = (0..KC * 4).map(|i| (i % 7) as i16 - 3).collect();
        let bias = [1i16, -1, 0, 5];
        let out = fc_forward(&layer, &input, &weights, &bias, false);
        for m in 0..4 {
            let naive: i32 = (0..KC)
                .map(|j| i32::from(weights[m * KC + j]) * i32::from(input[j]))
                .sum::<i32>()
                + i32::from(bias[m]);
            assert_eq!(i32::from(out[m]), naive, "row {m}");
        }
    }

    #[test]
    fn relu_clamps() {
        let layer = FcLayer {
            name: "t",
            inputs: KC,
            outputs: 4,
        };
        let input = vec![0i16; KC];
        let weights = vec![0i16; KC * 4];
        let out = fc_forward(&layer, &input, &weights, &[-3, 3, -1, 0], true);
        assert_eq!(out, vec![0, 3, 0, 0]);
    }
}

//! Synchronization snippets shared by generated programs (§IV-A).
//!
//! The paper synchronizes producer-consumer PEs with full-empty
//! variables in DRAM and uses a barrier between message-update phases.
//! [`emit_barrier`] emits a counter/generation barrier built from
//! `ld.reg.fe` / `st.reg.ff` (the atomic full-empty accesses the vault
//! controllers provide) plus a polling loop on the generation word.

use vip_isa::{Asm, Reg};

/// DRAM addresses of one barrier instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierAddrs {
    /// Counter word. The host must initialize it to 0 **with its full
    /// bit set** before the run.
    pub counter: u64,
    /// Generation word, initialized to 0.
    pub generation: u64,
}

impl BarrierAddrs {
    /// Places the barrier at `base` (8-byte aligned).
    #[must_use]
    pub fn at(base: u64) -> Self {
        assert_eq!(base % 8, 0);
        BarrierAddrs {
            counter: base,
            generation: base + 8,
        }
    }

    /// Initializes the barrier words in memory (host side).
    pub fn init(&self, hmc: &mut vip_mem::Hmc) {
        hmc.host_write_u64(self.counter, 0);
        hmc.host_set_full(self.counter, true);
        hmc.host_write_u64(self.generation, 0);
    }
}

/// Registers a barrier needs. `my_gen` must be a register the program
/// reserves for the barrier and initializes to 0 once at program start;
/// it persists across barrier episodes. The others are scratch.
#[derive(Debug, Clone, Copy)]
pub struct BarrierRegs {
    /// Persistent per-PE generation count.
    pub my_gen: Reg,
    /// Scratch: counter value / polling target.
    pub tmp: Reg,
    /// Scratch: holds the counter address.
    pub addr_cnt: Reg,
    /// Scratch: holds the generation address.
    pub addr_gen: Reg,
    /// Scratch: holds the participant count.
    pub n: Reg,
    /// Scratch: holds zero for the counter reset.
    pub zero: Reg,
}

/// Emits one barrier episode. `label_prefix` must be unique per episode
/// in the program (labels are global).
///
/// Protocol: grab the counter with `ld.reg.fe` (full-empty doubles as a
/// lock), increment; the last arriver resets the counter and publishes a
/// new generation; everyone else releases the counter and polls the
/// generation word until it reaches their own incremented count.
pub fn emit_barrier(
    asm: &mut Asm,
    regs: &BarrierRegs,
    addrs: BarrierAddrs,
    participants: u64,
    label_prefix: &str,
) {
    let done = format!("{label_prefix}_done");
    let not_last = format!("{label_prefix}_notlast");
    let spin = format!("{label_prefix}_spin");

    asm.mov_imm(regs.addr_cnt, addrs.counter as i64)
        .mov_imm(regs.addr_gen, addrs.generation as i64)
        .mov_imm(regs.n, participants as i64)
        .addi(regs.my_gen, regs.my_gen, 1)
        .ld_reg_fe(regs.tmp, regs.addr_cnt)
        .addi(regs.tmp, regs.tmp, 1)
        .blt(regs.tmp, regs.n, &not_last)
        // Last arriver: reset the counter, publish the generation.
        .mov_imm(regs.zero, 0)
        .st_reg_ff(regs.zero, regs.addr_cnt)
        .st_reg(regs.my_gen, regs.addr_gen)
        .jmp(&done)
        .label(&not_last)
        .st_reg_ff(regs.tmp, regs.addr_cnt)
        .label(&spin)
        .ld_reg(regs.tmp, regs.addr_gen)
        .blt(regs.tmp, regs.my_gen, &spin)
        .label(&done);
}

/// Converts an i16 slice to little-endian bytes (host data staging).
#[must_use]
pub fn i16s_to_bytes(values: &[i16]) -> Vec<u8> {
    values.iter().flat_map(|v| v.to_le_bytes()).collect()
}

/// Converts little-endian bytes back to i16s.
///
/// # Panics
///
/// Panics if the byte length is odd.
#[must_use]
pub fn bytes_to_i16s(bytes: &[u8]) -> Vec<i16> {
    assert_eq!(bytes.len() % 2, 0);
    bytes
        .chunks_exact(2)
        .map(|c| i16::from_le_bytes([c[0], c[1]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip() {
        let v = vec![-1i16, 0, 1, i16::MIN, i16::MAX, 12345];
        assert_eq!(bytes_to_i16s(&i16s_to_bytes(&v)), v);
    }

    #[test]
    fn barrier_emits_unique_labels() {
        let mut asm = Asm::new();
        let regs = BarrierRegs {
            my_gen: Reg::new(1),
            tmp: Reg::new(2),
            addr_cnt: Reg::new(3),
            addr_gen: Reg::new(4),
            n: Reg::new(5),
            zero: Reg::new(6),
        };
        let addrs = BarrierAddrs::at(0x1000);
        emit_barrier(&mut asm, &regs, addrs, 4, "b0");
        emit_barrier(&mut asm, &regs, addrs, 4, "b1");
        asm.halt();
        let p = asm.assemble().unwrap();
        assert!(p.len() > 20);
    }
}

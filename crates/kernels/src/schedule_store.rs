//! The checked-in schedule artifact store.
//!
//! The autotuner (`vip-bench`'s `autotune` module) emits its best
//! schedule per (kernel shape, arch config) as a JSON file under
//! `schedules/`; the tile stagers in `vip-bench` and the serving
//! layer's tile builders (`vip-serve`) look those artifacts up at
//! staging time and fall back to the hand-picked defaults when no
//! artifact matches. Files are keyed by the kernel's shape string and
//! the structural configuration fingerprint
//! (`vip_core::SystemConfig::snapshot_fingerprint`):
//!
//! ```text
//! schedules/fc-2048x64-00a1b2c3d4e5f607.json
//! ```
//!
//! so a schedule tuned for one machine shape can never be applied to
//! another. The JSON payload is a [`Schedule`] artifact
//! ([`Schedule::to_json`]) — deterministic field order and byte-stable
//! re-serialization, which is what lets a resumed search re-emit
//! byte-identical artifacts.
//!
//! This module lived in `vip_bench::schedules` until the serving layer
//! needed the same lookups without depending on the bench crate; the
//! old path re-exports everything here.

use std::io;
use std::path::{Path, PathBuf};

use crate::cnn::{ConvLayer, FcLayer};
use crate::schedule::Schedule;

/// Environment variable overriding the artifact directory.
pub const DIR_ENV: &str = "VIP_SCHEDULE_DIR";

/// The artifact directory: `$VIP_SCHEDULE_DIR` if set, else
/// `schedules` relative to the working directory.
#[must_use]
pub fn dir() -> PathBuf {
    std::env::var_os(DIR_ENV).map_or_else(|| PathBuf::from("schedules"), PathBuf::from)
}

/// Shape key for a fully-connected tile.
#[must_use]
pub fn fc_key(layer: &FcLayer) -> String {
    format!("fc-{}x{}", layer.inputs, layer.outputs)
}

/// Shape key for a convolution tile.
#[must_use]
pub fn conv_key(layer: &ConvLayer) -> String {
    format!(
        "conv-{}x{}x{}x{}",
        layer.in_channels, layer.out_channels, layer.width, layer.height
    )
}

/// Shape key for a BP grid.
#[must_use]
pub fn bp_key(width: usize, height: usize, labels: usize) -> String {
    format!("bp-{width}x{height}x{labels}")
}

/// File name of the artifact for `key` under configuration
/// `fingerprint`.
#[must_use]
pub fn artifact_name(key: &str, fingerprint: u64) -> String {
    format!("{key}-{fingerprint:016x}.json")
}

/// Writes `bytes` to `path` via a temporary sibling and an atomic
/// rename, so readers (and crash recovery) only ever observe a
/// complete file. A local copy of the bench runner's idiom — the store
/// must stay usable without the bench crate.
fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

/// Loads the schedule artifact for `(key, fingerprint)` from `from`,
/// returning `None` when the file is absent, unreadable, malformed, or
/// names a different kernel family than its key prefix.
#[must_use]
pub fn load_from(from: &Path, key: &str, fingerprint: u64) -> Option<Schedule> {
    let text = std::fs::read_to_string(from.join(artifact_name(key, fingerprint))).ok()?;
    let sched = Schedule::from_json(&text).ok()?;
    key.starts_with(sched.kernel()).then_some(sched)
}

/// Loads the schedule artifact for `(key, fingerprint)` from the
/// default [`dir`].
#[must_use]
pub fn load(key: &str, fingerprint: u64) -> Option<Schedule> {
    load_from(&dir(), key, fingerprint)
}

/// Atomically writes the artifact for `(key, fingerprint)` into `into`
/// (created if missing) and returns its path.
///
/// # Errors
///
/// Propagates any I/O failure from the directory creation or write.
pub fn save(into: &Path, key: &str, fingerprint: u64, sched: &Schedule) -> io::Result<PathBuf> {
    std::fs::create_dir_all(into)?;
    let path = into.join(artifact_name(key, fingerprint));
    atomic_write(&path, sched.to_json().as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FcSchedule, Schedule};

    #[test]
    fn save_then_load_round_trips() {
        let dir = std::env::temp_dir().join(format!("vip-schedules-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sched = Schedule::Fc(FcSchedule {
            kc: 128,
            mr: 8,
            rc_block: 2,
            pes: 4,
        });
        let key = "fc-2048x64";
        let path = save(&dir, key, 0xfeed, &sched).expect("artifact written");
        assert_eq!(
            path.file_name().unwrap().to_str().unwrap(),
            "fc-2048x64-000000000000feed.json"
        );
        assert_eq!(load_from(&dir, key, 0xfeed), Some(sched));
        // Wrong fingerprint or key: no artifact.
        assert_eq!(load_from(&dir, key, 0xbeef), None);
        assert_eq!(load_from(&dir, "fc-2048x256", 0xfeed), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn family_mismatch_is_rejected() {
        let dir = std::env::temp_dir().join(format!("vip-schedules-mm-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let sched = Schedule::Fc(FcSchedule::default());
        // An FC schedule stored under a bp- key loads as None.
        save(&dir, "bp-64x32x16", 7, &sched).expect("artifact written");
        assert_eq!(load_from(&dir, "bp-64x32x16", 7), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Analytical per-layer cost model (ops, traffic, tile extrapolation).

use super::{ConvLayer, FcLayer, PoolLayer, VggLayer};

/// Operation and traffic estimates for one layer at a given batch size —
/// the inputs to the Figure 3 roofline placement and the §V-A
/// independent-tile extrapolation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerCosts {
    /// 16-bit ALU operations (2 per MAC, 1 per pooling comparison).
    pub ops: u64,
    /// DRAM bytes for activations in.
    pub input_bytes: u64,
    /// DRAM bytes for weights (re-reads from filter-group passes
    /// included via `weight_passes`).
    pub weight_bytes: u64,
    /// DRAM bytes for activations out.
    pub output_bytes: u64,
}

impl LayerCosts {
    /// Costs of a convolution at `batch` images. Inputs are re-read once
    /// per resident filter group (§IV-B's template), captured by
    /// `input_passes`.
    #[must_use]
    pub fn conv(layer: &ConvLayer, batch: u64, input_passes: u64) -> Self {
        let act_in = (layer.width * layer.height * layer.in_channels * 2) as u64;
        let act_out = (layer.width * layer.height * layer.out_channels * 2) as u64;
        LayerCosts {
            ops: 2 * layer.macs() * batch,
            input_bytes: act_in * input_passes * batch,
            weight_bytes: (layer.weights() * 2) as u64,
            output_bytes: act_out * batch,
        }
    }

    /// Costs of a 2×2 max pool.
    #[must_use]
    pub fn pool(layer: &PoolLayer, batch: u64) -> Self {
        let act_in = (layer.width * layer.height * layer.channels * 2) as u64;
        LayerCosts {
            ops: layer.ops() * batch,
            input_bytes: act_in * batch,
            weight_bytes: 0,
            output_bytes: act_in / 4 * batch,
        }
    }

    /// Costs of a fully-connected layer. Weights dominate and are read
    /// once regardless of batch; activations scale with batch.
    #[must_use]
    pub fn fc(layer: &FcLayer, batch: u64) -> Self {
        LayerCosts {
            ops: 2 * layer.macs() * batch,
            input_bytes: (layer.inputs * 2) as u64 * batch,
            weight_bytes: 2 * layer.macs(),
            output_bytes: (layer.outputs * 2) as u64 * batch,
        }
    }

    /// Costs for any layer with default pass counts.
    #[must_use]
    pub fn of(layer: &VggLayer, batch: u64) -> Self {
        match layer {
            VggLayer::Conv(c) => {
                // One input pass per filter group of 2 (64-channel
                // shards), except c1_1 where all filters are resident.
                let groups = if c.in_channels <= 8 {
                    1
                } else {
                    (c.out_channels.min(64) / 2) as u64
                };
                Self::conv(c, batch, groups)
            }
            VggLayer::Pool(p) => Self::pool(p, batch),
            VggLayer::Fc(f) => Self::fc(f, batch),
        }
    }

    /// Total DRAM traffic.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.input_bytes + self.weight_bytes + self.output_bytes
    }

    /// Arithmetic intensity in ops per byte.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.ops as f64 / self.bytes() as f64
    }

    /// Scales a measured tile to the full layer: the tile computed
    /// `tile_ops` of this layer's `ops` in `tile_cycles` on one vault;
    /// the full layer spreads across `vaults`.
    #[must_use]
    pub fn extrapolate_cycles(&self, tile_ops: u64, tile_cycles: u64, vaults: u64) -> u64 {
        assert!(tile_ops > 0);
        let scale = self.ops as f64 / tile_ops as f64 / vaults as f64;
        (tile_cycles as f64 * scale).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::super::vgg16;
    use super::*;

    #[test]
    fn conv_layer_gop_counts() {
        let layers = vgg16();
        let VggLayer::Conv(c1_1) = layers[0] else {
            panic!()
        };
        // c1_1: 224*224*64 outputs x 27 MACs = ~86.7M MACs.
        assert_eq!(c1_1.macs(), 224 * 224 * 64 * 27);
        let costs = LayerCosts::of(&layers[0], 1);
        assert_eq!(costs.ops, 2 * c1_1.macs());
    }

    #[test]
    fn pooling_is_memory_bound() {
        let layers = vgg16();
        let p1 = layers.iter().find(|l| l.name() == "p1").unwrap();
        let ai = LayerCosts::of(p1, 1).arithmetic_intensity();
        assert!(ai < 1.0, "pool AI {ai} should be well below the knee");
    }

    #[test]
    fn fc_intensity_rises_with_batch() {
        let layers = vgg16();
        let fc6 = layers.iter().find(|l| l.name() == "fc6").unwrap();
        let b1 = LayerCosts::of(fc6, 1).arithmetic_intensity();
        let b16 = LayerCosts::of(fc6, 16).arithmetic_intensity();
        assert!(b16 > 5.0 * b1, "batching amortizes weights: {b1} -> {b16}");
    }

    #[test]
    fn extrapolation_scales() {
        let layers = vgg16();
        let c = LayerCosts::of(&layers[1], 1);
        let cycles = c.extrapolate_cycles(c.ops / 320, 1000, 32);
        assert!((cycles as i64 - 10_000).abs() <= 2, "{cycles}");
    }
}

//! Golden reference CNN layers with VIP's saturating fixed-point
//! semantics and the exact accumulation order of the generated code.
//!
//! Activations live in *padded* arrays — `(H+2p) × (W+2p) × C` with
//! zeroed borders, channel index fastest — so that the generated VIP
//! code needs no boundary special-casing (the host zero-pads when
//! staging; DESIGN.md documents this choice). Convolution accumulates
//! per kernel-column block (`kx`), matching the `m.v.mul.add`-per-column
//! decomposition of Equations (5a)–(5d), so saturation behaviour is
//! bit-identical to the simulated programs.

use vip_isa::alu::{sat_add16, sat_mul16};

use super::{ConvLayer, PoolLayer};

/// Length of a padded activation array.
#[must_use]
pub fn padded_len(width: usize, height: usize, channels: usize, pad: usize) -> usize {
    (width + 2 * pad) * (height + 2 * pad) * channels
}

/// Index into a padded activation array (padded coordinates).
#[must_use]
pub fn padded_at(width: usize, channels: usize, pad: usize, xp: usize, yp: usize) -> usize {
    (yp * (width + 2 * pad) + xp) * channels
}

/// Zero-pads an unpadded `H × W × C` activation array.
#[must_use]
pub fn pad_input(
    width: usize,
    height: usize,
    channels: usize,
    pad: usize,
    data: &[i16],
) -> Vec<i16> {
    assert_eq!(data.len(), width * height * channels);
    let mut out = vec![0i16; padded_len(width, height, channels, pad)];
    for y in 0..height {
        for x in 0..width {
            let src = (y * width + x) * channels;
            let dst = padded_at(width, channels, pad, x + pad, y + pad);
            out[dst..dst + channels].copy_from_slice(&data[src..src + channels]);
        }
    }
    out
}

/// Extracts the interior of a padded activation array.
#[must_use]
pub fn unpad_output(
    width: usize,
    height: usize,
    channels: usize,
    pad: usize,
    data: &[i16],
) -> Vec<i16> {
    assert_eq!(data.len(), padded_len(width, height, channels, pad));
    let mut out = vec![0i16; width * height * channels];
    for y in 0..height {
        for x in 0..width {
            let src = padded_at(width, channels, pad, x + pad, y + pad);
            let dst = (y * width + x) * channels;
            out[dst..dst + channels].copy_from_slice(&data[src..src + channels]);
        }
    }
    out
}

/// Forward convolution (+ optional bias and ReLU).
///
/// `input` is padded `(H+2p) × (W+2p) × C_in`; `weights` are
/// `[f][ky][kx][c]`; the result is padded `(H+2p) × (W+2p) × C_out` with
/// zero borders. Accumulation: per `kx` block over `(ky, c)` from zero,
/// then block partials summed in `kx` order, then bias, then ReLU — the
/// generated code's exact order.
///
/// # Panics
///
/// Panics on mismatched array lengths.
#[must_use]
pub fn conv_forward(
    layer: &ConvLayer,
    input: &[i16],
    weights: &[i16],
    bias: &[i16],
    relu: bool,
) -> Vec<i16> {
    let (w, h, ci, co, k, p) = (
        layer.width,
        layer.height,
        layer.in_channels,
        layer.out_channels,
        layer.kernel,
        layer.pad,
    );
    assert_eq!(input.len(), padded_len(w, h, ci, p), "input length");
    assert_eq!(weights.len(), co * k * k * ci, "weights length");
    assert_eq!(bias.len(), co, "bias length");

    let mut out = vec![0i16; padded_len(w, h, co, p)];
    for y in 0..h {
        for x in 0..w {
            for f in 0..co {
                let mut partials = vec![0i16; k];
                for (kx, acc) in partials.iter_mut().enumerate() {
                    for ky in 0..k {
                        for c in 0..ci {
                            let iv = input[padded_at(w, ci, p, x + kx, y + ky) + c];
                            let wv = weights[((f * k + ky) * k + kx) * ci + c];
                            *acc = sat_add16(*acc, sat_mul16(iv, wv));
                        }
                    }
                }
                let mut v = partials[0];
                for &pt in &partials[1..] {
                    v = sat_add16(v, pt);
                }
                v = sat_add16(v, bias[f]);
                if relu {
                    v = v.max(0);
                }
                out[padded_at(w, co, p, x + p, y + p) + f] = v;
            }
        }
    }
    out
}

/// A channel-shard partial convolution (no bias, no ReLU) — what each
/// vault computes when a layer's filters are sharded across vaults
/// (§IV-B). `layer.in_channels` must be the shard's channel count.
#[must_use]
pub fn conv_partial(layer: &ConvLayer, input_shard: &[i16], weights_shard: &[i16]) -> Vec<i16> {
    let zeros = vec![0i16; layer.out_channels];
    conv_forward(layer, input_shard, weights_shard, &zeros, false)
}

/// The shard-accumulation phase: sums partials in shard order, adds
/// bias, applies ReLU. All arrays are padded `(H+2p) × (W+2p) × C_out`.
///
/// # Panics
///
/// Panics if no partials are given or lengths mismatch.
#[must_use]
pub fn relu_bias_sum(layer: &ConvLayer, partials: &[&[i16]], bias: &[i16], relu: bool) -> Vec<i16> {
    assert!(!partials.is_empty());
    let (w, h, co, p) = (layer.width, layer.height, layer.out_channels, layer.pad);
    let mut out = vec![0i16; padded_len(w, h, co, p)];
    for y in 0..h {
        for x in 0..w {
            let at = padded_at(w, co, p, x + p, y + p);
            for f in 0..co {
                let mut v = partials[0][at + f];
                for sh in &partials[1..] {
                    v = sat_add16(v, sh[at + f]);
                }
                v = sat_add16(v, bias[f]);
                if relu {
                    v = v.max(0);
                }
                out[at + f] = v;
            }
        }
    }
    out
}

/// 2×2 stride-2 max pooling. Input is padded `(H+2) × (W+2) × C` (pad
/// 1); output is padded `(H/2+2) × (W/2+2) × C` ready to feed the next
/// convolution.
#[must_use]
pub fn max_pool(layer: &PoolLayer, input: &[i16]) -> Vec<i16> {
    let (w, h, c) = (layer.width, layer.height, layer.channels);
    assert_eq!(input.len(), padded_len(w, h, c, 1));
    let (ow, oh) = (layer.out_width(), layer.out_height());
    let mut out = vec![0i16; padded_len(ow, oh, c, 1)];
    for oy in 0..oh {
        for ox in 0..ow {
            for ch in 0..c {
                let v = [(0, 0), (1, 0), (0, 1), (1, 1)]
                    .into_iter()
                    .map(|(dx, dy)| {
                        input[padded_at(w, c, 1, 2 * ox + dx + 1, 2 * oy + dy + 1) + ch]
                    })
                    .max()
                    .expect("four candidates");
                out[padded_at(ow, c, 1, ox + 1, oy + 1) + ch] = v;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_layer() -> ConvLayer {
        ConvLayer {
            name: "t",
            in_channels: 2,
            out_channels: 2,
            width: 4,
            height: 4,
            kernel: 3,
            pad: 1,
        }
    }

    #[test]
    fn pad_unpad_roundtrip() {
        let data: Vec<i16> = (0..4 * 4 * 2).map(|i| i as i16).collect();
        let padded = pad_input(4, 4, 2, 1, &data);
        assert_eq!(padded.len(), 6 * 6 * 2);
        assert_eq!(padded[0], 0, "border is zero");
        assert_eq!(unpad_output(4, 4, 2, 1, &padded), data);
    }

    #[test]
    fn identity_kernel_convolution() {
        // A kernel that is 1 at (ky=1, kx=1, c=f) copies the input.
        let layer = small_layer();
        let data: Vec<i16> = (0..32).map(|i| (i % 11) as i16 - 5).collect();
        let input = pad_input(4, 4, 2, 1, &data);
        let mut weights = vec![0i16; 2 * 3 * 3 * 2];
        for f in 0..2 {
            weights[((f * 3 + 1) * 3 + 1) * 2 + f] = 1;
        }
        let out = conv_forward(&layer, &input, &weights, &[0, 0], false);
        assert_eq!(unpad_output(4, 4, 2, 1, &out), data);
    }

    #[test]
    fn bias_and_relu() {
        let layer = small_layer();
        let input = vec![0i16; padded_len(4, 4, 2, 1)];
        let weights = vec![0i16; 36];
        let out = conv_forward(&layer, &input, &weights, &[5, -5], true);
        let inner = unpad_output(4, 4, 2, 1, &out);
        assert!(inner.iter().step_by(2).all(|&v| v == 5));
        assert!(
            inner.iter().skip(1).step_by(2).all(|&v| v == 0),
            "ReLU clamps -5"
        );
    }

    #[test]
    fn sharded_equals_monolithic_when_no_saturation() {
        // With small values, shard partials + accumulate == full conv.
        let mut layer = small_layer();
        layer.in_channels = 4;
        let data: Vec<i16> = (0..4 * 4 * 4).map(|i| ((i * 7) % 9) as i16 - 4).collect();
        let input = pad_input(4, 4, 4, 1, &data);
        let weights: Vec<i16> = (0..2 * 9 * 4).map(|i| ((i * 5) % 7) as i16 - 3).collect();
        let bias = [3i16, -2];
        let full = conv_forward(&layer, &input, &weights, &bias, true);

        // Split channels 0..2 and 2..4.
        let shard_layer = ConvLayer {
            in_channels: 2,
            ..layer
        };
        let split_input = |lo: usize| -> Vec<i16> {
            let mut v = Vec::new();
            for px in 0..6 * 6 {
                v.extend_from_slice(&input[px * 4 + lo..px * 4 + lo + 2]);
            }
            v
        };
        let split_weights = |lo: usize| -> Vec<i16> {
            let mut v = Vec::new();
            for fk in 0..2 * 9 {
                v.extend_from_slice(&weights[fk * 4 + lo..fk * 4 + lo + 2]);
            }
            v
        };
        let p0 = conv_partial(&shard_layer, &split_input(0), &split_weights(0));
        let p1 = conv_partial(&shard_layer, &split_input(2), &split_weights(2));
        let merged = relu_bias_sum(&layer, &[&p0, &p1], &bias, true);
        assert_eq!(merged, full);
    }

    #[test]
    fn pooling_picks_maxima() {
        let layer = PoolLayer {
            name: "p",
            channels: 1,
            width: 4,
            height: 4,
        };
        let data: Vec<i16> = vec![
            1, 9, 2, 3, //
            4, 5, 6, 7, //
            0, 0, 1, 1, //
            8, 0, 1, 2,
        ];
        let input = pad_input(4, 4, 1, 1, &data);
        let out = max_pool(&layer, &input);
        let inner = unpad_output(2, 2, 1, 1, &out);
        assert_eq!(inner, vec![9, 7, 8, 2]);
    }
}

//! Convolutional neural networks: VGG-16/VGG-19 layer geometry, golden
//! references, VIP code generation, and the analytical model (§II-B,
//! §IV-B).

mod codegen;
mod golden;
mod model;

pub use codegen::{
    accumulate_program, conv_tile_programs, pack_filters, pool_tile_programs, replicate_bias,
    AccumulateLayout, ConvLayout, ConvMode, PoolLayout,
};
pub use golden::{
    conv_forward, conv_partial, max_pool, pad_input, padded_at, padded_len, relu_bias_sum,
    unpad_output,
};
pub use model::LayerCosts;

/// A convolution layer's geometry (stride 1, square kernels — all VGG
/// convolutions are 3×3/s1/p1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvLayer {
    /// Layer name as the paper labels it (`c1_1` … `c5_3`).
    pub name: &'static str,
    /// Input channels.
    pub in_channels: usize,
    /// Output channels (filters).
    pub out_channels: usize,
    /// Input width = output width (padded convolution).
    pub width: usize,
    /// Input height = output height.
    pub height: usize,
    /// Kernel size (3 for VGG).
    pub kernel: usize,
    /// Zero padding (1 for VGG).
    pub pad: usize,
}

impl ConvLayer {
    /// Multiply-accumulates in this layer.
    #[must_use]
    pub fn macs(&self) -> u64 {
        (self.width * self.height * self.out_channels) as u64
            * (self.kernel * self.kernel * self.in_channels) as u64
    }

    /// Weight count.
    #[must_use]
    pub fn weights(&self) -> usize {
        self.out_channels * self.kernel * self.kernel * self.in_channels
    }
}

/// A max-pooling layer (VGG: 2×2, stride 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolLayer {
    /// Name (`p1` … `p5`).
    pub name: &'static str,
    /// Channels.
    pub channels: usize,
    /// Input width (output is half).
    pub width: usize,
    /// Input height.
    pub height: usize,
}

impl PoolLayer {
    /// Output width.
    #[must_use]
    pub fn out_width(&self) -> usize {
        self.width / 2
    }

    /// Output height.
    #[must_use]
    pub fn out_height(&self) -> usize {
        self.height / 2
    }

    /// Comparison operations (one max per input element).
    #[must_use]
    pub fn ops(&self) -> u64 {
        (self.width * self.height * self.channels) as u64
    }
}

/// A fully-connected layer (see [`crate::mlp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FcLayer {
    /// Name (`fc6` … `fc8`).
    pub name: &'static str,
    /// Input length.
    pub inputs: usize,
    /// Output length.
    pub outputs: usize,
}

impl FcLayer {
    /// Multiply-accumulates.
    #[must_use]
    pub fn macs(&self) -> u64 {
        (self.inputs * self.outputs) as u64
    }
}

/// One layer of a VGG network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VggLayer {
    /// Convolution (+ ReLU).
    Conv(ConvLayer),
    /// 2×2 max pooling.
    Pool(PoolLayer),
    /// Fully connected (+ ReLU except the last).
    Fc(FcLayer),
}

impl VggLayer {
    /// The layer's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            VggLayer::Conv(c) => c.name,
            VggLayer::Pool(p) => p.name,
            VggLayer::Fc(f) => f.name,
        }
    }
}

fn conv(name: &'static str, in_c: usize, out_c: usize, side: usize) -> VggLayer {
    VggLayer::Conv(ConvLayer {
        name,
        in_channels: in_c,
        out_channels: out_c,
        width: side,
        height: side,
        kernel: 3,
        pad: 1,
    })
}

fn pool(name: &'static str, c: usize, side: usize) -> VggLayer {
    VggLayer::Pool(PoolLayer {
        name,
        channels: c,
        width: side,
        height: side,
    })
}

fn fc(name: &'static str, i: usize, o: usize) -> VggLayer {
    VggLayer::Fc(FcLayer {
        name,
        inputs: i,
        outputs: o,
    })
}

/// The VGG-16 network (Simonyan & Zisserman configuration D): 13
/// convolutions, 5 pools, 3 fully-connected layers.
#[must_use]
pub fn vgg16() -> Vec<VggLayer> {
    vec![
        conv("c1_1", 3, 64, 224),
        conv("c1_2", 64, 64, 224),
        pool("p1", 64, 224),
        conv("c2_1", 64, 128, 112),
        conv("c2_2", 128, 128, 112),
        pool("p2", 128, 112),
        conv("c3_1", 128, 256, 56),
        conv("c3_2", 256, 256, 56),
        conv("c3_3", 256, 256, 56),
        pool("p3", 256, 56),
        conv("c4_1", 256, 512, 28),
        conv("c4_2", 512, 512, 28),
        conv("c4_3", 512, 512, 28),
        pool("p4", 512, 28),
        conv("c5_1", 512, 512, 14),
        conv("c5_2", 512, 512, 14),
        conv("c5_3", 512, 512, 14),
        pool("p5", 512, 14),
        fc("fc6", 25_088, 4096),
        fc("fc7", 4096, 4096),
        fc("fc8", 4096, 1000),
    ]
}

/// The VGG-19 network (configuration E): 16 convolutions.
#[must_use]
pub fn vgg19() -> Vec<VggLayer> {
    vec![
        conv("c1_1", 3, 64, 224),
        conv("c1_2", 64, 64, 224),
        pool("p1", 64, 224),
        conv("c2_1", 64, 128, 112),
        conv("c2_2", 128, 128, 112),
        pool("p2", 128, 112),
        conv("c3_1", 128, 256, 56),
        conv("c3_2", 256, 256, 56),
        conv("c3_3", 256, 256, 56),
        conv("c3_4", 256, 256, 56),
        pool("p3", 256, 56),
        conv("c4_1", 256, 512, 28),
        conv("c4_2", 512, 512, 28),
        conv("c4_3", 512, 512, 28),
        conv("c4_4", 512, 512, 28),
        pool("p4", 512, 28),
        conv("c5_1", 512, 512, 14),
        conv("c5_2", 512, 512, 14),
        conv("c5_3", 512, 512, 14),
        conv("c5_4", 512, 512, 14),
        pool("p5", 512, 14),
        fc("fc6", 25_088, 4096),
        fc("fc7", 4096, 4096),
        fc("fc8", 4096, 1000),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_totals_match_paper() {
        let layers = vgg16();
        assert_eq!(layers.len(), 21);
        let conv_macs: u64 = layers
            .iter()
            .filter_map(|l| match l {
                VggLayer::Conv(c) => Some(c.macs()),
                _ => None,
            })
            .sum();
        // §II-B: "the thirteen convolution layers in VGG-16 require 15.3
        // billion MAC operations".
        assert!(
            (conv_macs as f64 / 1e9 - 15.3).abs() < 0.2,
            "{conv_macs} MACs"
        );
        // fc6: 25,088 inputs x 4,096 outputs ~ 100M MACs (SS II-C).
        let fc6 = layers.iter().find(|l| l.name() == "fc6").unwrap();
        if let VggLayer::Fc(f) = fc6 {
            assert!((f.macs() as f64 / 1e6 - 102.8).abs() < 1.0);
        }
    }

    #[test]
    fn vgg19_has_sixteen_convs() {
        let convs = vgg19()
            .iter()
            .filter(|l| matches!(l, VggLayer::Conv(_)))
            .count();
        assert_eq!(convs, 16);
    }

    #[test]
    fn pool_geometry() {
        let p = PoolLayer {
            name: "p1",
            channels: 64,
            width: 224,
            height: 224,
        };
        assert_eq!(p.out_width(), 112);
        assert_eq!(p.ops(), 224 * 224 * 64);
    }
}

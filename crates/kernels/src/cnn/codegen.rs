//! VIP code generation for convolution and pooling tiles (§IV-B).
//!
//! The convolution follows the paper's template: load as many filters
//! into the scratchpad as fit, keep a ring of `k+1` input *columns*
//! (1 × k × z activation slices), prefetch the next column while
//! applying the resident filters to the current window, and emit one
//! `m.v.mul.add` per kernel column — Equation (5a) — followed by short
//! `v.v.add`s for Equations (5b)–(5d), bias, and ReLU. Layers whose
//! filters exceed the 4 KiB scratchpad run in *partial* mode: each vault
//! convolves a channel shard and a second accumulation pass sums the
//! shards, adds biases, and applies ReLU.
//!
//! Activations use the padded layout of [`super::golden`]: the host
//! zero-pads when staging, so the generated inner loop has no boundary
//! cases.

use vip_isa::{Asm, ElemType, HorizontalOp, Program, Reg, VerticalOp};
use vip_mem::Hmc;

use super::golden::{padded_at, padded_len};
use super::{ConvLayer, PoolLayer};
use crate::schedule::ConvSchedule;
use crate::sync::{bytes_to_i16s, i16s_to_bytes};

const TY: ElemType = ElemType::I16;

/// Whether a convolution tile produces finished activations or
/// channel-shard partials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvMode {
    /// Bias + ReLU inline (layer fits one vault's scratchpads).
    Full,
    /// No bias/ReLU; a separate [`accumulate_program`] pass merges
    /// shards.
    Partial,
}

/// DRAM layout of one convolution tile.
#[derive(Debug, Clone, Copy)]
pub struct ConvLayout {
    /// The layer geometry (for partial mode, `in_channels` is the
    /// shard's channel count).
    pub layer: ConvLayer,
    /// Padded input activations.
    pub input_base: u64,
    /// Packed filters (see [`pack_filters`]).
    pub weights_base: u64,
    /// Biases, `[out_channels]`.
    pub bias_base: u64,
    /// Padded output activations (or partials).
    pub output_base: u64,
    /// Filters resident per scratchpad pass.
    pub filters_per_group: usize,
    /// Full or partial (sharded) operation.
    pub mode: ConvMode,
}

impl ConvLayout {
    /// The largest filter-group size the 4 KiB scratchpad supports for
    /// `layer` (power-of-two capped at `out_channels`).
    #[must_use]
    pub fn max_filters_per_group(layer: &ConvLayer) -> usize {
        let (k, ci) = (layer.kernel, layer.in_channels);
        let col_bytes = 4 * k * ci * 2; // 4-column ring
        let mut f = 1;
        loop {
            let next = f * 2;
            let need = next * k * k * ci * 2 + col_bytes + 3 * next * 2 + next * 2;
            if need > 4096 || next > layer.out_channels {
                return f;
            }
            f = next;
        }
    }

    fn sp_map(&self, ring: usize) -> ConvSpMap {
        let (k, ci) = (self.layer.kernel, self.layer.in_channels);
        let f = self.filters_per_group;
        let filt = 0;
        let bias = filt + f * k * k * ci * 2;
        let cols = bias + f * 2;
        let col_bytes = k * ci * 2;
        let p0 = cols + ring * col_bytes;
        let p1 = p0 + f * 2;
        let p2 = p1 + f * 2;
        let end = p2 + f * 2;
        assert!(end <= 4096, "conv scratchpad layout needs {end} bytes");
        ConvSpMap {
            filt,
            bias,
            cols,
            col_bytes,
            p0,
            p1,
            p2,
        }
    }

    /// The hand-picked default schedule for this layout's layer and
    /// filter grouping.
    #[must_use]
    pub fn default_schedule(&self) -> ConvSchedule {
        ConvSchedule::default_for(&self.layer, self.filters_per_group)
    }

    /// Bytes of one packed filter group.
    #[must_use]
    pub fn group_weight_bytes(&self) -> usize {
        self.filters_per_group * self.layer.kernel * self.layer.kernel * self.layer.in_channels * 2
    }

    /// Stages padded input, packed weights, and biases (host side).
    pub fn load_into(&self, hmc: &mut Hmc, padded_input: &[i16], weights: &[i16], bias: &[i16]) {
        let l = &self.layer;
        assert_eq!(
            padded_input.len(),
            padded_len(l.width, l.height, l.in_channels, l.pad)
        );
        assert_eq!(bias.len(), l.out_channels);
        let packed = pack_filters(l, self.filters_per_group, weights);
        hmc.host_write(self.input_base, &i16s_to_bytes(padded_input));
        hmc.host_write(self.weights_base, &i16s_to_bytes(&packed));
        hmc.host_write(self.bias_base, &i16s_to_bytes(bias));
    }

    /// Reads the padded output array back (host side).
    #[must_use]
    pub fn read_output(&self, hmc: &Hmc) -> Vec<i16> {
        let l = &self.layer;
        let n = padded_len(l.width, l.height, l.out_channels, l.pad) * 2;
        bytes_to_i16s(&hmc.host_read(self.output_base, n))
    }
}

#[derive(Debug, Clone, Copy)]
struct ConvSpMap {
    filt: usize,
    bias: usize,
    cols: usize,
    col_bytes: usize,
    p0: usize,
    p1: usize,
    p2: usize,
}

/// Packs natural `[f][ky][kx][c]` filters into the per-group, per-
/// kernel-column layout the generated code streams:
/// `[group][kx][f_in_group][ky][c]` — each `kx` block is an `m.v` matrix
/// whose rows are one filter's `(ky, c)` slice.
///
/// # Panics
///
/// Panics if `filters_per_group` does not divide `out_channels` or the
/// weight count mismatches.
#[must_use]
pub fn pack_filters(layer: &ConvLayer, filters_per_group: usize, weights: &[i16]) -> Vec<i16> {
    let (k, ci, co) = (layer.kernel, layer.in_channels, layer.out_channels);
    assert_eq!(weights.len(), co * k * k * ci);
    assert_eq!(
        co % filters_per_group,
        0,
        "group size must divide filter count"
    );
    let mut out = Vec::with_capacity(weights.len());
    for g in 0..co / filters_per_group {
        for kx in 0..k {
            for fl in 0..filters_per_group {
                let f = g * filters_per_group + fl;
                for ky in 0..k {
                    for c in 0..ci {
                        out.push(weights[((f * k + ky) * k + kx) * ci + c]);
                    }
                }
            }
        }
    }
    out
}

#[derive(Debug, Clone, Copy)]
struct ConvRegs {
    // constants
    kz: Reg,
    f: Reg,
    ci: Reg,
    wlen: Reg,
    zero: Reg,
    // scratchpad bases
    sp_filt: Reg,
    sp_bias: Reg,
    sp_p0: Reg,
    sp_p1: Reg,
    sp_p2: Reg,
    // temps
    t: Reg,
    d: Reg,
    // pointers
    p_w: Reg,
    p_b: Reg,
    p_in: Reg,
    p_in_base: Reg,
    p_out: Reg,
    p_out_base: Reg,
    // counters
    fg: Reg,
    fg_n: Reg,
    y: Reg,
    y_n: Reg,
    x: Reg,
    x_n: Reg,
}

impl ConvRegs {
    fn allocate() -> Self {
        let mut next = 0u8;
        let mut r = || {
            let reg = Reg::new(next);
            next += 1;
            reg
        };
        ConvRegs {
            kz: r(),
            f: r(),
            ci: r(),
            wlen: r(),
            zero: r(),
            sp_filt: r(),
            sp_bias: r(),
            sp_p0: r(),
            sp_p1: r(),
            sp_p2: r(),
            t: r(),
            d: r(),
            p_w: r(),
            p_b: r(),
            p_in: r(),
            p_in_base: r(),
            p_out: r(),
            p_out_base: r(),
            fg: r(),
            fg_n: r(),
            y: r(),
            y_n: r(),
            x: r(),
            x_n: r(),
        }
    }
}

/// Emits the loads for one input column (k row-slices of `ci` channels)
/// into ring slot `slot`, then advances `p_in` one column.
fn emit_column_load(asm: &mut Asm, r: &ConvRegs, sp: &ConvSpMap, layout: &ConvLayout, slot: usize) {
    let l = &layout.layer;
    let in_row_bytes = ((l.width + 2 * l.pad) * l.in_channels * 2) as i32;
    let cb = sp.col_bytes as i32;
    let ci_b = (l.in_channels * 2) as i32;
    for row in 0..l.kernel as i32 {
        asm.addi(
            r.t,
            r.zero,
            (sp.cols as i32) + slot as i32 * cb + row * ci_b,
        )
        .addi(r.d, r.p_in, row * in_row_bytes)
        .ld_sram(TY, r.t, r.d, r.ci);
    }
    asm.addi(r.p_in, r.p_in, ci_b);
}

/// Generates per-PE programs for one convolution tile under an
/// explicit schedule, splitting output rows across the schedule's PEs.
///
/// The schedule's `ring` sets the input-column ring depth (and with it
/// the x-loop unroll and prefetch distance); `interleave_rows` assigns
/// each PE every `pes`-th output row instead of a contiguous band.
///
/// # Panics
///
/// Panics if `sched.validate` rejects the layer shape or
/// `sched.filters_per_group` disagrees with the layout's packed-weight
/// grouping.
#[must_use]
pub fn conv_tile_programs(layout: &ConvLayout, sched: &ConvSchedule) -> Vec<Program> {
    let l = layout.layer;
    sched
        .validate(&l)
        .expect("conv schedule is valid for the layer");
    assert_eq!(
        sched.filters_per_group, layout.filters_per_group,
        "schedule group size must match the staged packing"
    );
    let (ring, pes) = (sched.ring, sched.pes);
    let sp = layout.sp_map(ring);
    let rows_per_pe = l.height / pes;
    let n_groups = l.out_channels / layout.filters_per_group;
    let kz = l.kernel * l.in_channels;
    let in_row_bytes = (l.width + 2 * l.pad) * l.in_channels * 2;
    let out_row_bytes = (l.width + 2 * l.pad) * l.out_channels * 2;
    let out_px_bytes = l.out_channels * 2;
    let fb = layout.filters_per_group * 2;
    let blk = (layout.filters_per_group * kz * 2) as i32; // kx block bytes
                                                          // Rows advance one padded row per trip for a contiguous band,
                                                          // `pes` rows per trip when interleaved.
    let row_step = if sched.interleave_rows { pes } else { 1 };

    (0..pes)
        .map(|pe| {
            let r = ConvRegs::allocate();
            let mut asm = Asm::new();
            let y0 = if sched.interleave_rows {
                pe
            } else {
                pe * rows_per_pe
            };
            // First output pixel of this PE's first row, at padded
            // coordinates (pad, y0 + pad).
            let out_start = layout.output_base
                + (padded_at(l.width, l.out_channels, l.pad, l.pad, y0 + l.pad) * 2) as u64;
            // Input window top-left for output row y0 is padded row y0.
            let in_start = layout.input_base + (y0 * in_row_bytes) as u64;

            asm.mov_imm(r.kz, kz as i64)
                .mov_imm(r.f, layout.filters_per_group as i64)
                .mov_imm(r.ci, l.in_channels as i64)
                .mov_imm(r.wlen, (layout.filters_per_group * l.kernel * kz) as i64)
                .mov_imm(r.zero, 0)
                .mov_imm(r.sp_filt, sp.filt as i64)
                .mov_imm(r.sp_bias, sp.bias as i64)
                .mov_imm(r.sp_p0, sp.p0 as i64)
                .mov_imm(r.sp_p1, sp.p1 as i64)
                .mov_imm(r.sp_p2, sp.p2 as i64)
                .mov_imm(r.p_w, layout.weights_base as i64)
                .mov_imm(r.p_b, layout.bias_base as i64)
                .mov_imm(r.p_in_base, in_start as i64)
                .mov_imm(r.p_out_base, out_start as i64)
                .set_mr(r.f)
                .mov_imm(r.fg, 0)
                .mov_imm(r.fg_n, n_groups as i64)
                .label("fg");

            // Load this group's filters and biases.
            asm.ld_sram(TY, r.sp_filt, r.p_w, r.wlen)
                .mov_imm(r.t, layout.group_weight_bytes() as i64)
                .add(r.p_w, r.p_w, r.t);
            if layout.mode == ConvMode::Full {
                asm.ld_sram(TY, r.sp_bias, r.p_b, r.f)
                    .addi(r.p_b, r.p_b, fb as i32);
            }
            asm.mov(r.p_in, r.p_in_base)
                .mov(r.p_out, r.p_out_base)
                .mov_imm(r.y, 0)
                .mov_imm(r.y_n, rows_per_pe as i64)
                .label("row");

            // Prime the column ring with columns 0..ring-2.
            for slot in 0..ring - 1 {
                emit_column_load(&mut asm, &r, &sp, layout, slot);
            }

            asm.mov_imm(r.x, 0)
                .mov_imm(r.x_n, (l.width / ring) as i64)
                .label("xl");
            for u in 0..ring {
                // Prefetch column x+ring-1 into the ring slot being
                // vacated.
                emit_column_load(&mut asm, &r, &sp, layout, (u + ring - 1) % ring);
                // One m.v.mul.add per kernel column (Equation 5a+5b):
                // matrix = the kx block of the packed filters, vector =
                // the window's kx-th input column.
                asm.set_vl(r.kz);
                let cb = sp.col_bytes as i32;
                for (kx, p) in [r.sp_p0, r.sp_p1, r.sp_p2].into_iter().enumerate() {
                    let slot = ((u + kx) % ring) as i32;
                    asm.addi(r.t, r.zero, sp.cols as i32 + slot * cb)
                        .addi(r.d, r.sp_filt, kx as i32 * blk)
                        .mat_vec(VerticalOp::Mul, HorizontalOp::Add, TY, p, r.d, r.t);
                }
                asm.set_vl(r.f)
                    .vec_vec(VerticalOp::Add, TY, r.sp_p0, r.sp_p0, r.sp_p1)
                    .vec_vec(VerticalOp::Add, TY, r.sp_p0, r.sp_p0, r.sp_p2);
                if layout.mode == ConvMode::Full {
                    asm.vec_vec(VerticalOp::Add, TY, r.sp_p0, r.sp_p0, r.sp_bias)
                        .vec_scalar(VerticalOp::Max, TY, r.sp_p0, r.sp_p0, r.zero);
                }
                asm.st_sram(TY, r.sp_p0, r.p_out, r.f)
                    .addi(r.p_out, r.p_out, out_px_bytes as i32);
            }
            asm.addi(r.x, r.x, 1).blt(r.x, r.x_n, "xl");

            // Row epilogue: rewind column pointer to the next row's
            // start, advance the output past the padding border. The
            // loads ran `ring - 1` prefetch columns past the row; the
            // over-read lands in the next padded row (or zero-backed
            // pages at the tile's end) and is never consumed.
            let consumed = ((l.width + ring - 1) * l.in_channels * 2) as i64;
            let in_adj = (row_step * in_row_bytes) as i64 - consumed;
            let out_adj = (row_step * out_row_bytes) as i64 - (l.width * out_px_bytes) as i64;
            asm.mov_imm(r.t, in_adj)
                .add(r.p_in, r.p_in, r.t)
                .mov_imm(r.t, out_adj)
                .add(r.p_out, r.p_out, r.t)
                .addi(r.y, r.y, 1)
                .blt(r.y, r.y_n, "row");

            // Next filter group writes the next F output channels.
            asm.addi(r.p_out_base, r.p_out_base, fb as i32)
                .addi(r.fg, r.fg, 1)
                .blt(r.fg, r.fg_n, "fg")
                .memfence()
                .halt();
            asm.assemble().expect("conv program assembles")
        })
        .collect()
}

/// DRAM layout of a pooling tile.
#[derive(Debug, Clone, Copy)]
pub struct PoolLayout {
    /// Layer geometry.
    pub layer: PoolLayer,
    /// Padded input, `(H+2) × (W+2) × C`.
    pub input_base: u64,
    /// Padded output, `(H/2+2) × (W/2+2) × C`.
    pub output_base: u64,
}

impl PoolLayout {
    /// Stages the padded input (host side).
    pub fn load_into(&self, hmc: &mut Hmc, padded_input: &[i16]) {
        let l = &self.layer;
        assert_eq!(
            padded_input.len(),
            padded_len(l.width, l.height, l.channels, 1)
        );
        hmc.host_write(self.input_base, &i16s_to_bytes(padded_input));
    }

    /// Reads the padded output (host side).
    #[must_use]
    pub fn read_output(&self, hmc: &Hmc) -> Vec<i16> {
        let l = &self.layer;
        let n = padded_len(l.out_width(), l.out_height(), l.channels, 1) * 2;
        bytes_to_i16s(&hmc.host_read(self.output_base, n))
    }

    /// Output pixels per scratchpad chunk.
    fn chunk(&self) -> usize {
        // Two input buffers of 2G×C plus the output reuses buffer B.
        let g = 1024 / self.layer.channels;
        g.clamp(1, 8).min(self.layer.out_width())
    }
}

/// Generates per-PE programs for a 2×2 max-pool tile, output rows split
/// across `pes`.
///
/// # Panics
///
/// Panics if output rows don't divide across PEs or the output width is
/// not a multiple of the internal chunk size.
#[must_use]
pub fn pool_tile_programs(layout: &PoolLayout, pes: usize) -> Vec<Program> {
    let l = layout.layer;
    let (ow, oh, c) = (l.out_width(), l.out_height(), l.channels);
    assert_eq!(oh % pes, 0, "output rows must divide across PEs");
    let g = layout.chunk();
    assert_eq!(
        ow % g,
        0,
        "output width {ow} must be a multiple of the chunk {g}"
    );
    let rows_per_pe = oh / pes;
    let in_row_bytes = ((l.width + 2) * c * 2) as i64;
    let out_row_bytes = ((ow + 2) * c * 2) as i64;
    let chunk_in_bytes = (2 * g * c * 2) as i64;
    let chunk_out_bytes = (g * c * 2) as i64;
    // Scratchpad: A | B (B doubles as the output buffer).
    let sp_a = 0usize;
    let sp_b = 2 * g * c * 2;
    assert!(2 * sp_b <= 4096, "pool chunk overflows the scratchpad");

    (0..pes)
        .map(|pe| {
            let mut next = 0u8;
            let mut reg = || {
                let r = Reg::new(next);
                next += 1;
                r
            };
            let (r_len, r_c, r_a, r_b, r_t, r_t2, r_pa, r_pb, r_po, r_y, r_yn, r_x, r_xn) = (
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
            );
            let y0 = pe * rows_per_pe;
            // Input rows 2*y0+1, 2*y0+2 (padded coords), interior column 1.
            let in_a =
                layout.input_base + ((2 * y0 + 1) as i64 * in_row_bytes) as u64 + (c * 2) as u64;
            let out_start =
                layout.output_base + ((y0 + 1) as i64 * out_row_bytes) as u64 + (c * 2) as u64;

            let mut asm = Asm::new();
            asm.mov_imm(r_len, (2 * g * c) as i64)
                .mov_imm(r_c, c as i64)
                .mov_imm(r_a, sp_a as i64)
                .mov_imm(r_b, sp_b as i64)
                .mov_imm(r_pa, in_a as i64)
                .mov_imm(r_po, out_start as i64)
                .mov_imm(r_y, 0)
                .mov_imm(r_yn, rows_per_pe as i64)
                .label("row")
                .mov_imm(r_x, 0)
                .mov_imm(r_xn, (ow / g) as i64)
                .label("xl");
            // Load 2G input pixels from each of the two rows.
            asm.mov(r_pb, r_pa);
            asm.mov_imm(r_t, in_row_bytes).add(r_pb, r_pb, r_t);
            asm.ld_sram(TY, r_a, r_pa, r_len)
                .ld_sram(TY, r_b, r_pb, r_len)
                .set_vl(r_len)
                .vec_vec(VerticalOp::Max, TY, r_a, r_a, r_b)
                .set_vl(r_c);
            // Horizontal pairs: out[g] = max(A[2g], A[2g+1]).
            for gi in 0..g {
                let out_at = sp_b + gi * c * 2;
                asm.addi(r_t, r_a, (2 * gi * c * 2) as i32)
                    .addi(r_t2, r_t, (c * 2) as i32)
                    .mov_imm(r_b, out_at as i64)
                    .vec_vec(VerticalOp::Max, TY, r_b, r_t, r_t2);
            }
            asm.mov_imm(r_b, sp_b as i64)
                .mov_imm(r_t, (g * c) as i64)
                .st_sram(TY, r_b, r_po, r_t);
            asm.mov_imm(r_t, chunk_in_bytes)
                .add(r_pa, r_pa, r_t)
                .mov_imm(r_t, chunk_out_bytes)
                .add(r_po, r_po, r_t)
                .addi(r_x, r_x, 1)
                .blt(r_x, r_xn, "xl");
            // Row epilogue: inputs advance two rows, outputs one.
            let in_adj = 2 * in_row_bytes - (ow / g) as i64 * chunk_in_bytes;
            let out_adj = out_row_bytes - (ow / g) as i64 * chunk_out_bytes;
            asm.mov_imm(r_t, in_adj)
                .add(r_pa, r_pa, r_t)
                .mov_imm(r_t, out_adj)
                .add(r_po, r_po, r_t)
                .addi(r_y, r_y, 1)
                .blt(r_y, r_yn, "row")
                .memfence()
                .halt();
            asm.assemble().expect("pool program assembles")
        })
        .collect()
}

/// DRAM layout for the shard-accumulation pass and its program
/// generator: sums `shards` partial arrays, adds a host-replicated bias
/// row, applies ReLU, and writes finished activations.
#[derive(Debug, Clone)]
pub struct AccumulateLayout {
    /// The (full) layer being finished.
    pub layer: ConvLayer,
    /// Base of each shard's padded partial array.
    pub partial_bases: Vec<u64>,
    /// A bias row replicated `chunk` times (host-staged).
    pub bias_row_base: u64,
    /// Final padded output.
    pub output_base: u64,
}

/// Generates per-PE programs for the accumulation pass.
///
/// # Panics
///
/// Panics if rows don't divide across PEs or the chunk does not divide
/// the width.
#[must_use]
pub fn accumulate_program(layout: &AccumulateLayout, pes: usize) -> Vec<Program> {
    let l = layout.layer;
    let co = l.out_channels;
    let g = (640 / co).clamp(1, 8).min(l.width);
    assert_eq!(
        l.width % g,
        0,
        "width {} must be a multiple of chunk {g}",
        l.width
    );
    assert_eq!(l.height % pes, 0);
    let rows_per_pe = l.height / pes;
    let row_bytes = ((l.width + 2 * l.pad) * co * 2) as i64;
    let chunk_bytes = (g * co * 2) as i64;
    let sp_acc = 0usize;
    let sp_tmp = g * co * 2;
    let sp_bias = 2 * g * co * 2;
    assert!(sp_bias + g * co * 2 <= 4096);

    (0..pes)
        .map(|pe| {
            let mut next = 0u8;
            let mut reg = || {
                let r = Reg::new(next);
                next += 1;
                r
            };
            let (r_len, r_acc, r_tmp, r_bias, r_t, r_zero, r_po, r_y, r_yn, r_x, r_xn) = (
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
                reg(),
            );
            let p_shard: Vec<Reg> = layout.partial_bases.iter().map(|_| reg()).collect();
            let y0 = pe * rows_per_pe;
            let interior =
                |base: u64| base + (padded_at(l.width, co, l.pad, l.pad, y0 + l.pad) * 2) as u64;

            let mut asm = Asm::new();
            asm.mov_imm(r_len, (g * co) as i64)
                .mov_imm(r_acc, sp_acc as i64)
                .mov_imm(r_tmp, sp_tmp as i64)
                .mov_imm(r_bias, sp_bias as i64)
                .mov_imm(r_zero, 0)
                .mov_imm(r_po, interior(layout.output_base) as i64);
            for (reg, base) in p_shard.iter().zip(&layout.partial_bases) {
                asm.mov_imm(*reg, interior(*base) as i64);
            }
            // The replicated bias row loads once.
            asm.mov_imm(r_t, layout.bias_row_base as i64)
                .ld_sram(TY, r_bias, r_t, r_len)
                .set_vl(r_len)
                .mov_imm(r_y, 0)
                .mov_imm(r_yn, rows_per_pe as i64)
                .label("row")
                .mov_imm(r_x, 0)
                .mov_imm(r_xn, (l.width / g) as i64)
                .label("xl");
            asm.ld_sram(TY, r_acc, p_shard[0], r_len);
            for shard in &p_shard[1..] {
                asm.ld_sram(TY, r_tmp, *shard, r_len).vec_vec(
                    VerticalOp::Add,
                    TY,
                    r_acc,
                    r_acc,
                    r_tmp,
                );
            }
            asm.vec_vec(VerticalOp::Add, TY, r_acc, r_acc, r_bias)
                .vec_scalar(VerticalOp::Max, TY, r_acc, r_acc, r_zero)
                .st_sram(TY, r_acc, r_po, r_len);
            for reg in p_shard.iter().chain([&r_po]) {
                asm.mov_imm(r_t, chunk_bytes).add(*reg, *reg, r_t);
            }
            asm.addi(r_x, r_x, 1).blt(r_x, r_xn, "xl");
            let adj = row_bytes - (l.width / g) as i64 * chunk_bytes;
            for reg in p_shard.iter().chain([&r_po]) {
                asm.mov_imm(r_t, adj).add(*reg, *reg, r_t);
            }
            asm.addi(r_y, r_y, 1)
                .blt(r_y, r_yn, "row")
                .memfence()
                .halt();
            asm.assemble().expect("accumulate program assembles")
        })
        .collect()
}

/// Replicates a bias vector `chunk` times for the accumulation pass's
/// single bias-row load. `chunk` must match what
/// [`accumulate_program`] derives: `clamp(640 / out_channels, 1, 8)`
/// capped at the width.
#[must_use]
pub fn replicate_bias(layer: &ConvLayer, bias: &[i16]) -> Vec<i16> {
    let g = (640 / layer.out_channels).clamp(1, 8).min(layer.width);
    let mut row = Vec::with_capacity(g * bias.len());
    for _ in 0..g {
        row.extend_from_slice(bias);
    }
    row
}

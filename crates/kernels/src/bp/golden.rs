//! Golden reference BP-M with VIP's exact saturating 16-bit arithmetic.

use vip_isa::alu::{sat_add16, sat_sub16};

use super::{Mrf, MrfParams, Sweep};

/// The four message arrays, named by arrival direction, each
/// `height × width × labels` and initialized to zero (uninformative).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Messages {
    /// Message into `(x, y)` from `(x, y-1)`.
    pub from_above: Vec<i16>,
    /// Message into `(x, y)` from `(x, y+1)`.
    pub from_below: Vec<i16>,
    /// Message into `(x, y)` from `(x-1, y)`.
    pub from_left: Vec<i16>,
    /// Message into `(x, y)` from `(x+1, y)`.
    pub from_right: Vec<i16>,
    /// Whether updates subtract element 0 of each new message (the
    /// broadcast-normalization idiom the generated VIP code uses to keep
    /// 16-bit values in range; argmin-invariant).
    pub normalize: bool,
}

impl Messages {
    /// Zeroed messages for `params`' geometry, with normalization on.
    #[must_use]
    pub fn new(params: &MrfParams) -> Self {
        let n = params.vertices() * params.labels;
        Messages {
            from_above: vec![0; n],
            from_below: vec![0; n],
            from_left: vec![0; n],
            from_right: vec![0; n],
            normalize: true,
        }
    }

    /// Zeroed messages with normalization off (matches the paper's raw
    /// Figure 2 instruction sequence; saturates after a few iterations).
    #[must_use]
    pub fn new_unnormalized(params: &MrfParams) -> Self {
        Messages {
            normalize: false,
            ..Self::new(params)
        }
    }

    /// The array a sweep writes.
    fn written_by(&mut self, sweep: Sweep) -> &mut Vec<i16> {
        match sweep {
            Sweep::Down => &mut self.from_above,
            Sweep::Up => &mut self.from_below,
            Sweep::Right => &mut self.from_left,
            Sweep::Left => &mut self.from_right,
        }
    }
}

/// `θ̂` of Equation (1a): data cost plus all incoming messages except the
/// one arriving from the update's target neighbor.
fn theta_hat(mrf: &Mrf, msgs: &Messages, x: usize, y: usize, sweep: Sweep) -> Vec<i16> {
    let l = mrf.params.labels;
    let at = mrf.params.at(x, y);
    let mut out = mrf.theta(x, y).to_vec();
    let mut add = |arr: &Vec<i16>| {
        for (o, &m) in out.iter_mut().zip(&arr[at..at + l]) {
            *o = sat_add16(*o, m);
        }
    };
    // Exclude the message that came *from* the target of this update.
    match sweep {
        Sweep::Down => {
            add(&msgs.from_above);
            add(&msgs.from_left);
            add(&msgs.from_right);
        }
        Sweep::Up => {
            add(&msgs.from_below);
            add(&msgs.from_left);
            add(&msgs.from_right);
        }
        Sweep::Right => {
            add(&msgs.from_left);
            add(&msgs.from_above);
            add(&msgs.from_below);
        }
        Sweep::Left => {
            add(&msgs.from_right);
            add(&msgs.from_above);
            add(&msgs.from_below);
        }
    }
    out
}

/// The min-sum update of Equation (1b):
/// `m(l) = min_{l'} (θ_{v,w}(l, l') + θ̂(l'))`.
fn min_sum(smoothness: &[i16], theta_hat: &[i16], labels: usize) -> Vec<i16> {
    (0..labels)
        .map(|l| {
            (0..labels)
                .map(|lp| sat_add16(smoothness[l * labels + lp], theta_hat[lp]))
                .min()
                .expect("labels > 0")
        })
        .collect()
}

fn normalize(msg: &mut [i16]) {
    let m0 = msg[0];
    for v in msg {
        *v = sat_sub16(*v, m0);
    }
}

/// Performs one directional sweep over the whole grid, sequential along
/// the sweep axis (matching the generated VIP code's schedule exactly).
pub fn sweep(mrf: &Mrf, msgs: &mut Messages, dir: Sweep) {
    let (w, h, l) = (mrf.params.width, mrf.params.height, mrf.params.labels);
    let norm = msgs.normalize;
    // (source positions, target offset) per direction.
    let seq_positions: Vec<(usize, usize, usize, usize)> = match dir {
        Sweep::Down => (0..h - 1)
            .flat_map(|y| (0..w).map(move |x| (x, y, x, y + 1)))
            .collect(),
        Sweep::Up => (1..h)
            .rev()
            .flat_map(|y| (0..w).map(move |x| (x, y, x, y - 1)))
            .collect(),
        Sweep::Right => (0..w - 1)
            .flat_map(|x| (0..h).map(move |y| (x, y, x + 1, y)))
            .collect(),
        Sweep::Left => (1..w)
            .rev()
            .flat_map(|x| (0..h).map(move |y| (x, y, x - 1, y)))
            .collect(),
    };
    for (x, y, tx, ty) in seq_positions {
        let th = theta_hat(mrf, msgs, x, y, dir);
        let mut msg = min_sum(&mrf.params.smoothness, &th, l);
        if norm {
            normalize(&mut msg);
        }
        let at = mrf.params.at(tx, ty);
        msgs.written_by(dir)[at..at + l].copy_from_slice(&msg);
    }
}

/// One BP-M iteration: all four directional sweeps.
pub fn iteration(mrf: &Mrf, msgs: &mut Messages) {
    for dir in Sweep::iteration_order() {
        sweep(mrf, msgs, dir);
    }
}

/// Per-vertex beliefs (Equation (2)'s argument): data cost plus all four
/// incoming messages.
#[must_use]
pub fn beliefs(mrf: &Mrf, msgs: &Messages) -> Vec<i16> {
    let l = mrf.params.labels;
    let mut out = mrf.data_costs.clone();
    for arr in [
        &msgs.from_above,
        &msgs.from_below,
        &msgs.from_left,
        &msgs.from_right,
    ] {
        for (o, &m) in out.iter_mut().zip(arr.iter()) {
            *o = sat_add16(*o, m);
        }
    }
    let _ = l;
    out
}

/// The most favorable label per vertex (argmin of the belief; first
/// minimum wins ties).
#[must_use]
pub fn labels(mrf: &Mrf, msgs: &Messages) -> Vec<u8> {
    let l = mrf.params.labels;
    beliefs(mrf, msgs)
        .chunks(l)
        .map(|b| {
            b.iter()
                .enumerate()
                .min_by_key(|&(_, &v)| v)
                .map(|(i, _)| i as u8)
                .expect("labels > 0")
        })
        .collect()
}

/// Runs `iters` BP-M iterations from zero messages and returns the label
/// map.
#[must_use]
pub fn run(mrf: &Mrf, iters: usize) -> Vec<u8> {
    let mut msgs = Messages::new(&mrf.params);
    for _ in 0..iters {
        iteration(mrf, &mut msgs);
    }
    labels(mrf, &msgs)
}

/// The hierarchical "construct" phase (§VI-A): pools each 2×2 block's
/// data costs into one coarse vertex (saturating sum), halving each
/// dimension.
///
/// # Panics
///
/// Panics if the grid dimensions are odd.
#[must_use]
pub fn coarse_mrf(mrf: &Mrf) -> Mrf {
    let p = &mrf.params;
    assert!(
        p.width.is_multiple_of(2) && p.height.is_multiple_of(2),
        "construct needs even dimensions"
    );
    let (cw, ch, l) = (p.width / 2, p.height / 2, p.labels);
    let cparams = MrfParams {
        width: cw,
        height: ch,
        labels: l,
        smoothness: p.smoothness.clone(),
    };
    let mut costs = vec![0i16; cw * ch * l];
    for cy in 0..ch {
        for cx in 0..cw {
            for (dx, dy) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
                let src = mrf.theta(2 * cx + dx, 2 * cy + dy);
                let at = cparams.at(cx, cy);
                for (o, &v) in costs[at..at + l].iter_mut().zip(src) {
                    *o = sat_add16(*o, v);
                }
            }
        }
    }
    Mrf::new(cparams, costs)
}

/// The hierarchical "copy" phase: initializes fine-grid messages from the
/// converged coarse-grid messages (each fine vertex inherits its coarse
/// parent's message).
#[must_use]
pub fn refine_messages(coarse: &MrfParams, coarse_msgs: &Messages, fine: &MrfParams) -> Messages {
    assert_eq!(coarse.width * 2, fine.width);
    assert_eq!(coarse.height * 2, fine.height);
    let l = fine.labels;
    let mut out = Messages::new(fine);
    out.normalize = coarse_msgs.normalize;
    let copy = |src: &Vec<i16>, dst: &mut Vec<i16>| {
        for y in 0..fine.height {
            for x in 0..fine.width {
                let from = coarse.at(x / 2, y / 2);
                let to = fine.at(x, y);
                dst[to..to + l].copy_from_slice(&src[from..from + l]);
            }
        }
    };
    copy(&coarse_msgs.from_above, &mut out.from_above);
    copy(&coarse_msgs.from_below, &mut out.from_below);
    copy(&coarse_msgs.from_left, &mut out.from_left);
    copy(&coarse_msgs.from_right, &mut out.from_right);
    out
}

/// Hierarchical BP-M (§VI-A): construct a coarse MRF, run `coarse_iters`
/// there, copy messages up, then run `fine_iters` on the full grid.
#[must_use]
pub fn hierarchical_run(mrf: &Mrf, coarse_iters: usize, fine_iters: usize) -> Vec<u8> {
    let coarse = coarse_mrf(mrf);
    let mut cmsgs = Messages::new(&coarse.params);
    for _ in 0..coarse_iters {
        iteration(&coarse, &mut cmsgs);
    }
    let mut msgs = refine_messages(&coarse.params, &cmsgs, &mrf.params);
    for _ in 0..fine_iters {
        iteration(mrf, &mut msgs);
    }
    labels(mrf, &msgs)
}

/// The MRF energy of a labeling: the sum of data costs at the chosen
/// labels plus smoothness costs over all 4-connected neighbor pairs —
/// the objective function BP-M approximately minimizes. Lower is
/// better; iterating BP should not make this worse on typical inputs.
#[must_use]
pub fn labeling_energy(mrf: &Mrf, labels: &[u8]) -> i64 {
    let p = &mrf.params;
    assert_eq!(labels.len(), p.vertices());
    let l = p.labels;
    let mut energy = 0i64;
    for y in 0..p.height {
        for x in 0..p.width {
            let lv = labels[y * p.width + x] as usize;
            energy += i64::from(mrf.theta(x, y)[lv]);
            if x + 1 < p.width {
                let lw = labels[y * p.width + x + 1] as usize;
                energy += i64::from(p.smoothness[lv * l + lw]);
            }
            if y + 1 < p.height {
                let lw = labels[(y + 1) * p.width + x] as usize;
                energy += i64::from(p.smoothness[lv * l + lw]);
            }
        }
    }
    energy
}

#[cfg(test)]
mod tests {
    use super::super::stereo_data_costs;
    use super::*;

    fn tiny_mrf() -> Mrf {
        let params = MrfParams::truncated_linear(8, 8, 4, 2, 6);
        // A step edge: left half prefers label 0, right half label 3.
        let mut costs = vec![0i16; 8 * 8 * 4];
        for y in 0..8 {
            for x in 0..8 {
                let preferred = if x < 4 { 0 } else { 3 };
                for l in 0..4 {
                    costs[params.at(x, y) + l] = if l == preferred { 0 } else { 20 };
                }
            }
        }
        Mrf::new(params, costs)
    }

    #[test]
    fn bp_recovers_step_edge() {
        let mrf = tiny_mrf();
        let out = run(&mrf, 4);
        for y in 0..8 {
            for x in 0..8 {
                let expect = if x < 4 { 0 } else { 3 };
                assert_eq!(out[y * 8 + x], expect, "pixel ({x},{y})");
            }
        }
    }

    #[test]
    fn smoothing_fills_in_noisy_pixel() {
        let mut mrf = tiny_mrf();
        // Corrupt one interior pixel to prefer a wrong label strongly,
        // but neighbors should pull it back.
        let at = mrf.params.at(2, 4);
        for l in 0..4 {
            mrf.data_costs[at + l] = if l == 2 { 0 } else { 8 };
        }
        let out = run(&mrf, 6);
        assert_eq!(
            out[4 * 8 + 2],
            0,
            "smoothness should override weak evidence"
        );
    }

    #[test]
    fn zero_iterations_is_pure_data_term() {
        let mrf = tiny_mrf();
        let out = run(&mrf, 0);
        assert_eq!(out[0], 0);
        assert_eq!(out[7], 3);
    }

    #[test]
    fn normalization_does_not_change_labels_early() {
        // Before anything saturates, normalized and unnormalized BP pick
        // identical labels (argmin is shift-invariant).
        let mrf = tiny_mrf();
        let mut a = Messages::new(&mrf.params);
        let mut b = Messages::new_unnormalized(&mrf.params);
        for _ in 0..2 {
            iteration(&mrf, &mut a);
            iteration(&mrf, &mut b);
        }
        assert_eq!(labels(&mrf, &a), labels(&mrf, &b));
    }

    #[test]
    fn normalized_messages_stay_bounded() {
        let mrf = tiny_mrf();
        let mut msgs = Messages::new(&mrf.params);
        for _ in 0..20 {
            iteration(&mrf, &mut msgs);
        }
        let max = msgs
            .from_above
            .iter()
            .chain(&msgs.from_below)
            .chain(&msgs.from_left)
            .chain(&msgs.from_right)
            .map(|&v| i32::from(v).abs())
            .max()
            .unwrap();
        assert!(max < 1000, "normalized messages stay small, got {max}");
    }

    #[test]
    fn hierarchical_converges_faster_on_stereo() {
        // On a synthetic stereo pair, 1 coarse + 1 fine hierarchical
        // iteration should agree with plain BP at 4 iterations on a
        // majority of pixels (it converges faster — the paper's point).
        let (w, h, l) = (32, 16, 8);
        let costs = stereo_data_costs(w, h, l, 42);
        let params = MrfParams::truncated_linear(w, h, l, 2, 10);
        let mrf = Mrf::new(params, costs);
        let plain = run(&mrf, 4);
        let hier = hierarchical_run(&mrf, 2, 1);
        let agree = plain.iter().zip(&hier).filter(|(a, b)| a == b).count();
        assert!(
            agree * 10 >= plain.len() * 7,
            "hierarchical agrees on {agree}/{} pixels",
            plain.len()
        );
    }

    #[test]
    fn bp_lowers_the_mrf_energy() {
        // The point of message passing: the smoothed labeling has lower
        // energy than the per-pixel argmin of the data term.
        let (w, h, l) = (32, 16, 8);
        let costs = stereo_data_costs(w, h, l, 19);
        let params = MrfParams::truncated_linear(w, h, l, 2, 10);
        let mrf = Mrf::new(params, costs);
        let data_only = run(&mrf, 0);
        let smoothed = run(&mrf, 4);
        let e0 = labeling_energy(&mrf, &data_only);
        let e4 = labeling_energy(&mrf, &smoothed);
        assert!(e4 < e0, "BP should lower energy: {e0} -> {e4}");
    }

    #[test]
    fn bp_recovers_true_disparity_better_than_data_term() {
        // With the synthetic stereo pair's known disparity field, BP's
        // labeling is closer to ground truth than the raw matching
        // costs' argmin.
        let (w, h, l) = (48, 24, 16);
        let (_, _, truth) = super::super::synthetic_stereo_pair(w, h, l, 77);
        let costs = stereo_data_costs(w, h, l, 77);
        let mrf = Mrf::new(MrfParams::truncated_linear(w, h, l, 3, 20), costs);
        let err = |labels: &[u8]| -> usize {
            labels
                .iter()
                .zip(&truth)
                .filter(|(a, b)| (i16::from(**a) - i16::from(**b)).abs() > 1)
                .count()
        };
        let raw_err = err(&run(&mrf, 0));
        let bp_err = err(&run(&mrf, 4));
        assert!(
            bp_err < raw_err,
            "BP should beat the data term: raw {raw_err}, bp {bp_err} bad pixels of {}",
            truth.len()
        );
    }

    #[test]
    fn construct_halves_dimensions_and_sums() {
        let mrf = tiny_mrf();
        let coarse = coarse_mrf(&mrf);
        assert_eq!(coarse.params.width, 4);
        assert_eq!(coarse.params.height, 4);
        // Block (0,0): four pixels each preferring label 0 with cost 20
        // on the others.
        assert_eq!(coarse.theta(0, 0)[0], 0);
        assert_eq!(coarse.theta(0, 0)[1], 80);
    }
}

//! Analytical cost model for BP-M (§II-A) and the independent-tile
//! extrapolation of §V-A.

/// Operation and traffic counts for BP-M on a grid (the paper's §II-A
/// arithmetic: each message update costs `3L + 2L²` operations and moves
/// `4L` values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpCosts {
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Labels.
    pub labels: usize,
    /// Bytes per element (2 for i16).
    pub elem_bytes: usize,
}

impl BpCosts {
    /// Full-HD stereo with 16 labels — the paper's headline workload.
    #[must_use]
    pub fn full_hd() -> Self {
        BpCosts {
            width: 1920,
            height: 1080,
            labels: 16,
            elem_bytes: 2,
        }
    }

    /// Quarter-HD (the hierarchical variant's coarse level).
    #[must_use]
    pub fn quarter_hd() -> Self {
        BpCosts {
            width: 960,
            height: 540,
            labels: 16,
            elem_bytes: 2,
        }
    }

    /// Message updates per iteration (4 per vertex; §II-A).
    #[must_use]
    pub fn updates_per_iteration(&self) -> u64 {
        4 * (self.width * self.height) as u64
    }

    /// ALU operations per message update: `3L + 2L²`.
    #[must_use]
    pub fn ops_per_update(&self) -> u64 {
        let l = self.labels as u64;
        3 * l + 2 * l * l
    }

    /// ALU operations per iteration.
    #[must_use]
    pub fn ops_per_iteration(&self) -> u64 {
        self.updates_per_iteration() * self.ops_per_update()
    }

    /// Data elements read or written per update: `4L` (§II-A).
    #[must_use]
    pub fn elems_per_update(&self) -> u64 {
        4 * self.labels as u64
    }

    /// Bytes moved per iteration.
    #[must_use]
    pub fn bytes_per_iteration(&self) -> u64 {
        self.updates_per_iteration() * self.elems_per_update() * self.elem_bytes as u64
    }

    /// Total storage: `(4+1) × L × W × H` values (§II-A).
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        5 * (self.labels * self.width * self.height * self.elem_bytes) as u64
    }

    /// Required compute throughput in GOp/s for `fps` frames of `iters`
    /// iterations each.
    #[must_use]
    pub fn required_gops(&self, iters: u64, fps: f64) -> f64 {
        self.ops_per_iteration() as f64 * iters as f64 * fps / 1e9
    }

    /// Required memory bandwidth in GiB/s.
    #[must_use]
    pub fn required_gibs(&self, iters: u64, fps: f64) -> f64 {
        self.bytes_per_iteration() as f64 * iters as f64 * fps / (1u64 << 30) as f64
    }
}

/// Extrapolates full-frame time from a simulated tile (§V-A: "simulating
/// a single independent tile greatly reduces the simulation time without
/// affecting simulation accuracy").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BpExtrapolation {
    /// Pixels in the simulated tile.
    pub tile_pixels: u64,
    /// Cycles one iteration over the tile took (per vault).
    pub tile_cycles: u64,
    /// Vaults working in parallel on the full frame.
    pub vaults: u64,
}

impl BpExtrapolation {
    /// Cycles for one iteration over a full `frame_pixels` frame: each of
    /// the `vaults` vaults processes `frame_pixels / vaults` pixels at
    /// the tile's measured cycles-per-pixel rate.
    #[must_use]
    pub fn frame_cycles(&self, frame_pixels: u64) -> u64 {
        let per_pixel = self.tile_cycles as f64 / self.tile_pixels as f64;
        (per_pixel * frame_pixels as f64 / self.vaults as f64).ceil() as u64
    }

    /// Milliseconds for `iters` iterations over a full frame at 1.25 GHz.
    #[must_use]
    pub fn frame_ms(&self, frame_pixels: u64, iters: u64) -> f64 {
        vip_core::cycles_to_ms(self.frame_cycles(frame_pixels) * iters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_headline_requirements() {
        // §II-A: full-HD, 16 labels, 24 fps, 8 iterations requires
        // 316 MiB storage, ~190 GiB/s bandwidth, ~892 GOp/s.
        let c = BpCosts::full_hd();
        let storage_mib = c.storage_bytes() as f64 / (1 << 20) as f64;
        assert!(
            (storage_mib - 316.4).abs() < 1.0,
            "storage {storage_mib} MiB"
        );
        let gibs = c.required_gibs(8, 24.0);
        assert!((gibs - 190.0).abs() < 10.0, "bandwidth {gibs} GiB/s");
        let gops = c.required_gops(8, 24.0);
        assert!((gops - 892.0).abs() < 15.0, "compute {gops} GOp/s");
    }

    #[test]
    fn ops_per_update_formula() {
        let c = BpCosts {
            width: 1,
            height: 1,
            labels: 16,
            elem_bytes: 2,
        };
        assert_eq!(c.ops_per_update(), 3 * 16 + 2 * 256);
        assert_eq!(c.elems_per_update(), 64);
    }

    #[test]
    fn extrapolation_scales_linearly() {
        let e = BpExtrapolation {
            tile_pixels: 2048,
            tile_cycles: 20_480,
            vaults: 32,
        };
        // 10 cycles/pixel, 2M pixels over 32 vaults = 648k cycles/iter.
        let frame = e.frame_cycles(1920 * 1080);
        assert_eq!(frame, (10.0_f64 * 1920.0 * 1080.0 / 32.0).ceil() as u64);
        assert!(e.frame_ms(1920 * 1080, 8) > 0.0);
    }
}

//! Synthetic stereo input (DESIGN.md substitution #4).
//!
//! The paper runs depth-from-stereo on full-HD video. No camera footage
//! is available here, so we synthesize a stereo pair with a known
//! disparity field and derive data costs the standard way (truncated
//! absolute difference of matching intensities). BP-M's execution is
//! dense and data-independent, so any input with realistic cost
//! statistics exercises the identical code path and memory traffic.

use vip_rng::SplitMix64;

/// Generates a deterministic synthetic stereo pair: a textured scene of
/// rectangles at different depths. Returns `(left, right, true_disparity)`
/// as `height × width` row-major intensity/label images.
#[must_use]
pub fn synthetic_stereo_pair(
    width: usize,
    height: usize,
    max_disparity: usize,
    seed: u64,
) -> (Vec<i16>, Vec<i16>, Vec<u8>) {
    let mut rng = SplitMix64::new(seed);

    // Depth layout: background plus a few foreground rectangles.
    let mut disparity = vec![(max_disparity / 8) as u8; width * height];
    for _ in 0..4 {
        let d = rng.usize_in(max_disparity / 2..max_disparity) as u8;
        let rw = rng.usize_in(width / 8..width / 2);
        let rh = rng.usize_in(height / 8..height / 2);
        let x0 = rng.usize_in(0..width.saturating_sub(rw).max(1));
        let y0 = rng.usize_in(0..height.saturating_sub(rh).max(1));
        for y in y0..(y0 + rh).min(height) {
            for x in x0..(x0 + rw).min(width) {
                disparity[y * width + x] = d;
            }
        }
    }

    // Texture: smooth noise so matching is informative.
    let mut left = vec![0i16; width * height];
    for y in 0..height {
        for x in 0..width {
            let base = ((x * 13 + y * 7) % 97) as i16;
            left[y * width + x] = base + rng.i64_in(-8..9) as i16;
        }
    }

    // Right image: left shifted by the disparity.
    let mut right = vec![0i16; width * height];
    for y in 0..height {
        for x in 0..width {
            let d = disparity[y * width + x] as usize;
            let sx = x.saturating_sub(d);
            right[y * width + sx] = left[y * width + x];
        }
    }

    (left, right, disparity)
}

/// Data costs for stereo matching: for each pixel and candidate
/// disparity `d`, the truncated absolute intensity difference between
/// `left(x, y)` and `right(x-d, y)`. Layout matches
/// [`Mrf::data_costs`](super::Mrf): `height × width × labels`,
/// label-fastest.
#[must_use]
pub fn stereo_data_costs(width: usize, height: usize, labels: usize, seed: u64) -> Vec<i16> {
    let (left, right, _) = synthetic_stereo_pair(width, height, labels, seed);
    let trunc = 40i16;
    let mut costs = vec![0i16; width * height * labels];
    for y in 0..height {
        for x in 0..width {
            for d in 0..labels {
                let r = if x >= d {
                    right[y * width + (x - d)]
                } else {
                    trunc
                };
                let c = (left[y * width + x] - r).abs().min(trunc);
                costs[(y * width + x) * labels + d] = c;
            }
        }
    }
    costs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let a = stereo_data_costs(16, 8, 8, 7);
        let b = stereo_data_costs(16, 8, 8, 7);
        assert_eq!(a, b);
        let c = stereo_data_costs(16, 8, 8, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn costs_are_bounded_and_informative() {
        let costs = stereo_data_costs(32, 16, 16, 1);
        assert!(costs.iter().all(|&c| (0..=40).contains(&c)));
        // Informative: at an interior pixel, not all labels tie.
        let at = (8 * 32 + 20) * 16;
        let some_vertex = &costs[at..at + 16];
        assert!(some_vertex.iter().any(|&c| c != some_vertex[0]));
    }

    #[test]
    fn true_disparity_has_low_cost() {
        // At the true disparity, the matching cost should usually be
        // smaller than at a random wrong disparity.
        let (w, h, l) = (64, 32, 16);
        let (_, _, truth) = synthetic_stereo_pair(w, h, l, 3);
        let costs = stereo_data_costs(w, h, l, 3);
        let mut wins = 0;
        let mut total = 0;
        for y in 0..h {
            for x in l..w {
                let d = truth[y * w + x] as usize;
                let at = (y * w + x) * l;
                let true_cost = costs[at + d];
                let wrong = costs[at + (d + l / 2) % l];
                total += 1;
                if true_cost <= wrong {
                    wins += 1;
                }
            }
        }
        assert!(wins * 10 >= total * 6, "true disparity wins {wins}/{total}");
    }
}

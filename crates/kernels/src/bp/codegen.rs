//! VIP code generation for BP-M message sweeps (§IV-A).
//!
//! The generated code follows the paper's software design: the
//! smoothness matrix lives in the scratchpad for the whole run, message
//! updates stream through double-buffered scratchpad groups of four
//! pixels (the "software pipelined to load data four iterations before
//! it is used" of §IV-A, Figure 2), `m.v.add.min` performs the min-sum
//! update, and strips of the orthogonal axis are distributed across PEs
//! with full-empty barriers between direction phases.
//!
//! [`VectorMachineStyle`] reproduces the Figure 4 sensitivity study:
//! the same kernel emitted for VIP proper (`SpReduce`), for VIP without
//! its reduction unit (`SpNoReduce`: divide-and-conquer `v.v.min`
//! halving), and for an emulated traditional vector-register machine
//! (`Rf*`: pack/unpack copies around every operand, following §VI-B's
//! ⌈N/w⌉-cycle register-move model).

use vip_isa::{Asm, ElemType, HorizontalOp, Program, Reg, VerticalOp};
use vip_mem::Hmc;

use super::{Messages, Mrf, Sweep};
use crate::sync::{self, BarrierAddrs, BarrierRegs};

const TY: ElemType = ElemType::I16;

/// Which of the five per-vertex-vector planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plane {
    Theta,
    FromAbove,
    FromBelow,
    FromLeft,
    FromRight,
}

/// DRAM layout of one MRF instance: five planes (θ and the four message
/// arrays — the `(4+1) × L × Ix × Iy` values of §II-A), the smoothness
/// matrix, and the synchronization words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpLayout {
    /// Base DRAM address (32-byte aligned).
    pub base: u64,
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
    /// Labels.
    pub labels: usize,
    /// Bank-stagger padding in bytes appended to each image row and
    /// each plane. The default, 256 (one DRAM row), rotates vertical
    /// walks through all 16 banks; [`BpLayout::packed`] sets 0 for the
    /// ablation study, and the autotuner searches other values.
    pub row_pad: usize,
}

impl BpLayout {
    /// Creates a layout at `base` with the default bank-aware padding.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 32-byte aligned.
    #[must_use]
    pub fn new(base: u64, width: usize, height: usize, labels: usize) -> Self {
        Self::with_row_pad(base, width, height, labels, 256)
    }

    /// Creates a layout with an explicit bank-stagger pad.
    ///
    /// # Panics
    ///
    /// Panics if `base` or `row_pad` is not 32-byte aligned.
    #[must_use]
    pub fn with_row_pad(
        base: u64,
        width: usize,
        height: usize,
        labels: usize,
        row_pad: usize,
    ) -> Self {
        assert_eq!(base % 32, 0, "layout base must be column aligned");
        assert_eq!(row_pad % 32, 0, "row pad must be column aligned");
        BpLayout {
            base,
            width,
            height,
            labels,
            row_pad,
        }
    }

    /// A densely packed layout without bank-aware padding — the naive
    /// placement, kept for the ablation bench.
    #[must_use]
    pub fn packed(base: u64, width: usize, height: usize, labels: usize) -> Self {
        Self::with_row_pad(base, width, height, labels, 0)
    }

    /// Logical bytes per plane (without padding).
    #[must_use]
    pub fn plane_bytes(&self) -> u64 {
        (self.width * self.height * self.labels * 2) as u64
    }

    /// Bytes between consecutive image rows of a plane. The pad
    /// (one DRAM row by default) staggers vertical walks of the grid
    /// (the horizontal sweeps' access pattern) through all 16 banks
    /// instead of aliasing onto two — bank-aware placement, the kind of
    /// layout tuning §IV-A's hand-written assembly implies.
    #[must_use]
    pub fn row_stride(&self) -> u64 {
        (self.width * self.labels * 2 + self.row_pad) as u64
    }

    /// Distance between consecutive planes, likewise bank-staggered.
    #[must_use]
    pub fn plane_stride(&self) -> u64 {
        self.height as u64 * self.row_stride() + self.row_pad as u64
    }

    fn plane_base(&self, plane: Plane) -> u64 {
        let p = self.plane_stride();
        self.base
            + p * match plane {
                Plane::Theta => 0,
                Plane::FromAbove => 1,
                Plane::FromBelow => 2,
                Plane::FromLeft => 3,
                Plane::FromRight => 4,
            }
    }

    /// DRAM address of the smoothness matrix.
    #[must_use]
    pub fn smoothness_base(&self) -> u64 {
        self.base + 5 * self.plane_stride()
    }

    /// DRAM address of the synchronization words (barrier counter and
    /// generation).
    #[must_use]
    pub fn sync_base(&self) -> u64 {
        let s = self.smoothness_base() + (self.labels * self.labels * 2) as u64;
        s.next_multiple_of(32)
    }

    /// Total footprint in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.sync_base() + 64 - self.base
    }

    /// Stages an MRF instance and message state into memory and
    /// initializes the barrier (host side, zero simulated time).
    pub fn load_into(&self, hmc: &mut Hmc, mrf: &Mrf, msgs: &Messages) {
        assert_eq!(mrf.params.width, self.width);
        assert_eq!(mrf.params.height, self.height);
        assert_eq!(mrf.params.labels, self.labels);
        let mut write_plane = |base: u64, data: &[i16]| {
            let row_elems = self.width * self.labels;
            for (y, row) in data.chunks(row_elems).enumerate() {
                hmc.host_write(
                    base + y as u64 * self.row_stride(),
                    &sync::i16s_to_bytes(row),
                );
            }
        };
        write_plane(self.plane_base(Plane::Theta), &mrf.data_costs);
        write_plane(self.plane_base(Plane::FromAbove), &msgs.from_above);
        write_plane(self.plane_base(Plane::FromBelow), &msgs.from_below);
        write_plane(self.plane_base(Plane::FromLeft), &msgs.from_left);
        write_plane(self.plane_base(Plane::FromRight), &msgs.from_right);
        hmc.host_write(
            self.smoothness_base(),
            &sync::i16s_to_bytes(&mrf.params.smoothness),
        );
        BarrierAddrs::at(self.sync_base()).init(hmc);
    }

    /// Reads the message state back out of memory (host side).
    #[must_use]
    pub fn read_messages(&self, hmc: &Hmc, normalize: bool) -> Messages {
        let row_bytes = self.width * self.labels * 2;
        let read = |p: Plane| {
            let base = self.plane_base(p);
            let mut out = Vec::with_capacity(self.width * self.height * self.labels);
            for y in 0..self.height as u64 {
                out.extend(sync::bytes_to_i16s(
                    &hmc.host_read(base + y * self.row_stride(), row_bytes),
                ));
            }
            out
        };
        Messages {
            from_above: read(Plane::FromAbove),
            from_below: read(Plane::FromBelow),
            from_left: read(Plane::FromLeft),
            from_right: read(Plane::FromRight),
            normalize,
        }
    }
}

/// The four machine configurations of Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorMachineStyle {
    /// VIP proper: scratchpad + reduction unit (SP+R).
    SpReduce,
    /// Scratchpad without the reduction unit: divide-and-conquer halving
    /// with `v.v.min` (SP−R).
    SpNoReduce,
    /// Emulated vector-register file with a reduction unit (RF+R):
    /// pack/unpack copies around every vector operand.
    RfReduce,
    /// Emulated vector-register file without a reduction unit (RF−R).
    RfNoReduce,
}

impl VectorMachineStyle {
    /// All four, in Figure 4's order (top to bottom: SP+R, SP−R, RF+R,
    /// RF−R).
    #[must_use]
    pub fn all() -> [VectorMachineStyle; 4] {
        [
            VectorMachineStyle::SpReduce,
            VectorMachineStyle::SpNoReduce,
            VectorMachineStyle::RfReduce,
            VectorMachineStyle::RfNoReduce,
        ]
    }

    /// Display label matching the figure.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            VectorMachineStyle::SpReduce => "SP+R",
            VectorMachineStyle::SpNoReduce => "SP-R",
            VectorMachineStyle::RfReduce => "RF+R",
            VectorMachineStyle::RfNoReduce => "RF-R",
        }
    }

    /// Inverse of [`label`](Self::label) — used when parsing schedule
    /// artifacts.
    #[must_use]
    pub fn from_label(label: &str) -> Option<VectorMachineStyle> {
        Self::all().into_iter().find(|s| s.label() == label)
    }

    fn uses_reduction(self) -> bool {
        matches!(
            self,
            VectorMachineStyle::SpReduce | VectorMachineStyle::RfReduce
        )
    }

    fn register_file(self) -> bool {
        matches!(
            self,
            VectorMachineStyle::RfReduce | VectorMachineStyle::RfNoReduce
        )
    }
}

/// Parameters of one strip: a single sweep direction over a band of the
/// orthogonal axis.
#[derive(Debug, Clone, Copy)]
pub struct StripParams {
    /// The MRF's memory layout.
    pub layout: BpLayout,
    /// Sweep direction.
    pub sweep: Sweep,
    /// `[start, end)` along the orthogonal axis (x for vertical sweeps,
    /// y for horizontal). Width must be a multiple of 8 (the group
    /// ping-pong's unroll).
    pub ortho_range: (usize, usize),
    /// Subtract element 0 of each new message (see
    /// [`Messages::normalize`]).
    pub normalize: bool,
    /// Machine configuration (Figure 4); use `SpReduce` for VIP proper.
    pub style: VectorMachineStyle,
    /// Rotating scratchpad group buffers: 2 selects the classic per-row
    /// ping-pong, 3+ the flat cross-row software pipeline (clamped to
    /// the strip's group count). See `BpSchedule::group_bufs`.
    pub group_bufs: usize,
}

/// Named registers used by the generated code.
#[derive(Debug, Clone, Copy)]
struct Regs {
    // constants
    l: Reg,
    l4: Reg,
    ll: Reg,
    one: Reg,
    zero: Reg,
    c8: Reg,
    c4: Reg,
    c2: Reg,
    // scratchpad addresses
    sp_s: Reg,
    sp_zeros: Reg,
    sp_out: Reg,
    sp_rep: Reg,
    sp_g0: Reg,
    sp_g1: Reg,
    sp_stg: Reg,
    stg_h8: Reg,
    stg_h4: Reg,
    stg_h2: Reg,
    stg_h1: Reg,
    // temporaries
    t: Reg,
    a: Reg,
    s1: Reg,
    s2: Reg,
    o: Reg,
    // pointers
    p_th: Reg,
    p_al: Reg,
    p_s1: Reg,
    p_s2: Reg,
    p_out: Reg,
    // loop counters
    seq: Reg,
    seq_n: Reg,
    grp: Reg,
    grp_n: Reg,
    iter: Reg,
    iter_n: Reg,
    my_gen: Reg,
    buf_a: Reg,
    buf_b: Reg,
    buf_xor: Reg,
    // flat-pipeline extras: two more rotating buffer bases and the
    // group-within-row counters that fold the per-row pointer
    // adjustment into the flat group loop
    buf_c: Reg,
    buf_d: Reg,
    lg_load: Reg,
    lg_store: Reg,
    lg_n: Reg,
    ld_n: Reg,
}

impl Regs {
    fn allocate() -> Self {
        let mut next = 0u8;
        let mut r = || {
            let reg = Reg::new(next);
            next += 1;
            reg
        };
        Regs {
            l: r(),
            l4: r(),
            ll: r(),
            one: r(),
            zero: r(),
            c8: r(),
            c4: r(),
            c2: r(),
            sp_s: r(),
            sp_zeros: r(),
            sp_out: r(),
            sp_rep: r(),
            sp_g0: r(),
            sp_g1: r(),
            sp_stg: r(),
            stg_h8: r(),
            stg_h4: r(),
            stg_h2: r(),
            stg_h1: r(),
            t: r(),
            a: r(),
            s1: r(),
            s2: r(),
            o: r(),
            p_th: r(),
            p_al: r(),
            p_s1: r(),
            p_s2: r(),
            p_out: r(),
            seq: r(),
            seq_n: r(),
            grp: r(),
            grp_n: r(),
            iter: r(),
            iter_n: r(),
            my_gen: r(),
            buf_a: r(),
            buf_b: r(),
            buf_xor: r(),
            buf_c: r(),
            buf_d: r(),
            lg_load: r(),
            lg_store: r(),
            lg_n: r(),
            ld_n: r(),
        }
    }

    fn barrier(&self) -> BarrierRegs {
        BarrierRegs {
            my_gen: self.my_gen,
            tmp: self.t,
            addr_cnt: self.a,
            addr_gen: self.s1,
            n: self.s2,
            zero: self.o,
        }
    }
}

/// Scratchpad offsets for label count `l` and `bufs` rotating group
/// buffers (2 for the classic ping-pong).
#[derive(Debug, Clone, Copy)]
struct SpMap {
    lb: usize,
    s: usize,
    zeros: usize,
    g0: usize,
    out: usize,
    rep: usize,
    stg: usize,
}

impl SpMap {
    fn new(labels: usize, bufs: usize) -> Self {
        assert!(bufs >= 2, "the group pipeline needs at least two buffers");
        let lb = labels * 2;
        let ll = labels * labels * 2;
        let s = 0;
        let zeros = s + ll;
        let g0 = zeros + lb;
        let out = g0 + bufs * 16 * lb;
        let rep = out + 4 * lb;
        let stg = rep + lb;
        assert!(
            stg + lb <= 4096,
            "scratchpad layout overflows for {labels} labels with {bufs} group buffers"
        );
        SpMap {
            lb,
            s,
            zeros,
            g0,
            out,
            rep,
            stg,
        }
    }

    /// Base offset of rotating group buffer `i`.
    fn g(&self, i: usize) -> usize {
        self.g0 + i * 16 * self.lb
    }
}

#[derive(Debug, Clone, Copy)]
struct SweepGeom {
    seq_count: usize,
    seq_start: i64,
    seq_stride: i64,
    ortho_stride: i64,
    out_delta: i64,
    along: Plane,
    s1: Plane,
    s2: Plane,
    contiguous: bool,
}

fn geometry(layout: &BpLayout, sweep: Sweep) -> SweepGeom {
    let ps = (layout.labels * 2) as i64;
    let rs = layout.row_stride() as i64;
    let (w, h) = (layout.width as i64, layout.height as i64);
    match sweep {
        Sweep::Down => SweepGeom {
            seq_count: layout.height - 1,
            seq_start: 0,
            seq_stride: rs,
            ortho_stride: ps,
            out_delta: rs,
            along: Plane::FromAbove,
            s1: Plane::FromLeft,
            s2: Plane::FromRight,
            contiguous: true,
        },
        Sweep::Up => SweepGeom {
            seq_count: layout.height - 1,
            seq_start: (h - 1) * rs,
            seq_stride: -rs,
            ortho_stride: ps,
            out_delta: -rs,
            along: Plane::FromBelow,
            s1: Plane::FromLeft,
            s2: Plane::FromRight,
            contiguous: true,
        },
        Sweep::Right => SweepGeom {
            seq_count: layout.width - 1,
            seq_start: 0,
            seq_stride: ps,
            ortho_stride: rs,
            out_delta: ps,
            along: Plane::FromLeft,
            s1: Plane::FromAbove,
            s2: Plane::FromBelow,
            contiguous: false,
        },
        Sweep::Left => SweepGeom {
            seq_count: layout.width - 1,
            seq_start: (w - 1) * ps,
            seq_stride: -ps,
            ortho_stride: rs,
            out_delta: -ps,
            along: Plane::FromRight,
            s1: Plane::FromAbove,
            s2: Plane::FromBelow,
            contiguous: false,
        },
    }
}

/// Emits the constant/prologue setup shared by all strips (run once per
/// program): register constants, scratchpad map registers, `set.vl` /
/// `set.mr`, and the smoothness-matrix load.
fn emit_prologue(asm: &mut Asm, r: &Regs, layout: &BpLayout, sp: &SpMap) {
    let l = layout.labels as i64;
    asm.mov_imm(r.l, l)
        .mov_imm(r.l4, 4 * l)
        .mov_imm(r.ll, l * l)
        .mov_imm(r.one, 1)
        .mov_imm(r.zero, 0)
        .mov_imm(r.c8, 8)
        .mov_imm(r.c4, 4)
        .mov_imm(r.c2, 2)
        .mov_imm(r.sp_s, sp.s as i64)
        .mov_imm(r.sp_zeros, sp.zeros as i64)
        .mov_imm(r.sp_out, sp.out as i64)
        .mov_imm(r.sp_rep, sp.rep as i64)
        .mov_imm(r.sp_g0, sp.g(0) as i64)
        .mov_imm(r.sp_g1, sp.g(1) as i64)
        .mov_imm(r.sp_stg, sp.stg as i64)
        .mov_imm(r.stg_h8, (sp.stg + 16) as i64)
        .mov_imm(r.stg_h4, (sp.stg + 8) as i64)
        .mov_imm(r.stg_h2, (sp.stg + 4) as i64)
        .mov_imm(r.stg_h1, (sp.stg + 2) as i64)
        .mov_imm(r.my_gen, 0)
        .set_vl(r.l)
        .set_mr(r.l)
        // Load the smoothness matrix; the ARC covers the dependency.
        .mov_imm(r.a, layout.smoothness_base() as i64)
        .ld_sram(TY, r.sp_s, r.a, r.ll);
}

/// Emits the contiguous 4-pixel group load into the buffer whose base
/// address register is `buf`, bumping the prefetch pointers.
fn emit_group_load_contig(asm: &mut Asm, r: &Regs, sp: &SpMap, buf: Reg, group_bytes: i32) {
    let lb = sp.lb as i32;
    for (section, ptr) in [
        (0, r.p_th),
        (4 * lb, r.p_al),
        (8 * lb, r.p_s1),
        (12 * lb, r.p_s2),
    ] {
        asm.addi(r.t, buf, section).ld_sram(TY, r.t, ptr, r.l4);
    }
    for ptr in [r.p_th, r.p_al, r.p_s1, r.p_s2] {
        asm.addi(ptr, ptr, group_bytes);
    }
}

/// Emits the strided loads of one pixel `u` into `buf` for horizontal
/// sweeps, bumping the pointers one ortho step.
fn emit_pixel_load(asm: &mut Asm, r: &Regs, sp: &SpMap, buf: Reg, u: usize, ortho_stride: i32) {
    let lb = sp.lb as i32;
    let u = u as i32;
    for (section, ptr) in [
        (u, r.p_th),
        (4 + u, r.p_al),
        (8 + u, r.p_s1),
        (12 + u, r.p_s2),
    ] {
        asm.addi(r.t, buf, section * lb).ld_sram(TY, r.t, ptr, r.l);
    }
    for ptr in [r.p_th, r.p_al, r.p_s1, r.p_s2] {
        asm.addi(ptr, ptr, ortho_stride);
    }
}

/// Emits the message computation for pixel `u` of the group in `buf`.
#[allow(clippy::too_many_arguments)]
fn emit_compute(
    asm: &mut Asm,
    r: &Regs,
    sp: &SpMap,
    style: VectorMachineStyle,
    normalize: bool,
    labels: usize,
    buf: Reg,
    u: usize,
    label_prefix: &str,
) {
    let lb = sp.lb as i32;
    let u = u as i32;
    asm.addi(r.t, buf, u * lb)
        .addi(r.a, buf, (4 + u) * lb)
        .addi(r.s1, buf, (8 + u) * lb)
        .addi(r.s2, buf, (12 + u) * lb)
        .addi(r.o, r.sp_out, u * lb);
    if style.register_file() {
        // Unpack emulation: one ⌈L/w⌉-cycle register move per operand
        // (§VI-B's model), expressed as identity copies.
        for reg in [r.t, r.a, r.s1, r.s2] {
            asm.vec_scalar(VerticalOp::Add, TY, reg, reg, r.zero);
        }
    }
    asm.vec_vec(VerticalOp::Add, TY, r.t, r.t, r.a)
        .vec_vec(VerticalOp::Add, TY, r.t, r.t, r.s1)
        .vec_vec(VerticalOp::Add, TY, r.t, r.t, r.s2);

    if style.uses_reduction() {
        asm.mat_vec(VerticalOp::Add, HorizontalOp::Min, TY, r.o, r.sp_s, r.t);
    } else {
        assert_eq!(labels, 16, "no-reduction emulation is generated for L = 16");
        assert!(
            !normalize,
            "no-reduction styles run unnormalized (Figure 4)"
        );
        // Divide-and-conquer: tmp = S_row + θ̂, then log2(L) halving
        // v.v.min steps, then a one-element copy into out[l].
        let loop_label = format!("{label_prefix}_l");
        asm.mov(r.a, r.sp_s) // S row pointer
            .mov(r.s1, r.o) // out element pointer
            .mov_imm(r.s2, 0) // label counter
            .label(&loop_label)
            .vec_vec(VerticalOp::Add, TY, r.sp_stg, r.a, r.t)
            .set_vl(r.c8)
            .vec_vec(VerticalOp::Min, TY, r.sp_stg, r.sp_stg, r.stg_h8)
            .set_vl(r.c4)
            .vec_vec(VerticalOp::Min, TY, r.sp_stg, r.sp_stg, r.stg_h4)
            .set_vl(r.c2)
            .vec_vec(VerticalOp::Min, TY, r.sp_stg, r.sp_stg, r.stg_h2)
            .set_vl(r.one)
            .vec_vec(VerticalOp::Min, TY, r.sp_stg, r.sp_stg, r.stg_h1)
            .vec_vec(VerticalOp::Max, TY, r.s1, r.sp_stg, r.sp_stg) // copy
            .set_vl(r.l)
            .addi(r.a, r.a, lb)
            .addi(r.s1, r.s1, 2)
            .addi(r.s2, r.s2, 1)
            .blt(r.s2, r.l, &loop_label);
    }
    if style.register_file() {
        // Repack emulation.
        asm.vec_scalar(VerticalOp::Add, TY, r.o, r.o, r.zero);
    }
    if normalize {
        // Broadcast out[0] into `rep` via an m.v with vl = 1, then
        // subtract — the argmin-invariant renormalization.
        asm.set_vl(r.one)
            .mat_vec(
                VerticalOp::Add,
                HorizontalOp::Min,
                TY,
                r.sp_rep,
                r.sp_zeros,
                r.o,
            )
            .set_vl(r.l)
            .vec_vec(VerticalOp::Sub, TY, r.o, r.o, r.sp_rep);
    }
}

fn emit_store_contig(asm: &mut Asm, r: &Regs, group_bytes: i32) {
    asm.st_sram(TY, r.sp_out, r.p_out, r.l4)
        .addi(r.p_out, r.p_out, group_bytes);
}

fn emit_store_strided(asm: &mut Asm, r: &Regs, sp: &SpMap, ortho_stride: i32) {
    let lb = sp.lb as i32;
    for u in 0..4i32 {
        asm.addi(r.o, r.sp_out, u * lb)
            .st_sram(TY, r.o, r.p_out, r.l)
            .addi(r.p_out, r.p_out, ortho_stride);
    }
}

/// Emits one full strip (pointer setup, row loop, group pipeline).
/// `prefix` must be unique per strip in the program.
fn emit_strip(asm: &mut Asm, r: &Regs, p: &StripParams, prefix: &str) {
    let (o0, o1) = p.ortho_range;
    let n_groups = (o1 - o0) / 4;
    if p.group_bufs > 2 && n_groups >= 2 {
        emit_strip_flat(asm, r, p, prefix);
    } else {
        emit_strip_pingpong(asm, r, p, prefix);
    }
}

/// The classic per-row ping-pong: two buffers, prefetch drained and
/// restarted at every sequential step.
#[allow(clippy::too_many_lines)]
fn emit_strip_pingpong(asm: &mut Asm, r: &Regs, p: &StripParams, prefix: &str) {
    let layout = &p.layout;
    let sp = SpMap::new(layout.labels, p.group_bufs.max(2));
    let g = geometry(layout, p.sweep);
    let (o0, o1) = p.ortho_range;
    assert!(o1 > o0, "empty strip");
    let n_pixels = o1 - o0;
    let n_groups = n_pixels / 4;
    assert_eq!(n_pixels % 4, 0, "strips need a multiple of 4 pixels");
    let group_bytes = i32::try_from(4 * g.ortho_stride).expect("group stride fits");
    let os = i32::try_from(g.ortho_stride).expect("ortho stride fits");
    let row_advance = n_groups as i64 * i64::from(group_bytes);
    let adjust = i32::try_from(g.seq_stride - row_advance).expect("row adjustment fits");

    let ortho_off = o0 as i64 * g.ortho_stride;
    let base = |plane: Plane| layout.plane_base(plane) as i64 + g.seq_start + ortho_off;

    asm.mov_imm(r.p_th, base(Plane::Theta))
        .mov_imm(r.p_al, base(g.along))
        .mov_imm(r.p_s1, base(g.s1))
        .mov_imm(r.p_s2, base(g.s2))
        .mov_imm(r.p_out, base(g.along) + g.out_delta)
        .mov_imm(r.seq, 0)
        .mov_imm(r.seq_n, g.seq_count as i64);

    let row_label = format!("{prefix}_row");
    asm.label(&row_label);

    // Software-pipelined ping-pong: prefetch group g+1 while computing
    // group g. Vertical (contiguous) strips load whole groups in four
    // `ld.sram`s; horizontal strips interleave per-pixel loads with the
    // computes so the 20-entry ARC bounds outstanding scratchpad loads.
    let prologue = |asm: &mut Asm| {
        if g.contiguous {
            emit_group_load_contig(asm, r, &sp, r.sp_g0, group_bytes);
        } else {
            for u in 0..4 {
                emit_pixel_load(asm, r, &sp, r.sp_g0, u, os);
            }
        }
    };
    let emit_body = |asm: &mut Asm, compute_buf: Reg, prefetch_buf: Option<Reg>, tag: &str| {
        if g.contiguous {
            if let Some(buf) = prefetch_buf {
                emit_group_load_contig(asm, r, &sp, buf, group_bytes);
            }
        }
        for u in 0..4 {
            emit_compute(
                asm,
                r,
                &sp,
                p.style,
                p.normalize,
                layout.labels,
                compute_buf,
                u,
                &format!("{prefix}_{tag}_{u}"),
            );
            if !g.contiguous {
                if let Some(buf) = prefetch_buf {
                    emit_pixel_load(asm, r, &sp, buf, u, os);
                }
            }
        }
        if g.contiguous {
            emit_store_contig(asm, r, group_bytes);
        } else {
            emit_store_strided(asm, r, &sp, os);
        }
    };
    prologue(asm);
    if n_groups > 1 {
        // The loop body computes the buffer named by `buf_a` while
        // prefetching into `buf_b`; an XOR against (G0 ^ G1) swaps the
        // two each trip, so only one body's worth of instructions is
        // emitted (the instruction buffer holds 1,024 entries).
        asm.mov(r.buf_a, r.sp_g0)
            .mov(r.buf_b, r.sp_g1)
            .mov_imm(r.buf_xor, (sp.g(0) ^ sp.g(1)) as i64);
        let gl = format!("{prefix}_grp");
        asm.mov_imm(r.grp, 0)
            .mov_imm(r.grp_n, n_groups as i64 - 1)
            .label(&gl);
        emit_body(asm, r.buf_a, Some(r.buf_b), "ga");
        asm.scalar(vip_isa::ScalarAluOp::Xor, r.buf_a, r.buf_a, r.buf_xor)
            .scalar(vip_isa::ScalarAluOp::Xor, r.buf_b, r.buf_b, r.buf_xor)
            .addi(r.grp, r.grp, 1)
            .blt(r.grp, r.grp_n, &gl);
        // Drain the final group (no prefetch).
        emit_body(asm, r.buf_a, None, "gf");
    } else {
        emit_body(asm, r.sp_g0, None, "gf");
    }

    // Advance to the next sequential position.
    for ptr in [r.p_th, r.p_al, r.p_s1, r.p_s2, r.p_out] {
        asm.addi(ptr, ptr, adjust);
    }
    asm.addi(r.seq, r.seq, 1).blt(r.seq, r.seq_n, &row_label);
}

/// The flat software pipeline: one group loop over the whole strip
/// (`seq_count × n_groups` trips) with `min(group_bufs, n_groups)`
/// rotating buffers, so the prefetch stream never drains at a row
/// boundary. The per-row pointer adjustment is folded into the loop:
/// the load pointers and the store pointer each carry a
/// group-within-row counter and take the adjustment when it wraps.
///
/// Safety of prefetching across the row boundary: the along-plane
/// values a row reads were stored by the *previous* row's groups, and
/// with depth ≤ `n_groups` (enforced by the clamp plus
/// `BpSchedule::validate`) every such store is issued in a strictly
/// earlier loop trip than the load that reads it. The LSU emits
/// requests in program order and the vault controller never reorders
/// overlapping transactions, so the RAW dependency through DRAM holds.
#[allow(clippy::too_many_lines)]
fn emit_strip_flat(asm: &mut Asm, r: &Regs, p: &StripParams, prefix: &str) {
    let layout = &p.layout;
    let sp = SpMap::new(layout.labels, p.group_bufs);
    let g = geometry(layout, p.sweep);
    let (o0, o1) = p.ortho_range;
    assert!(o1 > o0, "empty strip");
    let n_pixels = o1 - o0;
    let n_groups = n_pixels / 4;
    assert_eq!(n_pixels % 4, 0, "strips need a multiple of 4 pixels");
    let depth = p.group_bufs.min(n_groups);
    assert!(depth >= 2, "flat pipeline needs at least two buffers");
    let group_bytes = i32::try_from(4 * g.ortho_stride).expect("group stride fits");
    let os = i32::try_from(g.ortho_stride).expect("ortho stride fits");
    let row_advance = n_groups as i64 * i64::from(group_bytes);
    let adjust = i32::try_from(g.seq_stride - row_advance).expect("row adjustment fits");
    let total = g.seq_count * n_groups;

    let ortho_off = o0 as i64 * g.ortho_stride;
    let base = |plane: Plane| layout.plane_base(plane) as i64 + g.seq_start + ortho_off;

    // The rotation set: compute always reads `bufs[0]`, prefetch always
    // targets `bufs[depth - 1]`, and each trip rotates left by one.
    let all_bufs = [r.buf_a, r.buf_b, r.buf_c, r.buf_d];
    let bufs = &all_bufs[..depth];

    asm.mov_imm(r.p_th, base(Plane::Theta))
        .mov_imm(r.p_al, base(g.along))
        .mov_imm(r.p_s1, base(g.s1))
        .mov_imm(r.p_s2, base(g.s2))
        .mov_imm(r.p_out, base(g.along) + g.out_delta)
        .mov_imm(r.lg_n, n_groups as i64);
    for (i, &buf) in bufs.iter().enumerate() {
        asm.mov_imm(buf, sp.g(i) as i64);
    }

    // Bump the load-group counter; on row wrap, adjust the four load
    // pointers to the next sequential position. Depth ≤ n_groups means
    // the warm-up never wraps, so this is only emitted in the loop.
    let wrap_loads = |asm: &mut Asm, label: String| {
        asm.addi(r.lg_load, r.lg_load, 1)
            .blt(r.lg_load, r.lg_n, &label);
        for ptr in [r.p_th, r.p_al, r.p_s1, r.p_s2] {
            asm.addi(ptr, ptr, adjust);
        }
        asm.mov_imm(r.lg_load, 0).label(&label);
    };
    let wrap_store = |asm: &mut Asm, label: String| {
        asm.addi(r.lg_store, r.lg_store, 1)
            .blt(r.lg_store, r.lg_n, &label);
        asm.addi(r.p_out, r.p_out, adjust).mov_imm(r.lg_store, 0);
        asm.label(&label);
    };

    // Warm-up: fill the first depth-1 buffers (no wrap possible).
    for &buf in &bufs[..depth - 1] {
        if g.contiguous {
            emit_group_load_contig(asm, r, &sp, buf, group_bytes);
        } else {
            for u in 0..4 {
                emit_pixel_load(asm, r, &sp, buf, u, os);
            }
        }
    }
    asm.mov_imm(r.lg_load, (depth - 1) as i64)
        .mov_imm(r.lg_store, 0);

    // One loop over every group in the strip. The prefetch (and its
    // row-wrap pointer adjustment) is guarded by the trip count: the
    // last depth-1 trips have nothing left to load and only drain the
    // pipeline, so a single emitted body covers steady state and drain.
    let main = format!("{prefix}_fs");
    asm.mov_imm(r.grp, 0)
        .mov_imm(r.grp_n, total as i64)
        .mov_imm(r.ld_n, (total - (depth - 1)) as i64)
        .label(&main);
    if g.contiguous {
        let skip = format!("{prefix}_nl");
        asm.bge(r.grp, r.ld_n, &skip);
        emit_group_load_contig(asm, r, &sp, bufs[depth - 1], group_bytes);
        wrap_loads(asm, format!("{prefix}_wl"));
        asm.label(&skip);
    }
    for u in 0..4 {
        emit_compute(
            asm,
            r,
            &sp,
            p.style,
            p.normalize,
            layout.labels,
            bufs[0],
            u,
            &format!("{prefix}_fa_{u}"),
        );
        if !g.contiguous {
            let skip = format!("{prefix}_nl{u}");
            asm.bge(r.grp, r.ld_n, &skip);
            emit_pixel_load(asm, r, &sp, bufs[depth - 1], u, os);
            if u == 3 {
                wrap_loads(asm, format!("{prefix}_wl"));
            }
            asm.label(&skip);
        }
    }
    if g.contiguous {
        emit_store_contig(asm, r, group_bytes);
    } else {
        emit_store_strided(asm, r, &sp, os);
    }
    wrap_store(asm, format!("{prefix}_ws"));
    asm.mov(r.t, bufs[0]);
    for i in 0..depth - 1 {
        asm.mov(bufs[i], bufs[i + 1]);
    }
    asm.mov(bufs[depth - 1], r.t);
    asm.addi(r.grp, r.grp, 1).blt(r.grp, r.grp_n, &main);
}

/// Generates a standalone single-PE program performing one directional
/// sweep over `ortho_range` — the Figure 4 micro-kernel.
///
/// # Panics
///
/// Panics if the strip geometry violates the alignment rules in
/// [`StripParams`] or the program exceeds the instruction buffer.
#[must_use]
pub fn strip_program(p: &StripParams) -> Program {
    let r = Regs::allocate();
    let sp = SpMap::new(p.layout.labels, p.group_bufs.max(2));
    let mut asm = Asm::new();
    emit_prologue(&mut asm, &r, &p.layout, &sp);
    emit_strip(&mut asm, &r, p, "s0");
    asm.memfence().halt();
    asm.assemble().expect("strip program assembles")
}

/// Generates per-PE programs for `iters` full BP-M iterations over the
/// whole grid under an explicit schedule, with the schedule's PEs
/// splitting each sweep's orthogonal axis and barrier-synchronizing
/// between the vertical and horizontal phases (§IV-A's schedule).
///
/// # Panics
///
/// Panics if `sched.validate` rejects the grid shape or the schedule's
/// `row_pad` disagrees with the staged layout.
#[must_use]
pub fn bp_iteration_programs(
    layout: &BpLayout,
    sched: &crate::schedule::BpSchedule,
    iters: usize,
    normalize: bool,
) -> Vec<Program> {
    assert!(iters > 0);
    sched
        .validate(layout.width, layout.height, layout.labels)
        .expect("bp schedule is valid for the grid");
    assert_eq!(
        sched.row_pad, layout.row_pad,
        "schedule row pad must match the staged layout"
    );
    let (total_pes, style) = (sched.pes, sched.style);
    let x_chunk = layout.width / total_pes;
    let y_chunk = layout.height / total_pes;
    let barrier = BarrierAddrs::at(layout.sync_base());

    (0..total_pes)
        .map(|pe| {
            let r = Regs::allocate();
            let sp = SpMap::new(layout.labels, sched.group_bufs.max(2));
            let mut asm = Asm::new();
            emit_prologue(&mut asm, &r, layout, &sp);
            asm.mov_imm(r.iter, 0)
                .mov_imm(r.iter_n, iters as i64)
                .label("iter");

            let x_range = (pe * x_chunk, (pe + 1) * x_chunk);
            let y_range = (pe * y_chunk, (pe + 1) * y_chunk);
            for (sweep, range, tag) in [
                (Sweep::Down, x_range, "d"),
                (Sweep::Up, x_range, "u"),
                (Sweep::Right, y_range, "r"),
                (Sweep::Left, y_range, "l"),
            ] {
                let strip = StripParams {
                    layout: *layout,
                    sweep,
                    ortho_range: range,
                    normalize,
                    style,
                    group_bufs: sched.group_bufs,
                };
                emit_strip(&mut asm, &r, &strip, tag);
                if matches!(sweep, Sweep::Up | Sweep::Left) {
                    // Phase boundary: publish stores, then barrier.
                    asm.memfence();
                    sync::emit_barrier(
                        &mut asm,
                        &r.barrier(),
                        barrier,
                        total_pes as u64,
                        &format!("bar_{tag}"),
                    );
                }
            }
            asm.addi(r.iter, r.iter, 1)
                .blt(r.iter, r.iter_n, "iter")
                .halt();
            asm.assemble().expect("BP iteration program assembles")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_program_fits_instruction_buffer() {
        let layout = BpLayout::new(0, 64, 32, 16);
        for style in VectorMachineStyle::all() {
            for group_bufs in [2, 3, 4] {
                let p = strip_program(&StripParams {
                    layout,
                    sweep: Sweep::Down,
                    ortho_range: (0, 64),
                    normalize: false,
                    style,
                    group_bufs,
                });
                assert!(
                    p.len() <= 1024,
                    "{} gb{group_bufs}: {} instructions",
                    style.label(),
                    p.len()
                );
            }
        }
    }

    #[test]
    fn iteration_programs_fit_and_differ_per_pe() {
        let layout = BpLayout::new(0, 32, 32, 16);
        let progs =
            bp_iteration_programs(&layout, &crate::schedule::BpSchedule::default(), 2, true);
        assert_eq!(progs.len(), 4);
        for p in &progs {
            assert!(p.len() <= 1024, "{} instructions", p.len());
        }
        assert_ne!(progs[0], progs[1], "PEs get different strips");
    }

    #[test]
    fn layout_is_packed_and_aligned() {
        let l = BpLayout::new(1 << 20, 64, 32, 16);
        assert_eq!(l.plane_bytes(), 64 * 32 * 16 * 2);
        assert_eq!(l.row_stride(), 64 * 16 * 2 + 256);
        assert_eq!(l.plane_stride(), 32 * l.row_stride() + 256);
        assert_eq!(l.smoothness_base(), (1 << 20) + 5 * l.plane_stride());
        assert_eq!(l.sync_base() % 32, 0);
        assert!(l.total_bytes() > 5 * l.plane_bytes());
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn misaligned_strip_width_panics() {
        let layout = BpLayout::new(0, 64, 32, 16);
        let _ = strip_program(&StripParams {
            layout,
            sweep: Sweep::Down,
            ortho_range: (0, 6),
            normalize: false,
            style: VectorMachineStyle::SpReduce,
            group_bufs: 2,
        });
    }

    #[test]
    fn narrow_four_pixel_strip_is_legal() {
        let layout = BpLayout::new(0, 64, 32, 16);
        let p = strip_program(&StripParams {
            layout,
            sweep: Sweep::Down,
            ortho_range: (0, 4),
            normalize: true,
            style: VectorMachineStyle::SpReduce,
            group_bufs: 2,
        });
        assert!(p.len() <= 1024);
    }
}

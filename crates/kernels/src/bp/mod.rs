//! Min-sum belief propagation (BP-M) on 2D grid Markov random fields
//! (§II-A, §IV-A).
//!
//! The MRF is the grid graph used by depth-from-stereo: one vertex per
//! pixel, `L` labels (disparities), a data-cost vector `θ_v` per vertex
//! and a shared smoothness-cost matrix `θ_{v,w}`. BP-M (Tappen &
//! Freeman's accelerated schedule) sweeps messages across the grid in
//! each of the four directions per iteration; within a direction updates
//! are strictly sequential along the sweep axis and parallel along the
//! orthogonal axis — the property VIP's software design exploits.
//!
//! Message arrays are named by *arrival* direction: `from_above[x, y]`
//! is the message vertex `(x, y)` received from `(x, y-1)`, and is what
//! the downward sweep writes.

mod codegen;
mod golden;
mod hier;
mod model;
mod stereo;

pub use codegen::{
    bp_iteration_programs, strip_program, BpLayout, StripParams, VectorMachineStyle,
};
pub use golden::{
    beliefs, coarse_mrf, hierarchical_run, iteration, labeling_energy, labels, refine_messages,
    run, sweep, Messages,
};
pub use hier::{construct_programs, copy_messages_programs};
pub use model::{BpCosts, BpExtrapolation};
pub use stereo::{stereo_data_costs, synthetic_stereo_pair};

/// A sweep direction (the message-update order within one BP-M
/// iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sweep {
    /// Top-to-bottom: writes `from_above`.
    Down,
    /// Bottom-to-top: writes `from_below`.
    Up,
    /// Left-to-right: writes `from_left`.
    Right,
    /// Right-to-left: writes `from_right`.
    Left,
}

impl Sweep {
    /// The four sweeps in the order one BP-M iteration performs them.
    #[must_use]
    pub fn iteration_order() -> [Sweep; 4] {
        [Sweep::Down, Sweep::Up, Sweep::Right, Sweep::Left]
    }

    /// Whether the sweep axis is vertical (sequential in `y`).
    #[must_use]
    pub fn is_vertical(self) -> bool {
        matches!(self, Sweep::Down | Sweep::Up)
    }
}

/// Parameters of a grid MRF.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MrfParams {
    /// Grid width (pixels).
    pub width: usize,
    /// Grid height (pixels).
    pub height: usize,
    /// Number of labels (disparities). 16 for the paper's stereo task.
    pub labels: usize,
    /// Smoothness-cost matrix `θ_{v,w}(l_v, l_w)`, row-major `L×L`.
    pub smoothness: Vec<i16>,
}

impl MrfParams {
    /// A truncated-linear smoothness model: `min(λ·|l − l'|, τ)` — the
    /// standard choice for stereo (Felzenszwalb & Huttenlocher).
    #[must_use]
    pub fn truncated_linear(
        width: usize,
        height: usize,
        labels: usize,
        lambda: i16,
        trunc: i16,
    ) -> Self {
        let mut smoothness = vec![0i16; labels * labels];
        for a in 0..labels {
            for b in 0..labels {
                let diff = (a as i16 - b as i16).abs();
                smoothness[a * labels + b] = (lambda.saturating_mul(diff)).min(trunc);
            }
        }
        MrfParams {
            width,
            height,
            labels,
            smoothness,
        }
    }

    /// Number of vertices.
    #[must_use]
    pub fn vertices(&self) -> usize {
        self.width * self.height
    }

    /// Index of the first label of vertex `(x, y)` in a per-vertex-vector
    /// array.
    #[must_use]
    pub fn at(&self, x: usize, y: usize) -> usize {
        (y * self.width + x) * self.labels
    }
}

/// An MRF instance: parameters plus per-vertex data costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mrf {
    /// Grid and smoothness parameters.
    pub params: MrfParams,
    /// Data costs, `height × width × labels`, laid out row-major with the
    /// label index fastest.
    pub data_costs: Vec<i16>,
}

impl Mrf {
    /// Wraps parameters and data costs.
    ///
    /// # Panics
    ///
    /// Panics if `data_costs` has the wrong length.
    #[must_use]
    pub fn new(params: MrfParams, data_costs: Vec<i16>) -> Self {
        assert_eq!(
            data_costs.len(),
            params.vertices() * params.labels,
            "data costs must be width x height x labels"
        );
        Mrf { params, data_costs }
    }

    /// The data-cost vector of vertex `(x, y)`.
    #[must_use]
    pub fn theta(&self, x: usize, y: usize) -> &[i16] {
        let at = self.params.at(x, y);
        &self.data_costs[at..at + self.params.labels]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_linear_shape() {
        let p = MrfParams::truncated_linear(4, 4, 8, 2, 6);
        assert_eq!(p.smoothness[0], 0); // diagonal
        assert_eq!(p.smoothness[1], 2); // |0-1| * 2
        assert_eq!(p.smoothness[7], 6); // truncated at 6
        assert_eq!(p.smoothness[7 * 8 + 7], 0);
        // Symmetric.
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(p.smoothness[a * 8 + b], p.smoothness[b * 8 + a]);
            }
        }
    }

    #[test]
    fn indexing() {
        let p = MrfParams::truncated_linear(10, 5, 16, 1, 4);
        assert_eq!(p.at(0, 0), 0);
        assert_eq!(p.at(1, 0), 16);
        assert_eq!(p.at(0, 1), 160);
        assert_eq!(p.vertices(), 50);
    }

    #[test]
    #[should_panic(expected = "width x height x labels")]
    fn wrong_cost_length_panics() {
        let p = MrfParams::truncated_linear(4, 4, 4, 1, 3);
        let _ = Mrf::new(p, vec![0; 10]);
    }
}

//! Hierarchical BP-M's construct and copy phases as VIP programs
//! (§VI-A).
//!
//! *Construct* pools each 2×2 block of fine-grid data costs into one
//! coarse vertex (three `v.v.add`s per coarse vertex — the memory-bound
//! "cons" kernel of Figure 3a). *Copy* initializes the fine grid's four
//! message planes from the converged coarse messages (each fine vertex
//! inherits its coarse parent's vector). Both stream whole row segments
//! through the scratchpad; both are verified bit-for-bit against
//! [`coarse_mrf`](super::coarse_mrf) and
//! [`refine_messages`](super::refine_messages).

use vip_isa::{Asm, ElemType, Program, Reg, VerticalOp};

use super::BpLayout;

const TY: ElemType = ElemType::I16;

/// Which plane a [`copy_messages_programs`] run duplicates. The four
/// planes are independent; the generated program handles all four in
/// sequence.
const PLANE_COUNT: usize = 4;

fn reg_alloc() -> impl FnMut() -> Reg {
    let mut next = 0u8;
    move || {
        let r = Reg::new(next);
        next += 1;
        r
    }
}

/// Generates per-PE programs for the construct phase: coarse data costs
/// from fine data costs. Coarse rows are split across `pes`.
///
/// # Panics
///
/// Panics if geometries mismatch (coarse must be exactly half the fine
/// grid), rows don't divide across PEs, or the chunk doesn't divide the
/// coarse width.
#[must_use]
pub fn construct_programs(fine: &BpLayout, coarse: &BpLayout, pes: usize) -> Vec<Program> {
    assert_eq!(fine.width, 2 * coarse.width);
    assert_eq!(fine.height, 2 * coarse.height);
    assert_eq!(fine.labels, coarse.labels);
    let l = fine.labels;
    let lb = (l * 2) as i64;
    assert_eq!(coarse.height % pes, 0, "coarse rows must divide across PEs");
    let rows_per_pe = coarse.height / pes;

    // G coarse pixels per chunk: two fine-row buffers of 2G×L plus the
    // G×L output.
    let g = (4096 / (5 * l * 2)).clamp(1, 8).min(coarse.width);
    assert_eq!(
        coarse.width % g,
        0,
        "coarse width {} % chunk {g} != 0",
        coarse.width
    );
    let in_elems = 2 * g * l;
    let sp_a = 0i64;
    let sp_b = (in_elems * 2) as i64;
    let sp_out = 2 * sp_b;
    assert!(sp_out + (g * l * 2) as i64 <= 4096);

    (0..pes)
        .map(|pe| {
            let mut r = reg_alloc();
            let (r_in_len, r_out_len, r_a, r_b, r_o, r_t, r_t2) =
                (r(), r(), r(), r(), r(), r(), r());
            let (r_pa, r_pb, r_po, r_y, r_yn, r_x, r_xn) = (r(), r(), r(), r(), r(), r(), r());

            let cy0 = pe * rows_per_pe;
            let fine_theta = fine.base; // theta is plane 0
            let coarse_theta = coarse.base;

            let mut asm = Asm::new();
            asm.mov_imm(r_in_len, in_elems as i64)
                .mov_imm(r_out_len, (g * l) as i64)
                .mov_imm(r_a, sp_a)
                .mov_imm(r_b, sp_b)
                .mov_imm(r_o, sp_out)
                .mov_imm(
                    r_pa,
                    (fine_theta + 2 * cy0 as u64 * fine.row_stride()) as i64,
                )
                .mov_imm(
                    r_po,
                    (coarse_theta + cy0 as u64 * coarse.row_stride()) as i64,
                )
                .mov_imm(r_y, 0)
                .mov_imm(r_yn, rows_per_pe as i64)
                .label("row")
                .mov_imm(r_x, 0)
                .mov_imm(r_xn, (coarse.width / g) as i64)
                .label("xl");
            // Load 2G fine vectors from each of the two fine rows.
            asm.mov(r_pb, r_pa)
                .mov_imm(r_t, fine.row_stride() as i64)
                .add(r_pb, r_pb, r_t)
                .ld_sram(TY, r_a, r_pa, r_in_len)
                .ld_sram(TY, r_b, r_pb, r_in_len)
                .set_vl(r_in_len)
                .vec_vec(VerticalOp::Add, TY, r_a, r_a, r_b)
                .set_vl(r_out_len);
            // Horizontal pairs: out[g] = A'[2g] + A'[2g+1], L lanes each
            // (done as one G·L-long add of the even and odd halves would
            // interleave wrongly, so pair per coarse pixel).
            asm.mov_imm(r_t2, l as i64).set_vl(r_t2);
            for gi in 0..g {
                asm.addi(r_t, r_a, (2 * gi) as i32 * lb as i32)
                    .addi(r_t2, r_t, lb as i32)
                    .mov_imm(r_o, sp_out + (gi as i64) * lb)
                    .vec_vec(VerticalOp::Add, TY, r_o, r_t, r_t2);
            }
            asm.mov_imm(r_o, sp_out)
                .st_sram(TY, r_o, r_po, r_out_len)
                .mov_imm(r_t, (in_elems * 2) as i64)
                .add(r_pa, r_pa, r_t)
                .mov_imm(r_t, (g * l * 2) as i64)
                .add(r_po, r_po, r_t)
                .addi(r_x, r_x, 1)
                .blt(r_x, r_xn, "xl");
            // Row epilogue: fine pointer advances two rows, coarse one.
            let fine_consumed = (coarse.width / g) as i64 * (in_elems * 2) as i64;
            let coarse_consumed = (coarse.width * l * 2) as i64;
            asm.mov_imm(r_t, 2 * fine.row_stride() as i64 - fine_consumed)
                .add(r_pa, r_pa, r_t)
                .mov_imm(r_t, coarse.row_stride() as i64 - coarse_consumed)
                .add(r_po, r_po, r_t)
                .addi(r_y, r_y, 1)
                .blt(r_y, r_yn, "row")
                .memfence()
                .halt();
            // Restore vl register use: r_out_len for the stores above is
            // element count G*L; set_vl toggling used r_t2 = L.
            asm.assemble().expect("construct program assembles")
        })
        .collect()
}

/// Generates per-PE programs for the copy phase: fine message planes
/// initialized from the coarse grid's converged messages. Fine rows are
/// split across `pes`.
///
/// # Panics
///
/// Panics on geometry mismatches, indivisible rows, or chunking that
/// does not divide the coarse width.
#[must_use]
pub fn copy_messages_programs(coarse: &BpLayout, fine: &BpLayout, pes: usize) -> Vec<Program> {
    assert_eq!(fine.width, 2 * coarse.width);
    assert_eq!(fine.height, 2 * coarse.height);
    assert_eq!(fine.labels, coarse.labels);
    let l = fine.labels;
    let lb = (l * 2) as i64;
    assert_eq!(fine.height % pes, 0);
    let rows_per_pe = fine.height / pes;

    // G coarse vectors in, 2G fine vectors out per chunk.
    let g = (4096 / (3 * 2 * l * 2)).clamp(1, 8).min(coarse.width);
    assert_eq!(coarse.width % g, 0);
    let sp_in = 0i64;
    let sp_out = (g * l * 2) as i64;
    assert!(sp_out + (2 * g * l * 2) as i64 <= 4096);

    (0..pes)
        .map(|pe| {
            let mut r = reg_alloc();
            let (r_in_len, r_out_len, r_i, r_o, r_t, r_t2, r_zero) =
                (r(), r(), r(), r(), r(), r(), r());
            let (r_pi, r_po, r_y, r_yn, r_x, r_xn, r_plane, r_plane_n) =
                (r(), r(), r(), r(), r(), r(), r(), r());
            let (r_pi_base, r_po_base) = (r(), r());

            let y0 = pe * rows_per_pe;
            let mut asm = Asm::new();
            asm.mov_imm(r_in_len, (g * l) as i64)
                .mov_imm(r_out_len, (2 * g * l) as i64)
                .mov_imm(r_i, sp_in)
                .mov_imm(r_zero, 0)
                .mov_imm(r_plane, 0)
                .mov_imm(r_plane_n, PLANE_COUNT as i64)
                // Plane bases for plane 0 (from_above = plane index 1 in
                // the layout; planes 1..=4 are the messages).
                .mov_imm(r_pi_base, (coarse.base + coarse.plane_stride()) as i64)
                .mov_imm(r_po_base, (fine.base + fine.plane_stride()) as i64)
                .label("plane")
                .mov(r_pi, r_pi_base)
                .mov(r_po, r_po_base);
            // Advance to this PE's first fine row.
            asm.mov_imm(r_t, (y0 as u64 / 2 * coarse.row_stride()) as i64)
                .add(r_pi, r_pi, r_t)
                .mov_imm(r_t, (y0 as u64 * fine.row_stride()) as i64)
                .add(r_po, r_po, r_t)
                .mov_imm(r_y, 0)
                .mov_imm(r_yn, rows_per_pe as i64)
                .label("row")
                .mov_imm(r_x, 0)
                .mov_imm(r_xn, (coarse.width / g) as i64)
                .label("xl");
            // Load G coarse vectors; duplicate each into two fine slots.
            asm.set_vl(r_in_len).ld_sram(TY, r_i, r_pi, r_in_len);
            asm.mov_imm(r_t2, l as i64).set_vl(r_t2);
            for gi in 0..g {
                let src = sp_in + gi as i64 * lb;
                for dup in 0..2 {
                    let dst = sp_out + (2 * gi + dup) as i64 * lb;
                    asm.mov_imm(r_t, src).mov_imm(r_o, dst).vec_scalar(
                        VerticalOp::Add,
                        TY,
                        r_o,
                        r_t,
                        r_zero,
                    );
                }
            }
            asm.mov_imm(r_o, sp_out)
                .set_vl(r_out_len)
                .st_sram(TY, r_o, r_po, r_out_len)
                .mov_imm(r_t, (g * l * 2) as i64)
                .add(r_pi, r_pi, r_t)
                .mov_imm(r_t, (2 * g * l * 2) as i64)
                .add(r_po, r_po, r_t)
                .addi(r_x, r_x, 1)
                .blt(r_x, r_xn, "xl");
            // Row epilogue: the fine row advances one; the coarse row
            // advances only on odd fine rows (y + y0 parity is static
            // per trip, so rewind the coarse pointer on even rows
            // instead: net effect = row_stride every two rows).
            let coarse_consumed = (coarse.width * l * 2) as i64;
            let fine_consumed = 2 * coarse_consumed;
            // After each fine row, rewind coarse by what was consumed,
            // then every second row advance it a full stride. Implement
            // with parity arithmetic: r_t2 = (y ^ y0_parity) & 1.
            asm.mov_imm(r_t, -coarse_consumed).add(r_pi, r_pi, r_t);
            // parity = (y + y0) & 1 — advance coarse after odd rows.
            asm.addi(r_t2, r_y, y0 as i32)
                .scalar_imm(vip_isa::ScalarAluOp::And, r_t2, r_t2, 1)
                .mov_imm(r_t, coarse.row_stride() as i64);
            // r_pi += parity * row_stride, via multiply-free select:
            // shift the stride by 63 requires mul; instead branch.
            let skip = format!("skip_{pe}");
            asm.beq(r_t2, r_zero, &skip)
                .add(r_pi, r_pi, r_t)
                .label(&skip);
            asm.mov_imm(r_t, fine.row_stride() as i64 - fine_consumed)
                .add(r_po, r_po, r_t)
                .addi(r_y, r_y, 1)
                .blt(r_y, r_yn, "row");
            // Next plane.
            asm.mov_imm(r_t, coarse.plane_stride() as i64)
                .add(r_pi_base, r_pi_base, r_t)
                .mov_imm(r_t, fine.plane_stride() as i64)
                .add(r_po_base, r_po_base, r_t)
                .addi(r_plane, r_plane, 1)
                .blt(r_plane, r_plane_n, "plane")
                .memfence()
                .halt();
            asm.assemble().expect("copy program assembles")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_fit_the_instruction_buffer() {
        let fine = BpLayout::new(0, 64, 32, 16);
        let coarse = BpLayout::new(1 << 22, 32, 16, 16);
        for p in construct_programs(&fine, &coarse, 4) {
            assert!(p.len() <= 1024);
        }
        for p in copy_messages_programs(&coarse, &fine, 4) {
            assert!(p.len() <= 1024);
        }
    }

    #[test]
    #[should_panic(expected = "coarse rows must divide")]
    fn indivisible_rows_panic() {
        let fine = BpLayout::new(0, 64, 6, 16);
        let coarse = BpLayout::new(1 << 22, 32, 3, 16);
        let _ = construct_programs(&fine, &coarse, 4);
    }
}

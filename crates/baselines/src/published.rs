//! Published baseline numbers, exactly as Table IV cites them.

/// One row of Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishedResult {
    /// System name.
    pub system: &'static str,
    /// Workload descriptor.
    pub workload: &'static str,
    /// Batch size, if meaningful.
    pub batch: Option<u32>,
    /// Iterations, if meaningful (BP rows).
    pub iterations: Option<&'static str>,
    /// Reported time in milliseconds.
    pub time_ms: f64,
    /// Reported power in watts.
    pub power_w: f64,
    /// Technology node in nanometres (0 if unknown).
    pub tech_nm: u32,
    /// Silicon area in mm² (0 if unknown).
    pub area_mm2: f64,
    /// Citation.
    pub source: &'static str,
}

/// MRF (belief propagation) rows of Table IV, excluding VIP itself.
#[must_use]
pub fn mrf_baselines() -> Vec<PublishedResult> {
    vec![
        PublishedResult {
            system: "Optical Gibbs' Sampling",
            workload: "MRF labeling (Gibbs' sampling)",
            batch: None,
            iterations: Some("5000*"),
            time_ms: 1100.0,
            power_w: 12.0,
            tech_nm: 15,
            area_mm2: 200.0,
            source: "Wang et al., ISCA 2016 [55]",
        },
        PublishedResult {
            system: "Tile-BP (720p)",
            workload: "stereo BP, tile-recomputed messages",
            batch: None,
            iterations: Some("(1,2)*"),
            time_ms: 32.7,
            power_w: 0.242,
            tech_nm: 90,
            area_mm2: 12.0,
            source: "Cheng et al., ISCAS 2010 [10]",
        },
        PublishedResult {
            system: "Pascal Titan X",
            workload: "full-HD BP-M, 16 labels",
            batch: None,
            iterations: Some("8"),
            time_ms: 92.2,
            power_w: 250.0,
            tech_nm: 16,
            area_mm2: 471.0,
            source: "paper's own CUDA implementation (§V-B)",
        },
    ]
}

/// CNN rows of Table IV, excluding VIP itself.
#[must_use]
pub fn cnn_baselines() -> Vec<PublishedResult> {
    vec![
        PublishedResult {
            system: "Eyeriss",
            workload: "VGG-16 convolution layers",
            batch: Some(3),
            iterations: None,
            time_ms: 4309.0,
            power_w: 0.236,
            tech_nm: 65,
            area_mm2: 12.0,
            source: "Chen et al., JSSC 2017 [9]",
        },
        PublishedResult {
            system: "Pascal Titan X",
            workload: "VGG-16 full network",
            batch: Some(16),
            iterations: None,
            time_ms: 41.6,
            power_w: 250.0,
            tech_nm: 16,
            area_mm2: 471.0,
            source: "Johnson, cnn-benchmarks [25]",
        },
        PublishedResult {
            system: "Volta",
            workload: "VGG-19 full network (Tensor cores)",
            batch: Some(1),
            iterations: None,
            time_ms: 2.2,
            power_w: 144.0,
            tech_nm: 12,
            area_mm2: 815.0,
            source: "Nvidia [13, 40]",
        },
        PublishedResult {
            system: "Jetson TX2",
            workload: "VGG-19 full network",
            batch: Some(1),
            iterations: None,
            time_ms: 42.2,
            power_w: 10.0,
            tech_nm: 16,
            area_mm2: 0.0,
            source: "Nvidia deep learning platform [40]",
        },
    ]
}

/// The VIP rows of Table IV as the paper reports them — the targets our
/// simulation is compared against in EXPERIMENTS.md.
pub mod vip_paper {
    /// Full-HD baseline BP-M, 8 iterations (ms).
    pub const BP_BASELINE_MS: f64 = 41.3;
    /// One BP-M iteration on full HD (ms).
    pub const BP_ITERATION_MS: f64 = 5.2;
    /// Hierarchical BP-M, 5 iterations (ms).
    pub const BP_HIER_MS: f64 = 36.3;
    /// Hierarchical construct phase (ms).
    pub const BP_CONSTRUCT_MS: f64 = 0.36;
    /// Hierarchical copy phase (ms).
    pub const BP_COPY_MS: f64 = 1.26;
    /// One quarter-HD BP-M iteration (ms).
    pub const BP_QHD_ITERATION_MS: f64 = 1.8;
    /// VGG-16 convolution layers, batch 3 (ms).
    pub const VGG16_CONV_B3_MS: f64 = 91.6;
    /// VGG-16 conv+pool+ReLU before fc6, batch 1 (ms).
    pub const VGG16_CONV_B1_MS: f64 = 30.9;
    /// VGG-19 conv+pool+ReLU before fc6, batch 1 (ms).
    pub const VGG19_CONV_B1_MS: f64 = 39.2;
    /// VGG-16 full network, batch 1 (ms).
    pub const VGG16_FULL_B1_MS: f64 = 32.3;
    /// VGG-16 full network, batch 16 (ms).
    pub const VGG16_FULL_B16_MS: f64 = 492.4;
    /// VGG-19 full network, batch 1 (ms).
    pub const VGG19_FULL_B1_MS: f64 = 40.6;
    /// Fully-connected layers, batch 1 (ms).
    pub const FC_B1_MS: f64 = 1.4;
    /// Fully-connected layers, batch 16 (ms).
    pub const FC_B16_MS: f64 = 4.4;
    /// BP power (W, 128 PEs).
    pub const BP_POWER_W: f64 = 3.5;
    /// CNN power (W, 128 PEs).
    pub const CNN_POWER_W: f64 = 4.8;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_complete() {
        assert_eq!(mrf_baselines().len(), 3);
        assert_eq!(cnn_baselines().len(), 4);
        for r in mrf_baselines().iter().chain(&cnn_baselines()) {
            assert!(r.time_ms > 0.0, "{}", r.system);
            assert!(r.power_w > 0.0, "{}", r.system);
            assert!(!r.source.is_empty());
        }
    }

    #[test]
    fn vip_beats_titan_x_on_bp_in_the_paper() {
        let titan = mrf_baselines()
            .into_iter()
            .find(|r| r.system == "Pascal Titan X")
            .unwrap();
        assert!(vip_paper::BP_BASELINE_MS < titan.time_ms);
    }
}

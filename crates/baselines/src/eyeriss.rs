//! The "Eyeriss-scaled" normalization analysis (§VI-A).
//!
//! Eyeriss reports 4,309 ms for VGG-16's convolution layers at batch 3,
//! but in 65 nm, 12 mm², and 200 MHz against VIP's 28 nm, 18 mm², and
//! 1.25 GHz. The paper optimistically scales Eyeriss to VIP's
//! area/technology/clock and concludes VIP is "less than 10% worse than
//! Eyeriss-scaled, at Eyeriss' own and only game". This module encodes
//! that arithmetic.

/// Inputs to the scaling analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingAnalysis {
    /// Reported runtime, ms.
    pub reported_ms: f64,
    /// Baseline's area, mm².
    pub area_mm2: f64,
    /// Baseline's technology node, nm.
    pub tech_nm: f64,
    /// Baseline's clock, Hz.
    pub clock_hz: f64,
    /// Target (VIP) area, mm².
    pub target_area_mm2: f64,
    /// Target technology node, nm.
    pub target_tech_nm: f64,
    /// Target clock, Hz.
    pub target_clock_hz: f64,
}

impl ScalingAnalysis {
    /// Eyeriss vs. VIP, with the paper's numbers.
    #[must_use]
    pub fn eyeriss_vs_vip() -> Self {
        ScalingAnalysis {
            reported_ms: 4309.0,
            area_mm2: 12.0,
            tech_nm: 65.0,
            clock_hz: 200e6,
            target_area_mm2: 18.0,
            target_tech_nm: 28.0,
            target_clock_hz: 1.25e9,
        }
    }

    /// Area scaling divisor (18/12 in the paper).
    #[must_use]
    pub fn area_factor(&self) -> f64 {
        self.target_area_mm2 / self.area_mm2
    }

    /// Technology scaling divisor ((65/28)² in the paper).
    #[must_use]
    pub fn tech_factor(&self) -> f64 {
        (self.tech_nm / self.target_tech_nm).powi(2)
    }

    /// Clock scaling divisor (25/4 in the paper).
    #[must_use]
    pub fn clock_factor(&self) -> f64 {
        self.target_clock_hz / self.clock_hz
    }

    /// The optimistically-scaled runtime: reported time divided by all
    /// three factors (assumes perfect scaling with no new bottlenecks,
    /// as §VI-A states).
    #[must_use]
    pub fn scaled_ms(&self) -> f64 {
        self.reported_ms / self.area_factor() / self.tech_factor() / self.clock_factor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_match_the_papers_arithmetic() {
        let a = ScalingAnalysis::eyeriss_vs_vip();
        assert!((a.area_factor() - 1.5).abs() < 1e-12);
        assert!((a.tech_factor() - (65.0f64 / 28.0).powi(2)).abs() < 1e-12);
        assert!((a.clock_factor() - 6.25).abs() < 1e-12);
    }

    #[test]
    fn vip_is_within_ten_percent_of_eyeriss_scaled() {
        // §VI-A's conclusion: VIP's 91.6 ms (batch 3) is less than 10%
        // worse than Eyeriss-scaled.
        let scaled = ScalingAnalysis::eyeriss_vs_vip().scaled_ms();
        let vip = crate::published::vip_paper::VGG16_CONV_B3_MS;
        assert!(vip > scaled, "Eyeriss-scaled wins narrowly");
        assert!(vip / scaled < 1.10, "ratio {:.3}", vip / scaled);
    }
}

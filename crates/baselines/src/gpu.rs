//! Analytical GPU latency model for the BP-M CUDA baseline (§V-B).
//!
//! The paper hand-optimizes a CUDA BP-M kernel for the Pascal Titan X
//! and measures 11.5 ms per full-HD iteration, observing via the Nvidia
//! profiler that the kernel is "limited by both instruction and memory
//! latency" because BP-M's per-sweep parallelism cannot fill the GPU.
//! With no GPU available here, this model reproduces that measurement
//! from first principles: per directional sweep, the runtime is the
//! maximum of (a) the memory-traffic time at an occupancy-derated
//! effective bandwidth and (b) the sequential-chain latency along the
//! sweep axis — and the whole-frame number is calibrated against the
//! paper's measurement (DESIGN.md substitution #2).

use vip_kernels::bp::BpCosts;

/// GPU hardware parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Name for reports.
    pub name: &'static str,
    /// Peak memory bandwidth, bytes/s.
    pub peak_bw: f64,
    /// Occupancy-derating of effective bandwidth for BP-M's short,
    /// dependent accesses (profiler-observed latency limitation).
    pub bw_efficiency: f64,
    /// Latency of one dependent step in the sweep chain, seconds
    /// (kernel launch + memory round-trip per wavefront step).
    pub step_latency_s: f64,
}

impl GpuModel {
    /// Pascal Titan X: 480 GB/s peak (§V-B), derated to the effective
    /// bandwidth BP-M achieves, with a per-wavefront dependent-step
    /// latency. Constants are calibrated so a full-HD iteration costs
    /// the measured 11.5 ms.
    #[must_use]
    pub fn titan_x_pascal() -> Self {
        GpuModel {
            name: "Pascal Titan X",
            peak_bw: 480e9,
            bw_efficiency: 0.22,
            step_latency_s: 1.75e-6,
        }
    }

    /// Time for one BP-M iteration (all four sweeps), seconds.
    #[must_use]
    pub fn iteration_s(&self, costs: &BpCosts) -> f64 {
        let bytes = costs.bytes_per_iteration() as f64;
        let traffic_s = bytes / (self.peak_bw * self.bw_efficiency);
        // Two vertical sweeps chain over height, two horizontal over
        // width; wavefront steps execute back-to-back.
        let chain_steps = 2 * costs.height + 2 * costs.width;
        let latency_s = chain_steps as f64 * self.step_latency_s;
        traffic_s.max(latency_s) + 0.3e-3 // fixed per-iteration overhead
    }

    /// Milliseconds for `iters` iterations.
    #[must_use]
    pub fn run_ms(&self, costs: &BpCosts, iters: u64) -> f64 {
        self.iteration_s(costs) * iters as f64 * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_to_the_papers_measurement() {
        // §VI-A: one iteration takes 11.5 ms; eight take 92.2 ms.
        let gpu = GpuModel::titan_x_pascal();
        let one = gpu.run_ms(&BpCosts::full_hd(), 1);
        assert!((one - 11.5).abs() / 11.5 < 0.1, "one iteration {one:.2} ms");
        let eight = gpu.run_ms(&BpCosts::full_hd(), 8);
        assert!(
            (eight - 92.2).abs() / 92.2 < 0.1,
            "eight iterations {eight:.1} ms"
        );
    }

    #[test]
    fn quarter_hd_is_cheaper_but_latency_floored() {
        let gpu = GpuModel::titan_x_pascal();
        let fhd = gpu.iteration_s(&BpCosts::full_hd());
        let qhd = gpu.iteration_s(&BpCosts::quarter_hd());
        assert!(qhd < fhd);
        // The chain-latency floor keeps small frames from scaling
        // perfectly (the "not enough parallelism" effect).
        assert!(qhd > fhd / 4.0);
    }
}

//! Measured multithreaded host-CPU BP-M baseline.
//!
//! The only baseline this reproduction can honestly *measure* is the
//! machine it runs on. This is a parallel BP-M with the same numerics
//! as the golden reference: within each directional sweep, strips of
//! the orthogonal axis run on scoped threads (the same parallel
//! decomposition VIP's software uses), with the message arrays split
//! mutably per strip. The benches report its throughput next to the
//! simulated VIP numbers.

use vip_isa::alu::{sat_add16, sat_sub16};
use vip_kernels::bp::{Messages, Mrf, Sweep};

/// Runs `iters` BP-M iterations using up to `threads` worker threads
/// and returns the final messages.
#[must_use]
pub fn run_parallel(mrf: &Mrf, iters: usize, threads: usize) -> Messages {
    let mut msgs = Messages::new(&mrf.params);
    for _ in 0..iters {
        for dir in Sweep::iteration_order() {
            parallel_sweep(mrf, &mut msgs, dir, threads);
        }
    }
    msgs
}

/// One parallel directional sweep.
pub fn parallel_sweep(mrf: &Mrf, msgs: &mut Messages, dir: Sweep, threads: usize) {
    let p = &mrf.params;
    let l = p.labels;
    let norm = msgs.normalize;
    let (w, h) = (p.width, p.height);

    // Immutable inputs per direction; the written plane is split.
    let (theta, smooth) = (&mrf.data_costs, &p.smoothness);
    let vertical = dir.is_vertical();
    let ortho = if vertical { w } else { h };
    let threads = threads.clamp(1, ortho);

    // Clone the read planes (cheap relative to the sweep) so the
    // written plane can be sliced mutably without aliasing. For the
    // written plane the *old* values are also inputs (the chain), so
    // workers read their own slice's previous values in place.
    let from_above = msgs.from_above.clone();
    let from_below = msgs.from_below.clone();
    let from_left = msgs.from_left.clone();
    let from_right = msgs.from_right.clone();

    let written: &mut Vec<i16> = match dir {
        Sweep::Down => &mut msgs.from_above,
        Sweep::Up => &mut msgs.from_below,
        Sweep::Right => &mut msgs.from_left,
        Sweep::Left => &mut msgs.from_right,
    };

    // Vertical sweeps parallelize over x, horizontal over y; each worker
    // owns a contiguous ortho band. The written plane is row-major, so
    // bands are strided: hand each worker a raw pointer region guarded
    // by the disjoint-band invariant via chunked interior mutability.
    // To stay in safe Rust we give each worker its own output buffer
    // for its band and splice afterwards.
    let band = ortho.div_ceil(threads);
    let results: Vec<(usize, usize, Vec<i16>)> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let o0 = t * band;
            let o1 = ((t + 1) * band).min(ortho);
            if o0 >= o1 {
                continue;
            }
            let written_ro: &Vec<i16> = written;
            let (fa, fb, fl, fr) = (&from_above, &from_below, &from_left, &from_right);
            handles.push(scope.spawn(move || {
                let mut out = written_ro.clone();
                let at = |x: usize, y: usize| (y * w + x) * l;
                let seq_positions: Vec<(usize, usize, usize, usize)> = match dir {
                    Sweep::Down => (0..h - 1)
                        .flat_map(|y| (o0..o1).map(move |x| (x, y, x, y + 1)))
                        .collect(),
                    Sweep::Up => (1..h)
                        .rev()
                        .flat_map(|y| (o0..o1).map(move |x| (x, y, x, y - 1)))
                        .collect(),
                    Sweep::Right => (0..w - 1)
                        .flat_map(|x| (o0..o1).map(move |y| (x, y, x + 1, y)))
                        .collect(),
                    Sweep::Left => (1..w)
                        .rev()
                        .flat_map(|x| (o0..o1).map(move |y| (x, y, x - 1, y)))
                        .collect(),
                };
                for (x, y, tx, ty) in seq_positions {
                    let a = at(x, y);
                    let mut th: Vec<i16> = theta[a..a + l].to_vec();
                    let adds: [&[i16]; 2] = match dir {
                        Sweep::Down | Sweep::Up => [&fl[a..a + l], &fr[a..a + l]],
                        Sweep::Right | Sweep::Left => [&fa[a..a + l], &fb[a..a + l]],
                    };
                    let along: &[i16] = match dir {
                        Sweep::Down => &out[a..a + l],
                        Sweep::Up => &out[a..a + l],
                        Sweep::Right => &out[a..a + l],
                        Sweep::Left => &out[a..a + l],
                    };
                    for i in 0..l {
                        th[i] = sat_add16(th[i], along[i]);
                        th[i] = sat_add16(th[i], adds[0][i]);
                        th[i] = sat_add16(th[i], adds[1][i]);
                    }
                    let ta = at(tx, ty);
                    for lv in 0..l {
                        let mut best = i16::MAX;
                        for lp in 0..l {
                            let v = sat_add16(smooth[lv * l + lp], th[lp]);
                            best = best.min(v);
                        }
                        out[ta + lv] = best;
                    }
                    if norm {
                        let m0 = out[ta];
                        for v in &mut out[ta..ta + l] {
                            *v = sat_sub16(*v, m0);
                        }
                    }
                }
                (o0, o1, out)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });

    // Splice each worker's band back (bands are disjoint in the ortho
    // axis; copy only positions the worker owned).
    for (o0, o1, out) in results {
        for y in 0..h {
            for x in 0..w {
                let owned = if vertical {
                    (o0..o1).contains(&x)
                } else {
                    (o0..o1).contains(&y)
                };
                if owned {
                    let a = (y * w + x) * l;
                    written[a..a + l].copy_from_slice(&out[a..a + l]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_kernels::bp::{self, MrfParams};

    #[test]
    fn parallel_matches_sequential_golden() {
        let (w, h, l) = (32, 16, 8);
        let costs = bp::stereo_data_costs(w, h, l, 9);
        let mrf = Mrf::new(MrfParams::truncated_linear(w, h, l, 2, 10), costs);
        let par = run_parallel(&mrf, 3, 4);
        let mut seq = Messages::new(&mrf.params);
        for _ in 0..3 {
            bp::iteration(&mrf, &mut seq);
        }
        assert_eq!(par.from_above, seq.from_above);
        assert_eq!(par.from_below, seq.from_below);
        assert_eq!(par.from_left, seq.from_left);
        assert_eq!(par.from_right, seq.from_right);
    }

    #[test]
    fn single_thread_also_matches() {
        let (w, h, l) = (16, 16, 4);
        let costs = bp::stereo_data_costs(w, h, l, 2);
        let mrf = Mrf::new(MrfParams::truncated_linear(w, h, l, 1, 6), costs);
        let par = run_parallel(&mrf, 2, 1);
        let mut seq = Messages::new(&mrf.params);
        for _ in 0..2 {
            bp::iteration(&mrf, &mut seq);
        }
        assert_eq!(par.from_above, seq.from_above);
    }
}

//! # vip-baselines — the systems VIP is compared against
//!
//! Table IV of the paper compares VIP to GPUs (Pascal Titan X, Volta,
//! Jetson TX2), accelerators (Eyeriss, Tile-BP), and Optical Gibbs'
//! sampling. The paper re-measures only the Titan X BP-M baseline; all
//! other numbers are taken from the cited publications. This crate
//! mirrors that structure:
//!
//! * [`published`] — the cited numbers, with provenance, used verbatim
//!   (DESIGN.md substitution #3);
//! * [`eyeriss`] — the paper's area/technology/clock scaling analysis
//!   for "Eyeriss-scaled" (§VI-A), implemented as code;
//! * [`gpu`] — an analytical latency model for the Titan X BP-M CUDA
//!   baseline, calibrated to the paper's measured 11.5 ms/iteration
//!   (DESIGN.md substitution #2: no GPU exists in this environment);
//! * [`cpu`] — a *measured* multithreaded host-CPU BP-M implementation,
//!   an honest local reference point exercised by the benches.
//!
//! The Figure 4 "traditional vector machine" variants live in
//! [`vip_kernels::bp::VectorMachineStyle`]: they are VIP programs, not
//! external baselines.

pub mod cpu;
pub mod eyeriss;
pub mod gpu;
pub mod published;

//! The PE's 4 KiB SRAM scratchpad.

use vip_isa::Trap;
use vip_snap::{Reader, SnapError, Snapshot, Writer};

/// The scratchpad that replaces a vector register file in VIP's vector
/// memory-memory paradigm (§III-A/B).
///
/// Hardware-wise it is eight 512×8-bit banks whose 3R/2W ports are
/// swizzled into 64-bit ports — two read and one write port dedicated to
/// the vector pipeline and one read plus one write port to the load-store
/// unit, so the two never conflict and any byte alignment is legal. The
/// model therefore exposes plain byte-addressed storage with bounds
/// checks; port *counts* never throttle (that is the microarchitectural
/// point of the banked design) while port *width* shows up as the vector
/// unit's beat rate.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    data: Vec<u8>,
}

impl Scratchpad {
    /// Creates a zeroed scratchpad of `bytes` bytes (4,096 for VIP).
    #[must_use]
    pub fn new(bytes: usize) -> Self {
        Scratchpad {
            data: vec![0; bytes],
        }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the scratchpad has zero capacity (never true in practice).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::ScratchpadOutOfBounds`] if the range exceeds the
    /// scratchpad; the PE surfaces it as a typed simulation error.
    pub fn slice(&self, addr: usize, len: usize) -> Result<&[u8], Trap> {
        Trap::check_sp_range(addr, len, self.data.len())?;
        Ok(&self.data[addr..addr + len])
    }

    /// Mutably borrows `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::ScratchpadOutOfBounds`] if the range exceeds the
    /// scratchpad.
    pub fn slice_mut(&mut self, addr: usize, len: usize) -> Result<&mut [u8], Trap> {
        Trap::check_sp_range(addr, len, self.data.len())?;
        Ok(&mut self.data[addr..addr + len])
    }

    /// Copies bytes in, for load completions and host preloading.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::ScratchpadOutOfBounds`] if the range exceeds the
    /// scratchpad.
    pub fn write(&mut self, addr: usize, bytes: &[u8]) -> Result<(), Trap> {
        self.slice_mut(addr, bytes.len())?.copy_from_slice(bytes);
        Ok(())
    }

    /// Copies bytes out.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::ScratchpadOutOfBounds`] if the range exceeds the
    /// scratchpad.
    pub fn read(&self, addr: usize, len: usize) -> Result<Vec<u8>, Trap> {
        Ok(self.slice(addr, len)?.to_vec())
    }
}

impl Snapshot for Scratchpad {
    fn save(&self, w: &mut Writer) {
        w.bytes(&self.data);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Scratchpad {
            data: r.bytes()?.to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_zero_init() {
        let mut sp = Scratchpad::new(4096);
        assert_eq!(sp.len(), 4096);
        assert_eq!(sp.read(100, 4).unwrap(), vec![0; 4]);
        sp.write(100, &[1, 2, 3]).unwrap();
        assert_eq!(sp.read(99, 5).unwrap(), vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn arbitrary_alignment_is_legal() {
        // The banked+swizzled design means any byte offset works.
        let mut sp = Scratchpad::new(4096);
        sp.write(4093, &[9, 9, 9]).unwrap();
        assert_eq!(sp.read(4093, 3).unwrap(), vec![9, 9, 9]);
    }

    #[test]
    fn out_of_bounds_is_a_typed_trap() {
        let sp = Scratchpad::new(4096);
        assert_eq!(
            sp.slice(4090, 8).unwrap_err(),
            Trap::ScratchpadOutOfBounds {
                addr: 4090,
                len: 8,
                capacity: 4096
            }
        );
        let mut sp = Scratchpad::new(4096);
        assert!(sp.write(4095, &[0, 0]).is_err());
        assert!(sp.read(0, 4097).is_err());
    }
}

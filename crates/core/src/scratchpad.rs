//! The PE's 4 KiB SRAM scratchpad.

use vip_isa::Trap;

/// The scratchpad that replaces a vector register file in VIP's vector
/// memory-memory paradigm (§III-A/B).
///
/// Hardware-wise it is eight 512×8-bit banks whose 3R/2W ports are
/// swizzled into 64-bit ports — two read and one write port dedicated to
/// the vector pipeline and one read plus one write port to the load-store
/// unit, so the two never conflict and any byte alignment is legal. The
/// model therefore exposes plain byte-addressed storage with bounds
/// checks; port *counts* never throttle (that is the microarchitectural
/// point of the banked design) while port *width* shows up as the vector
/// unit's beat rate.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    data: Vec<u8>,
}

impl Scratchpad {
    /// Creates a zeroed scratchpad of `bytes` bytes (4,096 for VIP).
    #[must_use]
    pub fn new(bytes: usize) -> Self {
        Scratchpad {
            data: vec![0; bytes],
        }
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the scratchpad has zero capacity (never true in practice).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows `len` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the scratchpad — generated code is
    /// expected to stay in bounds, so this is a codegen bug.
    #[must_use]
    pub fn slice(&self, addr: usize, len: usize) -> &[u8] {
        if let Err(trap) = Trap::check_sp_range(addr, len, self.data.len()) {
            panic!("{trap}");
        }
        &self.data[addr..addr + len]
    }

    /// Mutably borrows `len` bytes starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the scratchpad.
    #[must_use]
    pub fn slice_mut(&mut self, addr: usize, len: usize) -> &mut [u8] {
        if let Err(trap) = Trap::check_sp_range(addr, len, self.data.len()) {
            panic!("{trap}");
        }
        &mut self.data[addr..addr + len]
    }

    /// Copies bytes in, for load completions and host preloading.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the scratchpad.
    pub fn write(&mut self, addr: usize, bytes: &[u8]) {
        self.slice_mut(addr, bytes.len()).copy_from_slice(bytes);
    }

    /// Copies bytes out.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the scratchpad.
    #[must_use]
    pub fn read(&self, addr: usize, len: usize) -> Vec<u8> {
        self.slice(addr, len).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_zero_init() {
        let mut sp = Scratchpad::new(4096);
        assert_eq!(sp.len(), 4096);
        assert_eq!(sp.read(100, 4), vec![0; 4]);
        sp.write(100, &[1, 2, 3]);
        assert_eq!(sp.read(99, 5), vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn arbitrary_alignment_is_legal() {
        // The banked+swizzled design means any byte offset works.
        let mut sp = Scratchpad::new(4096);
        sp.write(4093, &[9, 9, 9]);
        assert_eq!(sp.read(4093, 3), vec![9, 9, 9]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn out_of_bounds_panics() {
        let sp = Scratchpad::new(4096);
        let _ = sp.slice(4090, 8);
    }
}

//! The full VIP system: PEs + vault controllers + torus, clocked
//! together.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use vip_faults::FaultConfig;
use vip_isa::{scan_block, Block, Program, Reg};
use vip_mem::{Hmc, MemRequest, MemResponse, RequestKind};
use vip_noc::Torus;
use vip_snap::{read_header, write_header, Reader, SnapError, Snapshot, Writer};

use crate::config::SystemConfig;
use crate::error::{BlockedPe, HangReport, SimError};
use crate::fast_func::{exec_block, BlockOutcome, ExecBufs, FuncConfig};
use crate::pe::Pe;
use crate::stats::{FuncStats, PeStats, SystemStats};
use crate::Cycle;

/// How a bounded [`System::run_until`] slice ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// Every PE halted and the machine drained at the given cycle.
    Quiesced(Cycle),
    /// The pause bound was reached with work still in flight; the cycle
    /// equals the bound. Snapshot here and a later restore continues
    /// bit-identically.
    Paused(Cycle),
}

/// Traffic carried on the torus between vaults.
#[derive(Debug)]
enum SysMsg {
    /// A PE's memory request heading to a remote vault controller.
    Req(MemRequest),
    /// A completion heading back to PE `pe`'s vault.
    Resp { pe: usize, resp: MemResponse },
}

impl Snapshot for SysMsg {
    fn save(&self, w: &mut Writer) {
        match self {
            SysMsg::Req(req) => {
                w.u8(0);
                req.save(w);
            }
            SysMsg::Resp { pe, resp } => {
                w.u8(1);
                w.usize(*pe);
                resp.save(w);
            }
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(SysMsg::Req(MemRequest::restore(r)?)),
            1 => Ok(SysMsg::Resp {
                pe: r.usize()?,
                resp: MemResponse::restore(r)?,
            }),
            _ => Err(SnapError::Corrupt("system message tag")),
        }
    }
}

fn req_bytes(req: &MemRequest) -> usize {
    match req.kind {
        RequestKind::Read | RequestKind::FeLoad => 16,
        RequestKind::Write | RequestKind::FeStore => 16 + req.data.len(),
    }
}

fn resp_bytes(resp: &MemResponse) -> usize {
    8 + resp.data.len()
}

/// Resolves a configured shard count to an actual one (`>= 1`).
/// Auto (`0`) sizes to the host's parallelism but never slices finer
/// than 16 PEs per shard — below that, thread overhead dominates.
fn resolve_shards(requested: usize, total_pes: usize) -> usize {
    let shards = if requested == 0 {
        std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(total_pes / 16)
    } else {
        requested.min(total_pes)
    };
    shards.max(1)
}

/// The per-PE step phase for a contiguous slice of PEs starting at
/// global id `base`: deliver matured completions, tick, and emit at most
/// one request into the PE's private egress queue.
///
/// Every mutation is confined to the PE itself and its own `to_pe` /
/// `egress` queues, so disjoint slices run on separate host threads
/// without changing simulated behaviour. Returns `(completions
/// delivered, requests emitted)` plus the lowest-PE-id error raised this
/// cycle (every PE in the slice is still stepped, so the reported error
/// is independent of sharding), and appends the global ids of PEs that
/// halted this cycle.
fn step_pes(
    pes: &mut [Pe],
    to_pe: &mut [VecDeque<(Cycle, MemResponse)>],
    egress: &mut [VecDeque<MemRequest>],
    now: Cycle,
    base: usize,
    newly_halted: &mut Vec<usize>,
) -> ((usize, usize), Option<(usize, SimError)>) {
    let mut received = 0;
    let mut emitted = 0;
    let mut first_err: Option<(usize, SimError)> = None;
    for (i, ((pe, queue), egress)) in pes.iter_mut().zip(to_pe).zip(egress).enumerate() {
        let mut pe_err: Option<SimError> = None;
        while let Some(&(ready, _)) = queue.front() {
            if ready > now {
                break;
            }
            let (_, resp) = queue.pop_front().expect("front exists");
            match pe.receive(&resp) {
                Ok(()) => received += 1,
                Err(e) => {
                    pe_err = Some(e);
                    break;
                }
            }
        }

        if pe_err.is_none() {
            let was_halted = pe.is_halted();
            match pe.tick(now) {
                Ok(()) => {
                    if !was_halted && pe.is_halted() {
                        newly_halted.push(base + i);
                    }
                    if egress.len() < 8 {
                        if let Some(req) = pe.emit_request() {
                            egress.push_back(req);
                            emitted += 1;
                        }
                    }
                }
                Err(e) => pe_err = Some(e),
            }
        }

        if first_err.is_none() {
            if let Some(e) = pe_err {
                first_err = Some((base + i, e));
            }
        }
    }
    ((received, emitted), first_err)
}

/// The complete system simulator (Figure 1's left half).
///
/// Holds `vaults × pes_per_vault` [`Pe`]s, the [`Hmc`] memory stack, and
/// the [`Torus`]. PEs reach their local vault controller over a star link
/// (configurable latency, 8 B/cycle serialization) and remote vaults over
/// the torus; completions retrace the path. Everything advances in
/// lock-step, one 0.8 ns cycle per [`step`](System::step).
///
/// See the crate docs for a runnable example.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    now: Cycle,
    pes: Vec<Pe>,
    hmc: Hmc,
    net: Torus<SysMsg>,
    /// Requests a PE has emitted but not yet pushed onto a link.
    pe_egress: Vec<VecDeque<MemRequest>>,
    /// Serialization state of each PE's star uplink.
    uplink_busy: Vec<Cycle>,
    /// Serialization state of each PE's star downlink.
    downlink_busy: Vec<Cycle>,
    /// In-flight on local star links toward each vault: (ready, request).
    to_vault_local: Vec<VecDeque<(Cycle, MemRequest)>>,
    /// Requests at a vault waiting for transaction-queue space.
    vault_ingress: Vec<VecDeque<MemRequest>>,
    /// Completions at a vault waiting to inject onto the torus.
    vault_egress: Vec<VecDeque<(usize, MemResponse)>>,
    /// In-flight completions on each PE's downlink: (ready, response).
    to_pe: Vec<VecDeque<(Cycle, MemResponse)>>,
    /// Host threads for the per-PE step phase (resolved, `>= 1`).
    step_shards: usize,
    /// PEs that have not halted — an O(1) quiescence pre-gate,
    /// recounted at [`run`](System::run) entry and maintained by `step`.
    unhalted: usize,
    /// Requests emitted by PEs whose completion has not yet been
    /// delivered back (the other half of the quiescence pre-gate).
    inflight_msgs: usize,
    /// Merged statistics of PEs whose counters are frozen (halted PEs
    /// never touch their stats again), so [`stats`](System::stats) only
    /// re-merges live PEs.
    halted_merged: PeStats,
    /// Whether PE `i`'s statistics are already in `halted_merged`.
    halted_cached: Vec<bool>,
    /// Decoded straight-line blocks, keyed on `(program fingerprint,
    /// pc)` so PEs running the same program share entries and reloads
    /// never serve stale code. Derived state: never snapshotted, and it
    /// survives a restore because the keys do.
    block_cache: HashMap<(u64, u64), Arc<Block>>,
    /// Vector-operand scratch for the functional executor.
    exec_bufs: ExecBufs,
    /// Duty-cycle knobs for [`run_functional`](System::run_functional).
    func_cfg: FuncConfig,
    /// Functional-tier counters (block cache, window, drain activity).
    func_stats: FuncStats,
    /// Calibrated timing rate from the last accurate window, as the
    /// integer rational (cycles, work units) — `None` until the first
    /// sample completes (a nominal 1 cycle/work-unit is used before).
    func_rate: Option<(Cycle, u64)>,
    /// Decayed (cycles, work) history behind [`System::func_rate`]:
    /// each window's sample is folded in and old history is halved
    /// away, smoothing slice-boundary noise without going blind to
    /// phase changes.
    func_rate_accum: (Cycle, u64),
    /// Multiplier on the configured sample length, doubled every time a
    /// sample observes zero retired work. Long-latency phases (serial
    /// DMA chains) can otherwise retire all their work inside the
    /// unmeasured drains and starve the calibrator forever.
    func_sample_boost: Cycle,
    /// Set when the functional tier hands off permanently to the
    /// cycle-accurate engine (a trap or deadlock was detected, which
    /// only that engine may report). Cleared by snapshot restore.
    func_poisoned: bool,
}

/// Why a functional stretch returned control to the orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StretchEnd {
    /// Every PE halted.
    AllHalted,
    /// The busiest PE consumed the stretch's work budget; time for an
    /// accurate timing window.
    Budget,
    /// A full round made no progress with live PEs remaining: every
    /// live PE is parked on a full-empty word.
    Deadlock,
    /// An instruction would trap; architectural state is parked exactly
    /// at it.
    Trapped,
}

impl System {
    /// Builds an idle system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent (see [`SystemConfig::validate`]).
    #[must_use]
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate();
        let total = cfg.total_pes();
        let vaults = cfg.mem.vaults;
        let pes = (0..total)
            .map(|id| Pe::new(id, id / cfg.pes_per_vault, &cfg))
            .collect();
        System {
            hmc: Hmc::new(cfg.mem.clone()),
            net: Torus::new(cfg.torus),
            pes,
            now: 0,
            pe_egress: vec![VecDeque::new(); total],
            uplink_busy: vec![0; total],
            downlink_busy: vec![0; total],
            to_vault_local: vec![VecDeque::new(); vaults],
            vault_ingress: vec![VecDeque::new(); vaults],
            vault_egress: vec![VecDeque::new(); vaults],
            to_pe: vec![VecDeque::new(); total],
            step_shards: resolve_shards(cfg.step_shards, total),
            unhalted: 0,
            inflight_msgs: 0,
            halted_merged: PeStats::default(),
            halted_cached: vec![false; total],
            block_cache: HashMap::new(),
            exec_bufs: ExecBufs::default(),
            func_cfg: FuncConfig::default(),
            func_stats: FuncStats::default(),
            func_rate: None,
            func_rate_accum: (0, 0),
            func_sample_boost: 1,
            func_poisoned: false,
            cfg,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Total PE count.
    #[must_use]
    pub fn total_pes(&self) -> usize {
        self.pes.len()
    }

    /// The current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Immutable access to PE `pe`.
    #[must_use]
    pub fn pe(&self, pe: usize) -> &Pe {
        &self.pes[pe]
    }

    /// Mutable access to PE `pe` (host setup: scratchpad preloading).
    pub fn pe_mut(&mut self, pe: usize) -> &mut Pe {
        // The caller may load a program or otherwise revive the PE, so
        // its frozen-stats cache entry can no longer be trusted.
        self.invalidate_stats_cache();
        &mut self.pes[pe]
    }

    /// The memory stack (host reads of results).
    #[must_use]
    pub fn hmc(&self) -> &Hmc {
        &self.hmc
    }

    /// Mutable memory stack (host loading of inputs).
    pub fn hmc_mut(&mut self) -> &mut Hmc {
        &mut self.hmc
    }

    /// Loads `program` into one PE.
    pub fn load_program(&mut self, pe: usize, program: &Program) {
        self.invalidate_stats_cache();
        self.pes[pe].load_program(program);
    }

    /// Loads the same program into every PE (SPMD style; PEs diverge via
    /// their id registers).
    pub fn load_program_all(&mut self, program: &Program) {
        self.invalidate_stats_cache();
        for pe in &mut self.pes {
            pe.load_program(program);
        }
    }

    /// Overrides the host-thread count for the per-PE step phase (see
    /// [`SystemConfig::step_shards`]); `0` re-selects from the host's
    /// available parallelism. Simulation-host parallelism only:
    /// simulated behaviour is identical for every value.
    pub fn set_step_shards(&mut self, shards: usize) {
        self.step_shards = resolve_shards(shards, self.pes.len());
    }

    fn invalidate_stats_cache(&mut self) {
        self.halted_merged = PeStats::default();
        for flag in &mut self.halted_cached {
            *flag = false;
        }
    }

    /// Sets a scalar register in one PE before the run.
    pub fn set_reg(&mut self, pe: usize, r: Reg, value: u64) {
        self.pes[pe].set_reg(r, value);
    }

    /// Advances the whole system one cycle.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] if a PE trapped, consumed poisoned memory,
    /// received an orphan response, or the NoC abandoned a packet. The
    /// error is deterministic: every PE still steps this cycle and the
    /// lowest-PE-id failure wins, so all stepping engines report the
    /// same error for the same program and fault seed.
    pub fn step(&mut self) -> Result<(), SimError> {
        self.now += 1;
        let now = self.now;
        let local_lat = self.cfg.local_link_latency;
        let pes_per_vault = self.cfg.pes_per_vault;

        // 1. Memory stack: tick and route completions toward PEs.
        {
            let hmc = &mut self.hmc;
            let to_pe = &mut self.to_pe;
            let downlink_busy = &mut self.downlink_busy;
            let vault_egress = &mut self.vault_egress;
            hmc.tick_with(|vault, resp| {
                let pe = (resp.id >> 32) as usize;
                if pe / pes_per_vault == vault {
                    let flits = 1 + resp_bytes(&resp).div_ceil(8) as u64;
                    let start = now.max(downlink_busy[pe]);
                    downlink_busy[pe] = start + flits;
                    to_pe[pe].push_back((start + flits + local_lat, resp));
                } else {
                    vault_egress[vault].push_back((pe, resp));
                }
            });
        }

        // 2. Network: advance, surface abandoned packets, drain
        // deliveries.
        self.net.tick();
        if let Some(pkt) = self.net.pop_failed() {
            return Err(SimError::NocDeliveryFailed {
                src: pkt.src,
                dst: pkt.dst,
            });
        }
        while let Some((node, pkt)) = self.net.pop_delivered() {
            match pkt.payload {
                SysMsg::Req(req) => self.vault_ingress[node].push_back(req),
                SysMsg::Resp { pe, resp } => {
                    debug_assert_eq!(pe / pes_per_vault, node);
                    let flits = 1 + resp_bytes(&resp).div_ceil(8) as u64;
                    let start = now.max(self.downlink_busy[pe]);
                    self.downlink_busy[pe] = start + flits;
                    self.to_pe[pe].push_back((start + flits + local_lat, resp));
                }
            }
        }

        // 3. Local star links arriving at vault controllers.
        for vault in 0..self.cfg.mem.vaults {
            while let Some(&(ready, _)) = self.to_vault_local[vault].front() {
                if ready > now {
                    break;
                }
                let (_, req) = self.to_vault_local[vault]
                    .pop_front()
                    .expect("front exists");
                self.vault_ingress[vault].push_back(req);
            }
            // Drain ingress into the transaction queue.
            while self.hmc.can_accept(vault) {
                let Some(req) = self.vault_ingress[vault].pop_front() else {
                    break;
                };
                self.hmc.enqueue(vault, req).expect("checked can_accept");
            }
            // Inject queued completions onto the torus.
            while let Some((pe, resp)) = self.vault_egress[vault].front() {
                let dst = pe / pes_per_vault;
                let bytes = resp_bytes(resp);
                let (pe, resp) = (*pe, resp.clone());
                match self
                    .net
                    .inject(vault, dst, bytes, SysMsg::Resp { pe, resp })
                {
                    Ok(()) => {
                        self.vault_egress[vault].pop_front();
                    }
                    Err(_) => break,
                }
            }
        }

        // 4a. PEs: deliver completions, tick, emit into private egress
        // queues. Each PE touches only its own state, so this phase
        // shards across host threads without changing simulated
        // behaviour; all shared-structure work stays in 4b.
        let shards = self.step_shards;
        let mut newly_halted: Vec<usize> = Vec::new();
        let ((received, emitted), step_err) = if shards <= 1 || self.pes.len() < 2 * shards {
            step_pes(
                &mut self.pes,
                &mut self.to_pe,
                &mut self.pe_egress,
                now,
                0,
                &mut newly_halted,
            )
        } else {
            let chunk = self.pes.len().div_ceil(shards);
            let pes = self.pes.chunks_mut(chunk);
            let to_pe = self.to_pe.chunks_mut(chunk);
            let egress = self.pe_egress.chunks_mut(chunk);
            let results = std::thread::scope(|s| {
                let handles: Vec<_> = pes
                    .zip(to_pe.zip(egress))
                    .enumerate()
                    .map(|(i, (pes, (to_pe, egress)))| {
                        s.spawn(move || {
                            let mut halted = Vec::new();
                            let counts = step_pes(pes, to_pe, egress, now, i * chunk, &mut halted);
                            (counts, halted)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("PE shard panicked"))
                    .collect::<Vec<_>>()
            });
            let mut received = 0;
            let mut emitted = 0;
            let mut err: Option<(usize, SimError)> = None;
            for (((r, e), shard_err), halted) in results {
                received += r;
                emitted += e;
                newly_halted.extend(halted);
                // Shards cover ascending PE-id ranges, so the lowest id
                // wins regardless of shard count.
                if let Some((id, e)) = shard_err {
                    if err.as_ref().is_none_or(|(min, _)| id < *min) {
                        err = Some((id, e));
                    }
                }
            }
            ((received, emitted), err)
        };
        self.inflight_msgs = self.inflight_msgs.saturating_sub(received) + emitted;
        for pe_id in newly_halted {
            self.unhalted = self.unhalted.saturating_sub(1);
            if !self.halted_cached[pe_id] {
                self.halted_cached[pe_id] = true;
                self.halted_merged.merge(self.pes[pe_id].stats());
            }
        }
        if let Some((_, e)) = step_err {
            return Err(e);
        }

        // 4b. Dispatch each PE's oldest pending request onto its uplink
        // or the torus, in PE-id order — the order the pre-split loop
        // used, so sharding 4a cannot reorder shared-structure traffic.
        for pe_id in 0..self.pes.len() {
            if let Some(req) = self.pe_egress[pe_id].front() {
                let vault = pe_id / pes_per_vault;
                let dst = self.cfg.mem.vault_of(req.addr);
                if dst == vault {
                    if self.uplink_busy[pe_id] <= now {
                        let req = self.pe_egress[pe_id].pop_front().expect("front exists");
                        let flits = 1 + req_bytes(&req).div_ceil(8) as u64;
                        self.uplink_busy[pe_id] = now + flits;
                        self.to_vault_local[vault].push_back((now + flits + local_lat, req));
                    }
                } else if self.net.can_inject(vault) {
                    let req = self.pe_egress[pe_id].pop_front().expect("front exists");
                    let bytes = req_bytes(&req);
                    self.net
                        .inject(vault, dst, bytes, SysMsg::Req(req))
                        .expect("checked can_inject");
                }
            }
        }
        Ok(())
    }

    /// Whether every PE has halted and all memory traffic has drained.
    #[must_use]
    pub fn is_quiesced(&self) -> bool {
        self.pes
            .iter()
            .all(|pe| pe.is_halted() && pe.is_quiesced(self.now))
            && self.hmc.is_idle()
            && self.net.is_idle()
            && self.pe_egress.iter().all(VecDeque::is_empty)
            && self.to_vault_local.iter().all(VecDeque::is_empty)
            && self.vault_ingress.iter().all(VecDeque::is_empty)
            && self.vault_egress.iter().all(VecDeque::is_empty)
            && self.to_pe.iter().all(VecDeque::is_empty)
    }

    /// A sound lower bound on the next cycle (strictly after `now`) at
    /// which any component can make observable progress: a PE issues or
    /// emits, a queued message matures or unblocks, a vault schedules a
    /// DRAM command or refreshes, or a packet moves on the torus.
    ///
    /// Sound means never *late*: stepping every cycle in `(now, bound)`
    /// would change nothing but per-cycle counters (which
    /// [`skip_to`](System::skip_to) replays). Waking early is merely a
    /// missed shortcut. `vault_ingress` needs no candidate of its own: a
    /// non-empty ingress queue implies the vault's transaction queue is
    /// full (`step` drains ingress while space remains), so that vault's
    /// own next event covers it.
    fn next_event(&self) -> Option<Cycle> {
        let floor = self.now + 1;
        let mut next = Cycle::MAX;
        // PEs first: during compute phases some PE is ready every cycle,
        // and `floor` is an immediate exit.
        for pe in &self.pes {
            if let Some(c) = pe.next_event(self.now) {
                next = next.min(c.max(floor));
                if next == floor {
                    return Some(floor);
                }
            }
        }
        if let Some(c) = self.hmc.next_event() {
            next = next.min(c.max(floor));
        }
        if let Some(c) = self.net.next_event() {
            next = next.min(c.max(floor));
        }
        for q in &self.to_vault_local {
            if let Some(&(ready, _)) = q.front() {
                next = next.min(ready.max(floor));
            }
        }
        for q in &self.to_pe {
            if let Some(&(ready, _)) = q.front() {
                next = next.min(ready.max(floor));
            }
        }
        for (vault, q) in self.vault_egress.iter().enumerate() {
            if !q.is_empty() {
                next = next.min(self.net.inject_ready_at(vault).max(floor));
            }
        }
        for (pe_id, q) in self.pe_egress.iter().enumerate() {
            if let Some(req) = q.front() {
                let vault = pe_id / self.cfg.pes_per_vault;
                let c = if self.cfg.mem.vault_of(req.addr) == vault {
                    self.uplink_busy[pe_id]
                } else {
                    self.net.inject_ready_at(vault)
                };
                next = next.min(c.max(floor));
            }
        }
        if next == Cycle::MAX {
            None
        } else {
            Some(next)
        }
    }

    /// Jumps the clock to `to`, replaying the per-cycle counters a
    /// cycle-by-cycle run of the intervening (provably event-free)
    /// cycles would have produced. Only valid when
    /// [`next_event`](System::next_event) bounds the skip.
    fn skip_to(&mut self, to: Cycle) {
        debug_assert!(to >= self.now);
        for pe in &mut self.pes {
            pe.fast_forward(self.now, to);
        }
        self.hmc.skip_to(to);
        self.net.skip_to(to);
        self.now = to;
    }

    /// Rebuilds the O(1) quiescence pre-gate and the frozen-stats cache
    /// from scratch (program loading happens outside `step`, which
    /// otherwise maintains them incrementally).
    fn recount_quiesce_counters(&mut self) {
        self.unhalted = self.pes.iter().filter(|p| !p.is_halted()).count();
        for (i, pe) in self.pes.iter().enumerate() {
            if pe.is_halted() && !self.halted_cached[i] {
                self.halted_cached[i] = true;
                self.halted_merged.merge(pe.stats());
            }
        }
    }

    /// Runs until every PE halts and the machine drains, fast-forwarding
    /// over cycles in which nothing can happen (stepping remains
    /// bit-identical to [`run_naive`](System::run_naive): same quiesce
    /// cycle, same statistics).
    ///
    /// Returns the cycle count at quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Hang`] with a structured [`HangReport`] —
    /// which PEs are blocked where, on which full-empty words, what the
    /// network and vault queues still hold — if the system has not
    /// quiesced within `max_cycles` (a full-empty deadlock or simply too
    /// small a limit), or any other [`SimError`] a step raises.
    pub fn run(&mut self, max_cycles: Cycle) -> Result<Cycle, SimError> {
        match self.run_inner(max_cycles, max_cycles)? {
            RunOutcome::Quiesced(at) => Ok(at),
            RunOutcome::Paused(_) => {
                unreachable!("pause bound equals the limit, which hangs instead")
            }
        }
    }

    /// Runs with the fast-forward engine until the system quiesces *or*
    /// the clock reaches `pause_at`, whichever comes first — the slice
    /// API the checkpointing harness is built on. Pausing is
    /// behaviour-preserving: a paused run continued (directly or via a
    /// snapshot restored onto a fresh system) finishes bit-identically —
    /// same quiesce cycle, same statistics, same memory image — to one
    /// that never paused. `pause_at` is clamped to `max_cycles`.
    ///
    /// # Errors
    ///
    /// As for [`run`](System::run): [`SimError::Hang`] if `max_cycles`
    /// arrives without quiescence, or whatever error a step raises.
    pub fn run_until(
        &mut self,
        pause_at: Cycle,
        max_cycles: Cycle,
    ) -> Result<RunOutcome, SimError> {
        self.run_inner(pause_at.min(max_cycles), max_cycles)
    }

    fn run_inner(&mut self, pause_at: Cycle, max_cycles: Cycle) -> Result<RunOutcome, SimError> {
        self.recount_quiesce_counters();
        // In dense phases (an event every cycle — e.g. a streaming LSU
        // keeping its vault saturated) the O(system) `next_event` scan
        // buys nothing, so poll it under exponential backoff: each
        // fruitless scan doubles the plain steps taken before the next
        // one (capped at 63), and any successful skip resets the
        // backoff. Delaying a skip never changes behaviour — stepping
        // through an event-free window is what the skip replays. The
        // backoff counters are plain locals: pausing here and resuming
        // (even in a fresh process, via a snapshot) restarts them at
        // zero, which only re-times the scans, never the simulation.
        let mut quiet_streak: u32 = 0;
        let mut backoff: u64 = 0;
        while self.now < pause_at {
            self.step()?;
            if self.unhalted == 0 && self.inflight_msgs == 0 && self.is_quiesced() {
                return Ok(RunOutcome::Quiesced(self.now));
            }
            if backoff > 0 {
                backoff -= 1;
                continue;
            }
            if let Some(next) = self.next_event() {
                // Nothing can happen strictly before `next`: land one
                // cycle short and let the next `step` take it.
                let target = (next - 1).min(pause_at);
                if target > self.now {
                    self.skip_to(target);
                    quiet_streak = 0;
                } else {
                    quiet_streak = (quiet_streak + 1).min(6);
                    backoff = (1 << quiet_streak) - 1;
                }
            }
        }
        if pause_at < max_cycles {
            // Catches a system that was already quiesced at entry (the
            // in-loop check covers everything the slice itself stepped).
            if self.unhalted == 0 && self.inflight_msgs == 0 && self.is_quiesced() {
                return Ok(RunOutcome::Quiesced(self.now));
            }
            return Ok(RunOutcome::Paused(self.now));
        }
        Err(SimError::Hang(Box::new(self.hang_report(max_cycles))))
    }

    /// [`run`](System::run) without the event-driven fast-forward: steps
    /// every cycle and evaluates full quiescence each time. The
    /// reference implementation the determinism tests and the
    /// `sim_throughput` benchmark compare against.
    ///
    /// # Errors
    ///
    /// As for [`run`](System::run): [`SimError::Hang`] at the limit, or
    /// whatever error a step raises.
    pub fn run_naive(&mut self, max_cycles: Cycle) -> Result<Cycle, SimError> {
        match self.run_naive_until(max_cycles, max_cycles)? {
            RunOutcome::Quiesced(at) => Ok(at),
            RunOutcome::Paused(_) => {
                unreachable!("pause bound equals the limit, which hangs instead")
            }
        }
    }

    /// [`run_naive`](System::run_naive) with a pause bound — the naive
    /// engine's counterpart to [`run_until`](System::run_until), with
    /// the same exact-pause contract: the clock stops at `pause_at` (or
    /// quiescence, whichever comes first), and a paused run continued —
    /// directly or via a snapshot restored onto a fresh system —
    /// finishes bit-identically to one that never paused. `pause_at` is
    /// clamped to `max_cycles`.
    ///
    /// # Errors
    ///
    /// As for [`run_naive`](System::run_naive): [`SimError::Hang`] if
    /// `max_cycles` arrives without quiescence, or whatever error a
    /// step raises.
    pub fn run_naive_until(
        &mut self,
        pause_at: Cycle,
        max_cycles: Cycle,
    ) -> Result<RunOutcome, SimError> {
        let pause_at = pause_at.min(max_cycles);
        while self.now < pause_at {
            self.step()?;
            if self.is_quiesced() {
                return Ok(RunOutcome::Quiesced(self.now));
            }
        }
        if pause_at < max_cycles {
            // Catches a system that was already quiesced at entry (the
            // in-loop check covers everything the slice itself stepped).
            if self.is_quiesced() {
                return Ok(RunOutcome::Quiesced(self.now));
            }
            return Ok(RunOutcome::Paused(self.now));
        }
        Err(SimError::Hang(Box::new(self.hang_report(max_cycles))))
    }

    /// Overrides the functional tier's duty-cycle knobs (see
    /// [`FuncConfig`]). Tuning state only: every setting yields the
    /// same architectural results, differing in wall-clock speed and
    /// timing-estimate accuracy.
    pub fn set_func_config(&mut self, cfg: FuncConfig) {
        self.func_cfg = cfg;
    }

    /// The functional tier's duty-cycle knobs.
    #[must_use]
    pub fn func_config(&self) -> &FuncConfig {
        &self.func_cfg
    }

    /// Whether nothing is in flight anywhere — [`is_quiesced`]
    /// (System::is_quiesced) minus the all-halted requirement. Live PEs
    /// whose front ends simply have not issued yet count as idle; the
    /// functional tier may take over exactly at such boundaries.
    fn machine_idle(&self) -> bool {
        self.pes.iter().all(|pe| pe.is_quiesced(self.now))
            && self.hmc.is_idle()
            && self.net.is_idle()
            && self.pe_egress.iter().all(VecDeque::is_empty)
            && self.to_vault_local.iter().all(VecDeque::is_empty)
            && self.vault_ingress.iter().all(VecDeque::is_empty)
            && self.vault_egress.iter().all(VecDeque::is_empty)
            && self.to_pe.iter().all(VecDeque::is_empty)
    }

    /// Whether any fault injector is wired at a non-zero rate. Live
    /// faults are keyed on cycle-level coordinates (vault access
    /// counters, retired-instruction counts at specific cycles) that
    /// the functional tier does not reproduce, so such runs stay on the
    /// cycle-accurate engine. Injectors wired at rate zero can never
    /// fire and do not force that.
    fn faults_active(&self) -> bool {
        self.hmc
            .config()
            .faults
            .is_some_and(|f| f.single_bit_ppm > 0 || f.double_bit_ppm > 0)
            || self
                .net
                .config()
                .faults
                .is_some_and(|f| f.corrupt_ppm > 0 || f.drop_ppm > 0)
            || self
                .pes
                .iter()
                .any(|p| p.fault_config().is_some_and(|f| f.writeback_flip_ppm > 0))
    }

    /// Steps the cycle-accurate model with every PE's issue frozen until
    /// nothing is in flight, or `limit` cycles pass. Freezing keeps
    /// in-flight work (LSU completions, vector drains, queued traffic)
    /// retiring without letting front ends issue more, so the drain
    /// converges whenever no request is parked on a full-empty word.
    /// Returns whether the machine reached idle; PEs are always thawed.
    fn drain_to_idle(&mut self, limit: Cycle) -> Result<bool, SimError> {
        let t0 = self.now;
        let deadline = self.now.saturating_add(limit.max(1));
        for pe in &mut self.pes {
            pe.set_frozen(true);
        }
        let drained = loop {
            if self.machine_idle() {
                break Ok(true);
            }
            if self.now >= deadline {
                break Ok(false);
            }
            if let Err(e) = self.step() {
                break Err(e);
            }
            if let Some(next) = self.next_event() {
                let target = (next - 1).min(deadline);
                if target > self.now {
                    self.skip_to(target);
                }
            }
        };
        for pe in &mut self.pes {
            pe.set_frozen(false);
        }
        self.func_stats.accurate_cycles += self.now - t0;
        drained
    }

    /// Stamps the functional clock forward to `to`: active-cycle
    /// counters for the PEs that participated (and all still-live PEs),
    /// the vault clocks with skipped refreshes credited on schedule,
    /// and the torus clock. Only valid when the machine is idle —
    /// nothing in flight means nothing to replay.
    fn advance_functional_clock(&mut self, to: Cycle, ran: &[bool]) {
        if to <= self.now {
            return;
        }
        for (i, pe) in self.pes.iter_mut().enumerate() {
            // PEs that halted in earlier stretches are already merged
            // into the frozen-stats cache and must not change.
            if ran[i] || !pe.is_halted() {
                pe.set_active_cycles(to);
            }
        }
        self.hmc.advance_idle(to);
        self.net.skip_to(to);
        self.func_stats.functional_cycles += to - self.now;
        self.now = to;
    }

    /// Extrapolates how many cycles `work` work units take at the last
    /// calibrated rate (nominal 1 cycle/work-unit before the first
    /// sample). `work_units` lower-bounds real occupancy, so estimates
    /// start optimistic and converge once a window measures the
    /// machine's actual cycles-per-work-unit.
    fn estimate_cycles(&self, work: u64) -> Cycle {
        if work == 0 {
            return 0;
        }
        let (dt, dw) = self.func_rate.unwrap_or((1, 1));
        let est = (u128::from(work) * u128::from(dt)) / u128::from(dw.max(1));
        Cycle::try_from(est).unwrap_or(Cycle::MAX).max(1)
    }

    /// Runs every live PE functionally, round-robin in `quantum`-work
    /// turns, until the busiest PE exhausts the stretch budget, all PEs
    /// halt, or only the cycle-accurate engine can make further
    /// progress (trap, deadlock). Returns how the stretch ended, which
    /// PEs executed anything, and the busiest PE's work-unit total —
    /// the quantity the clock advance extrapolates from.
    fn functional_stretch(&mut self) -> (StretchEnd, Vec<bool>, u64) {
        let n = self.pes.len();
        let quantum = self.func_cfg.quantum.max(1);
        let budget = self.func_cfg.stretch_work.max(1);
        let mut ran = vec![false; n];
        let mut done = vec![0u64; n];
        // One-entry memo over the cache: a dense kernel's self-looping
        // block hits here without touching the hash map.
        let mut memo: Option<(u64, usize, Arc<Block>)> = None;
        let end = 'stretch: loop {
            let mut progressed = false;
            let mut live = 0usize;
            for i in 0..n {
                if self.pes[i].is_halted() {
                    continue;
                }
                live += 1;
                let fp = self.pes[i].prog_fp();
                let turn_work = self.pes[i].stats().work_units;
                let turn_insts = self.pes[i].stats().instructions;
                let turn_limit = turn_work.saturating_add(quantum);
                loop {
                    let pc = self.pes[i].pc();
                    let block = match &memo {
                        Some((mfp, mpc, b)) if *mfp == fp && *mpc == pc => Arc::clone(b),
                        _ => {
                            let b = match self.block_cache.get(&(fp, pc as u64)) {
                                Some(b) => {
                                    self.func_stats.block_cache_hits += 1;
                                    Arc::clone(b)
                                }
                                None => {
                                    self.func_stats.block_cache_misses += 1;
                                    self.func_stats.blocks_decoded += 1;
                                    let b = Arc::new(scan_block(self.pes[i].program(), pc));
                                    self.block_cache.insert((fp, pc as u64), Arc::clone(&b));
                                    b
                                }
                            };
                            memo = Some((fp, pc, Arc::clone(&b)));
                            b
                        }
                    };
                    let outcome = exec_block(
                        &mut self.pes[i].func_parts(),
                        &block,
                        self.hmc.storage_mut(),
                        &mut self.exec_bufs,
                    );
                    match outcome {
                        BlockOutcome::Continue => {
                            if self.pes[i].stats().work_units >= turn_limit {
                                break;
                            }
                        }
                        BlockOutcome::Halted => {
                            // Falling off the program's end retires
                            // nothing, so count the halt transition as
                            // progress explicitly.
                            progressed = true;
                            ran[i] = true;
                            break;
                        }
                        BlockOutcome::Blocked => break,
                        BlockOutcome::Trapped => break 'stretch StretchEnd::Trapped,
                    }
                }
                let dw = self.pes[i].stats().work_units - turn_work;
                if dw > 0 {
                    progressed = true;
                    ran[i] = true;
                    done[i] += dw;
                }
                self.func_stats.functional_instructions +=
                    self.pes[i].stats().instructions - turn_insts;
            }
            if live == 0 {
                break StretchEnd::AllHalted;
            }
            if done.iter().copied().max().unwrap_or(0) >= budget {
                break StretchEnd::Budget;
            }
            if !progressed {
                break StretchEnd::Deadlock;
            }
        };
        let max_done = done.iter().copied().max().unwrap_or(0);
        (end, ran, max_done)
    }

    /// One cycle-accurate timing window: a warmup slice (pipelines and
    /// vault queues refill from the post-stretch cold start), then a
    /// measured sample whose busiest-PE work-unit delta calibrates the
    /// extrapolation rate. Quiescing inside the window is fine — the
    /// caller's loop head notices.
    fn accurate_window(&mut self, max_cycles: Cycle) -> Result<(), SimError> {
        let t0 = self.now;
        self.func_stats.windows += 1;
        let warmup = self.func_cfg.warmup_cycles.max(1);
        let sample = self
            .func_cfg
            .sample_cycles
            .max(1)
            .saturating_mul(self.func_sample_boost);
        let outcome =
            self.run_inner(self.now.saturating_add(warmup).min(max_cycles), max_cycles)?;
        if matches!(outcome, RunOutcome::Paused(_)) {
            let work0: Vec<u64> = self.pes.iter().map(|p| p.stats().work_units).collect();
            let s0 = self.now;
            let outcome =
                self.run_inner(self.now.saturating_add(sample).min(max_cycles), max_cycles)?;
            // A quiesced sample's tail is idle drain, which would skew
            // the rate; keep the previous calibration then.
            if matches!(outcome, RunOutcome::Paused(_)) {
                let dt = self.now - s0;
                let dw = self
                    .pes
                    .iter()
                    .zip(&work0)
                    .map(|(p, w0)| p.stats().work_units - w0)
                    .max()
                    .unwrap_or(0);
                if dw == 0 {
                    // Nothing retired while we watched: the next sample
                    // watches longer, so a slow phase (one DMA every
                    // few hundred cycles) cannot dodge the calibrator
                    // forever by retiring inside the unmeasured drains.
                    self.func_sample_boost = self.func_sample_boost.saturating_mul(2).min(64);
                }
                if dt > 0 && dw > 0 {
                    self.func_sample_boost = 1;
                    // Fold the sample into a decayed accumulator: one
                    // window's rate is noisy (a loop may straddle the
                    // slice boundary), but a plain lifetime average
                    // would never track a phase change. Halving once
                    // the history exceeds a few samples gives an
                    // exponential forgetting window.
                    let (mut at, mut aw) = self.func_rate_accum;
                    if at > 32 * sample {
                        at /= 2;
                        aw /= 2;
                    }
                    at += dt;
                    aw += dw;
                    self.func_rate_accum = (at, aw);
                    self.func_rate = Some((at, aw.max(1)));
                }
            }
        }
        self.func_stats.accurate_cycles += self.now - t0;
        Ok(())
    }

    fn run_functional_inner(
        &mut self,
        pause_at: Cycle,
        max_cycles: Cycle,
    ) -> Result<RunOutcome, SimError> {
        if self.faults_active() || self.func_poisoned {
            // Live fault injection (or an earlier trap/deadlock
            // detection) needs exact per-cycle coordinates; only the
            // cycle-accurate engine provides them.
            return self.run_inner(pause_at, max_cycles);
        }
        self.recount_quiesce_counters();
        loop {
            if !self.machine_idle() && !self.drain_to_idle(self.func_cfg.drain_cycles)? {
                // Something is parked (a full-empty request from an
                // earlier accurate window). Run a timing window so
                // partner PEs can publish, then retry the drain.
                self.func_stats.drain_retries += 1;
                if self.now >= pause_at && pause_at < max_cycles {
                    return Ok(RunOutcome::Paused(self.now));
                }
                self.accurate_window(max_cycles)?;
                continue;
            }
            if self.unhalted == 0 && self.inflight_msgs == 0 && self.is_quiesced() {
                return Ok(RunOutcome::Quiesced(self.now));
            }
            if self.now >= max_cycles {
                return Err(SimError::Hang(Box::new(self.hang_report(max_cycles))));
            }
            if self.now >= pause_at {
                return Ok(RunOutcome::Paused(self.now));
            }
            if self.func_rate.is_none() {
                // A stretch now would extrapolate at the nominal rate;
                // calibrate from the program's own early behaviour
                // first. Short programs may simply finish inside this
                // window — the loop head notices.
                self.accurate_window(max_cycles)?;
                continue;
            }
            let (end, ran, work) = self.functional_stretch();
            if matches!(end, StretchEnd::Trapped | StretchEnd::Deadlock) {
                // Architectural state sits exactly at the trapping /
                // parked instructions; the cycle-accurate engine
                // re-dispatches them and reports the identical typed
                // error (or diagnoses the genuine hang).
                self.func_poisoned = true;
                return self.run_inner(pause_at, max_cycles);
            }
            let to = self
                .now
                .saturating_add(self.estimate_cycles(work))
                .min(pause_at);
            self.advance_functional_clock(to, &ran);
            self.recount_quiesce_counters();
            if matches!(end, StretchEnd::Budget) && self.now < pause_at {
                self.accurate_window(max_cycles)?;
            }
        }
    }

    /// Runs on the two-tier engine — block-cached functional execution
    /// with sampled cycle-accurate timing windows — until every PE
    /// halts. Architectural results (registers, scratchpads, memory,
    /// full-empty bits, retirement counters) are bit-identical to
    /// [`run`](System::run); the returned cycle count is an estimate
    /// extrapolated from the sampled windows rather than an exact
    /// replay, and per-cycle occupancy breakdowns are approximate.
    /// Programs that trap, deadlock, or run with live fault injection
    /// are delegated to the cycle-accurate engine, preserving its exact
    /// errors.
    ///
    /// # Errors
    ///
    /// As for [`run`](System::run): [`SimError::Hang`] if the estimated
    /// clock reaches `max_cycles` without quiescence, or the identical
    /// [`SimError`] the cycle-accurate engine reports for a trapping
    /// program.
    pub fn run_functional(&mut self, max_cycles: Cycle) -> Result<Cycle, SimError> {
        match self.run_functional_inner(max_cycles, max_cycles)? {
            RunOutcome::Quiesced(at) => Ok(at),
            RunOutcome::Paused(_) => {
                unreachable!("pause bound equals the limit, which hangs instead")
            }
        }
    }

    /// [`run_functional`](System::run_functional) with a pause bound:
    /// returns [`RunOutcome::Paused`] once the (estimated) clock
    /// reaches `pause_at`, pausing at a machine-idle boundary whenever
    /// one is reachable — so the paused cycle may exceed `pause_at` by
    /// up to a drain (looser than [`run_until`](System::run_until),
    /// which pauses exactly). Snapshots taken at the pause restore and
    /// continue under any engine.
    ///
    /// # Errors
    ///
    /// As for [`run_functional`](System::run_functional).
    pub fn run_functional_until(
        &mut self,
        pause_at: Cycle,
        max_cycles: Cycle,
    ) -> Result<RunOutcome, SimError> {
        self.run_functional_inner(pause_at.min(max_cycles), max_cycles)
    }

    /// The hang-diagnosis watchdog: snapshots every unhalted PE (pc,
    /// stall cause, full-empty words it is parked on), the packets still
    /// inside the torus, and each vault's queued transaction count.
    #[must_use]
    pub fn hang_report(&self, limit: Cycle) -> HangReport {
        let blocked = self
            .pes
            .iter()
            .filter(|p| !p.is_halted())
            .map(|p| BlockedPe {
                pe: p.id(),
                pc: p.pc(),
                stall: p.stall_reason(self.now),
                fe_waits: p.fe_waits(),
            })
            .collect();
        HangReport {
            limit,
            halted_pes: self.pes.iter().filter(|p| p.is_halted()).count(),
            total_pes: self.pes.len(),
            blocked,
            noc_in_flight: self.net.in_flight(),
            vault_queue_depths: (0..self.cfg.mem.vaults)
                .map(|v| self.hmc.pending(v))
                .collect(),
        }
    }

    /// Rewires fault injection across every layer at runtime (the
    /// construction-time path is [`SystemConfig::with_faults`]).
    pub fn set_fault_config(&mut self, faults: &FaultConfig) {
        self.hmc.set_faults(faults.dram);
        self.net.set_faults(faults.noc);
        for pe in &mut self.pes {
            pe.set_faults(faults.pe);
        }
    }

    /// Serializes the complete simulation state into a versioned,
    /// self-describing byte image: a header carrying the format version
    /// and the configuration's structural fingerprint, then the clock,
    /// every PE (architectural and microarchitectural state), the memory
    /// stack (backing storage, ECC sidecar, per-vault timing and queues),
    /// the torus (in-flight packets with retry state), every system-level
    /// queue, and the link serialization state.
    ///
    /// Restoring onto a freshly built [`System`] with the same
    /// configuration and running to completion is bit-identical — same
    /// quiesce cycle, same statistics, same memory image — to the run
    /// that was never interrupted, under all stepping engines and with or
    /// without live fault injection (fault configurations travel in the
    /// body; draws are keyed on architectural coordinates that are
    /// themselves captured).
    #[must_use]
    pub fn save_snapshot(&self) -> Vec<u8> {
        let mut w = Writer::new();
        write_header(&mut w, self.cfg.snapshot_fingerprint());
        w.u64(self.now);
        w.usize(self.pes.len());
        for pe in &self.pes {
            pe.save_state(&mut w);
        }
        self.hmc.save_state(&mut w);
        self.net.save_state(&mut w, &mut |msg, w| msg.save(w));
        self.pe_egress.save(&mut w);
        self.uplink_busy.save(&mut w);
        self.downlink_busy.save(&mut w);
        self.to_vault_local.save(&mut w);
        self.vault_ingress.save(&mut w);
        self.vault_egress.save(&mut w);
        self.to_pe.save(&mut w);
        w.usize(self.inflight_msgs);
        self.func_stats.save(&mut w);
        w.into_bytes()
    }

    /// Restores a [`save_snapshot`](System::save_snapshot) image onto
    /// this system. The system must have been built with a configuration
    /// whose [structural fingerprint](SystemConfig::snapshot_fingerprint)
    /// matches the one in the image; fault configurations are taken from
    /// the image (they are runtime state, not structure). The derived
    /// quiescence caches are rebuilt, so the next
    /// [`run`](System::run)/[`run_naive`](System::run_naive)/sharded run
    /// continues bit-identically.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on a bad magic/version, a fingerprint
    /// mismatch, a truncated or corrupt image, or trailing bytes.
    pub fn restore_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapError> {
        let mut r = Reader::new(bytes);
        read_header(&mut r, self.cfg.snapshot_fingerprint())?;
        self.now = r.u64()?;
        let pes = r.usize()?;
        if pes != self.pes.len() {
            return Err(SnapError::Corrupt("PE count mismatch"));
        }
        for pe in &mut self.pes {
            pe.restore_state(&mut r)?;
        }
        self.hmc.restore_state(&mut r)?;
        self.net.restore_state(&mut r, &mut SysMsg::restore)?;
        self.pe_egress = Vec::restore(&mut r)?;
        self.uplink_busy = Vec::restore(&mut r)?;
        self.downlink_busy = Vec::restore(&mut r)?;
        self.to_vault_local = Vec::restore(&mut r)?;
        self.vault_ingress = Vec::restore(&mut r)?;
        self.vault_egress = Vec::restore(&mut r)?;
        self.to_pe = Vec::restore(&mut r)?;
        self.inflight_msgs = r.usize()?;
        self.func_stats = FuncStats::restore(&mut r)?;
        r.finish()?;
        if self.pe_egress.len() != self.pes.len()
            || self.uplink_busy.len() != self.pes.len()
            || self.downlink_busy.len() != self.pes.len()
            || self.to_pe.len() != self.pes.len()
            || self.to_vault_local.len() != self.cfg.mem.vaults
            || self.vault_ingress.len() != self.cfg.mem.vaults
            || self.vault_egress.len() != self.cfg.mem.vaults
        {
            return Err(SnapError::Corrupt("queue geometry mismatch"));
        }
        // Derived caches are not serialized — rebuild them from the
        // restored PEs. The block cache is keyed on program
        // fingerprints, so surviving entries stay valid; the timing
        // calibration and the trap/deadlock poison flag describe the
        // interrupted run and are re-derived fresh.
        self.invalidate_stats_cache();
        self.recount_quiesce_counters();
        self.func_rate = None;
        self.func_rate_accum = (0, 0);
        self.func_sample_boost = 1;
        self.func_poisoned = false;
        Ok(())
    }

    /// Statistics snapshot. Halted PEs' counters are frozen, so only
    /// still-live PEs are re-merged on each call.
    #[must_use]
    pub fn stats(&self) -> SystemStats {
        let mut pe = self.halted_merged;
        for (i, p) in self.pes.iter().enumerate() {
            if !self.halted_cached[i] {
                pe.merge(p.stats());
            }
        }
        SystemStats {
            cycles: self.now,
            pe,
            mem: self.hmc.stats(),
            noc: self.net.stats(),
            func: self.func_stats,
        }
    }
}

//! The full VIP system: PEs + vault controllers + torus, clocked
//! together.

use std::collections::VecDeque;
use std::fmt;

use vip_isa::{Program, Reg};
use vip_mem::{Hmc, MemRequest, MemResponse, RequestKind};
use vip_noc::Torus;

use crate::config::SystemConfig;
use crate::pe::Pe;
use crate::stats::{PeStats, SystemStats};
use crate::Cycle;

/// Traffic carried on the torus between vaults.
#[derive(Debug)]
enum SysMsg {
    /// A PE's memory request heading to a remote vault controller.
    Req(MemRequest),
    /// A completion heading back to PE `pe`'s vault.
    Resp { pe: usize, resp: MemResponse },
}

/// Error returned by [`System::run`] when the cycle limit is reached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunError {
    /// The limit that was hit.
    pub limit: Cycle,
    /// PEs that had halted by then.
    pub halted_pes: usize,
    /// Total PEs.
    pub total_pes: usize,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation did not quiesce within {} cycles ({}/{} PEs halted)",
            self.limit, self.halted_pes, self.total_pes
        )
    }
}

impl std::error::Error for RunError {}

fn req_bytes(req: &MemRequest) -> usize {
    match req.kind {
        RequestKind::Read | RequestKind::FeLoad => 16,
        RequestKind::Write | RequestKind::FeStore => 16 + req.data.len(),
    }
}

fn resp_bytes(resp: &MemResponse) -> usize {
    8 + resp.data.len()
}

/// The complete system simulator (Figure 1's left half).
///
/// Holds `vaults × pes_per_vault` [`Pe`]s, the [`Hmc`] memory stack, and
/// the [`Torus`]. PEs reach their local vault controller over a star link
/// (configurable latency, 8 B/cycle serialization) and remote vaults over
/// the torus; completions retrace the path. Everything advances in
/// lock-step, one 0.8 ns cycle per [`step`](System::step).
///
/// See the crate docs for a runnable example.
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    now: Cycle,
    pes: Vec<Pe>,
    hmc: Hmc,
    net: Torus<SysMsg>,
    /// Requests a PE has emitted but not yet pushed onto a link.
    pe_egress: Vec<VecDeque<MemRequest>>,
    /// Serialization state of each PE's star uplink.
    uplink_busy: Vec<Cycle>,
    /// Serialization state of each PE's star downlink.
    downlink_busy: Vec<Cycle>,
    /// In-flight on local star links toward each vault: (ready, request).
    to_vault_local: Vec<VecDeque<(Cycle, MemRequest)>>,
    /// Requests at a vault waiting for transaction-queue space.
    vault_ingress: Vec<VecDeque<MemRequest>>,
    /// Completions at a vault waiting to inject onto the torus.
    vault_egress: Vec<VecDeque<(usize, MemResponse)>>,
    /// In-flight completions on each PE's downlink: (ready, response).
    to_pe: Vec<VecDeque<(Cycle, MemResponse)>>,
}

impl System {
    /// Builds an idle system.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is inconsistent (see [`SystemConfig::validate`]).
    #[must_use]
    pub fn new(cfg: SystemConfig) -> Self {
        cfg.validate();
        let total = cfg.total_pes();
        let vaults = cfg.mem.vaults;
        let pes = (0..total)
            .map(|id| Pe::new(id, id / cfg.pes_per_vault, &cfg))
            .collect();
        System {
            hmc: Hmc::new(cfg.mem.clone()),
            net: Torus::new(cfg.torus),
            pes,
            now: 0,
            pe_egress: vec![VecDeque::new(); total].into_iter().collect(),
            uplink_busy: vec![0; total],
            downlink_busy: vec![0; total],
            to_vault_local: (0..vaults).map(|_| VecDeque::new()).collect(),
            vault_ingress: (0..vaults).map(|_| VecDeque::new()).collect(),
            vault_egress: (0..vaults).map(|_| VecDeque::new()).collect(),
            to_pe: (0..total).map(|_| VecDeque::new()).collect(),
            cfg,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Total PE count.
    #[must_use]
    pub fn total_pes(&self) -> usize {
        self.pes.len()
    }

    /// The current cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Immutable access to PE `pe`.
    #[must_use]
    pub fn pe(&self, pe: usize) -> &Pe {
        &self.pes[pe]
    }

    /// Mutable access to PE `pe` (host setup: scratchpad preloading).
    pub fn pe_mut(&mut self, pe: usize) -> &mut Pe {
        &mut self.pes[pe]
    }

    /// The memory stack (host reads of results).
    #[must_use]
    pub fn hmc(&self) -> &Hmc {
        &self.hmc
    }

    /// Mutable memory stack (host loading of inputs).
    pub fn hmc_mut(&mut self) -> &mut Hmc {
        &mut self.hmc
    }

    /// Loads `program` into one PE.
    pub fn load_program(&mut self, pe: usize, program: &Program) {
        self.pes[pe].load_program(program);
    }

    /// Loads the same program into every PE (SPMD style; PEs diverge via
    /// their id registers).
    pub fn load_program_all(&mut self, program: &Program) {
        for pe in &mut self.pes {
            pe.load_program(program);
        }
    }

    /// Sets a scalar register in one PE before the run.
    pub fn set_reg(&mut self, pe: usize, r: Reg, value: u64) {
        self.pes[pe].set_reg(r, value);
    }

    /// Advances the whole system one cycle.
    pub fn step(&mut self) {
        self.now += 1;
        let now = self.now;
        let local_lat = self.cfg.local_link_latency;
        let pes_per_vault = self.cfg.pes_per_vault;

        // 1. Memory stack: tick and route completions toward PEs.
        {
            let hmc = &mut self.hmc;
            let to_pe = &mut self.to_pe;
            let downlink_busy = &mut self.downlink_busy;
            let vault_egress = &mut self.vault_egress;
            hmc.tick_with(|vault, resp| {
                let pe = (resp.id >> 32) as usize;
                if pe / pes_per_vault == vault {
                    let flits = 1 + resp_bytes(&resp).div_ceil(8) as u64;
                    let start = now.max(downlink_busy[pe]);
                    downlink_busy[pe] = start + flits;
                    to_pe[pe].push_back((start + flits + local_lat, resp));
                } else {
                    vault_egress[vault].push_back((pe, resp));
                }
            });
        }

        // 2. Network: advance and drain deliveries.
        self.net.tick();
        while let Some((node, pkt)) = self.net.pop_delivered() {
            match pkt.payload {
                SysMsg::Req(req) => self.vault_ingress[node].push_back(req),
                SysMsg::Resp { pe, resp } => {
                    debug_assert_eq!(pe / pes_per_vault, node);
                    let flits = 1 + resp_bytes(&resp).div_ceil(8) as u64;
                    let start = now.max(self.downlink_busy[pe]);
                    self.downlink_busy[pe] = start + flits;
                    self.to_pe[pe].push_back((start + flits + local_lat, resp));
                }
            }
        }

        // 3. Local star links arriving at vault controllers.
        for vault in 0..self.cfg.mem.vaults {
            while let Some(&(ready, _)) = self.to_vault_local[vault].front() {
                if ready > now {
                    break;
                }
                let (_, req) = self.to_vault_local[vault].pop_front().expect("front exists");
                self.vault_ingress[vault].push_back(req);
            }
            // Drain ingress into the transaction queue.
            while self.hmc.can_accept(vault) {
                let Some(req) = self.vault_ingress[vault].pop_front() else { break };
                self.hmc.enqueue(vault, req).expect("checked can_accept");
            }
            // Inject queued completions onto the torus.
            while let Some((pe, resp)) = self.vault_egress[vault].front() {
                let dst = pe / pes_per_vault;
                let bytes = resp_bytes(resp);
                let (pe, resp) = (*pe, resp.clone());
                match self.net.inject(vault, dst, bytes, SysMsg::Resp { pe, resp }) {
                    Ok(()) => {
                        self.vault_egress[vault].pop_front();
                    }
                    Err(_) => break,
                }
            }
        }

        // 4. PEs: deliver completions, tick, emit and dispatch requests.
        for pe_id in 0..self.pes.len() {
            while let Some(&(ready, _)) = self.to_pe[pe_id].front() {
                if ready > now {
                    break;
                }
                let (_, resp) = self.to_pe[pe_id].pop_front().expect("front exists");
                self.pes[pe_id].receive(&resp);
            }

            self.pes[pe_id].tick(now);

            if self.pe_egress[pe_id].len() < 8 {
                if let Some(req) = self.pes[pe_id].emit_request() {
                    self.pe_egress[pe_id].push_back(req);
                }
            }

            if let Some(req) = self.pe_egress[pe_id].front() {
                let vault = pe_id / pes_per_vault;
                let dst = self.cfg.mem.vault_of(req.addr);
                if dst == vault {
                    if self.uplink_busy[pe_id] <= now {
                        let req = self.pe_egress[pe_id].pop_front().expect("front exists");
                        let flits = 1 + req_bytes(&req).div_ceil(8) as u64;
                        self.uplink_busy[pe_id] = now + flits;
                        self.to_vault_local[vault].push_back((now + flits + local_lat, req));
                    }
                } else if self.net.can_inject(vault) {
                    let req = self.pe_egress[pe_id].pop_front().expect("front exists");
                    let bytes = req_bytes(&req);
                    self.net
                        .inject(vault, dst, bytes, SysMsg::Req(req))
                        .expect("checked can_inject");
                }
            }
        }
    }

    /// Whether every PE has halted and all memory traffic has drained.
    #[must_use]
    pub fn is_quiesced(&self) -> bool {
        self.pes
            .iter()
            .all(|pe| pe.is_halted() && pe.is_quiesced(self.now))
            && self.hmc.is_idle()
            && self.net.is_idle()
            && self.pe_egress.iter().all(VecDeque::is_empty)
            && self.to_vault_local.iter().all(VecDeque::is_empty)
            && self.vault_ingress.iter().all(VecDeque::is_empty)
            && self.vault_egress.iter().all(VecDeque::is_empty)
            && self.to_pe.iter().all(VecDeque::is_empty)
    }

    /// Runs until every PE halts and the machine drains.
    ///
    /// Returns the cycle count at quiescence.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] if the system has not quiesced within
    /// `max_cycles` — a hang (e.g. a full-empty deadlock) or simply too
    /// small a limit.
    pub fn run(&mut self, max_cycles: Cycle) -> Result<Cycle, RunError> {
        while self.now < max_cycles {
            self.step();
            if self.is_quiesced() {
                return Ok(self.now);
            }
        }
        Err(RunError {
            limit: max_cycles,
            halted_pes: self.pes.iter().filter(|p| p.is_halted()).count(),
            total_pes: self.pes.len(),
        })
    }

    /// Statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> SystemStats {
        let mut pe = PeStats::default();
        for p in &self.pes {
            pe.merge(p.stats());
        }
        SystemStats {
            cycles: self.now,
            pe,
            mem: self.hmc.stats(),
            noc: self.net.stats(),
        }
    }
}

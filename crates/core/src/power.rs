//! Area and power model for a VIP PE (§VII substitution).
//!
//! The paper synthesized one PE in TSMC 28 nm with an ARM standard-cell
//! library, used CACTI 6.5 for the SRAMs, and fed RTL switching activity
//! to Synopsys PrimeTime, reporting **0.141 mm²** and **27 mW** (belief
//! propagation) to **38 mW** (CNN) per PE — 18 mm² and 3.5–4.8 W for all
//! 128 PEs. No synthesis toolchain exists here, so this module supplies
//! the same interface analytically: an area breakdown per unit and an
//! activity-based energy model whose per-event constants are calibrated
//! so that the simulator's own activity counts reproduce the published
//! figures (and, crucially, their *ratio* — CNNs burn more power because
//! they exercise the multiplier array).
//!
//! ```
//! use vip_core::power::{AreaModel, EnergyModel};
//!
//! let area = AreaModel::vip_pe();
//! assert!((area.pe_mm2() - 0.141).abs() < 0.01);
//! assert!((area.chip_mm2(128) - 18.0).abs() < 0.5);
//! # let _ = EnergyModel::tsmc28();
//! ```

use crate::stats::PeStats;
use crate::Cycle;

/// Published §VII reference values, used by the calibration tests and the
/// RTL report generator.
pub mod paper {
    /// Area of one PE after place-and-route, mm².
    pub const PE_AREA_MM2: f64 = 0.141;
    /// Area of all 128 PEs, mm².
    pub const CHIP_AREA_MM2: f64 = 18.0;
    /// Per-PE power running the BP kernel, mW.
    pub const BP_PE_MW: f64 = 27.0;
    /// Per-PE power running the CNN kernel, mW.
    pub const CNN_PE_MW: f64 = 38.0;
    /// 128-PE power range, W.
    pub const CHIP_POWER_RANGE_W: (f64, f64) = (3.5, 4.8);
}

/// Per-unit silicon area of one PE, mm² in 28 nm.
///
/// The breakdown apportions the published 0.141 mm² across the units in
/// Figure 6's layout; the SRAM macros (scratchpad, register file,
/// load-store queue, instruction buffer) dominate, as CACTI-derived
/// black boxes did in the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// 4 KiB scratchpad (eight 512×8-bit macros with 3R/2W ports).
    pub scratchpad_mm2: f64,
    /// 64×64-bit scalar register file.
    pub regfile_mm2: f64,
    /// 1,024×32-bit instruction buffer.
    pub inst_buffer_mm2: f64,
    /// 64×32-bit load-store queue.
    pub lsq_mm2: f64,
    /// Vertical + horizontal vector datapath (incl. the multiplier
    /// array).
    pub vector_unit_mm2: f64,
    /// Scalar ALU and control.
    pub scalar_unit_mm2: f64,
    /// Fetch/decode/issue and the ARC.
    pub frontend_mm2: f64,
}

impl AreaModel {
    /// The calibrated VIP PE breakdown.
    #[must_use]
    pub fn vip_pe() -> Self {
        AreaModel {
            scratchpad_mm2: 0.048,
            regfile_mm2: 0.010,
            inst_buffer_mm2: 0.022,
            lsq_mm2: 0.008,
            vector_unit_mm2: 0.032,
            scalar_unit_mm2: 0.009,
            frontend_mm2: 0.012,
        }
    }

    /// Total area of one PE.
    #[must_use]
    pub fn pe_mm2(&self) -> f64 {
        self.scratchpad_mm2
            + self.regfile_mm2
            + self.inst_buffer_mm2
            + self.lsq_mm2
            + self.vector_unit_mm2
            + self.scalar_unit_mm2
            + self.frontend_mm2
    }

    /// Total area of `pes` PEs (§VII: 128 PEs ⇒ 18 mm²; the 0.5%
    /// overhead vs. 128×0.141 covers inter-PE routing).
    #[must_use]
    pub fn chip_mm2(&self, pes: usize) -> f64 {
        self.pe_mm2() * pes as f64
    }
}

/// Per-event dynamic energies (pJ) plus static power, calibrated to the
/// §VII PrimeTime results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// One add/sub/min/max 16-bit lane operation.
    pub lane_op_pj: f64,
    /// *Additional* energy when the lane op is a multiply.
    pub mul_extra_pj: f64,
    /// One 64-bit scratchpad beat (read or write).
    pub sp_beat_pj: f64,
    /// One instruction through fetch/decode/issue (instruction-buffer
    /// read + control).
    pub issue_pj: f64,
    /// Static + clock-tree power per PE, W.
    pub static_w: f64,
}

impl EnergyModel {
    /// Constants calibrated to TSMC 28 nm at 1.25 GHz / 0.9 V.
    #[must_use]
    pub fn tsmc28() -> Self {
        EnergyModel {
            lane_op_pj: 0.55,
            mul_extra_pj: 2.4,
            sp_beat_pj: 3.0,
            issue_pj: 1.6,
            static_w: 0.008,
        }
    }

    /// Dynamic energy in picojoules implied by a PE's activity counters.
    #[must_use]
    pub fn dynamic_pj(&self, stats: &PeStats) -> f64 {
        stats.lane_ops as f64 * self.lane_op_pj
            + stats.lane_mul_ops as f64 * self.mul_extra_pj
            + stats.sp_beats as f64 * self.sp_beat_pj
            + stats.instructions as f64 * self.issue_pj
    }

    /// Average power of one PE over `cycles` cycles, watts.
    #[must_use]
    pub fn pe_power_w(&self, stats: &PeStats, cycles: Cycle) -> f64 {
        if cycles == 0 {
            return self.static_w;
        }
        let seconds = cycles as f64 / crate::CLOCK_HZ;
        self.static_w + self.dynamic_pj(stats) * 1e-12 / seconds
    }

    /// Average power of `pes` PEs given their merged counters, watts.
    #[must_use]
    pub fn chip_power_w(&self, merged: &PeStats, pes: usize, cycles: Cycle) -> f64 {
        if cycles == 0 {
            return self.static_w * pes as f64;
        }
        let seconds = cycles as f64 / crate::CLOCK_HZ;
        self.static_w * pes as f64 + self.dynamic_pj(merged) * 1e-12 / seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic per-cycle activity of a PE saturating the min-sum BP
    /// datapath: 4 vertical adds + 4 horizontal mins per cycle, three
    /// scratchpad beats, roughly one instruction every other cycle
    /// (software pipelining keeps the scalar side in the vector shadow).
    fn bp_like(cycles: u64) -> PeStats {
        PeStats {
            active_cycles: cycles,
            lane_ops: 8 * cycles,
            lane_mul_ops: 0,
            sp_beats: 3 * cycles,
            instructions: cycles / 2,
            ..PeStats::default()
        }
    }

    /// CNN activity: the vertical unit multiplies.
    fn cnn_like(cycles: u64) -> PeStats {
        PeStats {
            active_cycles: cycles,
            lane_ops: 8 * cycles,
            lane_mul_ops: 4 * cycles,
            sp_beats: 3 * cycles,
            instructions: cycles / 2,
            ..PeStats::default()
        }
    }

    #[test]
    fn area_matches_paper() {
        let a = AreaModel::vip_pe();
        assert!(
            (a.pe_mm2() - paper::PE_AREA_MM2).abs() < 0.005,
            "PE area {} vs paper {}",
            a.pe_mm2(),
            paper::PE_AREA_MM2
        );
        assert!((a.chip_mm2(128) - paper::CHIP_AREA_MM2).abs() < 0.5);
    }

    #[test]
    fn bp_power_calibrated() {
        let e = EnergyModel::tsmc28();
        let mw = e.pe_power_w(&bp_like(1_000_000), 1_000_000) * 1e3;
        let err = (mw - paper::BP_PE_MW).abs() / paper::BP_PE_MW;
        assert!(
            err < 0.15,
            "BP power {mw:.1} mW vs paper {} mW",
            paper::BP_PE_MW
        );
    }

    #[test]
    fn cnn_power_calibrated_and_higher_than_bp() {
        let e = EnergyModel::tsmc28();
        let cycles = 1_000_000;
        let bp = e.pe_power_w(&bp_like(cycles), cycles) * 1e3;
        let cnn = e.pe_power_w(&cnn_like(cycles), cycles) * 1e3;
        assert!(cnn > bp, "multipliers must cost energy");
        let err = (cnn - paper::CNN_PE_MW).abs() / paper::CNN_PE_MW;
        assert!(
            err < 0.15,
            "CNN power {cnn:.1} mW vs paper {} mW",
            paper::CNN_PE_MW
        );
    }

    #[test]
    fn chip_power_in_paper_range() {
        let e = EnergyModel::tsmc28();
        let cycles = 1_000_000;
        let mut bp = bp_like(cycles);
        // Merge 128 PEs' counters.
        for f in [
            &mut bp.lane_ops,
            &mut bp.lane_mul_ops,
            &mut bp.sp_beats,
            &mut bp.instructions,
        ] {
            *f *= 128;
        }
        let w = e.chip_power_w(&bp, 128, cycles);
        let (lo, hi) = paper::CHIP_POWER_RANGE_W;
        assert!(w > lo * 0.8 && w < hi * 1.2, "chip power {w:.2} W");
    }

    #[test]
    fn idle_pe_draws_static_power() {
        let e = EnergyModel::tsmc28();
        assert!((e.pe_power_w(&PeStats::default(), 0) - e.static_w).abs() < 1e-12);
    }
}

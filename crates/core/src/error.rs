//! Typed simulation errors and the hang-diagnosis watchdog report.
//!
//! Nothing on a program-visible failure path panics: an illegal program
//! surfaces as [`SimError::Trap`], an uncorrectable memory error as
//! [`SimError::UncorrectableMemory`], an abandoned NoC packet as
//! [`SimError::NocDeliveryFailed`], and a run that exhausts its cycle
//! budget as [`SimError::Hang`] carrying a structured [`HangReport`] —
//! which PEs are parked on which full-empty words, what the network
//! still holds, how deep each vault queue is — mirroring the reference
//! interpreter's deadlock report so the two can be compared.

use std::fmt;

use vip_isa::Trap;
use vip_mem::ReqId;

use crate::pe::StallReason;
use crate::Cycle;

/// A fatal simulation outcome. `Eq`/`Clone` so tests can assert on the
/// exact failure and the differential harness can compare engines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A PE executed an architecturally illegal instruction.
    Trap {
        /// The PE that trapped.
        pe: usize,
        /// The program counter of the offending instruction.
        pc: usize,
        /// The architectural trap classification (shared with the
        /// reference interpreter).
        trap: Trap,
    },
    /// A memory response arrived that matches no in-flight load-store
    /// request — a protocol bug, reported with enough state to debug it.
    OrphanResponse {
        /// The PE whose load-store unit received the response.
        pe: usize,
        /// The orphaned response id.
        id: ReqId,
        /// The request ids actually outstanding, sorted.
        outstanding: Vec<ReqId>,
    },
    /// ECC detected an uncorrectable (double-bit) error in data a PE
    /// consumed — the machine-check path.
    UncorrectableMemory {
        /// The consuming PE.
        pe: usize,
        /// The poisoned DRAM address.
        addr: u64,
    },
    /// The NoC abandoned a packet after exhausting its retransmission
    /// budget.
    NocDeliveryFailed {
        /// Source node.
        src: usize,
        /// Destination node.
        dst: usize,
    },
    /// The run hit its cycle budget before every PE halted. Boxed: the
    /// report is large and `SimError` travels through `Result`s.
    Hang(Box<HangReport>),
}

/// The coarse policy-relevant classification of a [`SimError`] — what a
/// supervising layer (the serving fleet's failure handler, a report
/// writer) keys retry / quarantine / accounting decisions on, without
/// matching every variant's payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FailureClass {
    /// An architecturally illegal instruction ([`SimError::Trap`]).
    Trap,
    /// A machine-check on consumed data
    /// ([`SimError::UncorrectableMemory`]).
    Memory,
    /// The interconnect gave up on a packet
    /// ([`SimError::NocDeliveryFailed`]).
    Noc,
    /// A simulator protocol violation ([`SimError::OrphanResponse`]).
    Protocol,
    /// The cycle budget ran out with work in flight
    /// ([`SimError::Hang`]).
    Hang,
}

impl FailureClass {
    /// Stable lower-case label for reports and test assertions.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FailureClass::Trap => "trap",
            FailureClass::Memory => "memory",
            FailureClass::Noc => "noc",
            FailureClass::Protocol => "protocol",
            FailureClass::Hang => "hang",
        }
    }
}

impl vip_snap::Snapshot for FailureClass {
    fn save(&self, w: &mut vip_snap::Writer) {
        w.u8(match self {
            FailureClass::Trap => 0,
            FailureClass::Memory => 1,
            FailureClass::Noc => 2,
            FailureClass::Protocol => 3,
            FailureClass::Hang => 4,
        });
    }

    fn restore(r: &mut vip_snap::Reader<'_>) -> Result<Self, vip_snap::SnapError> {
        Ok(match r.u8()? {
            0 => FailureClass::Trap,
            1 => FailureClass::Memory,
            2 => FailureClass::Noc,
            3 => FailureClass::Protocol,
            4 => FailureClass::Hang,
            _ => return Err(vip_snap::SnapError::Corrupt("failure class tag")),
        })
    }
}

impl SimError {
    /// This error's [`FailureClass`].
    #[must_use]
    pub fn class(&self) -> FailureClass {
        match self {
            SimError::Trap { .. } => FailureClass::Trap,
            SimError::UncorrectableMemory { .. } => FailureClass::Memory,
            SimError::NocDeliveryFailed { .. } => FailureClass::Noc,
            SimError::OrphanResponse { .. } => FailureClass::Protocol,
            SimError::Hang(_) => FailureClass::Hang,
        }
    }
}

/// What one unhalted PE was doing when the watchdog fired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedPe {
    /// The PE index.
    pub pe: usize,
    /// Its program counter.
    pub pc: usize,
    /// Why issue was stalled, if it was (`None`: the PE was ready or
    /// between instructions — e.g. spinning on a branch).
    pub stall: Option<StallReason>,
    /// Full-empty words the PE's outstanding requests are parked on:
    /// `(address, is_load)`. The classic deadlock shows up here as a
    /// `fe.load` of a word no one will ever fill.
    pub fe_waits: Vec<(u64, bool)>,
}

/// The hang-diagnosis watchdog report: a structured snapshot of every
/// live component at the moment the cycle budget ran out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HangReport {
    /// The exhausted cycle budget.
    pub limit: Cycle,
    /// PEs that reached `halt`.
    pub halted_pes: usize,
    /// Total PEs in the system.
    pub total_pes: usize,
    /// Per-PE blocked state for every unhalted PE.
    pub blocked: Vec<BlockedPe>,
    /// Packets still inside the torus.
    pub noc_in_flight: usize,
    /// Queued (unissued) transactions per vault, indexed by vault.
    pub vault_queue_depths: Vec<usize>,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Trap { pe, pc, trap } => {
                write!(f, "PE {pe} trapped at pc {pc}: {trap}")
            }
            SimError::OrphanResponse {
                pe,
                id,
                outstanding,
            } => {
                write!(
                    f,
                    "PE {pe}: response {id:#x} matches no in-flight request \
                     (outstanding: {outstanding:x?})"
                )
            }
            SimError::UncorrectableMemory { pe, addr } => {
                write!(
                    f,
                    "PE {pe}: uncorrectable memory error (double-bit, ECC-detected) \
                     at address {addr:#x}"
                )
            }
            SimError::NocDeliveryFailed { src, dst } => {
                write!(
                    f,
                    "NoC delivery from node {src} to node {dst} failed after \
                     exhausting retransmission budget"
                )
            }
            SimError::Hang(report) => report.fmt(f),
        }
    }
}

impl fmt::Display for HangReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "simulation exceeded {} cycles with {}/{} PEs halted",
            self.limit, self.halted_pes, self.total_pes
        )?;
        for b in &self.blocked {
            write!(f, "\n  PE {} at pc {}", b.pe, b.pc)?;
            if let Some(stall) = b.stall {
                write!(f, " stalled on {stall:?}")?;
            }
            for &(addr, is_load) in &b.fe_waits {
                let kind = if is_load { "fe.load" } else { "fe.store" };
                write!(f, ", waiting on {kind} at {addr:#x}")?;
            }
        }
        if self.noc_in_flight > 0 {
            write!(f, "\n  NoC: {} packets in flight", self.noc_in_flight)?;
        }
        let queued: usize = self.vault_queue_depths.iter().sum();
        if queued > 0 {
            write!(f, "\n  vault queues: {queued} transactions pending at")?;
            for (v, depth) in self.vault_queue_depths.iter().enumerate() {
                if *depth > 0 {
                    write!(f, " vault {v} ({depth})")?;
                }
            }
        }
        Ok(())
    }
}

impl std::error::Error for SimError {}

impl From<Box<HangReport>> for SimError {
    fn from(report: Box<HangReport>) -> Self {
        SimError::Hang(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hang_report_names_blocked_pes_and_addresses() {
        let report = HangReport {
            limit: 1000,
            halted_pes: 3,
            total_pes: 4,
            blocked: vec![BlockedPe {
                pe: 2,
                pc: 7,
                stall: Some(StallReason::LsqBusy),
                fe_waits: vec![(0x1f8, true)],
            }],
            noc_in_flight: 1,
            vault_queue_depths: vec![0, 2, 0, 0],
        };
        let text = SimError::Hang(Box::new(report)).to_string();
        assert!(text.contains("3/4 PEs halted"), "{text}");
        assert!(text.contains("PE 2 at pc 7"), "{text}");
        assert!(text.contains("fe.load at 0x1f8"), "{text}");
        assert!(text.contains("1 packets in flight"), "{text}");
        assert!(text.contains("vault 1 (2)"), "{text}");
    }

    #[test]
    fn errors_are_comparable() {
        let a = SimError::UncorrectableMemory { pe: 1, addr: 64 };
        assert_eq!(a, a.clone());
        assert_ne!(a, SimError::NocDeliveryFailed { src: 0, dst: 1 });
    }
}

//! # vip-core — the VIP processing engine and full-system simulator
//!
//! This crate is the reproduction of the paper's primary contribution
//! (*"VIP: A Versatile Inference Processor"*, Hurkat & Martínez, HPCA
//! 2019): an execution-driven, cycle-level model of the VIP processing
//! engine (PE) and of the complete 128-PE system in the logic layer of an
//! HMC-style memory stack.
//!
//! ## The PE (§III-B, Figure 1)
//!
//! Each [`Pe`] contains:
//!
//! * a unified front end (1,024-entry instruction buffer, in-order issue,
//!   out-of-order completion, no precise exceptions);
//! * a **scalar unit**: 64×64-bit register file with per-register valid
//!   bits — instructions reading or overwriting a register with a pending
//!   fill stall at issue;
//! * a **vector unit**: a vertical (element-wise) pipeline feeding a
//!   horizontal (reduction) pipeline over a 64-bit sub-word datapath
//!   (8×8 b / 4×16 b / 2×32 b / 1×64 b per beat); long vectors stream over
//!   multiple beats in the classic temporal style. Add-like lanes take one
//!   cycle, multiplies four;
//! * a 4 KiB **scratchpad** in place of a vector register file (the vector
//!   memory-memory paradigm, §III-A) with dedicated vector (2R+1W) and
//!   load-store (1R+1W) ports;
//! * the **ARC** (array range check): a 20-entry associative table of
//!   scratchpad ranges with outstanding loads; instructions touching an
//!   overlapping range stall at issue;
//! * a **load-store unit** with 64 outstanding requests that splits
//!   scratchpad↔DRAM transfers into 32-byte DRAM columns.
//!
//! ## The system (§III, §III-C)
//!
//! [`System`] instantiates 4 PEs per vault over `vip-mem`'s HMC model and
//! `vip-noc`'s 8×4 torus: PEs reach their local vault controller through
//! a star hookup and remote vaults through the torus. Full-empty
//! synchronization operations resolve atomically at vault controllers.
//!
//! ## Fidelity notes
//!
//! Vector instructions execute *functionally at issue* while occupying
//! the vector pipelines for their streamed beat count — i.e. we model
//! perfect operand chaining, which is what lets the paper's Figure 2
//! sequence of back-to-back dependent `v.v.add`s work. Loads are the
//! asynchronous hazard the hardware really guards (via the ARC), and the
//! simulator enforces exactly that. See DESIGN.md.
//!
//! ```
//! use vip_core::{System, SystemConfig};
//! use vip_isa::{assemble, Reg};
//!
//! // One PE computes 3 + 4 and stores it to DRAM.
//! let mut sys = System::new(SystemConfig::small_test());
//! let program = assemble(
//!     "add r3, r1, r2
//!      st.reg r3, r4
//!      memfence
//!      halt",
//! ).unwrap();
//! sys.load_program(0, &program);
//! sys.set_reg(0, Reg::new(1), 3);
//! sys.set_reg(0, Reg::new(2), 4);
//! sys.set_reg(0, Reg::new(4), 0x100);
//! sys.run(10_000).unwrap();
//! assert_eq!(sys.hmc().host_read_u64(0x100), 7);
//! ```

mod arc;
mod config;
mod error;
mod fast_func;
mod lsu;
mod pe;
pub mod power;
mod scalar;
mod scratchpad;
mod stats;
mod system;
mod vector;

pub use arc::ArcTable;
pub use config::SystemConfig;
pub use error::{BlockedPe, FailureClass, HangReport, SimError};
pub use fast_func::FuncConfig;
pub use lsu::{LoadStoreUnit, LsuError};
pub use pe::{Pe, PeArchState, StallReason, TraceEvent};
pub use scalar::ScalarRegs;
pub use scratchpad::Scratchpad;
pub use stats::{FuncStats, PeStats, RooflinePoint, SystemStats};
pub use system::{RunOutcome, System};
pub use vector::VectorUnit;

/// One clock cycle of the 1.25 GHz clock (0.8 ns).
pub type Cycle = u64;

/// The PE clock frequency in Hz (§III: 1.25 GHz).
pub const CLOCK_HZ: f64 = 1.25e9;

/// Converts a cycle count to milliseconds of simulated time.
#[must_use]
pub fn cycles_to_ms(cycles: Cycle) -> f64 {
    cycles as f64 / CLOCK_HZ * 1e3
}

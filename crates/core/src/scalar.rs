//! The scalar register file with per-register valid bits (§III-B).

use vip_isa::{Reg, NUM_REGS};
use vip_snap::{Reader, SnapError, Snapshot, Writer};

/// 64×64-bit scalar registers, each with a valid bit.
///
/// A register's valid bit is cleared when an instruction that fills it
/// asynchronously (an `ld.reg`) issues, and set when the fill completes;
/// instructions reading — or overwriting — an invalid register stall at
/// issue. This scoreboard is how VIP avoids scalar pipeline hazards
/// without register renaming.
#[derive(Debug, Clone)]
pub struct ScalarRegs {
    values: [u64; NUM_REGS],
    valid: [bool; NUM_REGS],
}

impl ScalarRegs {
    /// All registers zero and valid.
    #[must_use]
    pub fn new() -> Self {
        ScalarRegs {
            values: [0; NUM_REGS],
            valid: [true; NUM_REGS],
        }
    }

    /// Reads a register's value.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the register is invalid — issue logic must check
    /// [`is_valid`](Self::is_valid) first.
    #[must_use]
    pub fn read(&self, r: Reg) -> u64 {
        debug_assert!(self.valid[r.index()], "read of invalid {r}");
        self.values[r.index()]
    }

    /// Writes a register and marks it valid.
    pub fn write(&mut self, r: Reg, value: u64) {
        self.values[r.index()] = value;
        self.valid[r.index()] = true;
    }

    /// Whether the register's valid bit is set.
    #[must_use]
    pub fn is_valid(&self, r: Reg) -> bool {
        self.valid[r.index()]
    }

    /// Clears the valid bit (an asynchronous fill is in flight).
    pub fn invalidate(&mut self, r: Reg) {
        self.valid[r.index()] = false;
    }
}

impl Default for ScalarRegs {
    fn default() -> Self {
        Self::new()
    }
}

/// Valid bits are captured alongside values: a snapshot can land while
/// an `ld.reg` fill is outstanding, leaving registers architecturally
/// invalid.
impl Snapshot for ScalarRegs {
    fn save(&self, w: &mut Writer) {
        for v in self.values {
            w.u64(v);
        }
        for b in self.valid {
            w.bool(b);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let mut regs = ScalarRegs::new();
        for v in &mut regs.values {
            *v = r.u64()?;
        }
        for b in &mut regs.valid {
            *b = r.bool()?;
        }
        Ok(regs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoreboarding() {
        let mut regs = ScalarRegs::new();
        let r5 = Reg::new(5);
        assert!(regs.is_valid(r5));
        assert_eq!(regs.read(r5), 0);
        regs.invalidate(r5);
        assert!(!regs.is_valid(r5));
        regs.write(r5, 42);
        assert!(regs.is_valid(r5));
        assert_eq!(regs.read(r5), 42);
    }
}

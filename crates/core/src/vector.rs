//! Vector-unit configuration and timing state.

use vip_isa::{ElemType, Trap};
use vip_snap::{Reader, SnapError, Snapshot, Writer};

use crate::Cycle;

/// Timing state of the vector pipelines (vertical + horizontal).
///
/// Functionally, vector instructions execute at issue (perfect operand
/// chaining — see the crate docs); this struct tracks the *time* those
/// instructions occupy the datapath. A vector whose footprint exceeds the
/// 64-bit datapath streams over multiple beats, occupying the unit one
/// beat per cycle, as in the temporal vector machines the paper cites
/// (CDC STAR-100, Cray-1). `complete_at` tracks pipeline drain for
/// `v.drain`.
#[derive(Debug, Clone)]
pub struct VectorUnit {
    vl: usize,
    mr: usize,
    busy_until: Cycle,
    complete_at: Cycle,
}

impl VectorUnit {
    /// An idle unit with `vl = 1`, `mr = 1`.
    #[must_use]
    pub fn new() -> Self {
        VectorUnit {
            vl: 1,
            mr: 1,
            busy_until: 0,
            complete_at: 0,
        }
    }

    /// Current vector length in elements (`set.vl`).
    #[must_use]
    pub fn vl(&self) -> usize {
        self.vl
    }

    /// Current matrix row count for `m.v` instructions (`set.mr`).
    #[must_use]
    pub fn mr(&self) -> usize {
        self.mr
    }

    /// Sets the vector length.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::ZeroVectorLength`] if `vl` is zero (programs
    /// must configure a positive length).
    pub fn set_vl(&mut self, vl: usize) -> Result<(), Trap> {
        Trap::check_vl(vl)?;
        self.vl = vl;
        Ok(())
    }

    /// Sets the matrix row count.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::ZeroMatRows`] if `mr` is zero.
    pub fn set_mr(&mut self, mr: usize) -> Result<(), Trap> {
        Trap::check_mr(mr)?;
        self.mr = mr;
        Ok(())
    }

    /// Datapath beats to stream `elems` lanes of `ty` (64-bit datapath).
    #[must_use]
    pub fn beats(elems: usize, ty: ElemType) -> u64 {
        ((elems * ty.size_bytes()).div_ceil(8) as u64).max(1)
    }

    /// Whether a new vector instruction may issue at `now`.
    #[must_use]
    pub fn ready(&self, now: Cycle) -> bool {
        now >= self.busy_until
    }

    /// First cycle at which [`ready`](Self::ready) becomes true.
    #[must_use]
    pub fn busy_until(&self) -> Cycle {
        self.busy_until
    }

    /// First cycle at which [`drained`](Self::drained) becomes true.
    #[must_use]
    pub fn complete_at(&self) -> Cycle {
        self.complete_at
    }

    /// Whether every issued instruction has fully drained at `now`
    /// (`v.drain`'s condition).
    #[must_use]
    pub fn drained(&self, now: Cycle) -> bool {
        now >= self.complete_at
    }

    /// Records the issue of an instruction streaming `beats` beats with
    /// `latency` extra cycles of pipeline depth.
    pub fn issue(&mut self, now: Cycle, beats: u64, latency: u64) {
        debug_assert!(self.ready(now));
        self.busy_until = now + beats;
        self.complete_at = self.complete_at.max(now + beats + latency);
    }
}

impl Default for VectorUnit {
    fn default() -> Self {
        Self::new()
    }
}

impl Snapshot for VectorUnit {
    fn save(&self, w: &mut Writer) {
        w.usize(self.vl);
        w.usize(self.mr);
        w.u64(self.busy_until);
        w.u64(self.complete_at);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(VectorUnit {
            vl: r.usize()?,
            mr: r.usize()?,
            busy_until: r.u64()?,
            complete_at: r.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beat_counts() {
        assert_eq!(VectorUnit::beats(16, ElemType::I16), 4); // 32 B / 8
        assert_eq!(VectorUnit::beats(1, ElemType::I8), 1);
        assert_eq!(VectorUnit::beats(9, ElemType::I8), 2);
        assert_eq!(VectorUnit::beats(2, ElemType::I64), 2);
    }

    #[test]
    fn occupancy_and_drain() {
        let mut v = VectorUnit::new();
        assert!(v.ready(0));
        v.issue(0, 4, 2);
        assert!(!v.ready(3));
        assert!(v.ready(4));
        assert!(!v.drained(5));
        assert!(v.drained(6));
        // Back-to-back issue extends the drain horizon.
        v.issue(4, 4, 2);
        assert!(v.drained(10));
    }

    #[test]
    fn zero_vl_is_a_typed_trap() {
        let mut v = VectorUnit::new();
        assert_eq!(v.set_vl(0), Err(Trap::ZeroVectorLength));
        assert_eq!(v.set_mr(0), Err(Trap::ZeroMatRows));
        // State is untouched by the rejected writes.
        assert_eq!((v.vl(), v.mr()), (1, 1));
        v.set_vl(16).unwrap();
        assert_eq!(v.vl(), 16);
    }
}

//! The functional execution tier: block-cached architectural
//! interpretation with sampled cycle-accurate timing windows.
//!
//! The cycle-level engines spend most of their time re-deciding, every
//! cycle, that a dense vector kernel is about to do the obvious thing.
//! This tier removes that per-cycle cost: straight-line blocks are
//! decoded once (see [`vip_isa::scan_block`]), cached keyed on
//! `(program fingerprint, pc)`, and executed as tight loops that touch
//! only architectural state — scalar registers, the scratchpad, DRAM
//! contents and full-empty bits — plus the retirement counters. No LSU,
//! no ARC, no queues, no clock.
//!
//! Correctness contract: for fault-free programs, the architectural
//! state after a functional run is **bit-identical** to the
//! cycle-accurate engines'. The executor reuses the exact ALU
//! ([`vip_isa::alu`]) and replays trap checks in the reference
//! interpreter's order; full-empty operations resolve atomically
//! against the same backing store the vault controllers use. Cycle
//! counts, by contrast, are *estimates* — extrapolated from sampled
//! accurate windows — and stall/active-cycle breakdowns are not
//! maintained. Anything that needs exact timing (live fault injection,
//! trap reporting, hang diagnosis) drops back to the cycle-accurate
//! model; `System::run_functional` owns that orchestration.
//!
//! Execution within a block is transactional with respect to traps: an
//! instruction reads all sources (performing the checks, in reference
//! order) before writing anything, so a trapping pc can be handed to
//! the cycle-accurate engine to re-dispatch and report the identical
//! typed error with identical statistics.

use vip_faults::{fault_fires, fault_value, FaultDomain};
use vip_isa::{alu, Block, BlockEnd, Instruction, Reg, Trap};
use vip_mem::Storage;

use crate::pe::FuncParts;
use crate::stats::PeStats;
use crate::vector::VectorUnit;
use crate::Cycle;

/// Duty-cycle knobs for the functional tier. Runtime tuning state, not
/// machine structure: it never enters the snapshot fingerprint, and two
/// runs with different knobs produce the same architectural state (only
/// the timing estimate and wall-clock speed differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuncConfig {
    /// Cycle-accurate cycles run at the head of each timing window
    /// before measurement starts (warms pipelines and vault queues out
    /// of the post-stretch cold start).
    pub warmup_cycles: Cycle,
    /// Cycle-accurate cycles measured per window; cycles-per-work-unit
    /// over this span calibrates the extrapolation.
    pub sample_cycles: Cycle,
    /// Work units (see `PeStats::work_units`) the busiest PE may retire
    /// functionally between timing windows. Together with the window
    /// length this sets the duty cycle — and the speedup ceiling.
    pub stretch_work: u64,
    /// Work units one PE may retire per round-robin turn. Small enough
    /// that a spin-waiting PE cannot race arbitrarily far ahead of the
    /// partner it is waiting on; large enough to amortize the turn
    /// overhead.
    pub quantum: u64,
    /// Cycle budget for draining in-flight machine state to idle at a
    /// window/stretch boundary before falling back to another accurate
    /// window.
    pub drain_cycles: Cycle,
}

impl Default for FuncConfig {
    /// Defaults tuned on the dense-tile benches (`sim_throughput`):
    /// ~10-15x over the event-driven engine with cycle-estimate error
    /// around 1%. Warmups much below ~1000 cycles start the sample
    /// inside the post-drain cold-start transient (empty pipelines,
    /// DMA still in flight) and skew the measured rate badly.
    fn default() -> Self {
        FuncConfig {
            warmup_cycles: 1_000,
            sample_cycles: 8_000,
            stretch_work: 150_000,
            quantum: 2_048,
            drain_cycles: 20_000,
        }
    }
}

/// Reusable scratch buffers for vector operands — the executor performs
/// no per-instruction allocation once these are warm. Sources are copied
/// out before the destination is written, preserving the cycle-level
/// model's overlap semantics.
#[derive(Debug, Default)]
pub(crate) struct ExecBufs {
    a: Vec<u8>,
    b: Vec<u8>,
    d: Vec<u8>,
}

/// How one block execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockOutcome {
    /// Block fully retired; `pc` points at the next block.
    Continue,
    /// Block retired and the PE halted (`halt` or program end).
    Halted,
    /// Parked on a full-empty word at the ender; `pc` points at the
    /// ender for a later retry (functional or cycle-accurate).
    Blocked,
    /// An instruction would trap. No state was mutated by it and `pc`
    /// points at it; the cycle-accurate engine re-dispatches to raise
    /// the identical typed error.
    Trapped,
}

fn retire_front_end(st: &mut PeStats) {
    st.instructions += 1;
    st.work_units += 1;
}

fn retire_scalar(st: &mut PeStats) {
    st.instructions += 1;
    st.scalar_instructions += 1;
    st.work_units += 1;
}

fn retire_ldst(st: &mut PeStats) {
    st.instructions += 1;
    st.ldst_instructions += 1;
    st.work_units += 1;
}

/// Mirrors `Pe::scalar_writeback` exactly — including the fault roll at
/// the `(pe, retired-count)` coordinate. The functional tier only runs
/// with inert fault wiring, so the roll never fires; keeping it makes
/// "wired at rate zero" runs bit-identical to "disabled" runs in every
/// counter, which the fault-determinism suite asserts.
fn scalar_writeback(p: &mut FuncParts<'_>, rd: Reg, v: u64) {
    let v = match p.faults {
        Some(f)
            if fault_fires(
                f.seed,
                FaultDomain::PeWriteback,
                p.id as u64,
                p.stats.instructions,
                f.writeback_flip_ppm,
            ) =>
        {
            p.stats.writeback_flips += 1;
            let bit = fault_value(
                f.seed,
                FaultDomain::PeWriteback,
                p.id as u64,
                p.stats.instructions,
            ) % 64;
            v ^ 1u64 << bit
        }
        _ => v,
    };
    p.regs.write(rd, v);
}

/// Executes one straight-line body instruction architecturally, bumping
/// the same retirement counters (`instructions`, per-group counts,
/// `lane_ops`, `sp_beats`, `work_units`…) with the same formulas as
/// `Pe::dispatch`. Does **not** advance `pc` — the block loop owns it.
fn exec_inst(
    p: &mut FuncParts<'_>,
    inst: &Instruction,
    mem: &mut Storage,
    bufs: &mut ExecBufs,
) -> Result<(), Trap> {
    use Instruction::*;
    match *inst {
        SetVl { rs } => {
            p.vec.set_vl(p.regs.read(rs) as usize)?;
            p.stats.work_units += 1;
            p.stats.instructions += 1;
            p.stats.vector_instructions += 1;
        }
        SetMr { rs } => {
            p.vec.set_mr(p.regs.read(rs) as usize)?;
            p.stats.work_units += 1;
            p.stats.instructions += 1;
            p.stats.vector_instructions += 1;
        }
        MatVec {
            vop,
            hop,
            ty,
            rd,
            rs_mat,
            rs_vec,
        } => {
            let (vl, mr) = (p.vec.vl(), p.vec.mr());
            let es = ty.size_bytes();
            let d = p.regs.read(rd) as usize;
            let m = p.regs.read(rs_mat) as usize;
            let v = p.regs.read(rs_vec) as usize;
            let (mat_len, vec_len, dst_len) = (mr * vl * es, vl * es, mr * es);
            // Source reads (and their range checks) before the
            // destination write — reference order, and overlap-safe.
            bufs.a.clear();
            bufs.a.extend_from_slice(p.sp.slice(m, mat_len)?);
            bufs.b.clear();
            bufs.b.extend_from_slice(p.sp.slice(v, vec_len)?);
            bufs.d.clear();
            bufs.d.resize(dst_len, 0);
            alu::mat_vec(vop, hop, ty, &mut bufs.d, &bufs.a, &bufs.b, mr, vl);
            p.sp.slice_mut(d, dst_len)?.copy_from_slice(&bufs.d);

            let beats = mr as u64 * VectorUnit::beats(vl, ty);
            let st = &mut *p.stats;
            st.lane_ops += 2 * (mr * vl) as u64;
            if vop.is_multiply() {
                st.lane_mul_ops += (mr * vl) as u64;
            }
            st.sp_beats += 3 * beats;
            st.work_units += beats;
            st.instructions += 1;
            st.vector_instructions += 1;
        }
        VecVec {
            op,
            ty,
            rd,
            rs1,
            rs2,
        } => {
            let vl = p.vec.vl();
            let len = vl * ty.size_bytes();
            let d = p.regs.read(rd) as usize;
            let a = p.regs.read(rs1) as usize;
            let b = p.regs.read(rs2) as usize;
            bufs.a.clear();
            bufs.a.extend_from_slice(p.sp.slice(a, len)?);
            bufs.b.clear();
            bufs.b.extend_from_slice(p.sp.slice(b, len)?);
            bufs.d.clear();
            bufs.d.resize(len, 0);
            alu::vec_vec(op, ty, &mut bufs.d, &bufs.a, &bufs.b, vl);
            p.sp.slice_mut(d, len)?.copy_from_slice(&bufs.d);

            let beats = VectorUnit::beats(vl, ty);
            let st = &mut *p.stats;
            st.lane_ops += vl as u64;
            if op.is_multiply() {
                st.lane_mul_ops += vl as u64;
            }
            st.sp_beats += 3 * beats;
            st.work_units += beats;
            st.instructions += 1;
            st.vector_instructions += 1;
        }
        VecScalar {
            op,
            ty,
            rd,
            rs_vec,
            rs_scalar,
        } => {
            let vl = p.vec.vl();
            let len = vl * ty.size_bytes();
            let d = p.regs.read(rd) as usize;
            let a = p.regs.read(rs_vec) as usize;
            let s = p.regs.read(rs_scalar);
            bufs.a.clear();
            bufs.a.extend_from_slice(p.sp.slice(a, len)?);
            bufs.d.clear();
            bufs.d.resize(len, 0);
            alu::vec_scalar(op, ty, &mut bufs.d, &bufs.a, s, vl);
            p.sp.slice_mut(d, len)?.copy_from_slice(&bufs.d);

            let beats = VectorUnit::beats(vl, ty);
            let st = &mut *p.stats;
            st.lane_ops += vl as u64;
            if op.is_multiply() {
                st.lane_mul_ops += vl as u64;
            }
            st.sp_beats += 2 * beats;
            st.work_units += beats;
            st.instructions += 1;
            st.vector_instructions += 1;
        }
        Scalar { op, rd, rs1, rs2 } => {
            let v = op.eval(p.regs.read(rs1), p.regs.read(rs2));
            scalar_writeback(p, rd, v);
            retire_scalar(p.stats);
        }
        ScalarImm { op, rd, rs1, imm } => {
            let v = op.eval(p.regs.read(rs1), imm as i64 as u64);
            scalar_writeback(p, rd, v);
            retire_scalar(p.stats);
        }
        Mov { rd, rs } => {
            let v = p.regs.read(rs);
            scalar_writeback(p, rd, v);
            retire_scalar(p.stats);
        }
        MovImm { rd, imm } => {
            scalar_writeback(p, rd, imm as u64);
            retire_scalar(p.stats);
        }
        LdSram {
            ty,
            rd_sp,
            rs_addr,
            rs_len,
        } => {
            let sp = p.regs.read(rd_sp) as usize;
            let dram = p.regs.read(rs_addr);
            let len = p.regs.read(rs_len) as usize * ty.size_bytes();
            mem.read(dram, p.sp.slice_mut(sp, len)?);
            retire_ldst(p.stats);
        }
        StSram {
            ty,
            rs_sp,
            rs_addr,
            rs_len,
        } => {
            let sp = p.regs.read(rs_sp) as usize;
            let dram = p.regs.read(rs_addr);
            let len = p.regs.read(rs_len) as usize * ty.size_bytes();
            mem.write(dram, p.sp.slice(sp, len)?);
            retire_ldst(p.stats);
        }
        LdReg { rd, rs_addr } => {
            let dram = p.regs.read(rs_addr);
            Trap::check_reg_addr(dram)?;
            // Completion fills bypass the writeback fault roll in the
            // cycle model too (the LSU writes the register directly).
            let v = mem.read_u64(dram);
            p.regs.write(rd, v);
            retire_ldst(p.stats);
        }
        StReg { rs, rs_addr } => {
            let dram = p.regs.read(rs_addr);
            Trap::check_reg_addr(dram)?;
            mem.write_u64(dram, p.regs.read(rs));
            retire_ldst(p.stats);
        }
        VDrain | MemFence | Nop => retire_front_end(p.stats),
        Branch { .. } | Jmp { .. } | LdRegFe { .. } | StRegFf { .. } | Halt => {
            unreachable!("block bodies contain only straight-line instructions")
        }
    }
    Ok(())
}

/// Executes one decoded block against a PE's architectural state.
///
/// Precondition: `*p.pc == block.start` and the PE is live. On return,
/// `pc` points wherever the outcome says; statistics reflect exactly the
/// instructions that retired.
pub(crate) fn exec_block(
    p: &mut FuncParts<'_>,
    block: &Block,
    mem: &mut Storage,
    bufs: &mut ExecBufs,
) -> BlockOutcome {
    debug_assert_eq!(*p.pc, block.start);
    for (i, inst) in block.body.iter().enumerate() {
        if exec_inst(p, inst, mem, bufs).is_err() {
            *p.pc = block.start + i;
            return BlockOutcome::Trapped;
        }
    }
    let end_pc = block.end_pc();
    match block.end {
        BlockEnd::Branch {
            cond,
            rs1,
            rs2,
            target,
        } => {
            let taken = cond.eval(p.regs.read(rs1), p.regs.read(rs2));
            let st = &mut *p.stats;
            st.instructions += 1;
            st.scalar_instructions += 1;
            st.work_units += if taken { 1 + p.branch_penalty } else { 1 };
            *p.pc = if taken { target as usize } else { end_pc + 1 };
            BlockOutcome::Continue
        }
        BlockEnd::Jmp { target } => {
            let st = &mut *p.stats;
            st.instructions += 1;
            st.scalar_instructions += 1;
            st.work_units += 1 + p.branch_penalty;
            *p.pc = target as usize;
            BlockOutcome::Continue
        }
        BlockEnd::LdRegFe { rd, rs_addr } => {
            let dram = p.regs.read(rs_addr);
            if Trap::check_reg_addr(dram).is_err() {
                *p.pc = end_pc;
                return BlockOutcome::Trapped;
            }
            if !mem.is_full(dram) {
                *p.pc = end_pc;
                return BlockOutcome::Blocked;
            }
            let v = mem.read_u64(dram);
            mem.set_full(dram, false);
            p.regs.write(rd, v);
            retire_ldst(p.stats);
            *p.pc = end_pc + 1;
            BlockOutcome::Continue
        }
        BlockEnd::StRegFf { rs, rs_addr } => {
            let dram = p.regs.read(rs_addr);
            if Trap::check_reg_addr(dram).is_err() {
                *p.pc = end_pc;
                return BlockOutcome::Trapped;
            }
            if mem.is_full(dram) {
                *p.pc = end_pc;
                return BlockOutcome::Blocked;
            }
            mem.write_u64(dram, p.regs.read(rs));
            mem.set_full(dram, true);
            retire_ldst(p.stats);
            *p.pc = end_pc + 1;
            BlockOutcome::Continue
        }
        BlockEnd::Halt => {
            p.stats.instructions += 1;
            p.stats.work_units += 1;
            *p.pc = end_pc;
            *p.halted = true;
            BlockOutcome::Halted
        }
        BlockEnd::ProgramEnd => {
            // Falling off the end halts without retiring anything —
            // exactly what `Pe::tick` does.
            *p.pc = end_pc;
            *p.halted = true;
            BlockOutcome::Halted
        }
    }
}

//! The VIP processing engine: front end, issue logic, and functional
//! execution.

use vip_faults::{fault_fires, fault_value, FaultDomain, PeFaultConfig};
use vip_isa::{alu, ElemType, Instruction, Program, Reg, Trap, VerticalOp};
use vip_mem::{MemRequest, MemResponse};
use vip_snap::{Reader, SnapError, Snapshot, Writer};

use crate::arc::ArcTable;
use crate::config::SystemConfig;
use crate::error::SimError;
use crate::lsu::{LoadStoreUnit, LsuError};
use crate::scalar::ScalarRegs;
use crate::scratchpad::Scratchpad;
use crate::stats::PeStats;
use crate::vector::VectorUnit;
use crate::Cycle;

/// Why issue stalled this cycle (for the statistics breakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum StallReason {
    /// A scalar source (or overwritten destination) register's valid bit
    /// is clear — an `ld.reg` fill is in flight.
    ScalarOperand = 0,
    /// The vector unit is still streaming a previous instruction's beats.
    VectorBusy = 1,
    /// A scratchpad operand range overlaps a live ARC entry.
    ArcOverlap = 2,
    /// No free ARC entry for a new scratchpad load.
    ArcFull = 3,
    /// The load-store unit is at its 64-outstanding limit.
    LsqBusy = 4,
    /// `v.drain` waiting for the vector pipeline to empty.
    Drain = 5,
    /// `memfence` waiting for outstanding loads/stores.
    Fence = 6,
    /// Front-end bubble after a taken branch.
    BranchBubble = 7,
}

impl StallReason {
    /// Number of distinct reasons (sizes the stats array).
    pub const COUNT: usize = 8;

    /// All reasons, in index order.
    #[must_use]
    pub fn all() -> [StallReason; Self::COUNT] {
        [
            StallReason::ScalarOperand,
            StallReason::VectorBusy,
            StallReason::ArcOverlap,
            StallReason::ArcFull,
            StallReason::LsqBusy,
            StallReason::Drain,
            StallReason::Fence,
            StallReason::BranchBubble,
        ]
    }
}

/// What the front end would do at a given cycle (see `Pe::issue_state`).
///
/// The two stalled variants split on *what lifts the stall*: a
/// `StalledUntil` clears at a cycle the PE already knows (vector unit
/// free, branch bubble over), while a plain `Stalled` clears only when
/// external input arrives (a memory completion filling a register,
/// draining the LSQ, or retiring an ARC entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueState {
    /// An instruction issues (or the PE halts by falling off the end).
    Ready,
    /// Stalled; only an external event can unblock.
    Stalled(StallReason),
    /// Stalled until a locally-known cycle.
    StalledUntil(StallReason, Cycle),
}

/// A PE's architectural (ISA-visible) state, as extracted by
/// [`Pe::arch_state`] after the system quiesces. The cycle-level model
/// and the `vip-ref` architectural interpreter must agree on every field
/// for every program — that is the conformance contract the differential
/// fuzzer checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeArchState {
    /// All 64 scalar registers.
    pub regs: [u64; vip_isa::NUM_REGS],
    /// The full scratchpad image.
    pub scratchpad: Vec<u8>,
}

/// Mutable views of exactly the PE state the functional execution tier
/// touches (see `crate::fast_func`): the architectural state plus the
/// statistics, split apart so the executor can borrow them alongside
/// the system's DRAM storage. Timing state (LSU, ARC, stall bookkeeping)
/// is deliberately absent — the functional tier never consults it.
pub(crate) struct FuncParts<'a> {
    pub id: usize,
    pub pc: &'a mut usize,
    pub halted: &'a mut bool,
    pub regs: &'a mut ScalarRegs,
    pub sp: &'a mut Scratchpad,
    pub vec: &'a mut VectorUnit,
    pub stats: &'a mut PeStats,
    pub faults: Option<PeFaultConfig>,
    pub branch_penalty: u64,
}

/// One retired-instruction trace record (see [`Pe::enable_trace`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the instruction issued.
    pub cycle: Cycle,
    /// Program counter.
    pub pc: usize,
    /// The instruction.
    pub inst: Instruction,
}

/// One VIP processing engine (§III-B, Figure 1).
///
/// Owned and clocked by [`System`](crate::System); unit tests may also
/// drive one directly. See the crate docs for the modelled pipeline
/// structure and its fidelity notes.
#[derive(Debug)]
pub struct Pe {
    id: usize,
    vault: usize,
    program: Program,
    pc: usize,
    halted: bool,
    regs: ScalarRegs,
    sp: Scratchpad,
    arc: ArcTable,
    vec: VectorUnit,
    lsu: LoadStoreUnit,
    stall_until: Cycle,
    branch_penalty: u64,
    multiply_latency: u64,
    reduce_latency: u64,
    stats: PeStats,
    faults: Option<PeFaultConfig>,
    trace: Option<Vec<TraceEvent>>,
    trace_limit: usize,
    /// Fingerprint of the loaded program (the block-cache key half the
    /// functional tier shares across SPMD PEs). Derived from the
    /// program, so not serialized.
    prog_fp: u64,
    /// Freeze gate for the functional tier's drain phase: a frozen PE
    /// still receives completions and emits queued LSU requests, but
    /// issues nothing new. Always false outside `System::drain_to_idle`,
    /// so snapshots never see it.
    frozen: bool,
}

impl Pe {
    /// Creates PE `id` belonging to `vault` with `cfg`'s parameters.
    #[must_use]
    pub fn new(id: usize, vault: usize, cfg: &SystemConfig) -> Self {
        Pe {
            id,
            vault,
            program: Program::default(),
            pc: 0,
            halted: true, // no program loaded yet
            regs: ScalarRegs::new(),
            sp: Scratchpad::new(cfg.scratchpad_bytes),
            arc: ArcTable::new(cfg.arc_entries),
            vec: VectorUnit::new(),
            lsu: LoadStoreUnit::new(id, cfg.lsq_entries, cfg.mem.request_granule()),
            stall_until: 0,
            branch_penalty: cfg.branch_penalty,
            multiply_latency: cfg.multiply_latency,
            reduce_latency: cfg.reduce_latency,
            stats: PeStats::default(),
            faults: cfg.pe_faults,
            trace: None,
            trace_limit: 0,
            prog_fp: vip_isa::program_fingerprint(&Program::default()),
            frozen: false,
        }
    }

    /// Rewires the writeback fault injector (`None` disables it).
    pub fn set_faults(&mut self, faults: Option<PeFaultConfig>) {
        self.faults = faults;
    }

    /// Starts recording an issue trace of up to `limit` instructions
    /// (older events are kept; recording stops at the limit). Useful for
    /// debugging generated programs.
    pub fn enable_trace(&mut self, limit: usize) {
        self.trace = Some(Vec::new());
        self.trace_limit = limit;
    }

    /// The recorded trace (empty unless [`enable_trace`](Self::enable_trace)
    /// was called).
    #[must_use]
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// This PE's global index.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The vault this PE lives in.
    #[must_use]
    pub fn vault(&self) -> usize {
        self.vault
    }

    /// Loads `program` into the instruction buffer and resets the PC.
    ///
    /// The program is passed through the 64-bit binary instruction
    /// encoding and decoded back — the instruction buffer holds encoded
    /// words in hardware, so anything a PE runs is guaranteed
    /// representable in the ISA's binary format.
    ///
    /// # Panics
    ///
    /// Panics if an instruction cannot be encoded (an immediate too wide
    /// for its field) — a code-generation bug.
    pub fn load_program(&mut self, program: &Program) {
        let decoded: Vec<_> = program
            .iter()
            .map(|inst| {
                let word = inst.encode().expect("program instructions are encodable");
                vip_isa::Instruction::decode(word).expect("encoded word decodes")
            })
            .collect();
        debug_assert_eq!(decoded.as_slice(), program.as_slice());
        self.program = Program::new(decoded);
        self.prog_fp = vip_isa::program_fingerprint(&self.program);
        self.pc = 0;
        self.halted = program.is_empty();
    }

    /// Fingerprint of the loaded program (block-cache key half).
    pub(crate) fn prog_fp(&self) -> u64 {
        self.prog_fp
    }

    /// The loaded program (block scanning).
    pub(crate) fn program(&self) -> &Program {
        &self.program
    }

    /// Freezes or thaws issue (see the `frozen` field).
    pub(crate) fn set_frozen(&mut self, frozen: bool) {
        self.frozen = frozen;
    }

    /// The live writeback-fault wiring (the functional tier's
    /// faults-active gate reads it).
    pub(crate) fn fault_config(&self) -> Option<PeFaultConfig> {
        self.faults
    }

    /// Stamps the active-cycle counter (the functional tier's clock
    /// advance; the cycle-accurate paths maintain it via `tick`).
    pub(crate) fn set_active_cycles(&mut self, c: Cycle) {
        self.stats.active_cycles = c;
    }

    /// Splits this PE into the parts the functional executor needs.
    pub(crate) fn func_parts(&mut self) -> FuncParts<'_> {
        FuncParts {
            id: self.id,
            pc: &mut self.pc,
            halted: &mut self.halted,
            regs: &mut self.regs,
            sp: &mut self.sp,
            vec: &mut self.vec,
            stats: &mut self.stats,
            faults: self.faults,
            branch_penalty: self.branch_penalty,
        }
    }

    /// Whether the PE has executed `halt` (or has no program).
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Whether the PE still has loads/stores or vector work in flight.
    #[must_use]
    pub fn is_quiesced(&self, now: Cycle) -> bool {
        self.lsu.is_empty() && self.vec.drained(now)
    }

    /// Sets a scalar register (host initialization).
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs.write(r, value);
    }

    /// Reads a scalar register (host inspection).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the register has a fill in flight.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs.read(r)
    }

    /// Host access to the scratchpad.
    #[must_use]
    pub fn scratchpad(&self) -> &Scratchpad {
        &self.sp
    }

    /// Host mutation of the scratchpad (test preloading).
    pub fn scratchpad_mut(&mut self) -> &mut Scratchpad {
        &mut self.sp
    }

    /// Execution statistics so far.
    #[must_use]
    pub fn stats(&self) -> &PeStats {
        &self.stats
    }

    /// Snapshot of this PE's architectural state: all 64 scalar registers
    /// and the full scratchpad image.
    ///
    /// Meaningful once the PE has quiesced (no register fills in flight);
    /// the differential conformance harness compares it against the
    /// architectural interpreter in `vip-ref`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if any register still has a fill in flight.
    #[must_use]
    pub fn arch_state(&self) -> PeArchState {
        let mut regs = [0u64; vip_isa::NUM_REGS];
        for r in Reg::all() {
            regs[r.index()] = self.regs.read(r);
        }
        PeArchState {
            regs,
            scratchpad: self.sp.read(0, self.sp.len()).expect("full-range read"),
        }
    }

    /// The current program counter (watchdog/debug inspection).
    #[must_use]
    pub fn pc(&self) -> usize {
        self.pc
    }

    /// Why issue would stall at `now`, if it would (`None` when halted
    /// or ready to issue). Feeds the hang-diagnosis report.
    #[must_use]
    pub fn stall_reason(&self, now: Cycle) -> Option<StallReason> {
        if self.halted {
            return None;
        }
        match self.issue_state(now) {
            IssueState::Ready => None,
            IssueState::Stalled(reason) | IssueState::StalledUntil(reason, _) => Some(reason),
        }
    }

    /// Full-empty words this PE has synchronization requests parked on,
    /// as `(address, is_load)` sorted by address.
    #[must_use]
    pub fn fe_waits(&self) -> Vec<(u64, bool)> {
        self.lsu.fe_outstanding()
    }

    /// Applies a memory completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OrphanResponse`] if the response matches no
    /// in-flight request, or [`SimError::UncorrectableMemory`] if it
    /// carries ECC-poisoned data a load would have consumed.
    pub fn receive(&mut self, resp: &MemResponse) -> Result<(), SimError> {
        self.lsu
            .complete(resp, &mut self.sp, &mut self.regs, &mut self.arc)
            .map_err(|e| match e {
                LsuError::Orphan { id, outstanding } => SimError::OrphanResponse {
                    pe: self.id,
                    id,
                    outstanding,
                },
                LsuError::Poisoned { addr } => SimError::UncorrectableMemory { pe: self.id, addr },
            })
    }

    /// Pulls at most one outbound memory request this cycle.
    pub fn emit_request(&mut self) -> Option<MemRequest> {
        self.lsu.next_request()
    }

    fn stall(&mut self, reason: StallReason) {
        self.stats.stalls[reason as usize] += 1;
    }

    fn regs_ready(&self, inst: &Instruction) -> bool {
        inst.reads().iter().all(|&r| self.regs.is_valid(r))
            && inst.writes().is_none_or(|r| self.regs.is_valid(r))
    }

    /// Probes what [`tick`](Self::tick) would do at `now` without doing
    /// it — the single source of truth for issue gating. `tick` dispatches
    /// only on [`IssueState::Ready`]; the fast stepping engine uses the
    /// stall variants to bound how far it may jump.
    ///
    /// The checks run in exactly `tick`'s priority order, so the reported
    /// stall reason matches the counter a cycle-by-cycle run would bump.
    fn issue_state(&self, now: Cycle) -> IssueState {
        debug_assert!(!self.halted);
        if now < self.stall_until {
            return IssueState::StalledUntil(StallReason::BranchBubble, self.stall_until);
        }
        let Some(inst) = self.program.get(self.pc) else {
            // Falling off the end halts at dispatch; that is progress.
            return IssueState::Ready;
        };
        if !self.regs_ready(inst) {
            return IssueState::Stalled(StallReason::ScalarOperand);
        }
        use Instruction::*;
        match *inst {
            VDrain => {
                if self.vec.drained(now) {
                    IssueState::Ready
                } else {
                    IssueState::StalledUntil(StallReason::Drain, self.vec.complete_at())
                }
            }
            MatVec {
                ty,
                rd,
                rs_mat,
                rs_vec,
                ..
            } => {
                if !self.vec.ready(now) {
                    return IssueState::StalledUntil(
                        StallReason::VectorBusy,
                        self.vec.busy_until(),
                    );
                }
                let (vl, mr) = (self.vec.vl(), self.vec.mr());
                let es = ty.size_bytes();
                let d = self.regs.read(rd) as usize;
                let m = self.regs.read(rs_mat) as usize;
                let v = self.regs.read(rs_vec) as usize;
                if self.arc.overlaps(m, mr * vl * es)
                    || self.arc.overlaps(v, vl * es)
                    || self.arc.overlaps(d, mr * es)
                {
                    return IssueState::Stalled(StallReason::ArcOverlap);
                }
                IssueState::Ready
            }
            VecVec {
                ty, rd, rs1, rs2, ..
            } => {
                if !self.vec.ready(now) {
                    return IssueState::StalledUntil(
                        StallReason::VectorBusy,
                        self.vec.busy_until(),
                    );
                }
                let len = self.vec.vl() * ty.size_bytes();
                let d = self.regs.read(rd) as usize;
                let a = self.regs.read(rs1) as usize;
                let b = self.regs.read(rs2) as usize;
                if self.arc.overlaps(a, len)
                    || self.arc.overlaps(b, len)
                    || self.arc.overlaps(d, len)
                {
                    return IssueState::Stalled(StallReason::ArcOverlap);
                }
                IssueState::Ready
            }
            VecScalar { ty, rd, rs_vec, .. } => {
                if !self.vec.ready(now) {
                    return IssueState::StalledUntil(
                        StallReason::VectorBusy,
                        self.vec.busy_until(),
                    );
                }
                let len = self.vec.vl() * ty.size_bytes();
                let d = self.regs.read(rd) as usize;
                let a = self.regs.read(rs_vec) as usize;
                if self.arc.overlaps(a, len) || self.arc.overlaps(d, len) {
                    return IssueState::Stalled(StallReason::ArcOverlap);
                }
                IssueState::Ready
            }
            LdSram {
                ty, rd_sp, rs_len, ..
            } => {
                let sp = self.regs.read(rd_sp) as usize;
                let len = self.regs.read(rs_len) as usize * ty.size_bytes();
                if self.arc.overlaps(sp, len) {
                    return IssueState::Stalled(StallReason::ArcOverlap);
                }
                if !self.lsq_has_room() {
                    return IssueState::Stalled(StallReason::LsqBusy);
                }
                if !self.arc.has_free_entry() {
                    return IssueState::Stalled(StallReason::ArcFull);
                }
                IssueState::Ready
            }
            StSram {
                ty, rs_sp, rs_len, ..
            } => {
                let sp = self.regs.read(rs_sp) as usize;
                let len = self.regs.read(rs_len) as usize * ty.size_bytes();
                if self.arc.overlaps(sp, len) {
                    return IssueState::Stalled(StallReason::ArcOverlap);
                }
                if !self.lsq_has_room() {
                    return IssueState::Stalled(StallReason::LsqBusy);
                }
                IssueState::Ready
            }
            LdReg { .. } | LdRegFe { .. } | StReg { .. } | StRegFf { .. } => {
                if !self.lsq_has_room() {
                    return IssueState::Stalled(StallReason::LsqBusy);
                }
                IssueState::Ready
            }
            MemFence => {
                if self.lsu.is_empty() {
                    IssueState::Ready
                } else {
                    IssueState::Stalled(StallReason::Fence)
                }
            }
            _ => IssueState::Ready,
        }
    }

    /// A sound lower bound on the next cycle (strictly after `now`) at
    /// which this PE can make progress on its own: issue an instruction,
    /// emit a memory request, or finish draining the vector pipeline.
    /// `None` means the PE only moves again on external input (a memory
    /// completion), which the system tracks through its queues.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut consider = |c: Cycle| {
            debug_assert!(c > now);
            next = Some(next.map_or(c, |n: Cycle| n.min(c)));
        };
        if !self.halted && !self.frozen {
            match self.issue_state(now + 1) {
                IssueState::Ready => consider(now + 1),
                IssueState::StalledUntil(_, at) => consider(at),
                // External-dependency stalls (scalar operand, ARC, LSQ,
                // fence): lifted only by a completion arriving, which
                // the system's queue events cover.
                IssueState::Stalled(_) => {}
            }
        }
        if self.lsu.can_emit() {
            consider(now + 1);
        }
        if !self.vec.drained(now) {
            // Quiescence (and `v.drain`) watches this even after halt.
            consider(self.vec.complete_at());
        }
        next
    }

    /// Replays the cycles `(from, to]` as the no-op stall ticks they are
    /// guaranteed to be (the caller established via
    /// [`next_event`](Self::next_event) that nothing can issue in the
    /// window), updating the per-cycle counters a cycle-by-cycle run
    /// would have accumulated. With no external input, the stall reason
    /// observed at `from + 1` holds for the whole window.
    pub(crate) fn fast_forward(&mut self, from: Cycle, to: Cycle) {
        if self.halted || to <= from {
            return;
        }
        self.stats.active_cycles = to;
        if self.frozen {
            // Frozen issue is not a stall: the drain deliberately parked
            // the front end, so no counter should be charged.
            return;
        }
        match self.issue_state(from + 1) {
            IssueState::Ready => {
                debug_assert!(false, "fast-forward across a ready-to-issue cycle");
            }
            IssueState::Stalled(reason) | IssueState::StalledUntil(reason, _) => {
                self.stats.stalls[reason as usize] += to - from;
            }
        }
    }

    /// Advances the front end one cycle, issuing at most one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Trap`] if the issued instruction is
    /// architecturally illegal (out-of-bounds scratchpad range, zero
    /// vector length, misaligned register address…). The trap carries
    /// this PE's id and the offending pc; architectural state is left as
    /// the reference interpreter leaves it at the same trap.
    pub fn tick(&mut self, now: Cycle) -> Result<(), SimError> {
        if self.halted {
            return Ok(());
        }
        self.stats.active_cycles = now;
        if self.frozen {
            return Ok(());
        }
        match self.issue_state(now) {
            IssueState::Ready => {}
            IssueState::Stalled(reason) | IssueState::StalledUntil(reason, _) => {
                self.stall(reason);
                return Ok(());
            }
        }
        let Some(inst) = self.program.get(self.pc).copied() else {
            // Fell off the end of the program: treat as halt.
            self.halted = true;
            return Ok(());
        };

        let issued_before = self.stats.instructions;
        let pc_before = self.pc;

        self.dispatch(now, inst).map_err(|trap| SimError::Trap {
            pe: self.id,
            pc: pc_before,
            trap,
        })?;

        if self.stats.instructions > issued_before {
            if let Some(trace) = &mut self.trace {
                if trace.len() < self.trace_limit {
                    trace.push(TraceEvent {
                        cycle: now,
                        pc: pc_before,
                        inst,
                    });
                }
            }
        }
        Ok(())
    }

    /// Executes one issuing instruction. Trap checks run in the same
    /// order as the `vip-ref` interpreter so both report the same trap
    /// for the same program.
    fn dispatch(&mut self, now: Cycle, inst: Instruction) -> Result<(), Trap> {
        use Instruction::*;
        match inst {
            SetVl { rs } => {
                self.vec.set_vl(self.regs.read(rs) as usize)?;
                self.stats.work_units += 1;
                self.retire_vector();
            }
            SetMr { rs } => {
                self.vec.set_mr(self.regs.read(rs) as usize)?;
                self.stats.work_units += 1;
                self.retire_vector();
            }
            VDrain => self.retire_front_end(),
            MatVec {
                vop,
                hop,
                ty,
                rd,
                rs_mat,
                rs_vec,
            } => {
                self.issue_mat_vec(now, vop, hop, ty, rd, rs_mat, rs_vec)?;
            }
            VecVec {
                op,
                ty,
                rd,
                rs1,
                rs2,
            } => {
                self.issue_vec_vec(now, op, ty, rd, rs1, rs2)?;
            }
            VecScalar {
                op,
                ty,
                rd,
                rs_vec,
                rs_scalar,
            } => {
                self.issue_vec_scalar(now, op, ty, rd, rs_vec, rs_scalar)?;
            }
            Scalar { op, rd, rs1, rs2 } => {
                let v = op.eval(self.regs.read(rs1), self.regs.read(rs2));
                self.scalar_writeback(rd, v);
                self.retire_scalar();
            }
            ScalarImm { op, rd, rs1, imm } => {
                let v = op.eval(self.regs.read(rs1), imm as i64 as u64);
                self.scalar_writeback(rd, v);
                self.retire_scalar();
            }
            Mov { rd, rs } => {
                let v = self.regs.read(rs);
                self.scalar_writeback(rd, v);
                self.retire_scalar();
            }
            MovImm { rd, imm } => {
                self.scalar_writeback(rd, imm as u64);
                self.retire_scalar();
            }
            Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                let taken = cond.eval(self.regs.read(rs1), self.regs.read(rs2));
                self.stats.instructions += 1;
                self.stats.scalar_instructions += 1;
                self.stats.work_units += if taken { 1 + self.branch_penalty } else { 1 };
                if taken {
                    self.pc = target as usize;
                    self.stall_until = now + 1 + self.branch_penalty;
                } else {
                    self.pc += 1;
                }
            }
            Jmp { target } => {
                self.stats.instructions += 1;
                self.stats.scalar_instructions += 1;
                self.stats.work_units += 1 + self.branch_penalty;
                self.pc = target as usize;
                self.stall_until = now + 1 + self.branch_penalty;
            }
            LdSram {
                ty,
                rd_sp,
                rs_addr,
                rs_len,
            } => {
                self.issue_ld_sram(ty, rd_sp, rs_addr, rs_len)?;
            }
            StSram {
                ty,
                rs_sp,
                rs_addr,
                rs_len,
            } => {
                self.issue_st_sram(ty, rs_sp, rs_addr, rs_len)?;
            }
            LdReg { rd, rs_addr } => self.issue_ld_reg(rd, rs_addr, false)?,
            LdRegFe { rd, rs_addr } => self.issue_ld_reg(rd, rs_addr, true)?,
            StReg { rs, rs_addr } => self.issue_st_reg(rs, rs_addr, false)?,
            StRegFf { rs, rs_addr } => self.issue_st_reg(rs, rs_addr, true)?,
            MemFence | Nop => self.retire_front_end(),
            Halt => {
                self.stats.instructions += 1;
                self.stats.work_units += 1;
                self.halted = true;
            }
        }
        Ok(())
    }

    /// Writes a scalar result, possibly flipping one bit if the PE
    /// writeback injector fires at this (pe, retired-count) coordinate.
    /// The register file has no ECC — this is the one injector with no
    /// graceful-degradation net under it.
    fn scalar_writeback(&mut self, rd: Reg, v: u64) {
        let v = match self.faults {
            Some(f)
                if fault_fires(
                    f.seed,
                    FaultDomain::PeWriteback,
                    self.id as u64,
                    self.stats.instructions,
                    f.writeback_flip_ppm,
                ) =>
            {
                self.stats.writeback_flips += 1;
                let bit = fault_value(
                    f.seed,
                    FaultDomain::PeWriteback,
                    self.id as u64,
                    self.stats.instructions,
                ) % 64;
                v ^ 1u64 << bit
            }
            _ => v,
        };
        self.regs.write(rd, v);
    }

    fn retire_front_end(&mut self) {
        self.stats.instructions += 1;
        self.stats.work_units += 1;
        self.pc += 1;
    }

    fn retire_scalar(&mut self) {
        self.stats.instructions += 1;
        self.stats.scalar_instructions += 1;
        self.stats.work_units += 1;
        self.pc += 1;
    }

    // Vector retires charge their work (beats) at the issue site, so no
    // `work_units` bump here.
    fn retire_vector(&mut self) {
        self.stats.instructions += 1;
        self.stats.vector_instructions += 1;
        self.pc += 1;
    }

    fn retire_ldst(&mut self) {
        self.stats.instructions += 1;
        self.stats.ldst_instructions += 1;
        self.stats.work_units += 1;
        self.pc += 1;
    }

    fn lsq_has_room(&self) -> bool {
        self.lsu.outstanding() < 64
    }

    #[allow(clippy::too_many_arguments)]
    fn issue_mat_vec(
        &mut self,
        now: Cycle,
        vop: VerticalOp,
        hop: vip_isa::HorizontalOp,
        ty: ElemType,
        rd: Reg,
        rs_mat: Reg,
        rs_vec: Reg,
    ) -> Result<(), Trap> {
        debug_assert!(self.vec.ready(now));
        let (vl, mr) = (self.vec.vl(), self.vec.mr());
        let es = ty.size_bytes();
        let d = self.regs.read(rd) as usize;
        let m = self.regs.read(rs_mat) as usize;
        let v = self.regs.read(rs_vec) as usize;
        let (mat_len, vec_len, dst_len) = (mr * vl * es, vl * es, mr * es);
        // Source reads before the destination write: the reference
        // interpreter checks in this order, and trap parity requires it.
        let mat = self.sp.read(m, mat_len)?;
        let vec = self.sp.read(v, vec_len)?;
        let mut dst = vec![0u8; dst_len];
        alu::mat_vec(vop, hop, ty, &mut dst, &mat, &vec, mr, vl);
        self.sp.write(d, &dst)?;

        let beats = mr as u64 * VectorUnit::beats(vl, ty);
        let vert = if vop.is_multiply() {
            self.multiply_latency
        } else {
            1
        };
        self.vec.issue(now, beats, vert + self.reduce_latency);
        self.stats.lane_ops += 2 * (mr * vl) as u64; // vertical + horizontal
        if vop.is_multiply() {
            self.stats.lane_mul_ops += (mr * vl) as u64;
        }
        self.stats.sp_beats += 3 * beats; // 2 reads + result writeback
        self.stats.work_units += beats;
        self.retire_vector();
        Ok(())
    }

    fn issue_vec_vec(
        &mut self,
        now: Cycle,
        op: VerticalOp,
        ty: ElemType,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    ) -> Result<(), Trap> {
        debug_assert!(self.vec.ready(now));
        let vl = self.vec.vl();
        let len = vl * ty.size_bytes();
        let d = self.regs.read(rd) as usize;
        let a = self.regs.read(rs1) as usize;
        let b = self.regs.read(rs2) as usize;
        let av = self.sp.read(a, len)?;
        let bv = self.sp.read(b, len)?;
        let mut dst = vec![0u8; len];
        alu::vec_vec(op, ty, &mut dst, &av, &bv, vl);
        self.sp.write(d, &dst)?;

        let beats = VectorUnit::beats(vl, ty);
        let vert = if op.is_multiply() {
            self.multiply_latency
        } else {
            1
        };
        self.vec.issue(now, beats, vert);
        self.stats.lane_ops += vl as u64;
        if op.is_multiply() {
            self.stats.lane_mul_ops += vl as u64;
        }
        self.stats.sp_beats += 3 * beats;
        self.stats.work_units += beats;
        self.retire_vector();
        Ok(())
    }

    fn issue_vec_scalar(
        &mut self,
        now: Cycle,
        op: VerticalOp,
        ty: ElemType,
        rd: Reg,
        rs_vec: Reg,
        rs_scalar: Reg,
    ) -> Result<(), Trap> {
        debug_assert!(self.vec.ready(now));
        let vl = self.vec.vl();
        let len = vl * ty.size_bytes();
        let d = self.regs.read(rd) as usize;
        let a = self.regs.read(rs_vec) as usize;
        let s = self.regs.read(rs_scalar);
        let av = self.sp.read(a, len)?;
        let mut dst = vec![0u8; len];
        alu::vec_scalar(op, ty, &mut dst, &av, s, vl);
        self.sp.write(d, &dst)?;

        let beats = VectorUnit::beats(vl, ty);
        let vert = if op.is_multiply() {
            self.multiply_latency
        } else {
            1
        };
        self.vec.issue(now, beats, vert);
        self.stats.lane_ops += vl as u64;
        if op.is_multiply() {
            self.stats.lane_mul_ops += vl as u64;
        }
        self.stats.sp_beats += 2 * beats; // 1 read + writeback
        self.stats.work_units += beats;
        self.retire_vector();
        Ok(())
    }

    fn issue_ld_sram(
        &mut self,
        ty: ElemType,
        rd_sp: Reg,
        rs_addr: Reg,
        rs_len: Reg,
    ) -> Result<(), Trap> {
        let sp = self.regs.read(rd_sp) as usize;
        let dram = self.regs.read(rs_addr);
        let len = self.regs.read(rs_len) as usize * ty.size_bytes();
        // Range check before allocating the ARC entry so a trapping
        // instruction leaves no dangling range.
        Trap::check_sp_range(sp, len, self.sp.len())?;
        let arc_id = self
            .arc
            .insert(sp, len)
            .expect("issue_state checked for a free ARC entry");
        self.lsu.push_load_sram(dram, sp, len, arc_id);
        self.retire_ldst();
        Ok(())
    }

    fn issue_st_sram(
        &mut self,
        ty: ElemType,
        rs_sp: Reg,
        rs_addr: Reg,
        rs_len: Reg,
    ) -> Result<(), Trap> {
        let sp = self.regs.read(rs_sp) as usize;
        let dram = self.regs.read(rs_addr);
        let len = self.regs.read(rs_len) as usize * ty.size_bytes();
        let data = self.sp.read(sp, len)?;
        self.lsu.push_store_sram(dram, data);
        self.retire_ldst();
        Ok(())
    }

    fn issue_ld_reg(&mut self, rd: Reg, rs_addr: Reg, full_empty: bool) -> Result<(), Trap> {
        let dram = self.regs.read(rs_addr);
        self.lsu.push_load_reg(dram, rd, full_empty)?;
        self.regs.invalidate(rd);
        self.retire_ldst();
        Ok(())
    }

    fn issue_st_reg(&mut self, rs: Reg, rs_addr: Reg, full_empty: bool) -> Result<(), Trap> {
        let dram = self.regs.read(rs_addr);
        let value = self.regs.read(rs);
        self.lsu.push_store_reg(dram, value, full_empty)?;
        self.retire_ldst();
        Ok(())
    }

    /// Serializes the PE's architectural and microarchitectural state:
    /// the loaded program (as encoded instruction words), front-end
    /// position, register file with valid bits, scratchpad, ARC table,
    /// vector-unit timing, LSU outstanding-request sets, and statistics.
    ///
    /// Structural parameters (`id`, `vault`, latencies) come from config
    /// at rebuild time; the issue trace is a host debug facility and is
    /// not captured.
    pub fn save_state(&self, w: &mut Writer) {
        w.usize(self.program.as_slice().len());
        for inst in self.program.iter() {
            w.u64(inst.encode().expect("loaded instructions are encodable"));
        }
        w.usize(self.pc);
        w.bool(self.halted);
        self.regs.save(w);
        self.sp.save(w);
        self.arc.save(w);
        self.vec.save(w);
        self.lsu.save_state(w);
        w.u64(self.stall_until);
        self.stats.save(w);
        self.faults.save(w);
    }

    /// Restores state saved by [`save_state`](Self::save_state) onto a PE
    /// freshly built with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on decode failure, including instruction
    /// words that no longer decode.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        let len = r.usize()?;
        let mut insts = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            let word = r.u64()?;
            insts.push(
                Instruction::decode(word)
                    .map_err(|_| SnapError::Corrupt("undecodable instruction word"))?,
            );
        }
        self.program = Program::new(insts);
        self.prog_fp = vip_isa::program_fingerprint(&self.program);
        self.frozen = false;
        self.pc = r.usize()?;
        self.halted = r.bool()?;
        self.regs = ScalarRegs::restore(r)?;
        self.sp = Scratchpad::restore(r)?;
        self.arc = ArcTable::restore(r)?;
        self.vec = VectorUnit::restore(r)?;
        self.lsu.restore_state(r)?;
        self.stall_until = r.u64()?;
        self.stats = PeStats::restore(r)?;
        self.faults = Option::restore(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_isa::Asm;

    fn pe() -> Pe {
        Pe::new(0, 0, &SystemConfig::small_test())
    }

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// Runs the PE without any memory system (scalar/vector-only
    /// programs).
    fn run_local(pe: &mut Pe, max: u64) {
        for now in 1..=max {
            pe.tick(now).unwrap();
            if pe.is_halted() {
                return;
            }
        }
        panic!("PE did not halt in {max} cycles");
    }

    #[test]
    fn scalar_loop_computes() {
        let mut p = pe();
        let mut asm = Asm::new();
        // sum = 0; for i in 0..10 { sum += i }
        asm.mov_imm(r(1), 0) // i
            .mov_imm(r(2), 10)
            .mov_imm(r(3), 0) // sum
            .label("loop")
            .add(r(3), r(3), r(1))
            .addi(r(1), r(1), 1)
            .blt(r(1), r(2), "loop")
            .halt();
        p.load_program(&asm.assemble().unwrap());
        run_local(&mut p, 1000);
        assert_eq!(p.reg(r(3)), 45);
        assert!(p.stats().stalls_for(StallReason::BranchBubble) > 0);
    }

    #[test]
    fn vector_add_in_scratchpad() {
        let mut p = pe();
        // a at 0, b at 32, result at 64, vl=16 i16.
        for i in 0..16 {
            alu::write_lane(
                p.scratchpad_mut().slice_mut(0, 32).unwrap(),
                i,
                ElemType::I16,
                i as i64,
            );
            alu::write_lane(
                p.scratchpad_mut().slice_mut(32, 32).unwrap(),
                i,
                ElemType::I16,
                100,
            );
        }
        let mut asm = Asm::new();
        asm.mov_imm(r(1), 16)
            .set_vl(r(1))
            .mov_imm(r(2), 0)
            .mov_imm(r(3), 32)
            .mov_imm(r(4), 64)
            .vec_vec(VerticalOp::Add, ElemType::I16, r(4), r(2), r(3))
            .v_drain()
            .halt();
        p.load_program(&asm.assemble().unwrap());
        run_local(&mut p, 1000);
        for i in 0..16 {
            assert_eq!(
                alu::read_lane(p.scratchpad().slice(64, 32).unwrap(), i, ElemType::I16),
                100 + i as i64
            );
        }
        assert_eq!(p.stats().lane_ops, 16);
    }

    #[test]
    fn mat_vec_min_sum_matches_reference() {
        let mut p = pe();
        let ty = ElemType::I16;
        // 4x4 smoothness at 0, theta-hat at 128, result at 192.
        let smooth: Vec<i64> = (0..16).map(|i| (i % 5) as i64).collect();
        let theta: Vec<i64> = vec![3, 1, 4, 1];
        {
            let sp = p.scratchpad_mut();
            for (i, &v) in smooth.iter().enumerate() {
                alu::write_lane(sp.slice_mut(0, 32).unwrap(), i, ty, v);
            }
            for (i, &v) in theta.iter().enumerate() {
                alu::write_lane(sp.slice_mut(128, 8).unwrap(), i, ty, v);
            }
        }
        let mut asm = Asm::new();
        asm.mov_imm(r(1), 4)
            .set_vl(r(1))
            .set_mr(r(1))
            .mov_imm(r(2), 0) // matrix
            .mov_imm(r(3), 128) // vector
            .mov_imm(r(4), 192) // dst
            .mat_vec(
                VerticalOp::Add,
                vip_isa::HorizontalOp::Min,
                ty,
                r(4),
                r(2),
                r(3),
            )
            .v_drain()
            .halt();
        p.load_program(&asm.assemble().unwrap());
        run_local(&mut p, 1000);
        for row in 0..4 {
            let expect = (0..4)
                .map(|i| smooth[row * 4 + i] + theta[i])
                .min()
                .unwrap();
            assert_eq!(
                alu::read_lane(p.scratchpad().slice(192, 8).unwrap(), row, ty),
                expect,
                "row {row}"
            );
        }
        // 2 ops per matrix element: add + min.
        assert_eq!(p.stats().lane_ops, 32);
    }

    #[test]
    fn vector_busy_stalls_issue() {
        let mut p = pe();
        let mut asm = Asm::new();
        // vl = 512 i16 = 1 KiB = 128 beats: the second op must wait.
        asm.mov_imm(r(1), 512)
            .set_vl(r(1))
            .mov_imm(r(2), 0)
            .mov_imm(r(3), 1024)
            .mov_imm(r(4), 2048)
            .vec_vec(VerticalOp::Add, ElemType::I16, r(4), r(2), r(3))
            .vec_vec(VerticalOp::Add, ElemType::I16, r(4), r(2), r(3))
            .halt();
        p.load_program(&asm.assemble().unwrap());
        run_local(&mut p, 2000);
        assert!(
            p.stats().stalls_for(StallReason::VectorBusy) >= 127,
            "second vector op should wait out the first's 128 beats; stalled {}",
            p.stats().stalls_for(StallReason::VectorBusy)
        );
    }

    #[test]
    fn falls_off_end_halts() {
        let mut p = pe();
        let mut asm = Asm::new();
        asm.nop();
        p.load_program(&asm.assemble().unwrap());
        run_local(&mut p, 10);
        assert!(p.is_halted());
    }

    #[test]
    fn empty_program_is_halted() {
        let mut p = pe();
        p.load_program(&Program::default());
        assert!(p.is_halted());
    }

    #[test]
    fn out_of_bounds_vector_op_is_a_typed_error() {
        let mut p = pe();
        let mut asm = Asm::new();
        // vl = 4096 i16 = 8 KiB: twice the scratchpad.
        asm.mov_imm(r(1), 4096)
            .set_vl(r(1))
            .mov_imm(r(2), 0)
            .vec_vec(VerticalOp::Add, ElemType::I16, r(2), r(2), r(2))
            .halt();
        p.load_program(&asm.assemble().unwrap());
        let err = (1..100)
            .find_map(|now| p.tick(now).err())
            .expect("the vector op must trap");
        assert_eq!(
            err,
            SimError::Trap {
                pe: 0,
                pc: 3,
                trap: Trap::ScratchpadOutOfBounds {
                    addr: 0,
                    len: 8192,
                    capacity: 4096
                }
            }
        );
    }

    #[test]
    fn writeback_flips_fire_and_are_counted() {
        let program = {
            let mut asm = Asm::new();
            asm.mov_imm(r(1), 0);
            for _ in 0..64 {
                asm.addi(r(1), r(1), 1);
            }
            asm.halt();
            asm.assemble().unwrap()
        };
        let mut clean = pe();
        clean.load_program(&program);
        run_local(&mut clean, 1000);
        assert_eq!(clean.stats().writeback_flips, 0);

        let mut faulty = pe();
        faulty.set_faults(Some(PeFaultConfig {
            seed: 0xf11b,
            writeback_flip_ppm: vip_faults::PPM_SCALE as u32, // every writeback
        }));
        faulty.load_program(&program);
        run_local(&mut faulty, 1000);
        assert_eq!(
            faulty.stats().writeback_flips,
            65,
            "mov_imm + 64 addi writebacks all flip"
        );
        assert_ne!(faulty.reg(r(1)), clean.reg(r(1)), "corruption is visible");
    }

    use vip_isa::Program;
}

//! System configuration.

use vip_faults::{FaultConfig, PeFaultConfig};
use vip_mem::{AddressMapping, MemConfig, RowPolicy};
use vip_noc::TorusConfig;
use vip_snap::Fingerprint;

/// Configuration of a complete VIP system.
///
/// [`SystemConfig::vip`] is the paper's machine: 128 PEs, 4 per vault, 32
/// vaults, 4 KiB scratchpads. [`SystemConfig::small_test`] shrinks the
/// memory stack's refresh-heavy full configuration to something unit
/// tests can spin quickly (geometry is unchanged; only the torus and PE
/// parameters matter for small programs).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Memory-stack configuration (vault count comes from here).
    pub mem: MemConfig,
    /// Torus geometry (must cover `mem.vaults` routers).
    pub torus: TorusConfig,
    /// PEs per vault (§III: 4).
    pub pes_per_vault: usize,
    /// Scratchpad bytes per PE (§III-A: 4 KiB).
    pub scratchpad_bytes: usize,
    /// ARC entries per PE (§III-B: 20).
    pub arc_entries: usize,
    /// Maximum outstanding load-store requests per PE (§III-B: 64).
    pub lsq_entries: usize,
    /// Issue bubble on a taken branch (front-end refill).
    pub branch_penalty: u64,
    /// Extra completion latency of multiply beats (4-stage pipeline).
    pub multiply_latency: u64,
    /// Extra completion latency through the horizontal (reduction) unit.
    pub reduce_latency: u64,
    /// Latency of the PE ↔ local-vault star link, cycles.
    pub local_link_latency: u64,
    /// Host threads for the per-PE phase of [`System::step`]
    /// (simulation-host parallelism; no effect on simulated behaviour).
    /// `0` picks a count from the machine's available parallelism.
    ///
    /// [`System::step`]: crate::System::step
    pub step_shards: usize,
    /// PE fault injection (scalar writeback bit flips). `None` disables
    /// injection entirely; DRAM and NoC injection live in
    /// [`MemConfig::faults`] and [`TorusConfig::faults`] respectively —
    /// [`SystemConfig::with_faults`] wires all three from one
    /// [`FaultConfig`].
    pub pe_faults: Option<PeFaultConfig>,
}

impl SystemConfig {
    /// The paper's full machine: 32 vaults × 4 PEs on the Table III
    /// memory system and the 8×4 torus.
    #[must_use]
    pub fn vip() -> Self {
        SystemConfig {
            mem: MemConfig::baseline(),
            torus: TorusConfig::vip(),
            pes_per_vault: 4,
            scratchpad_bytes: 4096,
            arc_entries: 20,
            lsq_entries: 64,
            branch_penalty: 2,
            multiply_latency: 4,
            reduce_latency: 2,
            local_link_latency: 1,
            step_shards: 0,
            pe_faults: None,
        }
    }

    /// Wires a complete [`FaultConfig`] into every layer: DRAM retention
    /// faults into the memory configuration, link faults into the torus,
    /// and writeback flips into the PEs. A zero-rate config exercises the
    /// full injection machinery without ever firing — the determinism
    /// tests run exactly that.
    #[must_use]
    pub fn with_faults(mut self, faults: &FaultConfig) -> Self {
        self.mem.faults = faults.dram;
        self.torus.faults = faults.noc;
        self.pe_faults = faults.pe;
        self
    }

    /// The full machine with a different memory configuration (the
    /// Figure 5 sweeps).
    #[must_use]
    pub fn vip_with_mem(mem: MemConfig) -> Self {
        SystemConfig { mem, ..Self::vip() }
    }

    /// A single-vault (4-PE) system around the given memory preset —
    /// the independent-tile simulation vehicle (§V-A) and the serving
    /// layer's per-device configuration: same PE and timing parameters
    /// as the full machine, 1×1 torus.
    #[must_use]
    pub fn single_vault(mut mem: MemConfig) -> Self {
        mem.vaults = 1;
        SystemConfig {
            mem,
            torus: TorusConfig {
                width: 1,
                height: 1,
                ..TorusConfig::vip()
            },
            ..Self::vip()
        }
    }

    /// A single-vault, 4-PE configuration for unit tests and
    /// independent-tile simulations (§V-A): same PE and timing
    /// parameters, 1×1 torus.
    #[must_use]
    pub fn small_test() -> Self {
        Self::single_vault(MemConfig::baseline())
    }

    /// A reduced multi-vault configuration (`vaults` must be a power of
    /// two laid out on a `vaults`×1 torus) for cross-vault tests.
    #[must_use]
    pub fn test_vaults(vaults: usize) -> Self {
        assert!(vaults.is_power_of_two() && vaults <= 32);
        let mut mem = MemConfig::baseline();
        mem.vaults = vaults;
        SystemConfig {
            mem,
            torus: TorusConfig {
                width: vaults,
                height: 1,
                ..TorusConfig::vip()
            },
            ..Self::vip()
        }
    }

    /// Total PE count.
    #[must_use]
    pub fn total_pes(&self) -> usize {
        self.mem.vaults * self.pes_per_vault
    }

    /// Peak vector throughput in 16-bit operations per second (vertical +
    /// horizontal lanes across all PEs; §III: 1,280 GOp/s at 16 bit).
    #[must_use]
    pub fn peak_ops_16(&self) -> f64 {
        // 4 lanes per beat, x2 for the chained vertical+horizontal units.
        self.total_pes() as f64 * 4.0 * 2.0 * crate::CLOCK_HZ
    }

    /// Peak DRAM bandwidth in bytes per second.
    #[must_use]
    pub fn peak_bandwidth(&self) -> f64 {
        self.mem.peak_bytes_per_cycle() * crate::CLOCK_HZ
    }

    /// FNV-1a digest of every *structural* parameter — the machine shape
    /// a snapshot is only valid against. Excluded on purpose:
    /// `step_shards` (host parallelism, no simulated effect), all three
    /// fault configurations (runtime-settable via
    /// [`System::set_fault_config`](crate::System::set_fault_config) and
    /// serialized in the snapshot body instead), and `mem.name` (a debug
    /// label).
    ///
    /// A snapshot restores only onto a system whose fingerprint matches;
    /// [`System::restore_snapshot`](crate::System::restore_snapshot)
    /// rejects the rest with a typed error.
    #[must_use]
    pub fn snapshot_fingerprint(&self) -> u64 {
        let mut f = Fingerprint::new();
        let m = &self.mem;
        f.push_usize(m.vaults);
        f.push_usize(m.banks_per_vault);
        f.push_usize(m.rows_per_bank);
        f.push_usize(m.row_bytes);
        f.push_usize(m.col_bytes);
        f.push_u64(match m.policy {
            RowPolicy::OpenPage => 0,
            RowPolicy::ClosedPage => 1,
        });
        f.push_u64(match m.mapping {
            AddressMapping::VaultRowBankCol => 0,
            AddressMapping::LowInterleave => 1,
        });
        f.push_u64(m.timing.t_cl_ps);
        f.push_u64(m.timing.t_rcd_ps);
        f.push_u64(m.timing.t_rp_ps);
        f.push_u64(m.timing.t_ras_ps);
        f.push_u64(m.timing.t_wr_ps);
        f.push_u64(m.timing.t_ccd_ps);
        f.push_u64(m.timing.t_rfc_ps);
        f.push_u64(m.timing.t_refi_ps);
        f.push_usize(m.trans_queue_depth);
        f.push_u64(m.burst_cycles);
        f.push_usize(m.max_packet_bytes);
        f.push_usize(self.torus.width);
        f.push_usize(self.torus.height);
        f.push_u64(self.torus.hop_latency);
        f.push_usize(self.torus.flit_bytes);
        f.push_u64(self.torus.header_flits);
        f.push_usize(self.pes_per_vault);
        f.push_usize(self.scratchpad_bytes);
        f.push_usize(self.arc_entries);
        f.push_usize(self.lsq_entries);
        f.push_u64(self.branch_penalty);
        f.push_u64(self.multiply_latency);
        f.push_u64(self.reduce_latency);
        f.push_u64(self.local_link_latency);
        f.finish()
    }

    /// Checks internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the torus does not cover the vault count or the memory
    /// configuration is invalid.
    pub fn validate(&self) {
        self.mem.validate().expect("memory configuration");
        assert_eq!(
            self.torus.nodes(),
            self.mem.vaults,
            "torus has {} nodes but the stack has {} vaults",
            self.torus.nodes(),
            self.mem.vaults
        );
        assert!(self.pes_per_vault > 0);
        assert!(self.scratchpad_bytes.is_power_of_two());
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::vip()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vip_matches_paper_numbers() {
        let cfg = SystemConfig::vip();
        cfg.validate();
        assert_eq!(cfg.total_pes(), 128);
        // 1,280 GOp/s peak at 16-bit (footnote 2).
        assert!((cfg.peak_ops_16() / 1e9 - 1280.0).abs() < 1e-6);
        // 320 GB/s peak bandwidth.
        assert!((cfg.peak_bandwidth() / 1e9 - 320.0).abs() < 1e-6);
    }

    #[test]
    fn small_configs_validate() {
        SystemConfig::small_test().validate();
        SystemConfig::test_vaults(4).validate();
    }
}

//! The ARC — array range check (§III-B).

use vip_snap::{Reader, SnapError, Snapshot, Writer};

/// Identifier of an allocated ARC entry.
pub type ArcId = u32;

/// The associative array of scratchpad address ranges with outstanding
/// loads.
///
/// When an `ld.sram` issues, its destination range is entered here; any
/// subsequent instruction whose scratchpad operands overlap a live entry
/// stalls at issue until the load completes and clears the entry. The
/// table has 20 entries in VIP (more would not close timing at 0.8 ns);
/// a full table stalls further loads.
#[derive(Debug, Clone)]
pub struct ArcTable {
    entries: Vec<Option<(usize, usize)>>, // [start, end)
    next_id: ArcId,
    live: usize,
}

impl ArcTable {
    /// Creates a table with `capacity` entries.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        ArcTable {
            entries: vec![None; capacity],
            next_id: 0,
            live: 0,
        }
    }

    /// Number of live entries.
    #[must_use]
    pub fn live(&self) -> usize {
        self.live
    }

    /// Whether a new entry can be allocated.
    #[must_use]
    pub fn has_free_entry(&self) -> bool {
        self.live < self.entries.len()
    }

    /// Whether `[start, start+len)` overlaps any live entry. Zero-length
    /// ranges never overlap.
    #[must_use]
    pub fn overlaps(&self, start: usize, len: usize) -> bool {
        if len == 0 {
            return false;
        }
        let end = start + len;
        self.entries
            .iter()
            .flatten()
            .any(|&(s, e)| start < e && s < end)
    }

    /// Allocates an entry covering `[start, start+len)`, returning its
    /// id, or `None` if the table is full.
    pub fn insert(&mut self, start: usize, len: usize) -> Option<ArcId> {
        let slot = self.entries.iter().position(Option::is_none)?;
        self.entries[slot] = Some((start, start + len));
        self.live += 1;
        // Ids encode the slot so clearing is O(1); the generation in the
        // high bits guards against double-clear bugs in the simulator.
        let id = (self.next_id << 8) | slot as ArcId;
        self.next_id += 1;
        Some(id)
    }

    /// Clears the entry `id` (called when its load completes).
    ///
    /// # Panics
    ///
    /// Panics if the entry was already cleared (a simulator bug).
    pub fn clear(&mut self, id: ArcId) {
        let slot = (id & 0xff) as usize;
        assert!(
            self.entries[slot].is_some(),
            "ARC entry {id} already cleared"
        );
        self.entries[slot] = None;
        self.live -= 1;
    }
}

/// Slot occupancy must survive verbatim — ids encode slot indices, so a
/// restored table has to hand back the same ids the in-flight loads
/// recorded before the snapshot.
impl Snapshot for ArcTable {
    fn save(&self, w: &mut Writer) {
        self.entries.save(w);
        w.u32(self.next_id);
        w.usize(self.live);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let entries: Vec<Option<(usize, usize)>> = Vec::restore(r)?;
        let next_id = r.u32()?;
        let live = r.usize()?;
        if live != entries.iter().flatten().count() {
            return Err(SnapError::Corrupt("ARC live count mismatch"));
        }
        Ok(ArcTable {
            entries,
            next_id,
            live,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_semantics() {
        let mut arc = ArcTable::new(20);
        let id = arc.insert(100, 32).unwrap();
        assert!(arc.overlaps(100, 32));
        assert!(arc.overlaps(131, 1));
        assert!(!arc.overlaps(132, 10));
        assert!(!arc.overlaps(90, 10));
        assert!(arc.overlaps(90, 11));
        assert!(!arc.overlaps(0, 0), "zero-length never overlaps");
        arc.clear(id);
        assert!(!arc.overlaps(100, 32));
        assert_eq!(arc.live(), 0);
    }

    #[test]
    fn capacity_limit() {
        let mut arc = ArcTable::new(2);
        let a = arc.insert(0, 8).unwrap();
        let _b = arc.insert(8, 8).unwrap();
        assert!(!arc.has_free_entry());
        assert!(arc.insert(16, 8).is_none());
        arc.clear(a);
        assert!(arc.has_free_entry());
        assert!(arc.insert(16, 8).is_some());
    }

    #[test]
    #[should_panic(expected = "already cleared")]
    fn double_clear_panics() {
        let mut arc = ArcTable::new(2);
        let a = arc.insert(0, 8).unwrap();
        arc.clear(a);
        arc.clear(a);
    }
}

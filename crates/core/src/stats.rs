//! Simulation statistics and roofline accounting.

use vip_mem::MemStats;
use vip_noc::NocStats;
use vip_snap::{Reader, SnapError, Snapshot, Writer};

use crate::pe::StallReason;
use crate::Cycle;

/// Per-PE execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PeStats {
    /// Cycles before the PE halted.
    pub active_cycles: Cycle,
    /// Instructions issued, total.
    pub instructions: u64,
    /// Vector-group instructions issued.
    pub vector_instructions: u64,
    /// Scalar-group instructions issued.
    pub scalar_instructions: u64,
    /// Load-store-group instructions issued.
    pub ldst_instructions: u64,
    /// Vector-lane ALU operations performed (vertical + horizontal),
    /// the paper's performance metric (§VI-A).
    pub lane_ops: u64,
    /// The subset of [`lane_ops`](Self::lane_ops) that used the
    /// multiplier array (drives the CNN-vs-BP power difference, §VII).
    pub lane_mul_ops: u64,
    /// 64-bit scratchpad beats moved by the vector pipes (2R+1W per
    /// streamed beat) — an input to the energy model.
    pub sp_beats: u64,
    /// Issue-stall cycles by cause.
    pub stalls: [u64; StallReason::COUNT],
    /// Scalar-writeback bits flipped by the fault injector (zero unless
    /// injection is enabled; the register file has no ECC).
    pub writeback_flips: u64,
    /// Abstract work units retired — a lower bound on the cycles this
    /// PE's instruction stream must occupy (vector ops cost their beat
    /// count, taken branches their bubble, everything else one unit).
    /// The functional tier's timing extrapolation is calibrated in
    /// cycles per work unit.
    pub work_units: u64,
}

impl PeStats {
    /// Total issue-stall cycles.
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }

    /// Stall cycles attributed to `reason`.
    #[must_use]
    pub fn stalls_for(&self, reason: StallReason) -> u64 {
        self.stalls[reason as usize]
    }

    /// Accumulates another PE's counters.
    pub fn merge(&mut self, other: &PeStats) {
        self.active_cycles = self.active_cycles.max(other.active_cycles);
        self.instructions += other.instructions;
        self.vector_instructions += other.vector_instructions;
        self.scalar_instructions += other.scalar_instructions;
        self.ldst_instructions += other.ldst_instructions;
        self.lane_ops += other.lane_ops;
        self.lane_mul_ops += other.lane_mul_ops;
        self.sp_beats += other.sp_beats;
        for (a, b) in self.stalls.iter_mut().zip(other.stalls.iter()) {
            *a += b;
        }
        self.writeback_flips += other.writeback_flips;
        self.work_units += other.work_units;
    }
}

/// `instructions` doubles as the PE's fault-injection coordinate (the
/// writeback roll is keyed on it), so exact restoration is part of the
/// determinism contract.
impl Snapshot for PeStats {
    fn save(&self, w: &mut Writer) {
        w.u64(self.active_cycles);
        w.u64(self.instructions);
        w.u64(self.vector_instructions);
        w.u64(self.scalar_instructions);
        w.u64(self.ldst_instructions);
        w.u64(self.lane_ops);
        w.u64(self.lane_mul_ops);
        w.u64(self.sp_beats);
        self.stalls.save(w);
        w.u64(self.writeback_flips);
        w.u64(self.work_units);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(PeStats {
            active_cycles: r.u64()?,
            instructions: r.u64()?,
            vector_instructions: r.u64()?,
            scalar_instructions: r.u64()?,
            ldst_instructions: r.u64()?,
            lane_ops: r.u64()?,
            lane_mul_ops: r.u64()?,
            sp_beats: r.u64()?,
            stalls: <[u64; StallReason::COUNT]>::restore(r)?,
            writeback_flips: r.u64()?,
            work_units: r.u64()?,
        })
    }
}

/// Functional-tier accounting: how much of the run executed as cached
/// straight-line blocks versus under the cycle-accurate model. All
/// counters stay zero for the naive / fast-forward / sharded engines, so
/// cross-engine stats-equality tests are unaffected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FuncStats {
    /// Straight-line blocks decoded into the block cache.
    pub blocks_decoded: u64,
    /// Block executions served from the cache.
    pub block_cache_hits: u64,
    /// Block executions that had to decode first.
    pub block_cache_misses: u64,
    /// Instructions retired by the functional executor (the rest of
    /// `PeStats::instructions` retired under the cycle-accurate model).
    pub functional_instructions: u64,
    /// Cycles *estimated* for functional stretches (extrapolated from
    /// sampled cycle-accurate windows).
    pub functional_cycles: Cycle,
    /// Cycles actually simulated under the cycle-accurate model
    /// (timing windows plus drains).
    pub accurate_cycles: Cycle,
    /// Completed cycle-accurate sampling windows.
    pub windows: u64,
    /// Drains that hit their budget before the machine went idle and
    /// fell back to an extra accurate window.
    pub drain_retries: u64,
}

impl Snapshot for FuncStats {
    fn save(&self, w: &mut Writer) {
        w.u64(self.blocks_decoded);
        w.u64(self.block_cache_hits);
        w.u64(self.block_cache_misses);
        w.u64(self.functional_instructions);
        w.u64(self.functional_cycles);
        w.u64(self.accurate_cycles);
        w.u64(self.windows);
        w.u64(self.drain_retries);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(FuncStats {
            blocks_decoded: r.u64()?,
            block_cache_hits: r.u64()?,
            block_cache_misses: r.u64()?,
            functional_instructions: r.u64()?,
            functional_cycles: r.u64()?,
            accurate_cycles: r.u64()?,
            windows: r.u64()?,
            drain_retries: r.u64()?,
        })
    }
}

/// Serialized for the bench harness's completed-point records, so a
/// resumed sweep can reproduce finished rows without re-simulating.
impl Snapshot for SystemStats {
    fn save(&self, w: &mut Writer) {
        w.u64(self.cycles);
        self.pe.save(w);
        self.mem.save(w);
        self.noc.save(w);
        self.func.save(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(SystemStats {
            cycles: r.u64()?,
            pe: PeStats::restore(r)?,
            mem: MemStats::restore(r)?,
            noc: NocStats::restore(r)?,
            func: FuncStats::restore(r)?,
        })
    }
}

/// A point under the performance roofline (Figure 3): work done, bytes
/// moved, time taken.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RooflinePoint {
    /// 16-bit vector ALU operations performed.
    pub ops: u64,
    /// DRAM bytes moved (reads + writes, including scalar accesses).
    pub dram_bytes: u64,
    /// Elapsed cycles.
    pub cycles: Cycle,
}

impl RooflinePoint {
    /// Achieved performance in GOp/s.
    #[must_use]
    pub fn gops(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.ops as f64 / (self.cycles as f64 / crate::CLOCK_HZ) / 1e9
        }
    }

    /// Arithmetic intensity in operations per byte.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        if self.dram_bytes == 0 {
            f64::INFINITY
        } else {
            self.ops as f64 / self.dram_bytes as f64
        }
    }

    /// The roofline bound for this point's intensity given peak compute
    /// (GOp/s) and bandwidth (GB/s): `min(peak, ai × bw)`.
    #[must_use]
    pub fn roofline_bound(&self, peak_gops: f64, peak_gbs: f64) -> f64 {
        peak_gops.min(self.arithmetic_intensity() * peak_gbs)
    }
}

/// Whole-system statistics snapshot.
///
/// `PartialEq` so determinism tests can assert that two runs (e.g.
/// naive vs. fast-forward stepping) produced bit-identical counters.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemStats {
    /// Elapsed cycles.
    pub cycles: Cycle,
    /// Aggregated PE counters.
    pub pe: PeStats,
    /// Aggregated memory counters.
    pub mem: MemStats,
    /// Network counters.
    pub noc: NocStats,
    /// Functional-tier counters (all zero under the cycle-accurate
    /// engines).
    pub func: FuncStats,
}

impl SystemStats {
    /// The roofline point this run produced.
    #[must_use]
    pub fn roofline(&self) -> RooflinePoint {
        RooflinePoint {
            ops: self.pe.lane_ops,
            dram_bytes: self.mem.bytes_total(),
            cycles: self.cycles,
        }
    }

    /// Simulated wall-clock milliseconds.
    #[must_use]
    pub fn time_ms(&self) -> f64 {
        crate::cycles_to_ms(self.cycles)
    }

    /// Achieved DRAM bandwidth in GB/s.
    #[must_use]
    pub fn bandwidth_gbs(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mem.bytes_total() as f64 / (self.cycles as f64 / crate::CLOCK_HZ) / 1e9
        }
    }

    /// A human-readable multi-line summary (cycles, time, issue mix,
    /// roofline point, memory and network behaviour) for examples and
    /// debugging sessions.
    #[must_use]
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let p = self.roofline();
        let _ = writeln!(
            s,
            "cycles:        {} ({:.3} ms at 1.25 GHz)",
            self.cycles,
            self.time_ms()
        );
        let _ = writeln!(
            s,
            "instructions:  {} ({} vector, {} scalar, {} load-store)",
            self.pe.instructions,
            self.pe.vector_instructions,
            self.pe.scalar_instructions,
            self.pe.ldst_instructions
        );
        let _ = writeln!(
            s,
            "vector ops:    {} ({} on the multiplier array)",
            self.pe.lane_ops, self.pe.lane_mul_ops
        );
        let _ = writeln!(
            s,
            "roofline:      {:.2} Op/B at {:.1} GOp/s",
            p.arithmetic_intensity(),
            p.gops()
        );
        let _ = writeln!(
            s,
            "DRAM:          {:.2} MB moved, {:.1} GB/s, {:.0}% row hits, {} refreshes",
            self.mem.bytes_total() as f64 / 1e6,
            self.bandwidth_gbs(),
            self.mem.row_hit_rate() * 100.0,
            self.mem.refreshes
        );
        let _ = writeln!(
            s,
            "network:       {} packets, mean {:.1} hops, mean latency {:.1} cycles",
            self.noc.packets,
            self.noc.mean_hops(),
            self.noc.mean_latency()
        );
        let _ = writeln!(s, "issue stalls:  {} cycles total", self.pe.stall_cycles());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_math() {
        let p = RooflinePoint {
            ops: 1_250_000,
            dram_bytes: 125_000,
            cycles: 1_250_000,
        };
        // 1.25M ops in 1ms = 1.25 GOp/ms? No: 1.25e6 ops / (1e-3 s) = 1.25e9 op/s.
        assert!((p.gops() - 1.25).abs() < 1e-9);
        assert!((p.arithmetic_intensity() - 10.0).abs() < 1e-12);
        // Compute-bound at AI 10 with knee at 4.
        assert!((p.roofline_bound(1280.0, 320.0) - 1280.0).abs() < 1e-9);
        let memory_bound = RooflinePoint {
            ops: 100,
            dram_bytes: 1000,
            cycles: 1,
        };
        assert!((memory_bound.roofline_bound(1280.0, 320.0) - 32.0).abs() < 1e-9);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PeStats {
            instructions: 5,
            lane_ops: 10,
            active_cycles: 100,
            ..PeStats::default()
        };
        let b = PeStats {
            instructions: 3,
            lane_ops: 20,
            active_cycles: 50,
            ..PeStats::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 8);
        assert_eq!(a.lane_ops, 30);
        assert_eq!(a.active_cycles, 100, "active time is the max, not the sum");
    }

    #[test]
    fn summary_mentions_key_counters() {
        let stats = SystemStats {
            cycles: 1250,
            pe: PeStats {
                instructions: 10,
                lane_ops: 64,
                ..PeStats::default()
            },
            mem: vip_mem::MemStats::default(),
            noc: vip_noc::NocStats::default(),
            func: FuncStats::default(),
        };
        let s = stats.summary();
        assert!(s.contains("cycles:        1250"));
        assert!(s.contains("vector ops:    64"));
        assert!(s.contains("roofline:"));
    }

    #[test]
    fn infinite_intensity_without_traffic() {
        let p = RooflinePoint {
            ops: 10,
            dram_bytes: 0,
            cycles: 10,
        };
        assert!(p.arithmetic_intensity().is_infinite());
    }
}

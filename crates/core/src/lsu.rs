//! The load-store unit: splits scratchpad↔DRAM transfers into DRAM
//! columns and tracks up to 64 outstanding requests (§III-B).

use std::collections::{HashMap, VecDeque};

use vip_isa::{Reg, Trap};
use vip_mem::{MemRequest, MemResponse, ReqId, RequestKind};
use vip_snap::{Reader, SnapError, Snapshot, Writer};

use crate::arc::ArcId;
use crate::scalar::ScalarRegs;
use crate::scratchpad::Scratchpad;
use crate::ArcTable;

/// What an in-flight operation does when its responses arrive.
#[derive(Debug)]
enum OpKind {
    /// `ld.sram`: responses fill the scratchpad; clears an ARC entry on
    /// completion.
    LoadSram { arc_id: ArcId },
    /// `st.sram` / `st.reg` / `st.reg.ff`: data was snapshotted at issue;
    /// acks just drain.
    Store,
    /// `ld.reg` / `ld.reg.fe`: the response fills a scalar register and
    /// sets its valid bit.
    LoadReg { rd: Reg },
}

#[derive(Debug)]
struct Chunk {
    dram_addr: u64,
    sp_addr: usize,
    len: usize,
    data: Vec<u8>,
    kind: RequestKind,
}

#[derive(Debug)]
struct LsuOp {
    kind: OpKind,
    unsent: VecDeque<Chunk>,
    outstanding: usize,
}

/// Per-request bookkeeping for routing a response to its chunk.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    op: u64,
    sp_addr: usize,
    dram_addr: u64,
    kind: RequestKind,
}

/// A failure while applying a memory completion. The PE wraps these into
/// [`SimError`](crate::SimError) variants with its own id attached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsuError {
    /// The response matches no in-flight request — a routing bug in the
    /// system model, reported with the full outstanding set.
    Orphan {
        /// The orphaned response id.
        id: ReqId,
        /// Request ids actually in flight, sorted.
        outstanding: Vec<ReqId>,
    },
    /// The response carries data ECC flagged as uncorrectable.
    Poisoned {
        /// The poisoned DRAM address.
        addr: u64,
    },
}

/// The PE's load-store unit.
///
/// Accepts whole `ld.sram`/`st.sram`/`ld.reg`/`st.reg` operations from
/// the issue stage, splits them into HMC request packets (up to 128
/// bytes, never crossing a DRAM row), sends at most one request per
/// cycle (respecting the 64-outstanding limit), and applies responses —
/// writing scratchpad bytes, filling scalar registers, and clearing ARC
/// entries when a scratchpad load fully lands.
#[derive(Debug)]
pub struct LoadStoreUnit {
    pe_id: u64,
    capacity: usize,
    granule: usize,
    ops: HashMap<u64, LsuOp>,
    send_order: VecDeque<u64>,
    in_flight: HashMap<ReqId, InFlight>,
    next_op: u64,
    next_req: u64,
}

impl LoadStoreUnit {
    /// Creates the LSU for PE `pe_id` with `capacity` outstanding
    /// requests, splitting transfers at `granule`-byte windows (the
    /// stack's request packet size — 128 B for the HMC, less if rows
    /// are narrower).
    #[must_use]
    pub fn new(pe_id: usize, capacity: usize, granule: usize) -> Self {
        LoadStoreUnit {
            pe_id: pe_id as u64,
            capacity,
            granule,
            ops: HashMap::new(),
            send_order: VecDeque::new(),
            in_flight: HashMap::new(),
            next_op: 0,
            next_req: 0,
        }
    }

    /// Outstanding requests (sent, unanswered).
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether all accepted operations have fully completed (the
    /// `memfence` condition).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Full-empty words with requests still in flight, as
    /// `(address, is_load)` pairs sorted by address — the watchdog's view
    /// of what this PE is synchronizing on. An `fe.load` parked here is
    /// held at the vault until the word becomes full; if nothing ever
    /// fills it, this is the deadlock.
    #[must_use]
    pub fn fe_outstanding(&self) -> Vec<(u64, bool)> {
        let mut waits: Vec<(u64, bool)> = self
            .in_flight
            .values()
            .filter_map(|f| match f.kind {
                RequestKind::FeLoad => Some((f.dram_addr, true)),
                RequestKind::FeStore => Some((f.dram_addr, false)),
                RequestKind::Read | RequestKind::Write => None,
            })
            .collect();
        waits.sort_unstable();
        waits
    }

    /// Whether [`next_request`](Self::next_request) would emit something:
    /// a chunk is waiting and the outstanding limit has room. Used by the
    /// fast stepping engine to decide whether the owning PE has work next
    /// cycle.
    #[must_use]
    pub fn can_emit(&self) -> bool {
        !self.send_order.is_empty() && self.in_flight.len() < self.capacity
    }

    /// Splits `[addr, addr+len)` at request-granule windows.
    fn split(&self, addr: u64, len: usize) -> Vec<(u64, usize)> {
        let col = self.granule as u64;
        let mut chunks = Vec::new();
        let mut at = addr;
        let end = addr + len as u64;
        while at < end {
            let next_boundary = (at / col + 1) * col;
            let chunk_end = end.min(next_boundary);
            chunks.push((at, (chunk_end - at) as usize));
            at = chunk_end;
        }
        chunks
    }

    /// Accepts an `ld.sram`: DRAM `[dram, dram+len)` into scratchpad
    /// `[sp, sp+len)`, guarded by ARC entry `arc_id`.
    pub fn push_load_sram(&mut self, dram: u64, sp: usize, len: usize, arc_id: ArcId) {
        let unsent = self
            .split(dram, len)
            .into_iter()
            .scan(sp, |sp_at, (addr, clen)| {
                let chunk = Chunk {
                    dram_addr: addr,
                    sp_addr: *sp_at,
                    len: clen,
                    data: Vec::new(),
                    kind: RequestKind::Read,
                };
                *sp_at += clen;
                Some(chunk)
            })
            .collect();
        self.push_op(LsuOp {
            kind: OpKind::LoadSram { arc_id },
            unsent,
            outstanding: 0,
        });
    }

    /// Accepts an `st.sram` with the scratchpad bytes snapshotted at
    /// issue.
    pub fn push_store_sram(&mut self, dram: u64, data: Vec<u8>) {
        let mut offset = 0;
        let unsent = self
            .split(dram, data.len())
            .into_iter()
            .map(|(addr, clen)| {
                let chunk = Chunk {
                    dram_addr: addr,
                    sp_addr: 0,
                    len: clen,
                    data: data[offset..offset + clen].to_vec(),
                    kind: RequestKind::Write,
                };
                offset += clen;
                chunk
            })
            .collect();
        self.push_op(LsuOp {
            kind: OpKind::Store,
            unsent,
            outstanding: 0,
        });
    }

    /// Accepts an `ld.reg` (or `ld.reg.fe`): the caller has already
    /// cleared `rd`'s valid bit.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::MisalignedRegAccess`] if `dram` is not 8-byte
    /// aligned; the operation is not accepted.
    pub fn push_load_reg(&mut self, dram: u64, rd: Reg, full_empty: bool) -> Result<(), Trap> {
        Trap::check_reg_addr(dram)?;
        let kind = if full_empty {
            RequestKind::FeLoad
        } else {
            RequestKind::Read
        };
        let chunk = Chunk {
            dram_addr: dram,
            sp_addr: 0,
            len: 8,
            data: Vec::new(),
            kind,
        };
        self.push_op(LsuOp {
            kind: OpKind::LoadReg { rd },
            unsent: VecDeque::from([chunk]),
            outstanding: 0,
        });
        Ok(())
    }

    /// Accepts an `st.reg` (or `st.reg.ff`).
    ///
    /// # Errors
    ///
    /// Returns [`Trap::MisalignedRegAccess`] if `dram` is not 8-byte
    /// aligned; the operation is not accepted.
    pub fn push_store_reg(&mut self, dram: u64, value: u64, full_empty: bool) -> Result<(), Trap> {
        Trap::check_reg_addr(dram)?;
        let kind = if full_empty {
            RequestKind::FeStore
        } else {
            RequestKind::Write
        };
        let chunk = Chunk {
            dram_addr: dram,
            sp_addr: 0,
            len: 8,
            data: value.to_le_bytes().to_vec(),
            kind,
        };
        self.push_op(LsuOp {
            kind: OpKind::Store,
            unsent: VecDeque::from([chunk]),
            outstanding: 0,
        });
        Ok(())
    }

    fn push_op(&mut self, op: LsuOp) {
        let id = self.next_op;
        self.next_op += 1;
        self.ops.insert(id, op);
        self.send_order.push_back(id);
    }

    /// Emits the next request, if the outstanding limit allows and any
    /// chunk is waiting. Called at most once per cycle.
    pub fn next_request(&mut self) -> Option<MemRequest> {
        if self.in_flight.len() >= self.capacity {
            return None;
        }
        let &op_id = self.send_order.front()?;
        let op = self.ops.get_mut(&op_id).expect("queued op exists");
        let chunk = op.unsent.pop_front().expect("queued op has unsent chunks");
        if op.unsent.is_empty() {
            self.send_order.pop_front();
        }
        op.outstanding += 1;
        let id: ReqId = (self.pe_id << 32) | self.next_req;
        self.next_req = (self.next_req + 1) & 0xffff_ffff;
        self.in_flight.insert(
            id,
            InFlight {
                op: op_id,
                sp_addr: chunk.sp_addr,
                dram_addr: chunk.dram_addr,
                kind: chunk.kind,
            },
        );
        Some(match chunk.kind {
            RequestKind::Read => MemRequest::read(id, chunk.dram_addr, chunk.len),
            RequestKind::Write => MemRequest::write(id, chunk.dram_addr, chunk.data),
            RequestKind::FeLoad => MemRequest::fe_load(id, chunk.dram_addr),
            RequestKind::FeStore => MemRequest {
                id,
                kind: RequestKind::FeStore,
                addr: chunk.dram_addr,
                len: chunk.data.len(),
                data: chunk.data,
            },
        })
    }

    /// Applies a completion: fills scratchpad or register state and
    /// clears the ARC entry when a scratchpad load finishes.
    ///
    /// # Errors
    ///
    /// Returns [`LsuError::Orphan`] if the response matches no in-flight
    /// request (a routing bug in the system model, reported with the
    /// full outstanding set), or [`LsuError::Poisoned`] if the response
    /// carries data ECC flagged as uncorrectable — loads must not
    /// silently consume corrupt data.
    pub fn complete(
        &mut self,
        resp: &MemResponse,
        sp: &mut Scratchpad,
        regs: &mut ScalarRegs,
        arc: &mut ArcTable,
    ) -> Result<(), LsuError> {
        let Some(inflight) = self.in_flight.remove(&resp.id) else {
            let mut outstanding: Vec<ReqId> = self.in_flight.keys().copied().collect();
            outstanding.sort_unstable();
            return Err(LsuError::Orphan {
                id: resp.id,
                outstanding,
            });
        };
        let op = self.ops.get_mut(&inflight.op).expect("op exists");
        op.outstanding -= 1;
        match op.kind {
            OpKind::LoadSram { .. } | OpKind::LoadReg { .. } if resp.poisoned => {
                return Err(LsuError::Poisoned {
                    addr: inflight.dram_addr,
                });
            }
            OpKind::LoadSram { .. } => {
                sp.write(inflight.sp_addr, &resp.data)
                    .expect("scratchpad range validated at issue");
            }
            OpKind::LoadReg { rd } => {
                let value = u64::from_le_bytes(resp.data.as_slice().try_into().expect("8 bytes"));
                regs.write(rd, value);
            }
            OpKind::Store => {}
        }
        if op.outstanding == 0 && op.unsent.is_empty() {
            let op = self.ops.remove(&inflight.op).expect("op exists");
            if let OpKind::LoadSram { arc_id } = op.kind {
                arc.clear(arc_id);
            }
        }
        Ok(())
    }
}

impl Snapshot for OpKind {
    fn save(&self, w: &mut Writer) {
        match self {
            OpKind::LoadSram { arc_id } => {
                w.u8(0);
                w.u32(*arc_id);
            }
            OpKind::Store => w.u8(1),
            OpKind::LoadReg { rd } => {
                w.u8(2);
                w.u8(rd.index() as u8);
            }
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(OpKind::LoadSram { arc_id: r.u32()? }),
            1 => Ok(OpKind::Store),
            2 => Ok(OpKind::LoadReg {
                rd: Reg::new(r.u8()?),
            }),
            _ => Err(SnapError::Corrupt("LSU op kind tag")),
        }
    }
}

impl Snapshot for Chunk {
    fn save(&self, w: &mut Writer) {
        w.u64(self.dram_addr);
        w.usize(self.sp_addr);
        w.usize(self.len);
        w.bytes(&self.data);
        self.kind.save(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Chunk {
            dram_addr: r.u64()?,
            sp_addr: r.usize()?,
            len: r.usize()?,
            data: r.bytes()?.to_vec(),
            kind: RequestKind::restore(r)?,
        })
    }
}

impl Snapshot for LsuOp {
    fn save(&self, w: &mut Writer) {
        self.kind.save(w);
        self.unsent.save(w);
        w.usize(self.outstanding);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(LsuOp {
            kind: OpKind::restore(r)?,
            unsent: VecDeque::restore(r)?,
            outstanding: r.usize()?,
        })
    }
}

impl Snapshot for InFlight {
    fn save(&self, w: &mut Writer) {
        w.u64(self.op);
        w.usize(self.sp_addr);
        w.u64(self.dram_addr);
        self.kind.save(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(InFlight {
            op: r.u64()?,
            sp_addr: r.usize()?,
            dram_addr: r.u64()?,
            kind: RequestKind::restore(r)?,
        })
    }
}

impl LoadStoreUnit {
    /// Serializes the LSU's mutable state. `pe_id`/`capacity`/`granule`
    /// are structural (rebuilt from config) and not written. The two hash
    /// maps are emitted in sorted key order for canonical bytes; the
    /// maps' iteration order never feeds simulation behaviour, so sorted
    /// reload is exact.
    pub fn save_state(&self, w: &mut Writer) {
        let mut op_ids: Vec<u64> = self.ops.keys().copied().collect();
        op_ids.sort_unstable();
        w.usize(op_ids.len());
        for id in op_ids {
            w.u64(id);
            self.ops[&id].save(w);
        }
        self.send_order.save(w);
        let mut req_ids: Vec<ReqId> = self.in_flight.keys().copied().collect();
        req_ids.sort_unstable();
        w.usize(req_ids.len());
        for id in req_ids {
            w.u64(id);
            self.in_flight[&id].save(w);
        }
        w.u64(self.next_op);
        w.u64(self.next_req);
    }

    /// Restores state saved by [`save_state`](Self::save_state) onto an
    /// LSU freshly built with the same configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on decode failure.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), SnapError> {
        let ops = r.usize()?;
        self.ops = HashMap::with_capacity(ops.min(1024));
        for _ in 0..ops {
            let id = r.u64()?;
            self.ops.insert(id, LsuOp::restore(r)?);
        }
        self.send_order = VecDeque::restore(r)?;
        let in_flight = r.usize()?;
        self.in_flight = HashMap::with_capacity(in_flight.min(1024));
        for _ in 0..in_flight {
            let id = r.u64()?;
            self.in_flight.insert(id, InFlight::restore(r)?);
        }
        self.next_op = r.u64()?;
        self.next_req = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (LoadStoreUnit, Scratchpad, ScalarRegs, ArcTable) {
        (
            LoadStoreUnit::new(3, 64, 32),
            Scratchpad::new(4096),
            ScalarRegs::new(),
            ArcTable::new(20),
        )
    }

    #[test]
    fn split_respects_column_boundaries() {
        let lsu = LoadStoreUnit::new(0, 64, 32);
        assert_eq!(lsu.split(0, 64), vec![(0, 32), (32, 32)]);
        assert_eq!(lsu.split(16, 32), vec![(16, 16), (32, 16)]);
        assert_eq!(lsu.split(40, 8), vec![(40, 8)]);
        assert_eq!(lsu.split(30, 5), vec![(30, 2), (32, 3)]);
    }

    #[test]
    fn load_sram_fills_scratchpad_and_clears_arc() {
        let (mut lsu, mut sp, mut regs, mut arc) = fixture();
        let arc_id = arc.insert(100, 48).unwrap();
        lsu.push_load_sram(0x20, 100, 48, arc_id);

        let mut reqs = Vec::new();
        while let Some(r) = lsu.next_request() {
            reqs.push(r);
        }
        assert_eq!(reqs.len(), 2); // 0x20..0x40, 0x40..0x50
        assert_eq!(lsu.outstanding(), 2);

        for (i, req) in reqs.iter().enumerate() {
            let resp = MemResponse {
                id: req.id,
                kind: RequestKind::Read,
                addr: req.addr,
                data: vec![i as u8 + 1; req.len],
                poisoned: false,
            };
            lsu.complete(&resp, &mut sp, &mut regs, &mut arc).unwrap();
        }
        assert!(lsu.is_empty());
        assert_eq!(arc.live(), 0, "ARC entry cleared on completion");
        assert_eq!(sp.read(100, 32).unwrap(), vec![1; 32]);
        assert_eq!(sp.read(132, 16).unwrap(), vec![2; 16]);
    }

    #[test]
    fn load_reg_sets_valid_bit() {
        let (mut lsu, mut sp, mut regs, mut arc) = fixture();
        let rd = Reg::new(9);
        regs.invalidate(rd);
        lsu.push_load_reg(0x40, rd, false).unwrap();
        let req = lsu.next_request().unwrap();
        assert_eq!(req.len, 8);
        let resp = MemResponse {
            id: req.id,
            kind: RequestKind::Read,
            addr: req.addr,
            data: 777u64.to_le_bytes().to_vec(),
            poisoned: false,
        };
        lsu.complete(&resp, &mut sp, &mut regs, &mut arc).unwrap();
        assert!(regs.is_valid(rd));
        assert_eq!(regs.read(rd), 777);
    }

    #[test]
    fn outstanding_limit_throttles() {
        let mut lsu = LoadStoreUnit::new(0, 2, 32);
        lsu.push_store_sram(0, vec![0; 32 * 5]);
        assert!(lsu.next_request().is_some());
        assert!(lsu.next_request().is_some());
        assert!(lsu.next_request().is_none(), "capacity 2 reached");
    }

    #[test]
    fn requests_preserve_op_order() {
        let (mut lsu, ..) = fixture();
        lsu.push_store_reg(0, 1, false).unwrap();
        lsu.push_store_reg(8, 2, false).unwrap();
        let a = lsu.next_request().unwrap();
        let b = lsu.next_request().unwrap();
        assert_eq!(a.addr, 0);
        assert_eq!(b.addr, 8);
    }

    #[test]
    fn request_ids_encode_pe() {
        let (mut lsu, ..) = fixture();
        lsu.push_store_reg(0, 1, false).unwrap();
        let req = lsu.next_request().unwrap();
        assert_eq!(req.id >> 32, 3);
    }

    #[test]
    fn misaligned_reg_access_is_a_typed_trap() {
        let (mut lsu, ..) = fixture();
        assert_eq!(
            lsu.push_load_reg(0x41, Reg::new(1), false),
            Err(Trap::MisalignedRegAccess { addr: 0x41 })
        );
        assert_eq!(
            lsu.push_store_reg(0x43, 7, true),
            Err(Trap::MisalignedRegAccess { addr: 0x43 })
        );
        assert!(lsu.is_empty(), "rejected ops are not accepted");
    }

    #[test]
    fn orphan_response_names_the_outstanding_set() {
        let (mut lsu, mut sp, mut regs, mut arc) = fixture();
        lsu.push_store_reg(0, 1, false).unwrap();
        lsu.push_store_reg(8, 2, false).unwrap();
        let a = lsu.next_request().unwrap();
        let b = lsu.next_request().unwrap();
        let bogus = MemResponse {
            id: 0xdead,
            kind: RequestKind::Write,
            addr: 0,
            data: Vec::new(),
            poisoned: false,
        };
        let err = lsu.complete(&bogus, &mut sp, &mut regs, &mut arc);
        let mut expect = vec![a.id, b.id];
        expect.sort_unstable();
        assert_eq!(
            err,
            Err(LsuError::Orphan {
                id: 0xdead,
                outstanding: expect
            })
        );
        assert_eq!(lsu.outstanding(), 2, "real requests are untouched");
    }

    #[test]
    fn poisoned_load_is_a_typed_error() {
        let (mut lsu, mut sp, mut regs, mut arc) = fixture();
        regs.invalidate(Reg::new(5));
        lsu.push_load_reg(0x40, Reg::new(5), false).unwrap();
        let req = lsu.next_request().unwrap();
        let resp = MemResponse {
            id: req.id,
            kind: RequestKind::Read,
            addr: req.addr,
            data: vec![0; 8],
            poisoned: true,
        };
        assert_eq!(
            lsu.complete(&resp, &mut sp, &mut regs, &mut arc),
            Err(LsuError::Poisoned { addr: 0x40 })
        );
        assert!(!regs.is_valid(Reg::new(5)), "corrupt data never lands");
    }

    #[test]
    fn fe_outstanding_reports_waiting_words_sorted() {
        let (mut lsu, ..) = fixture();
        lsu.push_load_reg(0x80, Reg::new(1), true).unwrap();
        lsu.push_store_reg(0x40, 9, true).unwrap();
        lsu.push_load_reg(0x20, Reg::new(2), false).unwrap();
        assert!(lsu.fe_outstanding().is_empty(), "nothing sent yet");
        while lsu.next_request().is_some() {}
        assert_eq!(
            lsu.fe_outstanding(),
            vec![(0x40, false), (0x80, true)],
            "plain loads excluded, sorted by address"
        );
    }
}

//! The load-store unit: splits scratchpad↔DRAM transfers into DRAM
//! columns and tracks up to 64 outstanding requests (§III-B).

use std::collections::{HashMap, VecDeque};

use vip_isa::{Reg, Trap};
use vip_mem::{MemRequest, MemResponse, ReqId, RequestKind};

use crate::arc::ArcId;
use crate::scalar::ScalarRegs;
use crate::scratchpad::Scratchpad;
use crate::ArcTable;

/// What an in-flight operation does when its responses arrive.
#[derive(Debug)]
enum OpKind {
    /// `ld.sram`: responses fill the scratchpad; clears an ARC entry on
    /// completion.
    LoadSram { arc_id: ArcId },
    /// `st.sram` / `st.reg` / `st.reg.ff`: data was snapshotted at issue;
    /// acks just drain.
    Store,
    /// `ld.reg` / `ld.reg.fe`: the response fills a scalar register and
    /// sets its valid bit.
    LoadReg { rd: Reg },
}

#[derive(Debug)]
struct Chunk {
    dram_addr: u64,
    sp_addr: usize,
    len: usize,
    data: Vec<u8>,
    kind: RequestKind,
}

#[derive(Debug)]
struct LsuOp {
    kind: OpKind,
    unsent: VecDeque<Chunk>,
    outstanding: usize,
}

/// Per-request bookkeeping for routing a response to its chunk.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    op: u64,
    sp_addr: usize,
}

/// The PE's load-store unit.
///
/// Accepts whole `ld.sram`/`st.sram`/`ld.reg`/`st.reg` operations from
/// the issue stage, splits them into HMC request packets (up to 128
/// bytes, never crossing a DRAM row), sends at most one request per
/// cycle (respecting the 64-outstanding limit), and applies responses —
/// writing scratchpad bytes, filling scalar registers, and clearing ARC
/// entries when a scratchpad load fully lands.
#[derive(Debug)]
pub struct LoadStoreUnit {
    pe_id: u64,
    capacity: usize,
    granule: usize,
    ops: HashMap<u64, LsuOp>,
    send_order: VecDeque<u64>,
    in_flight: HashMap<ReqId, InFlight>,
    next_op: u64,
    next_req: u64,
}

impl LoadStoreUnit {
    /// Creates the LSU for PE `pe_id` with `capacity` outstanding
    /// requests, splitting transfers at `granule`-byte windows (the
    /// stack's request packet size — 128 B for the HMC, less if rows
    /// are narrower).
    #[must_use]
    pub fn new(pe_id: usize, capacity: usize, granule: usize) -> Self {
        LoadStoreUnit {
            pe_id: pe_id as u64,
            capacity,
            granule,
            ops: HashMap::new(),
            send_order: VecDeque::new(),
            in_flight: HashMap::new(),
            next_op: 0,
            next_req: 0,
        }
    }

    /// Outstanding requests (sent, unanswered).
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.in_flight.len()
    }

    /// Whether all accepted operations have fully completed (the
    /// `memfence` condition).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether [`next_request`](Self::next_request) would emit something:
    /// a chunk is waiting and the outstanding limit has room. Used by the
    /// fast stepping engine to decide whether the owning PE has work next
    /// cycle.
    #[must_use]
    pub fn can_emit(&self) -> bool {
        !self.send_order.is_empty() && self.in_flight.len() < self.capacity
    }

    /// Splits `[addr, addr+len)` at request-granule windows.
    fn split(&self, addr: u64, len: usize) -> Vec<(u64, usize)> {
        let col = self.granule as u64;
        let mut chunks = Vec::new();
        let mut at = addr;
        let end = addr + len as u64;
        while at < end {
            let next_boundary = (at / col + 1) * col;
            let chunk_end = end.min(next_boundary);
            chunks.push((at, (chunk_end - at) as usize));
            at = chunk_end;
        }
        chunks
    }

    /// Accepts an `ld.sram`: DRAM `[dram, dram+len)` into scratchpad
    /// `[sp, sp+len)`, guarded by ARC entry `arc_id`.
    pub fn push_load_sram(&mut self, dram: u64, sp: usize, len: usize, arc_id: ArcId) {
        let unsent = self
            .split(dram, len)
            .into_iter()
            .scan(sp, |sp_at, (addr, clen)| {
                let chunk = Chunk {
                    dram_addr: addr,
                    sp_addr: *sp_at,
                    len: clen,
                    data: Vec::new(),
                    kind: RequestKind::Read,
                };
                *sp_at += clen;
                Some(chunk)
            })
            .collect();
        self.push_op(LsuOp {
            kind: OpKind::LoadSram { arc_id },
            unsent,
            outstanding: 0,
        });
    }

    /// Accepts an `st.sram` with the scratchpad bytes snapshotted at
    /// issue.
    pub fn push_store_sram(&mut self, dram: u64, data: Vec<u8>) {
        let mut offset = 0;
        let unsent = self
            .split(dram, data.len())
            .into_iter()
            .map(|(addr, clen)| {
                let chunk = Chunk {
                    dram_addr: addr,
                    sp_addr: 0,
                    len: clen,
                    data: data[offset..offset + clen].to_vec(),
                    kind: RequestKind::Write,
                };
                offset += clen;
                chunk
            })
            .collect();
        self.push_op(LsuOp {
            kind: OpKind::Store,
            unsent,
            outstanding: 0,
        });
    }

    /// Accepts an `ld.reg` (or `ld.reg.fe`): the caller has already
    /// cleared `rd`'s valid bit.
    ///
    /// # Panics
    ///
    /// Panics if `dram` is not 8-byte aligned.
    pub fn push_load_reg(&mut self, dram: u64, rd: Reg, full_empty: bool) {
        if let Err(trap) = Trap::check_reg_addr(dram) {
            panic!("ld.reg: {trap}");
        }
        let kind = if full_empty {
            RequestKind::FeLoad
        } else {
            RequestKind::Read
        };
        let chunk = Chunk {
            dram_addr: dram,
            sp_addr: 0,
            len: 8,
            data: Vec::new(),
            kind,
        };
        self.push_op(LsuOp {
            kind: OpKind::LoadReg { rd },
            unsent: VecDeque::from([chunk]),
            outstanding: 0,
        });
    }

    /// Accepts an `st.reg` (or `st.reg.ff`).
    ///
    /// # Panics
    ///
    /// Panics if `dram` is not 8-byte aligned.
    pub fn push_store_reg(&mut self, dram: u64, value: u64, full_empty: bool) {
        if let Err(trap) = Trap::check_reg_addr(dram) {
            panic!("st.reg: {trap}");
        }
        let kind = if full_empty {
            RequestKind::FeStore
        } else {
            RequestKind::Write
        };
        let chunk = Chunk {
            dram_addr: dram,
            sp_addr: 0,
            len: 8,
            data: value.to_le_bytes().to_vec(),
            kind,
        };
        self.push_op(LsuOp {
            kind: OpKind::Store,
            unsent: VecDeque::from([chunk]),
            outstanding: 0,
        });
    }

    fn push_op(&mut self, op: LsuOp) {
        let id = self.next_op;
        self.next_op += 1;
        self.ops.insert(id, op);
        self.send_order.push_back(id);
    }

    /// Emits the next request, if the outstanding limit allows and any
    /// chunk is waiting. Called at most once per cycle.
    pub fn next_request(&mut self) -> Option<MemRequest> {
        if self.in_flight.len() >= self.capacity {
            return None;
        }
        let &op_id = self.send_order.front()?;
        let op = self.ops.get_mut(&op_id).expect("queued op exists");
        let chunk = op.unsent.pop_front().expect("queued op has unsent chunks");
        if op.unsent.is_empty() {
            self.send_order.pop_front();
        }
        op.outstanding += 1;
        let id: ReqId = (self.pe_id << 32) | self.next_req;
        self.next_req = (self.next_req + 1) & 0xffff_ffff;
        self.in_flight.insert(
            id,
            InFlight {
                op: op_id,
                sp_addr: chunk.sp_addr,
            },
        );
        Some(match chunk.kind {
            RequestKind::Read => MemRequest::read(id, chunk.dram_addr, chunk.len),
            RequestKind::Write => MemRequest::write(id, chunk.dram_addr, chunk.data),
            RequestKind::FeLoad => MemRequest::fe_load(id, chunk.dram_addr),
            RequestKind::FeStore => MemRequest {
                id,
                kind: RequestKind::FeStore,
                addr: chunk.dram_addr,
                len: chunk.data.len(),
                data: chunk.data,
            },
        })
    }

    /// Applies a completion: fills scratchpad or register state and
    /// clears the ARC entry when a scratchpad load finishes.
    ///
    /// # Panics
    ///
    /// Panics if the response does not match an in-flight request (a
    /// routing bug in the system model).
    pub fn complete(
        &mut self,
        resp: &MemResponse,
        sp: &mut Scratchpad,
        regs: &mut ScalarRegs,
        arc: &mut ArcTable,
    ) {
        let inflight = self
            .in_flight
            .remove(&resp.id)
            .unwrap_or_else(|| panic!("response {:#x} matches no in-flight request", resp.id));
        let op = self.ops.get_mut(&inflight.op).expect("op exists");
        op.outstanding -= 1;
        match op.kind {
            OpKind::LoadSram { .. } => {
                sp.write(inflight.sp_addr, &resp.data);
            }
            OpKind::LoadReg { rd } => {
                let value = u64::from_le_bytes(resp.data.as_slice().try_into().expect("8 bytes"));
                regs.write(rd, value);
            }
            OpKind::Store => {}
        }
        if op.outstanding == 0 && op.unsent.is_empty() {
            let op = self.ops.remove(&inflight.op).expect("op exists");
            if let OpKind::LoadSram { arc_id } = op.kind {
                arc.clear(arc_id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture() -> (LoadStoreUnit, Scratchpad, ScalarRegs, ArcTable) {
        (
            LoadStoreUnit::new(3, 64, 32),
            Scratchpad::new(4096),
            ScalarRegs::new(),
            ArcTable::new(20),
        )
    }

    #[test]
    fn split_respects_column_boundaries() {
        let lsu = LoadStoreUnit::new(0, 64, 32);
        assert_eq!(lsu.split(0, 64), vec![(0, 32), (32, 32)]);
        assert_eq!(lsu.split(16, 32), vec![(16, 16), (32, 16)]);
        assert_eq!(lsu.split(40, 8), vec![(40, 8)]);
        assert_eq!(lsu.split(30, 5), vec![(30, 2), (32, 3)]);
    }

    #[test]
    fn load_sram_fills_scratchpad_and_clears_arc() {
        let (mut lsu, mut sp, mut regs, mut arc) = fixture();
        let arc_id = arc.insert(100, 48).unwrap();
        lsu.push_load_sram(0x20, 100, 48, arc_id);

        let mut reqs = Vec::new();
        while let Some(r) = lsu.next_request() {
            reqs.push(r);
        }
        assert_eq!(reqs.len(), 2); // 0x20..0x40, 0x40..0x50
        assert_eq!(lsu.outstanding(), 2);

        for (i, req) in reqs.iter().enumerate() {
            let resp = MemResponse {
                id: req.id,
                kind: RequestKind::Read,
                addr: req.addr,
                data: vec![i as u8 + 1; req.len],
            };
            lsu.complete(&resp, &mut sp, &mut regs, &mut arc);
        }
        assert!(lsu.is_empty());
        assert_eq!(arc.live(), 0, "ARC entry cleared on completion");
        assert_eq!(sp.read(100, 32), vec![1; 32]);
        assert_eq!(sp.read(132, 16), vec![2; 16]);
    }

    #[test]
    fn load_reg_sets_valid_bit() {
        let (mut lsu, mut sp, mut regs, mut arc) = fixture();
        let rd = Reg::new(9);
        regs.invalidate(rd);
        lsu.push_load_reg(0x40, rd, false);
        let req = lsu.next_request().unwrap();
        assert_eq!(req.len, 8);
        let resp = MemResponse {
            id: req.id,
            kind: RequestKind::Read,
            addr: req.addr,
            data: 777u64.to_le_bytes().to_vec(),
        };
        lsu.complete(&resp, &mut sp, &mut regs, &mut arc);
        assert!(regs.is_valid(rd));
        assert_eq!(regs.read(rd), 777);
    }

    #[test]
    fn outstanding_limit_throttles() {
        let mut lsu = LoadStoreUnit::new(0, 2, 32);
        lsu.push_store_sram(0, vec![0; 32 * 5]);
        assert!(lsu.next_request().is_some());
        assert!(lsu.next_request().is_some());
        assert!(lsu.next_request().is_none(), "capacity 2 reached");
    }

    #[test]
    fn requests_preserve_op_order() {
        let (mut lsu, ..) = fixture();
        lsu.push_store_reg(0, 1, false);
        lsu.push_store_reg(8, 2, false);
        let a = lsu.next_request().unwrap();
        let b = lsu.next_request().unwrap();
        assert_eq!(a.addr, 0);
        assert_eq!(b.addr, 8);
    }

    #[test]
    fn request_ids_encode_pe() {
        let (mut lsu, ..) = fixture();
        lsu.push_store_reg(0, 1, false);
        let req = lsu.next_request().unwrap();
        assert_eq!(req.id >> 32, 3);
    }

    #[test]
    #[should_panic(expected = "not 8-byte aligned")]
    fn misaligned_reg_access_panics() {
        let (mut lsu, ..) = fixture();
        lsu.push_load_reg(0x41, Reg::new(1), false);
    }
}

//! Property-based differential tests: the cycle-level PE against simple
//! reference semantics — random scalar programs vs. a fold interpreter,
//! random vector operations vs. `vip_isa::alu`, and random load/store
//! sequences vs. a sequential shadow memory.

use proptest::prelude::*;
use vip_core::{System, SystemConfig};
use vip_isa::alu;
use vip_isa::{Asm, ElemType, HorizontalOp, Instruction, Program, Reg, ScalarAluOp, VerticalOp};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

const NREGS: u8 = 8;

#[derive(Debug, Clone)]
enum ScalarOp {
    Rr(ScalarAluOp, u8, u8, u8),
    Ri(ScalarAluOp, u8, u8, i32),
    Mov(u8, u8),
    MovImm(u8, i64),
}

fn scalar_op() -> impl Strategy<Value = ScalarOp> {
    let alu = proptest::sample::select(ScalarAluOp::all().to_vec());
    prop_oneof![
        (alu.clone(), 0..NREGS, 0..NREGS, 0..NREGS).prop_map(|(op, d, a, b)| ScalarOp::Rr(op, d, a, b)),
        (alu, 0..NREGS, 0..NREGS, -(1i32 << 23)..(1i32 << 23))
            .prop_map(|(op, d, a, i)| ScalarOp::Ri(op, d, a, i)),
        (0..NREGS, 0..NREGS).prop_map(|(d, a)| ScalarOp::Mov(d, a)),
        (0..NREGS, -(1i64 << 39)..(1i64 << 39)).prop_map(|(d, i)| ScalarOp::MovImm(d, i)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Straight-line scalar programs produce the same register file as a
    /// direct fold over `ScalarAluOp::eval`.
    #[test]
    fn scalar_programs_match_interpreter(
        ops in proptest::collection::vec(scalar_op(), 1..100),
        init in proptest::collection::vec(any::<u64>(), NREGS as usize),
    ) {
        // Reference interpreter.
        let mut regs = init.clone();
        for op in &ops {
            match *op {
                ScalarOp::Rr(op, d, a, b) => {
                    regs[d as usize] = op.eval(regs[a as usize], regs[b as usize]);
                }
                ScalarOp::Ri(op, d, a, i) => {
                    regs[d as usize] = op.eval(regs[a as usize], i as i64 as u64);
                }
                ScalarOp::Mov(d, a) => regs[d as usize] = regs[a as usize],
                ScalarOp::MovImm(d, i) => regs[d as usize] = i as u64,
            }
        }

        // Simulated PE.
        let mut insts: Vec<Instruction> = ops
            .iter()
            .map(|op| match *op {
                ScalarOp::Rr(op, d, a, b) =>
                    Instruction::Scalar { op, rd: r(d), rs1: r(a), rs2: r(b) },
                ScalarOp::Ri(op, d, a, imm) =>
                    Instruction::ScalarImm { op, rd: r(d), rs1: r(a), imm },
                ScalarOp::Mov(d, a) => Instruction::Mov { rd: r(d), rs: r(a) },
                ScalarOp::MovImm(d, imm) => Instruction::MovImm { rd: r(d), imm },
            })
            .collect();
        insts.push(Instruction::Halt);
        let mut sys = System::new(SystemConfig::small_test());
        sys.load_program(0, &Program::new(insts));
        for (i, v) in init.iter().enumerate() {
            sys.set_reg(0, r(i as u8), *v);
        }
        sys.run(100_000).expect("straight-line program halts");
        for i in 0..NREGS {
            prop_assert_eq!(sys.pe(0).reg(r(i)), regs[i as usize], "r{}", i);
        }
    }

    /// A random `v.v` operation on random scratchpad contents matches
    /// `alu::vec_vec` lane-for-lane, for every element width.
    #[test]
    fn vec_vec_matches_alu(
        op_idx in 0usize..5,
        ty_idx in 0usize..4,
        vl in 1usize..64,
        seed in any::<u64>(),
    ) {
        let op = [VerticalOp::Mul, VerticalOp::Add, VerticalOp::Sub, VerticalOp::Min, VerticalOp::Max][op_idx];
        let ty = ElemType::all()[ty_idx];
        let len = vl * ty.size_bytes();

        // Deterministic pseudo-random buffers.
        let mut state = seed | 1;
        let mut bytes = |n: usize| -> Vec<u8> {
            (0..n)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (state >> 33) as u8
                })
                .collect()
        };
        let a = bytes(len);
        let b = bytes(len);

        let mut sys = System::new(SystemConfig::small_test());
        {
            let pe = sys.pe_mut(0);
            pe.scratchpad_mut().write(0, &a);
            pe.scratchpad_mut().write(1024, &b);
        }
        let mut asm = Asm::new();
        asm.mov_imm(r(1), vl as i64)
            .set_vl(r(1))
            .mov_imm(r(2), 0)
            .mov_imm(r(3), 1024)
            .mov_imm(r(4), 2048)
            .vec_vec(op, ty, r(4), r(2), r(3))
            .v_drain()
            .halt();
        sys.load_program(0, &asm.assemble().unwrap());
        sys.run(100_000).expect("vector op completes");

        let mut expect = vec![0u8; len];
        alu::vec_vec(op, ty, &mut expect, &a, &b, vl);
        prop_assert_eq!(sys.pe(0).scratchpad().read(2048, len), expect);
    }

    /// A random `m.v` matches `alu::mat_vec`.
    #[test]
    fn mat_vec_matches_alu(
        vop_idx in 0usize..6,
        hop_idx in 0usize..3,
        mr in 1usize..8,
        vl in 1usize..32,
        seed in any::<u64>(),
    ) {
        let vop = VerticalOp::all()[vop_idx];
        let hop = HorizontalOp::all()[hop_idx];
        let ty = ElemType::I16;
        let (mat_len, vec_len, dst_len) = (mr * vl * 2, vl * 2, mr * 2);

        let mut state = seed | 1;
        let mut bytes = |n: usize| -> Vec<u8> {
            (0..n)
                .map(|_| {
                    state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    (state >> 33) as u8
                })
                .collect()
        };
        let mat = bytes(mat_len);
        let vec_ = bytes(vec_len);

        let mut sys = System::new(SystemConfig::small_test());
        {
            let pe = sys.pe_mut(0);
            pe.scratchpad_mut().write(0, &mat);
            pe.scratchpad_mut().write(2048, &vec_);
        }
        let mut asm = Asm::new();
        asm.mov_imm(r(1), vl as i64)
            .set_vl(r(1))
            .mov_imm(r(2), mr as i64)
            .set_mr(r(2))
            .mov_imm(r(3), 0)
            .mov_imm(r(4), 2048)
            .mov_imm(r(5), 3072)
            .mat_vec(vop, hop, ty, r(5), r(3), r(4))
            .v_drain()
            .halt();
        sys.load_program(0, &asm.assemble().unwrap());
        sys.run(100_000).expect("m.v completes");

        let mut expect = vec![0u8; dst_len];
        alu::mat_vec(vop, hop, ty, &mut expect, &mat, &vec_, mr, vl);
        prop_assert_eq!(sys.pe(0).scratchpad().read(3072, dst_len), expect);
    }

    /// Random interleavings of `ld.sram`/`st.sram` behave like a
    /// sequential shadow memory — the ARC plus the controller's
    /// overlap ordering make the asynchronous LSU look sequential.
    #[test]
    fn ldst_sequences_match_shadow(
        ops in proptest::collection::vec(
            (any::<bool>(), 0usize..96, 0usize..96, 1usize..33),
            1..40,
        ),
    ) {
        const SPAN: usize = 4096;
        let mut shadow_dram: Vec<u8> = (0..SPAN).map(|i| (i * 13 % 251) as u8).collect();
        let mut shadow_sp = vec![0u8; 4096];

        let mut sys = System::new(SystemConfig::small_test());
        sys.hmc_mut().host_write(0, &shadow_dram);
        let mut asm = Asm::new();
        asm.mov_imm(r(5), 0); // placeholder
        for (is_load, sp_slot, dram_slot, elems) in &ops {
            let sp = sp_slot * 32;
            let dram = dram_slot * 32;
            let len = *elems;
            asm.mov_imm(r(1), sp as i64)
                .mov_imm(r(2), dram as i64)
                .mov_imm(r(3), len as i64);
            if *is_load {
                asm.ld_sram(ElemType::I16, r(1), r(2), r(3));
                shadow_sp.copy_within(0..0, 0); // no-op, clarity
                let n = len * 2;
                let src = shadow_dram[dram..dram + n].to_vec();
                shadow_sp[sp..sp + n].copy_from_slice(&src);
            } else {
                asm.st_sram(ElemType::I16, r(1), r(2), r(3));
                let n = len * 2;
                let src = shadow_sp[sp..sp + n].to_vec();
                shadow_dram[dram..dram + n].copy_from_slice(&src);
            }
        }
        asm.memfence().halt();
        sys.load_program(0, &asm.assemble().unwrap());
        sys.run(5_000_000).expect("ld/st sequence completes");

        prop_assert_eq!(sys.hmc().host_read(0, SPAN), shadow_dram);
        prop_assert_eq!(sys.pe(0).scratchpad().read(0, 4096), shadow_sp);
    }
}

//! Seeded-random differential tests: the cycle-level PE against simple
//! reference semantics — random scalar programs vs. a fold interpreter,
//! random vector operations vs. `vip_isa::alu`, and random load/store
//! sequences vs. a sequential shadow memory. Each test sweeps a fixed
//! set of seeds through a SplitMix64 generator; failures print their
//! seed and re-run alone under `VIP_TEST_SEED`.

use vip_core::{System, SystemConfig};
use vip_isa::alu;
use vip_isa::{Asm, ElemType, HorizontalOp, Instruction, Program, Reg, ScalarAluOp, VerticalOp};
use vip_rng::{for_each_seed, SplitMix64};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

const NREGS: u8 = 8;

#[derive(Debug, Clone)]
enum ScalarOp {
    Rr(ScalarAluOp, u8, u8, u8),
    Ri(ScalarAluOp, u8, u8, i32),
    Mov(u8, u8),
    MovImm(u8, i64),
}

fn random_scalar_op(rng: &mut SplitMix64) -> ScalarOp {
    let ops = ScalarAluOp::all();
    let op = ops[rng.usize_in(0..ops.len())];
    let d = rng.below(u64::from(NREGS)) as u8;
    let a = rng.below(u64::from(NREGS)) as u8;
    match rng.below(4) {
        0 => ScalarOp::Rr(op, d, a, rng.below(u64::from(NREGS)) as u8),
        1 => ScalarOp::Ri(op, d, a, rng.i64_in(-(1 << 23)..(1 << 23)) as i32),
        2 => ScalarOp::Mov(d, a),
        _ => ScalarOp::MovImm(d, rng.i64_in(-(1i64 << 39)..(1i64 << 39))),
    }
}

/// Straight-line scalar programs produce the same register file as a
/// direct fold over `ScalarAluOp::eval`.
#[test]
fn scalar_programs_match_interpreter() {
    for_each_seed("scalar_programs_match_interpreter", 0x5ca1a0, 64, |seed| {
        let mut rng = SplitMix64::new(seed);
        let n = rng.usize_in(1..100);
        let ops: Vec<ScalarOp> = (0..n).map(|_| random_scalar_op(&mut rng)).collect();
        let init: Vec<u64> = (0..NREGS).map(|_| rng.next_u64()).collect();

        // Reference interpreter.
        let mut regs = init.clone();
        for op in &ops {
            match *op {
                ScalarOp::Rr(op, d, a, b) => {
                    regs[d as usize] = op.eval(regs[a as usize], regs[b as usize]);
                }
                ScalarOp::Ri(op, d, a, i) => {
                    regs[d as usize] = op.eval(regs[a as usize], i as i64 as u64);
                }
                ScalarOp::Mov(d, a) => regs[d as usize] = regs[a as usize],
                ScalarOp::MovImm(d, i) => regs[d as usize] = i as u64,
            }
        }

        // Simulated PE.
        let mut insts: Vec<Instruction> = ops
            .iter()
            .map(|op| match *op {
                ScalarOp::Rr(op, d, a, b) => Instruction::Scalar {
                    op,
                    rd: r(d),
                    rs1: r(a),
                    rs2: r(b),
                },
                ScalarOp::Ri(op, d, a, imm) => Instruction::ScalarImm {
                    op,
                    rd: r(d),
                    rs1: r(a),
                    imm,
                },
                ScalarOp::Mov(d, a) => Instruction::Mov { rd: r(d), rs: r(a) },
                ScalarOp::MovImm(d, imm) => Instruction::MovImm { rd: r(d), imm },
            })
            .collect();
        insts.push(Instruction::Halt);
        let mut sys = System::new(SystemConfig::small_test());
        sys.load_program(0, &Program::new(insts));
        for (i, v) in init.iter().enumerate() {
            sys.set_reg(0, r(i as u8), *v);
        }
        sys.run(100_000).expect("straight-line program halts");
        for i in 0..NREGS {
            assert_eq!(sys.pe(0).reg(r(i)), regs[i as usize], "r{i}");
        }
    });
}

/// A random `v.v` operation on random scratchpad contents matches
/// `alu::vec_vec` lane-for-lane, for every element width.
#[test]
fn vec_vec_matches_alu() {
    for_each_seed("vec_vec_matches_alu", 0xbeef, 64, |seed| {
        let mut rng = SplitMix64::new(seed);
        let op = [
            VerticalOp::Mul,
            VerticalOp::Add,
            VerticalOp::Sub,
            VerticalOp::Min,
            VerticalOp::Max,
        ][rng.usize_in(0..5)];
        let ty = ElemType::all()[rng.usize_in(0..4)];
        let vl = rng.usize_in(1..64);
        let len = vl * ty.size_bytes();
        let a = rng.bytes(len);
        let b = rng.bytes(len);

        let mut sys = System::new(SystemConfig::small_test());
        {
            let pe = sys.pe_mut(0);
            pe.scratchpad_mut().write(0, &a).unwrap();
            pe.scratchpad_mut().write(1024, &b).unwrap();
        }
        let mut asm = Asm::new();
        asm.mov_imm(r(1), vl as i64)
            .set_vl(r(1))
            .mov_imm(r(2), 0)
            .mov_imm(r(3), 1024)
            .mov_imm(r(4), 2048)
            .vec_vec(op, ty, r(4), r(2), r(3))
            .v_drain()
            .halt();
        sys.load_program(0, &asm.assemble().unwrap());
        sys.run(100_000).expect("vector op completes");

        let mut expect = vec![0u8; len];
        alu::vec_vec(op, ty, &mut expect, &a, &b, vl);
        assert_eq!(sys.pe(0).scratchpad().read(2048, len).unwrap(), expect);
    });
}

/// A random `m.v` matches `alu::mat_vec`.
#[test]
fn mat_vec_matches_alu() {
    for_each_seed("mat_vec_matches_alu", 0xa7, 64, |seed| {
        let mut rng = SplitMix64::new(seed);
        let vop = VerticalOp::all()[rng.usize_in(0..6)];
        let hop = HorizontalOp::all()[rng.usize_in(0..3)];
        let mr = rng.usize_in(1..8);
        let vl = rng.usize_in(1..32);
        let ty = ElemType::I16;
        let (mat_len, vec_len, dst_len) = (mr * vl * 2, vl * 2, mr * 2);
        let mat = rng.bytes(mat_len);
        let vec_ = rng.bytes(vec_len);

        let mut sys = System::new(SystemConfig::small_test());
        {
            let pe = sys.pe_mut(0);
            pe.scratchpad_mut().write(0, &mat).unwrap();
            pe.scratchpad_mut().write(2048, &vec_).unwrap();
        }
        let mut asm = Asm::new();
        asm.mov_imm(r(1), vl as i64)
            .set_vl(r(1))
            .mov_imm(r(2), mr as i64)
            .set_mr(r(2))
            .mov_imm(r(3), 0)
            .mov_imm(r(4), 2048)
            .mov_imm(r(5), 3072)
            .mat_vec(vop, hop, ty, r(5), r(3), r(4))
            .v_drain()
            .halt();
        sys.load_program(0, &asm.assemble().unwrap());
        sys.run(100_000).expect("m.v completes");

        let mut expect = vec![0u8; dst_len];
        alu::mat_vec(vop, hop, ty, &mut expect, &mat, &vec_, mr, vl);
        assert_eq!(sys.pe(0).scratchpad().read(3072, dst_len).unwrap(), expect);
    });
}

/// Random interleavings of `ld.sram`/`st.sram` behave like a
/// sequential shadow memory — the ARC plus the controller's
/// overlap ordering make the asynchronous LSU look sequential.
#[test]
fn ldst_sequences_match_shadow() {
    for_each_seed("ldst_sequences_match_shadow", 0x1d57, 24, |seed| {
        let mut rng = SplitMix64::new(seed);
        const SPAN: usize = 4096;
        let mut shadow_dram: Vec<u8> = (0..SPAN).map(|i| (i * 13 % 251) as u8).collect();
        let mut shadow_sp = vec![0u8; 4096];

        let mut sys = System::new(SystemConfig::small_test());
        sys.hmc_mut().host_write(0, &shadow_dram);
        let mut asm = Asm::new();
        asm.mov_imm(r(5), 0); // placeholder
        let n_ops = rng.usize_in(1..40);
        for _ in 0..n_ops {
            let is_load = rng.bool();
            let sp = rng.usize_in(0..96) * 32;
            let dram = rng.usize_in(0..96) * 32;
            let len = rng.usize_in(1..33);
            asm.mov_imm(r(1), sp as i64)
                .mov_imm(r(2), dram as i64)
                .mov_imm(r(3), len as i64);
            let n = len * 2;
            if is_load {
                asm.ld_sram(ElemType::I16, r(1), r(2), r(3));
                let src = shadow_dram[dram..dram + n].to_vec();
                shadow_sp[sp..sp + n].copy_from_slice(&src);
            } else {
                asm.st_sram(ElemType::I16, r(1), r(2), r(3));
                let src = shadow_sp[sp..sp + n].to_vec();
                shadow_dram[dram..dram + n].copy_from_slice(&src);
            }
        }
        asm.memfence().halt();
        sys.load_program(0, &asm.assemble().unwrap());
        sys.run(5_000_000).expect("ld/st sequence completes");

        assert_eq!(sys.hmc().host_read(0, SPAN), shadow_dram, "dram");
        assert_eq!(
            sys.pe(0).scratchpad().read(0, 4096).unwrap(),
            shadow_sp,
            "sp"
        );
    });
}

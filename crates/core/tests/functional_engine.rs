//! The two-tier functional engine's contract, checked directly:
//! bit-identical architectural state and retirement counters against
//! the cycle-accurate engines, identical typed errors for trapping
//! programs, full-empty handoffs and deadlock diagnosis, snapshot
//! interoperability, and a sanity bound on the extrapolated clock.

use vip_core::{FuncConfig, RunOutcome, SimError, System, SystemConfig};
use vip_isa::{Asm, ElemType, Program, Reg, VerticalOp};

fn r(i: u8) -> Reg {
    Reg::new(i)
}

/// A dense compute tile: stream a vector loop over the scratchpad with
/// a scalar counter, then store a result word to DRAM.
fn dense_loop(iters: i64) -> Program {
    let mut a = Asm::new();
    a.mov_imm(r(1), 16);
    a.set_vl(r(1));
    a.mov_imm(r(2), 0); // src a
    a.mov_imm(r(3), 64); // src b
    a.mov_imm(r(4), 128); // dst
    a.mov_imm(r(5), 0); // i
    a.mov_imm(r(6), iters);
    a.label("loop");
    a.vec_vec(VerticalOp::Add, ElemType::I16, r(4), r(2), r(3));
    a.vec_vec(VerticalOp::Mul, ElemType::I16, r(2), r(4), r(3));
    a.addi(r(5), r(5), 1);
    a.blt(r(5), r(6), "loop");
    a.mov_imm(r(7), 0x2000);
    a.st_reg(r(5), r(7));
    a.memfence();
    a.halt();
    a.assemble().unwrap()
}

fn seeded_system(program: &Program, pes: usize) -> System {
    let mut sys = System::new(SystemConfig::small_test());
    for pe in 0..pes {
        sys.load_program(pe, program);
        for i in 0..64u16 {
            let b = (i as u8).wrapping_mul(3).wrapping_add(pe as u8);
            sys.pe_mut(pe)
                .scratchpad_mut()
                .write(i as usize * 2, &[b, b ^ 0x5a])
                .unwrap();
        }
    }
    sys
}

#[test]
fn dense_loop_matches_accurate_state_and_counters() {
    let p = dense_loop(5_000);
    let mut accurate = seeded_system(&p, 2);
    let mut functional = seeded_system(&p, 2);
    accurate.run(4_000_000).unwrap();
    functional.run_functional(4_000_000).unwrap();

    for pe in 0..2 {
        assert_eq!(
            accurate.pe(pe).arch_state(),
            functional.pe(pe).arch_state(),
            "pe{pe} architectural state"
        );
    }
    assert_eq!(
        accurate.hmc().host_read_u64(0x2000),
        functional.hmc().host_read_u64(0x2000)
    );
    let a = accurate.stats();
    let f = functional.stats();
    assert_eq!(a.pe.instructions, f.pe.instructions);
    assert_eq!(a.pe.scalar_instructions, f.pe.scalar_instructions);
    assert_eq!(a.pe.vector_instructions, f.pe.vector_instructions);
    assert_eq!(a.pe.ldst_instructions, f.pe.ldst_instructions);
    assert_eq!(a.pe.lane_ops, f.pe.lane_ops);
    assert_eq!(a.pe.lane_mul_ops, f.pe.lane_mul_ops);
    assert_eq!(a.pe.sp_beats, f.pe.sp_beats);
    assert_eq!(a.pe.work_units, f.pe.work_units);

    // The functional tier actually engaged: blocks were decoded once
    // and re-dispatched from the cache, and most instructions retired
    // functionally.
    assert!(f.func.blocks_decoded > 0);
    assert!(f.func.block_cache_hits > f.func.block_cache_misses);
    assert!(f.func.functional_instructions > a.pe.instructions / 2);
    assert_eq!(a.func.functional_instructions, 0);
}

#[test]
fn cycle_estimate_tracks_the_accurate_clock() {
    let p = dense_loop(3_000);
    let mut accurate = seeded_system(&p, 4);
    let mut functional = seeded_system(&p, 4);
    let exact = accurate.run(40_000_000).unwrap();
    let est = functional.run_functional(40_000_000).unwrap();
    let err = (est as f64 - exact as f64).abs() / exact as f64;
    assert!(
        err < 0.15,
        "estimated clock {est} strays {:.1}% from the accurate {exact}",
        err * 100.0
    );
}

#[test]
fn trapping_programs_report_the_identical_error() {
    // An out-of-bounds scratchpad destination, a few instructions in.
    let mut a = Asm::new();
    a.mov_imm(r(1), 8192); // past the 4 KiB scratchpad
    a.mov_imm(r(2), 0x100);
    a.mov_imm(r(3), 4);
    a.ld_sram(ElemType::I16, r(1), r(2), r(3));
    a.halt();
    let p = a.assemble().unwrap();

    let run = |mode: u8| -> (SimError, u64) {
        let mut sys = System::new(SystemConfig::small_test());
        sys.load_program(0, &p);
        let err = match mode {
            0 => sys.run_naive(100_000),
            1 => sys.run(100_000),
            _ => sys.run_functional(100_000),
        }
        .unwrap_err();
        (err, sys.stats().pe.instructions)
    };
    let (naive_err, naive_insts) = run(0);
    let (fast_err, fast_insts) = run(1);
    let (func_err, func_insts) = run(2);
    assert!(
        matches!(naive_err, SimError::Trap { pe: 0, pc: 3, .. }),
        "{naive_err:?}"
    );
    assert_eq!(naive_err, fast_err);
    assert_eq!(naive_err, func_err);
    // The trapping instruction retires nothing in any tier.
    assert_eq!(naive_insts, fast_insts);
    assert_eq!(naive_insts, func_insts);
}

#[test]
fn full_empty_handoff_between_functional_pes() {
    let data = 0x3000u64;
    let ack = 0x3008u64;
    // A two-PE ping-pong: PE 1 publishes a counter and waits for the
    // consumer's acknowledgement before producing the next value, so
    // neither side ever has more than one handshake in flight (an
    // unthrottled producer would genuinely exhaust the vault queue
    // with parked full-empty retries — on every engine).
    let mut prod = Asm::new();
    prod.mov_imm(r(1), data as i64);
    prod.mov_imm(r(8), ack as i64);
    prod.mov_imm(r(2), 0); // i
    prod.mov_imm(r(3), 50);
    prod.mov_imm(r(4), 0); // echo checksum
    prod.label("loop");
    prod.st_reg_ff(r(2), r(1));
    prod.ld_reg_fe(r(9), r(8));
    prod.add(r(4), r(4), r(9)); // depend on the ack: throttles issue
    prod.addi(r(2), r(2), 1);
    prod.blt(r(2), r(3), "loop");
    prod.mov_imm(r(6), 0x4008);
    prod.st_reg(r(4), r(6));
    prod.memfence();
    prod.halt();
    let mut cons = Asm::new();
    cons.mov_imm(r(1), data as i64);
    cons.mov_imm(r(8), ack as i64);
    cons.mov_imm(r(4), 0); // sum
    cons.mov_imm(r(2), 0);
    cons.mov_imm(r(3), 50);
    cons.label("loop");
    cons.ld_reg_fe(r(5), r(1));
    cons.add(r(4), r(4), r(5)); // depend on the data word
    cons.st_reg_ff(r(5), r(8)); // echo it back as the ack
    cons.addi(r(2), r(2), 1);
    cons.blt(r(2), r(3), "loop");
    cons.mov_imm(r(6), 0x4000);
    cons.st_reg(r(4), r(6));
    cons.memfence();
    cons.halt();
    let (prod, cons) = (prod.assemble().unwrap(), cons.assemble().unwrap());

    let run = |functional: bool| -> (u64, u64) {
        let mut sys = System::new(SystemConfig::small_test());
        sys.load_program(0, &cons);
        sys.load_program(1, &prod);
        if functional {
            // Small windows force the handshake across the
            // functional/accurate boundary many times.
            sys.set_func_config(FuncConfig {
                warmup_cycles: 50,
                sample_cycles: 200,
                stretch_work: 1_000,
                quantum: 8,
                drain_cycles: 5_000,
            });
            sys.run_functional(4_000_000).unwrap();
        } else {
            sys.run(4_000_000).unwrap();
        }
        (
            sys.hmc().host_read_u64(0x4000),
            sys.hmc().host_read_u64(0x4008),
        )
    };
    let want = (0..50).sum::<u64>();
    assert_eq!(run(false), (want, want));
    assert_eq!(run(true), (want, want));
}

#[test]
fn functional_deadlock_is_diagnosed_as_a_hang() {
    // Dense work, then a load of a word nobody fills: the functional
    // tier reaches the blocked front-end op after calibration, detects
    // the no-progress round, and delegates to the cycle-accurate
    // engine — whose hang diagnosis must match a plain accurate run.
    let program = {
        let mut a = Asm::new();
        a.mov_imm(r(1), 16);
        a.set_vl(r(1));
        a.mov_imm(r(2), 0);
        a.mov_imm(r(3), 64);
        a.mov_imm(r(5), 0);
        a.mov_imm(r(6), 200);
        a.label("loop");
        a.vec_vec(VerticalOp::Add, ElemType::I16, r(3), r(2), r(3));
        a.addi(r(5), r(5), 1);
        a.blt(r(5), r(6), "loop");
        a.mov_imm(r(1), 0x5000);
        a.ld_reg_fe(r(2), r(1));
        a.halt();
        a.assemble().unwrap()
    };
    let hang = |functional: bool| {
        let mut sys = System::new(SystemConfig::small_test());
        sys.load_program(0, &program);
        let err = if functional {
            sys.set_func_config(FuncConfig {
                warmup_cycles: 10,
                sample_cycles: 50,
                stretch_work: 10_000,
                quantum: 64,
                drain_cycles: 2_000,
            });
            sys.run_functional(200_000).unwrap_err()
        } else {
            sys.run(200_000).unwrap_err()
        };
        match err {
            SimError::Hang(report) => report,
            other => panic!("expected a hang, got {other:?}"),
        }
    };
    let accurate = hang(false);
    let functional = hang(true);
    assert_eq!(functional.limit, 200_000);
    assert_eq!(functional.limit, accurate.limit);
    assert_eq!(functional.halted_pes, accurate.halted_pes);
    assert_eq!(functional.total_pes, accurate.total_pes);
    // `halt` retires even with the full-empty load still parked, so
    // the accurate diagnosis reports no *blocked* (unhalted) PE — the
    // functional tier must land on the identical shape.
    assert_eq!(functional.blocked, accurate.blocked);
}

#[test]
fn mid_run_functional_snapshot_resumes_under_any_engine() {
    let p = dense_loop(20_000);
    let mut reference = seeded_system(&p, 3);
    reference.run_naive(40_000_000).unwrap();

    let mut paused = seeded_system(&p, 3);
    match paused.run_functional_until(60_000, 40_000_000).unwrap() {
        RunOutcome::Paused(at) => assert!(at >= 60_000),
        RunOutcome::Quiesced(c) => panic!("quiesced at {c} before the pause"),
    }
    let image = paused.save_snapshot();

    for finish in 0..3u8 {
        let mut resumed = seeded_system(&p, 3);
        resumed.restore_snapshot(&image).unwrap();
        match finish {
            0 => resumed.run_functional(40_000_000).map(|_| ()).unwrap(),
            1 => resumed.run(40_000_000).map(|_| ()).unwrap(),
            _ => resumed.run_naive(40_000_000).map(|_| ()).unwrap(),
        }
        for pe in 0..3 {
            assert_eq!(
                reference.pe(pe).arch_state(),
                resumed.pe(pe).arch_state(),
                "engine {finish}, pe{pe} diverged after restoring a functional-tier snapshot"
            );
        }
        assert_eq!(
            reference.stats().pe.instructions,
            resumed.stats().pe.instructions,
            "engine {finish} retirement count"
        );
    }
}

#[test]
fn duty_cycle_knobs_do_not_change_results() {
    let p = dense_loop(600);
    let mut base = seeded_system(&p, 2);
    base.run_functional(4_000_000).unwrap();

    let mut tweaked = seeded_system(&p, 2);
    tweaked.set_func_config(FuncConfig {
        warmup_cycles: 100,
        sample_cycles: 500,
        stretch_work: 5_000,
        quantum: 64,
        drain_cycles: 2_000,
    });
    tweaked.run_functional(4_000_000).unwrap();

    for pe in 0..2 {
        assert_eq!(base.pe(pe).arch_state(), tweaked.pe(pe).arch_state());
    }
    assert_eq!(
        base.stats().pe.work_units,
        tweaked.stats().pe.work_units,
        "retired work is knob-independent"
    );
    assert!(tweaked.stats().func.windows > base.stats().func.windows);
}

#[test]
fn empty_and_instant_programs_quiesce() {
    let mut sys = System::new(SystemConfig::small_test());
    sys.load_program(0, &Asm::new().halt().assemble().unwrap());
    let at = sys.run_functional(10_000).unwrap();
    assert!(sys.pe(0).is_halted());
    assert!(at <= 10_000);
}

//! Focused behavioural tests of the system model: fences, hazards,
//! structural limits, deadlock detection, and address-mapping modes.

use vip_core::{SimError, StallReason, System, SystemConfig};
use vip_isa::{assemble, Asm, ElemType, Reg, VerticalOp};
use vip_mem::AddressMapping;

fn r(i: u8) -> Reg {
    Reg::new(i)
}

#[test]
fn memfence_orders_store_before_flag() {
    // Classic publication pattern on one PE: data store, fence, flag
    // store. The host must never observe flag set with stale data —
    // here we just verify both landed and the fence stalled issue.
    let mut sys = System::new(SystemConfig::small_test());
    let p = assemble(
        "st.reg r1, r2
         memfence
         st.reg r3, r4
         memfence
         halt",
    )
    .unwrap();
    sys.load_program(0, &p);
    sys.set_reg(0, r(1), 7);
    sys.set_reg(0, r(2), 0x100);
    sys.set_reg(0, r(3), 1);
    sys.set_reg(0, r(4), 0x200);
    sys.run(100_000).unwrap();
    assert_eq!(sys.hmc().host_read_u64(0x100), 7);
    assert_eq!(sys.hmc().host_read_u64(0x200), 1);
    assert!(sys.pe(0).stats().stalls_for(StallReason::Fence) > 0);
}

#[test]
fn arc_guards_vector_reads_of_inflight_loads() {
    // A v.v.add immediately consuming a just-issued ld.sram must stall
    // on the ARC, not read stale zeros.
    let mut sys = System::new(SystemConfig::small_test());
    sys.hmc_mut().host_write(0x40, &[5u8, 0, 6, 0, 7, 0, 8, 0]); // 4 i16
    let mut asm = Asm::new();
    asm.mov_imm(r(1), 4)
        .set_vl(r(1))
        .mov_imm(r(2), 0) // sp dst of load
        .mov_imm(r(3), 0x40)
        .mov_imm(r(4), 4)
        .ld_sram(ElemType::I16, r(2), r(3), r(4))
        .mov_imm(r(5), 64) // second operand region (zeros)
        .mov_imm(r(6), 128)
        .vec_vec(VerticalOp::Add, ElemType::I16, r(6), r(2), r(5))
        .v_drain()
        .halt();
    sys.load_program(0, &asm.assemble().unwrap());
    sys.run(100_000).unwrap();
    let out = sys.pe(0).scratchpad().read(128, 8).unwrap();
    assert_eq!(out, vec![5, 0, 6, 0, 7, 0, 8, 0]);
    assert!(
        sys.pe(0).stats().stalls_for(StallReason::ArcOverlap) > 0,
        "the vector op must have waited on the ARC"
    );
}

#[test]
fn arc_capacity_throttles_but_never_corrupts() {
    // Issue 30 small loads back-to-back: more than the 20 ARC entries.
    // Expect ArcFull stalls, and all data landing correctly.
    let mut sys = System::new(SystemConfig::small_test());
    for i in 0..30u64 {
        sys.hmc_mut().host_write_u64(0x1000 + i * 32, i + 1);
    }
    let mut asm = Asm::new();
    asm.mov_imm(r(1), 4); // 4 x i16 = one word
    for i in 0..30 {
        asm.mov_imm(r(2), i * 32) // sp
            .mov_imm(r(3), 0x1000 + i * 32)
            .ld_sram(ElemType::I16, r(2), r(3), r(1));
    }
    asm.memfence().halt();
    sys.load_program(0, &asm.assemble().unwrap());
    sys.run(200_000).unwrap();
    for i in 0..30usize {
        let bytes = sys.pe(0).scratchpad().read(i * 32, 8).unwrap();
        assert_eq!(u64::from_le_bytes(bytes.try_into().unwrap()), i as u64 + 1);
    }
    assert!(
        sys.pe(0).stats().stalls_for(StallReason::ArcFull) > 0,
        "30 outstanding loads must exhaust the 20-entry ARC"
    );
}

#[test]
fn unsatisfied_full_empty_load_hangs_with_a_diagnosis() {
    // A ld.reg.fe with no producer is a deadlock; run() reports it
    // as a structured hang diagnosis rather than spinning forever.
    let mut sys = System::new(SystemConfig::small_test());
    // The addi consumer keeps the PE un-halted at the fence of the
    // never-filled register.
    let p = assemble("ld.reg.fe r1, r2\naddi r1, r1, 1\nhalt").unwrap();
    sys.load_program(0, &p);
    sys.set_reg(0, r(2), 0x800);
    let err = sys.run(20_000).unwrap_err();
    let SimError::Hang(report) = &err else {
        panic!("expected a hang, got {err:?}");
    };
    assert_eq!(
        (report.limit, report.halted_pes, report.total_pes),
        (20_000, 3, 4)
    );
    // The watchdog names the blocked PE, its pc, and the exact
    // full-empty word it is parked on.
    assert_eq!(report.blocked.len(), 1);
    let blocked = &report.blocked[0];
    assert_eq!((blocked.pe, blocked.pc), (0, 1));
    assert_eq!(blocked.stall, Some(StallReason::ScalarOperand));
    assert_eq!(blocked.fe_waits, vec![(0x800, true)]);
    let text = err.to_string();
    assert!(text.contains("3/4 PEs halted"), "{text}");
    assert!(text.contains("fe.load at 0x800"), "{text}");
}

#[test]
fn taken_branches_pay_the_front_end_bubble() {
    let mut sys = System::new(SystemConfig::small_test());
    let p = assemble(
        "mov.imm r1, 0
         mov.imm r2, 100
         loop: addi r1, r1, 1
         blt r1, r2, loop
         halt",
    )
    .unwrap();
    sys.load_program(0, &p);
    let cycles = sys.run(100_000).unwrap();
    // 100 iterations x (2 instructions + branch penalty 2) + setup.
    let bubbles = sys.pe(0).stats().stalls_for(StallReason::BranchBubble);
    assert_eq!(bubbles, 99 * 2, "99 taken branches x 2-cycle bubble");
    assert!(cycles >= 100 * 2 + bubbles);
}

#[test]
fn low_interleave_mapping_still_computes_correctly() {
    // Switch to the HMC-default low-order interleave: a 4-vault system
    // where consecutive columns rotate vaults. The same program must
    // produce the same results; only the traffic pattern changes.
    let mut cfg = SystemConfig::test_vaults(4);
    cfg.mem.mapping = AddressMapping::LowInterleave;
    let mut sys = System::new(cfg);
    // Write a 256-byte pattern via st.sram from a preloaded scratchpad.
    let data: Vec<u8> = (0..=255).collect();
    sys.pe_mut(0).scratchpad_mut().write(0, &data).unwrap();
    let mut asm = Asm::new();
    asm.mov_imm(r(1), 0)
        .mov_imm(r(2), 0x40) // deliberately unaligned to columns? keep aligned
        .mov_imm(r(3), 128) // 128 i16 = 256 B spanning several vaults
        .st_sram(ElemType::I16, r(1), r(2), r(3))
        .memfence()
        .mov_imm(r(4), 1024)
        .ld_sram(ElemType::I16, r(4), r(2), r(3))
        .memfence()
        .halt();
    sys.load_program(0, &asm.assemble().unwrap());
    sys.run(500_000).unwrap();
    assert_eq!(sys.pe(0).scratchpad().read(1024, 256).unwrap(), data);
    // The interleave really spread the traffic: several vaults saw work.
    let busy_vaults = (0..4)
        .filter(|&v| sys.hmc().vault_stats(v).transactions() > 0)
        .count();
    assert_eq!(
        busy_vaults, 4,
        "low interleave spreads 256 B over all vaults"
    );
}

#[test]
fn scalar_operand_stall_on_inflight_ld_reg() {
    // An add consuming an ld.reg result must wait for the valid bit.
    let mut sys = System::new(SystemConfig::small_test());
    sys.hmc_mut().host_write_u64(0x100, 41);
    let p = assemble(
        "ld.reg r1, r2
         addi r1, r1, 1
         halt",
    )
    .unwrap();
    sys.load_program(0, &p);
    sys.set_reg(0, r(2), 0x100);
    sys.run(100_000).unwrap();
    assert_eq!(sys.pe(0).reg(r(1)), 42);
    assert!(sys.pe(0).stats().stalls_for(StallReason::ScalarOperand) > 0);
}

#[test]
fn stats_report_issue_mix() {
    let mut sys = System::new(SystemConfig::small_test());
    let mut asm = Asm::new();
    asm.mov_imm(r(1), 8)
        .set_vl(r(1))
        .mov_imm(r(2), 0)
        .mov_imm(r(3), 64)
        .mov_imm(r(4), 128)
        .vec_vec(VerticalOp::Add, ElemType::I16, r(4), r(2), r(3))
        .mov_imm(r(5), 0x100)
        .st_sram(ElemType::I16, r(4), r(5), r(1))
        .memfence()
        .halt();
    sys.load_program(0, &asm.assemble().unwrap());
    sys.run(100_000).unwrap();
    let s = sys.stats();
    assert_eq!(s.pe.vector_instructions, 2); // set.vl + v.v.add
    assert_eq!(s.pe.ldst_instructions, 1);
    assert!(s.pe.scalar_instructions >= 5);
    assert_eq!(s.pe.lane_ops, 8);
    assert_eq!(s.mem.bytes_written, 16);
}

#[test]
fn maximum_size_program_loads_and_runs() {
    // Exactly 1,024 instructions: 1,023 nops + halt.
    let mut asm = Asm::new();
    for _ in 0..1023 {
        asm.nop();
    }
    asm.halt();
    let p = asm.assemble().unwrap();
    assert_eq!(p.len(), 1024);
    let mut sys = System::new(SystemConfig::small_test());
    sys.load_program(0, &p);
    let cycles = sys.run(10_000).unwrap();
    assert!(cycles >= 1024);
}

#[test]
fn instruction_trace_records_issues_in_order() {
    let mut sys = System::new(SystemConfig::small_test());
    sys.pe_mut(0).enable_trace(100);
    let p = assemble(
        "mov.imm r1, 1
         mov.imm r2, 3
         loop: addi r1, r1, 1
         blt r1, r2, loop
         halt",
    )
    .unwrap();
    sys.load_program(0, &p);
    sys.run(10_000).unwrap();
    let trace = sys.pe(0).trace();
    // 2 movs + 2x(addi + blt) + halt = 7 issued instructions.
    assert_eq!(trace.len(), 7);
    assert_eq!(trace[0].pc, 0);
    assert_eq!(trace[2].pc, 2, "first loop body");
    assert_eq!(trace[4].pc, 2, "second loop body");
    assert!(
        trace.windows(2).all(|w| w[0].cycle < w[1].cycle),
        "cycles increase"
    );
    assert!(matches!(trace[6].inst, vip_isa::Instruction::Halt));
}

#[test]
fn trace_respects_its_limit() {
    let mut sys = System::new(SystemConfig::small_test());
    sys.pe_mut(0).enable_trace(3);
    let p = assemble("nop\nnop\nnop\nnop\nnop\nhalt").unwrap();
    sys.load_program(0, &p);
    sys.run(10_000).unwrap();
    assert_eq!(sys.pe(0).trace().len(), 3);
}

#[test]
fn trace_is_empty_when_disabled() {
    let mut sys = System::new(SystemConfig::small_test());
    let p = assemble("nop\nhalt").unwrap();
    sys.load_program(0, &p);
    sys.run(10_000).unwrap();
    assert!(sys.pe(0).trace().is_empty());
}

//! Fixed-width 64-bit binary instruction encoding.
//!
//! Each PE holds its program in a 1,024-entry instruction buffer (§III-B);
//! this module defines the word format those entries use. The layout is
//!
//! ```text
//!  63      56 55      48 47      40 39      32 31      24 23         0
//! ┌──────────┬──────────┬──────────┬──────────┬──────────┬────────────┐
//! │  opcode  │  subop   │    rd    │   rs1    │   rs2    │ imm24      │
//! └──────────┴──────────┴──────────┴──────────┴──────────┴────────────┘
//! ```
//!
//! `subop` packs the vertical/horizontal operator and element type for
//! vector instructions (`vop << 4 | hop << 2 | ty`), the ALU operator for
//! scalar instructions, or the branch condition. `mov.imm` repurposes the
//! `rs1`/`rs2`/`imm24` fields as a 40-bit sign-extended immediate so that
//! full DRAM addresses can be materialized in one instruction.

use std::fmt;

use crate::inst::Instruction;
use crate::ops::{BranchCond, HorizontalOp, ScalarAluOp, VerticalOp};
use crate::types::{ElemType, Reg};

/// Error produced when an instruction's immediate does not fit its
/// encoding field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodeError {
    /// The instruction that failed to encode.
    pub instruction: String,
    /// The out-of-range immediate.
    pub imm: i64,
    /// Width of the destination field in bits.
    pub field_bits: u32,
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "immediate {} does not fit in {} bits for `{}`",
            self.imm, self.field_bits, self.instruction
        )
    }
}

impl std::error::Error for EncodeError {}

/// Error produced when decoding an instruction word fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u64,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode instruction word {:#018x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

mod opcode {
    pub const SET_VL: u8 = 0x01;
    pub const SET_MR: u8 = 0x02;
    pub const V_DRAIN: u8 = 0x03;
    pub const MAT_VEC: u8 = 0x04;
    pub const VEC_VEC: u8 = 0x05;
    pub const VEC_SCALAR: u8 = 0x06;
    pub const SCALAR: u8 = 0x10;
    pub const SCALAR_IMM: u8 = 0x11;
    pub const MOV: u8 = 0x12;
    pub const MOV_IMM: u8 = 0x13;
    pub const BRANCH: u8 = 0x14;
    pub const JMP: u8 = 0x15;
    pub const LD_SRAM: u8 = 0x20;
    pub const ST_SRAM: u8 = 0x21;
    pub const LD_REG: u8 = 0x22;
    pub const ST_REG: u8 = 0x23;
    pub const LD_REG_FE: u8 = 0x24;
    pub const ST_REG_FF: u8 = 0x25;
    pub const MEM_FENCE: u8 = 0x26;
    pub const NOP: u8 = 0x00;
    pub const HALT: u8 = 0xff;
}

fn pack(op: u8, sub: u8, rd: u8, rs1: u8, rs2: u8, imm24: u32) -> u64 {
    debug_assert!(imm24 < (1 << 24));
    (u64::from(op) << 56)
        | (u64::from(sub) << 48)
        | (u64::from(rd) << 40)
        | (u64::from(rs1) << 32)
        | (u64::from(rs2) << 24)
        | u64::from(imm24)
}

fn fits_signed(value: i64, bits: u32) -> bool {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    (min..=max).contains(&value)
}

fn vec_sub(vop: VerticalOp, hop: HorizontalOp, ty: ElemType) -> u8 {
    (vop.code() << 4) | (hop.code() << 2) | ty.code()
}

impl Instruction {
    /// Encodes the instruction into a 64-bit instruction-buffer word.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] if an immediate is too wide for its field
    /// (24 bits for `addi`-style immediates and branch targets, 40 bits for
    /// `mov.imm`).
    pub fn encode(&self) -> Result<u64, EncodeError> {
        use Instruction::*;
        let word = match *self {
            SetVl { rs } => pack(opcode::SET_VL, 0, 0, rs.index() as u8, 0, 0),
            SetMr { rs } => pack(opcode::SET_MR, 0, 0, rs.index() as u8, 0, 0),
            VDrain => pack(opcode::V_DRAIN, 0, 0, 0, 0, 0),
            MatVec {
                vop,
                hop,
                ty,
                rd,
                rs_mat,
                rs_vec,
            } => pack(
                opcode::MAT_VEC,
                vec_sub(vop, hop, ty),
                rd.index() as u8,
                rs_mat.index() as u8,
                rs_vec.index() as u8,
                0,
            ),
            VecVec {
                op,
                ty,
                rd,
                rs1,
                rs2,
            } => pack(
                opcode::VEC_VEC,
                vec_sub(op, HorizontalOp::Add, ty),
                rd.index() as u8,
                rs1.index() as u8,
                rs2.index() as u8,
                0,
            ),
            VecScalar {
                op,
                ty,
                rd,
                rs_vec,
                rs_scalar,
            } => pack(
                opcode::VEC_SCALAR,
                vec_sub(op, HorizontalOp::Add, ty),
                rd.index() as u8,
                rs_vec.index() as u8,
                rs_scalar.index() as u8,
                0,
            ),
            Scalar { op, rd, rs1, rs2 } => pack(
                opcode::SCALAR,
                op.code(),
                rd.index() as u8,
                rs1.index() as u8,
                rs2.index() as u8,
                0,
            ),
            ScalarImm { op, rd, rs1, imm } => {
                if !fits_signed(i64::from(imm), 24) {
                    return Err(EncodeError {
                        instruction: self.to_string(),
                        imm: i64::from(imm),
                        field_bits: 24,
                    });
                }
                pack(
                    opcode::SCALAR_IMM,
                    op.code(),
                    rd.index() as u8,
                    rs1.index() as u8,
                    0,
                    (imm as u32) & 0x00ff_ffff,
                )
            }
            Mov { rd, rs } => pack(opcode::MOV, 0, rd.index() as u8, rs.index() as u8, 0, 0),
            MovImm { rd, imm } => {
                if !fits_signed(imm, 40) {
                    return Err(EncodeError {
                        instruction: self.to_string(),
                        imm,
                        field_bits: 40,
                    });
                }
                let uimm = (imm as u64) & 0xff_ffff_ffff;
                (u64::from(opcode::MOV_IMM) << 56) | ((rd.index() as u64) << 40) | uimm
            }
            Branch {
                cond,
                rs1,
                rs2,
                target,
            } => pack(
                opcode::BRANCH,
                cond.code(),
                0,
                rs1.index() as u8,
                rs2.index() as u8,
                target & 0x00ff_ffff,
            ),
            Jmp { target } => pack(opcode::JMP, 0, 0, 0, 0, target & 0x00ff_ffff),
            LdSram {
                ty,
                rd_sp,
                rs_addr,
                rs_len,
            } => pack(
                opcode::LD_SRAM,
                ty.code(),
                rd_sp.index() as u8,
                rs_addr.index() as u8,
                rs_len.index() as u8,
                0,
            ),
            StSram {
                ty,
                rs_sp,
                rs_addr,
                rs_len,
            } => pack(
                opcode::ST_SRAM,
                ty.code(),
                rs_sp.index() as u8,
                rs_addr.index() as u8,
                rs_len.index() as u8,
                0,
            ),
            LdReg { rd, rs_addr } => pack(
                opcode::LD_REG,
                0,
                rd.index() as u8,
                rs_addr.index() as u8,
                0,
                0,
            ),
            StReg { rs, rs_addr } => pack(
                opcode::ST_REG,
                0,
                0,
                rs.index() as u8,
                rs_addr.index() as u8,
                0,
            ),
            LdRegFe { rd, rs_addr } => pack(
                opcode::LD_REG_FE,
                0,
                rd.index() as u8,
                rs_addr.index() as u8,
                0,
                0,
            ),
            StRegFf { rs, rs_addr } => pack(
                opcode::ST_REG_FF,
                0,
                0,
                rs.index() as u8,
                rs_addr.index() as u8,
                0,
            ),
            MemFence => pack(opcode::MEM_FENCE, 0, 0, 0, 0, 0),
            Nop => pack(opcode::NOP, 0, 0, 0, 0, 0),
            Halt => pack(opcode::HALT, 0, 0, 0, 0, 0),
        };
        Ok(word)
    }

    /// Decodes a 64-bit instruction-buffer word.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] if the opcode or any operand field is
    /// invalid.
    pub fn decode(word: u64) -> Result<Self, DecodeError> {
        let err = || DecodeError { word };
        let op = (word >> 56) as u8;
        let sub = (word >> 48) as u8;
        let rd = Reg::try_new(((word >> 40) & 0xff) as u8);
        let rs1 = Reg::try_new(((word >> 32) & 0xff) as u8);
        let rs2 = Reg::try_new(((word >> 24) & 0xff) as u8);
        let imm24 = (word & 0x00ff_ffff) as u32;
        let simm24 = ((imm24 << 8) as i32) >> 8;

        let vop = || VerticalOp::from_code(sub >> 4).ok_or_else(err);
        let hop = || HorizontalOp::from_code((sub >> 2) & 0b11).ok_or_else(err);
        let vty = || ElemType::from_code(sub & 0b11).ok_or_else(err);
        let rd = move || rd.ok_or_else(err);
        let rs1 = move || rs1.ok_or_else(err);
        let rs2 = move || rs2.ok_or_else(err);

        use Instruction::*;
        Ok(match op {
            opcode::SET_VL => SetVl { rs: rs1()? },
            opcode::SET_MR => SetMr { rs: rs1()? },
            opcode::V_DRAIN => VDrain,
            opcode::MAT_VEC => MatVec {
                vop: vop()?,
                hop: hop()?,
                ty: vty()?,
                rd: rd()?,
                rs_mat: rs1()?,
                rs_vec: rs2()?,
            },
            opcode::VEC_VEC => {
                let op = vop()?;
                if op == VerticalOp::Nop {
                    return Err(err());
                }
                VecVec {
                    op,
                    ty: vty()?,
                    rd: rd()?,
                    rs1: rs1()?,
                    rs2: rs2()?,
                }
            }
            opcode::VEC_SCALAR => {
                let op = vop()?;
                if op == VerticalOp::Nop {
                    return Err(err());
                }
                VecScalar {
                    op,
                    ty: vty()?,
                    rd: rd()?,
                    rs_vec: rs1()?,
                    rs_scalar: rs2()?,
                }
            }
            opcode::SCALAR => Scalar {
                op: ScalarAluOp::from_code(sub).ok_or_else(err)?,
                rd: rd()?,
                rs1: rs1()?,
                rs2: rs2()?,
            },
            opcode::SCALAR_IMM => ScalarImm {
                op: ScalarAluOp::from_code(sub).ok_or_else(err)?,
                rd: rd()?,
                rs1: rs1()?,
                imm: simm24,
            },
            opcode::MOV => Mov {
                rd: rd()?,
                rs: rs1()?,
            },
            opcode::MOV_IMM => {
                let uimm = word & 0xff_ffff_ffff;
                let imm = ((uimm << 24) as i64) >> 24;
                MovImm { rd: rd()?, imm }
            }
            opcode::BRANCH => Branch {
                cond: BranchCond::from_code(sub).ok_or_else(err)?,
                rs1: rs1()?,
                rs2: rs2()?,
                target: imm24,
            },
            opcode::JMP => Jmp { target: imm24 },
            opcode::LD_SRAM => LdSram {
                ty: ElemType::from_code(sub).ok_or_else(err)?,
                rd_sp: rd()?,
                rs_addr: rs1()?,
                rs_len: rs2()?,
            },
            opcode::ST_SRAM => StSram {
                ty: ElemType::from_code(sub).ok_or_else(err)?,
                rs_sp: rd()?,
                rs_addr: rs1()?,
                rs_len: rs2()?,
            },
            opcode::LD_REG => LdReg {
                rd: rd()?,
                rs_addr: rs1()?,
            },
            opcode::ST_REG => StReg {
                rs: rs1()?,
                rs_addr: rs2()?,
            },
            opcode::LD_REG_FE => LdRegFe {
                rd: rd()?,
                rs_addr: rs1()?,
            },
            opcode::ST_REG_FF => StRegFf {
                rs: rs1()?,
                rs_addr: rs2()?,
            },
            opcode::MEM_FENCE => MemFence,
            opcode::NOP => Nop,
            opcode::HALT => Halt,
            _ => return Err(err()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    fn sample_instructions() -> Vec<Instruction> {
        use Instruction::*;
        vec![
            SetVl { rs: r(61) },
            SetMr { rs: r(60) },
            VDrain,
            MatVec {
                vop: VerticalOp::Add,
                hop: HorizontalOp::Min,
                ty: ElemType::I16,
                rd: r(10),
                rs_mat: r(15),
                rs_vec: r(11),
            },
            VecVec {
                op: VerticalOp::Mul,
                ty: ElemType::I8,
                rd: r(1),
                rs1: r(2),
                rs2: r(3),
            },
            VecScalar {
                op: VerticalOp::Max,
                ty: ElemType::I32,
                rd: r(4),
                rs_vec: r(5),
                rs_scalar: r(6),
            },
            Scalar {
                op: ScalarAluOp::Xor,
                rd: r(7),
                rs1: r(8),
                rs2: r(9),
            },
            ScalarImm {
                op: ScalarAluOp::Add,
                rd: r(1),
                rs1: r(1),
                imm: -32,
            },
            Mov { rd: r(2), rs: r(3) },
            MovImm { rd: r(2), imm: -1 },
            MovImm {
                rd: r(2),
                imm: (1 << 39) - 1,
            },
            Branch {
                cond: BranchCond::Lt,
                rs1: r(1),
                rs2: r(2),
                target: 42,
            },
            Jmp { target: 1023 },
            LdSram {
                ty: ElemType::I16,
                rd_sp: r(11),
                rs_addr: r(7),
                rs_len: r(61),
            },
            StSram {
                ty: ElemType::I64,
                rs_sp: r(10),
                rs_addr: r(14),
                rs_len: r(61),
            },
            LdReg {
                rd: r(1),
                rs_addr: r(2),
            },
            StReg {
                rs: r(1),
                rs_addr: r(2),
            },
            LdRegFe {
                rd: r(1),
                rs_addr: r(2),
            },
            StRegFf {
                rs: r(1),
                rs_addr: r(2),
            },
            MemFence,
            Nop,
            Halt,
        ]
    }

    #[test]
    fn roundtrip_all_forms() {
        for inst in sample_instructions() {
            let word = inst.encode().unwrap();
            let back = Instruction::decode(word).unwrap();
            assert_eq!(back, inst, "word {word:#018x}");
        }
    }

    #[test]
    fn imm_range_checks() {
        let too_big = Instruction::ScalarImm {
            op: ScalarAluOp::Add,
            rd: r(0),
            rs1: r(0),
            imm: 1 << 23,
        };
        assert!(too_big.encode().is_err());

        let ok = Instruction::ScalarImm {
            op: ScalarAluOp::Add,
            rd: r(0),
            rs1: r(0),
            imm: (1 << 23) - 1,
        };
        assert!(ok.encode().is_ok());

        let mov_too_big = Instruction::MovImm {
            rd: r(0),
            imm: 1 << 39,
        };
        assert!(mov_too_big.encode().is_err());
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        assert!(Instruction::decode(0x7f00_0000_0000_0000).is_err());
    }

    #[test]
    fn decode_rejects_bad_register() {
        // MOV with rd = 200.
        let word = (u64::from(0x12u8) << 56) | (200u64 << 40);
        assert!(Instruction::decode(word).is_err());
    }

    #[test]
    fn decode_rejects_nop_vertical_on_vv() {
        // VEC_VEC with vop = Nop is not a valid instruction.
        let sub = (VerticalOp::Nop.code() << 4) | ElemType::I16.code();
        let word = (u64::from(0x05u8) << 56) | (u64::from(sub) << 48);
        assert!(Instruction::decode(word).is_err());
    }
}

//! Arithmetic semantics of the VIP vector datapath.
//!
//! Both vertical and horizontal vector units operate on 64-bit beats of
//! one, two, four, or eight sign-extended lanes (§III-B). Lane arithmetic
//! **saturates** to the lane's representable range — the fixed-point
//! behaviour assumed by the paper's "16-bit dynamic fixed point"
//! workloads (§IV) — while scalar-unit arithmetic wraps.
//!
//! This module is the *single source of truth* for datapath arithmetic:
//! the cycle-level PE model in `vip-core` and the golden reference kernels
//! in `vip-kernels` both call into it, which is what makes simulated
//! scratchpad contents bit-identical to the reference outputs.

use crate::ops::{HorizontalOp, VerticalOp};
use crate::types::ElemType;

/// Smallest representable lane value for `ty`.
#[must_use]
pub fn lane_min(ty: ElemType) -> i64 {
    match ty {
        ElemType::I8 => i64::from(i8::MIN),
        ElemType::I16 => i64::from(i16::MIN),
        ElemType::I32 => i64::from(i32::MIN),
        ElemType::I64 => i64::MIN,
    }
}

/// Largest representable lane value for `ty`.
#[must_use]
pub fn lane_max(ty: ElemType) -> i64 {
    match ty {
        ElemType::I8 => i64::from(i8::MAX),
        ElemType::I16 => i64::from(i16::MAX),
        ElemType::I32 => i64::from(i32::MAX),
        ElemType::I64 => i64::MAX,
    }
}

/// Clamps `value` to the representable range of `ty`.
#[must_use]
pub fn saturate(ty: ElemType, value: i64) -> i64 {
    value.clamp(lane_min(ty), lane_max(ty))
}

/// Applies a vertical (element-wise) operator to one lane.
///
/// `Add`, `Sub`, and `Mul` saturate; `Min`/`Max` select; `Nop` passes the
/// first operand through (used by `m.v.nop.*` pure reductions).
///
/// 64-bit lanes use `i128` intermediates so saturation is still exact.
#[must_use]
pub fn vertical(op: VerticalOp, ty: ElemType, a: i64, b: i64) -> i64 {
    let wide = |x: i64| i128::from(x);
    let sat = |v: i128| {
        let lo = i128::from(lane_min(ty));
        let hi = i128::from(lane_max(ty));
        v.clamp(lo, hi) as i64
    };
    match op {
        VerticalOp::Add => sat(wide(a) + wide(b)),
        VerticalOp::Sub => sat(wide(a) - wide(b)),
        VerticalOp::Mul => sat(wide(a) * wide(b)),
        VerticalOp::Min => a.min(b),
        VerticalOp::Max => a.max(b),
        VerticalOp::Nop => a,
    }
}

/// The identity element of a horizontal (reduction) operator.
#[must_use]
pub fn reduce_identity(op: HorizontalOp, ty: ElemType) -> i64 {
    match op {
        HorizontalOp::Add => 0,
        HorizontalOp::Min => lane_max(ty),
        HorizontalOp::Max => lane_min(ty),
    }
}

/// Folds one lane into a running reduction.
#[must_use]
pub fn reduce(op: HorizontalOp, ty: ElemType, acc: i64, x: i64) -> i64 {
    match op {
        HorizontalOp::Add => vertical(VerticalOp::Add, ty, acc, x),
        HorizontalOp::Min => acc.min(x),
        HorizontalOp::Max => acc.max(x),
    }
}

/// Reads the sign-extended lane at element index `idx` from a
/// little-endian byte buffer.
///
/// # Panics
///
/// Panics if the lane extends past the end of `bytes`.
#[must_use]
pub fn read_lane(bytes: &[u8], idx: usize, ty: ElemType) -> i64 {
    let size = ty.size_bytes();
    let at = idx * size;
    let lane = &bytes[at..at + size];
    match ty {
        ElemType::I8 => i64::from(lane[0] as i8),
        ElemType::I16 => i64::from(i16::from_le_bytes([lane[0], lane[1]])),
        ElemType::I32 => i64::from(i32::from_le_bytes([lane[0], lane[1], lane[2], lane[3]])),
        ElemType::I64 => i64::from_le_bytes(lane.try_into().expect("8 bytes")),
    }
}

/// Writes lane `idx` of a little-endian byte buffer. The value is
/// truncated to the lane width (callers saturate first).
///
/// # Panics
///
/// Panics if the lane extends past the end of `bytes`.
pub fn write_lane(bytes: &mut [u8], idx: usize, ty: ElemType, value: i64) {
    let size = ty.size_bytes();
    let at = idx * size;
    let lane = &mut bytes[at..at + size];
    match ty {
        ElemType::I8 => lane[0] = value as u8,
        ElemType::I16 => lane.copy_from_slice(&(value as i16).to_le_bytes()),
        ElemType::I32 => lane.copy_from_slice(&(value as i32).to_le_bytes()),
        ElemType::I64 => lane.copy_from_slice(&value.to_le_bytes()),
    }
}

/// Native-width lane arithmetic behind the buffer-level entry points.
///
/// [`vertical`] stays the semantic definition (i128 intermediates,
/// explicit clamping); this trait restates it with each type's native
/// saturating operators so the hot loops below can hoist the
/// `(op, ty)` dispatch out of the lane loop and auto-vectorize. The
/// `lane_paths_match_vertical` test pins the two formulations to each
/// other exactly.
trait LaneNum: Copy {
    const BYTES: usize;
    fn load(chunk: &[u8]) -> Self;
    fn store(self, chunk: &mut [u8]);
    fn sat_add(self, o: Self) -> Self;
    fn sat_sub(self, o: Self) -> Self;
    fn sat_mul(self, o: Self) -> Self;
    fn lane_min(self, o: Self) -> Self;
    fn lane_max(self, o: Self) -> Self;
    fn narrow(v: i64) -> Self;
}

macro_rules! impl_lane_num {
    ($($t:ty),*) => {$(
        impl LaneNum for $t {
            const BYTES: usize = size_of::<$t>();
            #[inline(always)]
            fn load(chunk: &[u8]) -> Self {
                <$t>::from_le_bytes(chunk.try_into().expect("lane-sized chunk"))
            }
            #[inline(always)]
            fn store(self, chunk: &mut [u8]) {
                chunk.copy_from_slice(&self.to_le_bytes());
            }
            #[inline(always)]
            fn sat_add(self, o: Self) -> Self {
                self.saturating_add(o)
            }
            #[inline(always)]
            fn sat_sub(self, o: Self) -> Self {
                self.saturating_sub(o)
            }
            #[inline(always)]
            fn sat_mul(self, o: Self) -> Self {
                self.saturating_mul(o)
            }
            #[inline(always)]
            fn lane_min(self, o: Self) -> Self {
                self.min(o)
            }
            #[inline(always)]
            fn lane_max(self, o: Self) -> Self {
                self.max(o)
            }
            #[inline(always)]
            fn narrow(v: i64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_lane_num!(i8, i16, i32, i64);

/// `dst[i] = f(a[i], b[i])` with the operator resolved once, outside
/// the lane loop.
#[inline(always)]
fn zip_lanes<T: LaneNum>(dst: &mut [u8], a: &[u8], b: &[u8], len: usize, f: impl Fn(T, T) -> T) {
    let n = len * T::BYTES;
    let dst = &mut dst[..n];
    let (a, b) = (&a[..n], &b[..n]);
    for ((d, a), b) in dst
        .chunks_exact_mut(T::BYTES)
        .zip(a.chunks_exact(T::BYTES))
        .zip(b.chunks_exact(T::BYTES))
    {
        f(T::load(a), T::load(b)).store(d);
    }
}

#[inline(always)]
fn vec_vec_typed<T: LaneNum>(op: VerticalOp, dst: &mut [u8], a: &[u8], b: &[u8], len: usize) {
    match op {
        VerticalOp::Add => zip_lanes::<T>(dst, a, b, len, T::sat_add),
        VerticalOp::Sub => zip_lanes::<T>(dst, a, b, len, T::sat_sub),
        VerticalOp::Mul => zip_lanes::<T>(dst, a, b, len, T::sat_mul),
        VerticalOp::Min => zip_lanes::<T>(dst, a, b, len, T::lane_min),
        VerticalOp::Max => zip_lanes::<T>(dst, a, b, len, T::lane_max),
        VerticalOp::Nop => zip_lanes::<T>(dst, a, b, len, |a, _| a),
    }
}

/// Element-wise `dst[i] = op(a[i], b[i])` over `len` lanes of byte
/// buffers — the semantics of `v.v` instructions.
///
/// # Panics
///
/// Panics if any buffer is shorter than `len` lanes.
pub fn vec_vec(op: VerticalOp, ty: ElemType, dst: &mut [u8], a: &[u8], b: &[u8], len: usize) {
    match ty {
        ElemType::I8 => vec_vec_typed::<i8>(op, dst, a, b, len),
        ElemType::I16 => vec_vec_typed::<i16>(op, dst, a, b, len),
        ElemType::I32 => vec_vec_typed::<i32>(op, dst, a, b, len),
        ElemType::I64 => vec_vec_typed::<i64>(op, dst, a, b, len),
    }
}

#[inline(always)]
fn map_lanes<T: LaneNum>(dst: &mut [u8], a: &[u8], len: usize, f: impl Fn(T) -> T) {
    let n = len * T::BYTES;
    let dst = &mut dst[..n];
    let a = &a[..n];
    for (d, a) in dst.chunks_exact_mut(T::BYTES).zip(a.chunks_exact(T::BYTES)) {
        f(T::load(a)).store(d);
    }
}

#[inline(always)]
fn vec_scalar_typed<T: LaneNum>(op: VerticalOp, dst: &mut [u8], a: &[u8], b: T, len: usize) {
    match op {
        VerticalOp::Add => map_lanes::<T>(dst, a, len, |x| x.sat_add(b)),
        VerticalOp::Sub => map_lanes::<T>(dst, a, len, |x| x.sat_sub(b)),
        VerticalOp::Mul => map_lanes::<T>(dst, a, len, |x| x.sat_mul(b)),
        VerticalOp::Min => map_lanes::<T>(dst, a, len, |x| x.lane_min(b)),
        VerticalOp::Max => map_lanes::<T>(dst, a, len, |x| x.lane_max(b)),
        VerticalOp::Nop => map_lanes::<T>(dst, a, len, |x| x),
    }
}

/// Element-wise `dst[i] = op(a[i], scalar)` over `len` lanes — the
/// semantics of `v.s` instructions. The scalar register value is
/// truncated to the lane width before broadcasting.
///
/// # Panics
///
/// Panics if a buffer is shorter than `len` lanes.
pub fn vec_scalar(op: VerticalOp, ty: ElemType, dst: &mut [u8], a: &[u8], scalar: u64, len: usize) {
    let b = truncate_scalar(ty, scalar);
    match ty {
        ElemType::I8 => vec_scalar_typed::<i8>(op, dst, a, i8::narrow(b), len),
        ElemType::I16 => vec_scalar_typed::<i16>(op, dst, a, i16::narrow(b), len),
        ElemType::I32 => vec_scalar_typed::<i32>(op, dst, a, i32::narrow(b), len),
        ElemType::I64 => vec_scalar_typed::<i64>(op, dst, a, i64::narrow(b), len),
    }
}

/// `result[r] = reduce_hop over i of vop(mat[r][i], vec[i])` for `rows`
/// rows of `len` lanes each — the semantics of `m.v` instructions. Matrix
/// rows are contiguous in `mat`; the `rows` results are written to
/// contiguous lanes of `dst`.
///
/// # Panics
///
/// Panics if a buffer is shorter than implied by `rows`/`len`.
#[allow(clippy::too_many_arguments)]
pub fn mat_vec(
    vop: VerticalOp,
    hop: HorizontalOp,
    ty: ElemType,
    dst: &mut [u8],
    mat: &[u8],
    vec: &[u8],
    rows: usize,
    len: usize,
) {
    match ty {
        ElemType::I8 => mat_vec_typed::<i8>(vop, hop, ty, dst, mat, vec, rows, len),
        ElemType::I16 => mat_vec_typed::<i16>(vop, hop, ty, dst, mat, vec, rows, len),
        ElemType::I32 => mat_vec_typed::<i32>(vop, hop, ty, dst, mat, vec, rows, len),
        ElemType::I64 => mat_vec_typed::<i64>(vop, hop, ty, dst, mat, vec, rows, len),
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn mat_vec_typed<T: LaneNum>(
    vop: VerticalOp,
    hop: HorizontalOp,
    ty: ElemType,
    dst: &mut [u8],
    mat: &[u8],
    vec: &[u8],
    rows: usize,
    len: usize,
) {
    match vop {
        VerticalOp::Add => mat_rows::<T, _>(hop, ty, dst, mat, vec, rows, len, T::sat_add),
        VerticalOp::Sub => mat_rows::<T, _>(hop, ty, dst, mat, vec, rows, len, T::sat_sub),
        VerticalOp::Mul => mat_rows::<T, _>(hop, ty, dst, mat, vec, rows, len, T::sat_mul),
        VerticalOp::Min => mat_rows::<T, _>(hop, ty, dst, mat, vec, rows, len, T::lane_min),
        VerticalOp::Max => mat_rows::<T, _>(hop, ty, dst, mat, vec, rows, len, T::lane_max),
        VerticalOp::Nop => mat_rows::<T, _>(hop, ty, dst, mat, vec, rows, len, |a, _| a),
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn mat_rows<T: LaneNum, VF: Fn(T, T) -> T>(
    hop: HorizontalOp,
    ty: ElemType,
    dst: &mut [u8],
    mat: &[u8],
    vec: &[u8],
    rows: usize,
    len: usize,
    vf: VF,
) {
    let ident = T::narrow(reduce_identity(hop, ty));
    match hop {
        HorizontalOp::Add => mat_inner::<T, _, _>(dst, mat, vec, rows, len, ident, vf, T::sat_add),
        HorizontalOp::Min => mat_inner::<T, _, _>(dst, mat, vec, rows, len, ident, vf, T::lane_min),
        HorizontalOp::Max => mat_inner::<T, _, _>(dst, mat, vec, rows, len, ident, vf, T::lane_max),
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn mat_inner<T: LaneNum, VF: Fn(T, T) -> T, HF: Fn(T, T) -> T>(
    dst: &mut [u8],
    mat: &[u8],
    vec: &[u8],
    rows: usize,
    len: usize,
    ident: T,
    vf: VF,
    hf: HF,
) {
    let row_bytes = len * T::BYTES;
    let vec = &vec[..row_bytes];
    for r in 0..rows {
        let row = &mat[r * row_bytes..(r + 1) * row_bytes];
        let mut acc = ident;
        for (m, v) in row.chunks_exact(T::BYTES).zip(vec.chunks_exact(T::BYTES)) {
            acc = hf(acc, vf(T::load(m), T::load(v)));
        }
        acc.store(&mut dst[r * T::BYTES..(r + 1) * T::BYTES]);
    }
}

/// Truncates a 64-bit scalar register value to a sign-extended lane of
/// type `ty` (how `v.s` instructions interpret the scalar operand).
#[must_use]
pub fn truncate_scalar(ty: ElemType, value: u64) -> i64 {
    match ty {
        ElemType::I8 => i64::from(value as u8 as i8),
        ElemType::I16 => i64::from(value as u16 as i16),
        ElemType::I32 => i64::from(value as u32 as i32),
        ElemType::I64 => value as i64,
    }
}

/// Saturating 16-bit addition — convenience for golden kernels.
#[must_use]
pub fn sat_add16(a: i16, b: i16) -> i16 {
    a.saturating_add(b)
}

/// Saturating 16-bit subtraction — convenience for golden kernels.
#[must_use]
pub fn sat_sub16(a: i16, b: i16) -> i16 {
    a.saturating_sub(b)
}

/// Saturating 16-bit multiplication — convenience for golden kernels.
#[must_use]
pub fn sat_mul16(a: i16, b: i16) -> i16 {
    i32::from(a)
        .checked_mul(i32::from(b))
        .map_or(i16::MAX, |p| {
            p.clamp(i32::from(i16::MIN), i32::from(i16::MAX)) as i16
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_at_lane_bounds() {
        assert_eq!(vertical(VerticalOp::Add, ElemType::I16, 32000, 1000), 32767);
        assert_eq!(
            vertical(VerticalOp::Sub, ElemType::I16, -32000, 1000),
            -32768
        );
        assert_eq!(vertical(VerticalOp::Mul, ElemType::I8, 100, 100), 127);
        assert_eq!(vertical(VerticalOp::Mul, ElemType::I8, -100, 100), -128);
        assert_eq!(
            vertical(VerticalOp::Add, ElemType::I64, i64::MAX, i64::MAX),
            i64::MAX
        );
        assert_eq!(
            vertical(VerticalOp::Mul, ElemType::I64, i64::MIN, -1),
            i64::MAX
        );
    }

    #[test]
    fn min_max_and_nop() {
        assert_eq!(vertical(VerticalOp::Min, ElemType::I16, 3, -5), -5);
        assert_eq!(vertical(VerticalOp::Max, ElemType::I16, 3, -5), 3);
        assert_eq!(vertical(VerticalOp::Nop, ElemType::I16, 42, -5), 42);
    }

    #[test]
    fn reduce_identities() {
        for ty in ElemType::all() {
            assert_eq!(reduce_identity(HorizontalOp::Add, ty), 0);
            assert_eq!(reduce_identity(HorizontalOp::Min, ty), lane_max(ty));
            assert_eq!(reduce_identity(HorizontalOp::Max, ty), lane_min(ty));
        }
    }

    #[test]
    fn lane_io_roundtrip() {
        let mut buf = vec![0u8; 32];
        for ty in ElemType::all() {
            for (i, v) in [-1i64, 0, 1, lane_min(ty), lane_max(ty)].iter().enumerate() {
                if i * ty.size_bytes() + ty.size_bytes() > buf.len() {
                    continue;
                }
                write_lane(&mut buf, i, ty, *v);
                assert_eq!(read_lane(&buf, i, ty), *v, "{ty:?} lane {i}");
            }
        }
    }

    #[test]
    fn mat_vec_min_sum_matches_manual() {
        // 2x3 matrix, min-sum: result[r] = min_i(mat[r][i] + vec[i]).
        let ty = ElemType::I16;
        let mut mat = vec![0u8; 12];
        let mut vec_ = vec![0u8; 6];
        let mut dst = vec![0u8; 4];
        for (i, v) in [1i64, 5, 9, 2, 0, 7].iter().enumerate() {
            write_lane(&mut mat, i, ty, *v);
        }
        for (i, v) in [10i64, 1, 3].iter().enumerate() {
            write_lane(&mut vec_, i, ty, *v);
        }
        mat_vec(
            VerticalOp::Add,
            HorizontalOp::Min,
            ty,
            &mut dst,
            &mat,
            &vec_,
            2,
            3,
        );
        assert_eq!(read_lane(&dst, 0, ty), 6); // min(11, 6, 12)
        assert_eq!(read_lane(&dst, 1, ty), 1); // min(12, 1, 10)
    }

    #[test]
    fn mat_vec_dot_product() {
        let ty = ElemType::I32;
        let mut mat = vec![0u8; 16];
        let mut v = vec![0u8; 16];
        let mut dst = vec![0u8; 4];
        for i in 0..4 {
            write_lane(&mut mat, i, ty, (i + 1) as i64);
            write_lane(&mut v, i, ty, 2);
        }
        mat_vec(
            VerticalOp::Mul,
            HorizontalOp::Add,
            ty,
            &mut dst,
            &mat,
            &v,
            1,
            4,
        );
        assert_eq!(read_lane(&dst, 0, ty), 20);
    }

    #[test]
    fn vec_scalar_broadcast_truncates() {
        let ty = ElemType::I16;
        let a = {
            let mut b = vec![0u8; 4];
            write_lane(&mut b, 0, ty, 5);
            write_lane(&mut b, 1, ty, -5);
            b
        };
        let mut dst = vec![0u8; 4];
        // 0x1_0000 truncates to 0 for 16-bit lanes.
        vec_scalar(VerticalOp::Add, ty, &mut dst, &a, 0x1_0000, 2);
        assert_eq!(read_lane(&dst, 0, ty), 5);
        assert_eq!(read_lane(&dst, 1, ty), -5);
    }

    #[test]
    fn lane_paths_match_vertical() {
        // The hoisted native-saturating lane loops must agree with the
        // i128-clamping `vertical`/`reduce` definitions on every
        // operator, element type, and boundary value.
        use crate::ops::{HorizontalOp, VerticalOp};
        let vops = [
            VerticalOp::Add,
            VerticalOp::Sub,
            VerticalOp::Mul,
            VerticalOp::Min,
            VerticalOp::Max,
            VerticalOp::Nop,
        ];
        for ty in ElemType::all() {
            let vals = [
                lane_min(ty),
                lane_min(ty) + 1,
                -3,
                -1,
                0,
                1,
                2,
                7,
                lane_max(ty) - 1,
                lane_max(ty),
            ];
            let len = vals.len();
            let mut a = vec![0u8; len * ty.size_bytes()];
            let mut b = vec![0u8; len * ty.size_bytes()];
            for (i, &v) in vals.iter().enumerate() {
                write_lane(&mut a, i, ty, v);
                write_lane(&mut b, i, ty, vals[len - 1 - i]);
            }
            for vop in vops {
                let mut got = vec![0u8; a.len()];
                vec_vec(vop, ty, &mut got, &a, &b, len);
                for i in 0..len {
                    let want = vertical(vop, ty, read_lane(&a, i, ty), read_lane(&b, i, ty));
                    assert_eq!(read_lane(&got, i, ty), want, "v.v {vop:?} {ty:?} lane {i}");
                }
                for scalar in [0u64, 1, u64::MAX, lane_max(ty) as u64, 0x8000_0001] {
                    let mut got = vec![0u8; a.len()];
                    vec_scalar(vop, ty, &mut got, &a, scalar, len);
                    let s = truncate_scalar(ty, scalar);
                    for i in 0..len {
                        let want = vertical(vop, ty, read_lane(&a, i, ty), s);
                        assert_eq!(
                            read_lane(&got, i, ty),
                            want,
                            "v.s {vop:?} {ty:?} lane {i} scalar {scalar:#x}"
                        );
                    }
                }
                for hop in [HorizontalOp::Add, HorizontalOp::Min, HorizontalOp::Max] {
                    // 2 rows of len/2 lanes out of the same buffers.
                    let (rows, rlen) = (2, len / 2);
                    let mut got = vec![0u8; rows * ty.size_bytes()];
                    mat_vec(vop, hop, ty, &mut got, &a, &b, rows, rlen);
                    for r in 0..rows {
                        let mut want = reduce_identity(hop, ty);
                        for i in 0..rlen {
                            let m = read_lane(&a, r * rlen + i, ty);
                            let v = read_lane(&b, i, ty);
                            want = reduce(hop, ty, want, vertical(vop, ty, m, v));
                        }
                        assert_eq!(
                            read_lane(&got, r, ty),
                            want,
                            "m.v {vop:?}/{hop:?} {ty:?} row {r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sat16_helpers_match_vertical() {
        let cases = [
            (32000i16, 1000i16),
            (-32000, -1000),
            (181, 181),
            (-182, 181),
        ];
        for (a, b) in cases {
            assert_eq!(
                i64::from(sat_add16(a, b)),
                vertical(VerticalOp::Add, ElemType::I16, a.into(), b.into())
            );
            assert_eq!(
                i64::from(sat_sub16(a, b)),
                vertical(VerticalOp::Sub, ElemType::I16, a.into(), b.into())
            );
            assert_eq!(
                i64::from(sat_mul16(a, b)),
                vertical(VerticalOp::Mul, ElemType::I16, a.into(), b.into())
            );
        }
    }
}

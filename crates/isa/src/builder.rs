//! A label-aware program builder for generating VIP code from Rust.

use std::collections::HashMap;

use crate::asm::AsmError;
use crate::inst::Instruction;
use crate::ops::{BranchCond, HorizontalOp, ScalarAluOp, VerticalOp};
use crate::program::Program;
use crate::types::{ElemType, Reg};
use crate::INST_BUFFER_ENTRIES;

#[derive(Debug, Clone)]
enum Pending {
    Resolved(Instruction),
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        label: String,
    },
    Jmp {
        label: String,
    },
}

/// Builder that assembles VIP programs with symbolic labels.
///
/// The kernel code generators in `vip-kernels` use this interface; it is
/// also convenient for hand-writing small programs in tests and examples.
/// All emit methods return `&mut Self` so instructions can be chained.
///
/// ```
/// use vip_isa::{Asm, BranchCond, Reg, ScalarAluOp};
///
/// let (i, n) = (Reg::new(1), Reg::new(2));
/// let mut asm = Asm::new();
/// asm.mov_imm(i, 0)
///     .mov_imm(n, 10)
///     .label("loop")
///     .addi(i, i, 1)
///     .branch(BranchCond::Lt, i, n, "loop")
///     .halt();
/// let program = asm.assemble().unwrap();
/// assert_eq!(program.len(), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Asm {
    insts: Vec<Pending>,
    labels: HashMap<String, u32>,
}

impl Asm {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of instructions emitted so far (also the index of the next
    /// instruction).
    #[must_use]
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Defines `name` as a label at the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined (labels are unique).
    pub fn label(&mut self, name: &str) -> &mut Self {
        let prev = self.labels.insert(name.to_owned(), self.here());
        assert!(prev.is_none(), "label `{name}` defined twice");
        self
    }

    fn push(&mut self, inst: Instruction) -> &mut Self {
        self.insts.push(Pending::Resolved(inst));
        self
    }

    // ---- vector configuration ----

    /// Emits `set.vl rs`.
    pub fn set_vl(&mut self, rs: Reg) -> &mut Self {
        self.push(Instruction::SetVl { rs })
    }

    /// Emits `set.mr rs`.
    pub fn set_mr(&mut self, rs: Reg) -> &mut Self {
        self.push(Instruction::SetMr { rs })
    }

    /// Emits `v.drain`.
    pub fn v_drain(&mut self) -> &mut Self {
        self.push(Instruction::VDrain)
    }

    // ---- vector operations ----

    /// Emits `m.v.<vop>.<hop>.<ty> rd, rs_mat, rs_vec`.
    pub fn mat_vec(
        &mut self,
        vop: VerticalOp,
        hop: HorizontalOp,
        ty: ElemType,
        rd: Reg,
        rs_mat: Reg,
        rs_vec: Reg,
    ) -> &mut Self {
        self.push(Instruction::MatVec {
            vop,
            hop,
            ty,
            rd,
            rs_mat,
            rs_vec,
        })
    }

    /// Emits `v.v.<op>.<ty> rd, rs1, rs2`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is [`VerticalOp::Nop`], which is only meaningful in
    /// `m.v` instructions.
    pub fn vec_vec(
        &mut self,
        op: VerticalOp,
        ty: ElemType,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    ) -> &mut Self {
        assert!(op != VerticalOp::Nop, "v.v.nop is not a valid instruction");
        self.push(Instruction::VecVec {
            op,
            ty,
            rd,
            rs1,
            rs2,
        })
    }

    /// Emits `v.s.<op>.<ty> rd, rs_vec, rs_scalar`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is [`VerticalOp::Nop`].
    pub fn vec_scalar(
        &mut self,
        op: VerticalOp,
        ty: ElemType,
        rd: Reg,
        rs_vec: Reg,
        rs_scalar: Reg,
    ) -> &mut Self {
        assert!(op != VerticalOp::Nop, "v.s.nop is not a valid instruction");
        self.push(Instruction::VecScalar {
            op,
            ty,
            rd,
            rs_vec,
            rs_scalar,
        })
    }

    // ---- scalar ----

    /// Emits a register-register scalar ALU operation.
    pub fn scalar(&mut self, op: ScalarAluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Instruction::Scalar { op, rd, rs1, rs2 })
    }

    /// Emits a register-immediate scalar ALU operation.
    pub fn scalar_imm(&mut self, op: ScalarAluOp, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Instruction::ScalarImm { op, rd, rs1, imm })
    }

    /// Emits `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.scalar(ScalarAluOp::Add, rd, rs1, rs2)
    }

    /// Emits `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.scalar(ScalarAluOp::Sub, rd, rs1, rs2)
    }

    /// Emits `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.scalar_imm(ScalarAluOp::Add, rd, rs1, imm)
    }

    /// Emits `slli rd, rs1, imm` (shift left logical by an immediate).
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.scalar_imm(ScalarAluOp::Sll, rd, rs1, imm)
    }

    /// Emits `mov rd, rs`.
    pub fn mov(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.push(Instruction::Mov { rd, rs })
    }

    /// Emits `mov.imm rd, imm`.
    pub fn mov_imm(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.push(Instruction::MovImm { rd, imm })
    }

    /// Emits a conditional branch to `label`.
    pub fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.insts.push(Pending::Branch {
            cond,
            rs1,
            rs2,
            label: label.to_owned(),
        });
        self
    }

    /// Emits `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Lt, rs1, rs2, label)
    }

    /// Emits `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Ge, rs1, rs2, label)
    }

    /// Emits `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Eq, rs1, rs2, label)
    }

    /// Emits `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Ne, rs1, rs2, label)
    }

    /// Emits `jmp label`.
    pub fn jmp(&mut self, label: &str) -> &mut Self {
        self.insts.push(Pending::Jmp {
            label: label.to_owned(),
        });
        self
    }

    // ---- load-store ----

    /// Emits `ld.sram.<ty> rd_sp, rs_addr, rs_len`.
    pub fn ld_sram(&mut self, ty: ElemType, rd_sp: Reg, rs_addr: Reg, rs_len: Reg) -> &mut Self {
        self.push(Instruction::LdSram {
            ty,
            rd_sp,
            rs_addr,
            rs_len,
        })
    }

    /// Emits `st.sram.<ty> rs_sp, rs_addr, rs_len`.
    pub fn st_sram(&mut self, ty: ElemType, rs_sp: Reg, rs_addr: Reg, rs_len: Reg) -> &mut Self {
        self.push(Instruction::StSram {
            ty,
            rs_sp,
            rs_addr,
            rs_len,
        })
    }

    /// Emits `ld.reg rd, rs_addr`.
    pub fn ld_reg(&mut self, rd: Reg, rs_addr: Reg) -> &mut Self {
        self.push(Instruction::LdReg { rd, rs_addr })
    }

    /// Emits `st.reg rs, rs_addr`.
    pub fn st_reg(&mut self, rs: Reg, rs_addr: Reg) -> &mut Self {
        self.push(Instruction::StReg { rs, rs_addr })
    }

    /// Emits `ld.reg.fe rd, rs_addr` (full-empty acquire).
    pub fn ld_reg_fe(&mut self, rd: Reg, rs_addr: Reg) -> &mut Self {
        self.push(Instruction::LdRegFe { rd, rs_addr })
    }

    /// Emits `st.reg.ff rs, rs_addr` (full-empty release).
    pub fn st_reg_ff(&mut self, rs: Reg, rs_addr: Reg) -> &mut Self {
        self.push(Instruction::StRegFf { rs, rs_addr })
    }

    /// Emits `memfence`.
    pub fn memfence(&mut self) -> &mut Self {
        self.push(Instruction::MemFence)
    }

    /// Emits `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Instruction::Nop)
    }

    /// Emits `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.push(Instruction::Halt)
    }

    /// Resolves labels and produces the final [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError::UnknownLabel`] for a branch to an undefined
    /// label and [`AsmError::ProgramTooLong`] if the program exceeds the
    /// instruction buffer.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        if self.insts.len() > INST_BUFFER_ENTRIES {
            return Err(AsmError::ProgramTooLong {
                len: self.insts.len(),
            });
        }
        let resolve = |label: &str| {
            self.labels
                .get(label)
                .copied()
                .ok_or_else(|| AsmError::UnknownLabel {
                    label: label.to_owned(),
                })
        };
        let insts = self
            .insts
            .iter()
            .map(|p| {
                Ok(match p {
                    Pending::Resolved(inst) => *inst,
                    Pending::Branch {
                        cond,
                        rs1,
                        rs2,
                        label,
                    } => Instruction::Branch {
                        cond: *cond,
                        rs1: *rs1,
                        rs2: *rs2,
                        target: resolve(label)?,
                    },
                    Pending::Jmp { label } => Instruction::Jmp {
                        target: resolve(label)?,
                    },
                })
            })
            .collect::<Result<Vec<_>, AsmError>>()?;
        Ok(Program::new(insts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn forward_and_backward_labels() {
        let mut asm = Asm::new();
        asm.jmp("end")
            .label("loop")
            .addi(r(1), r(1), 1)
            .blt(r(1), r(2), "loop")
            .label("end")
            .halt();
        let p = asm.assemble().unwrap();
        assert_eq!(p[0], Instruction::Jmp { target: 3 });
        assert_eq!(
            p[2],
            Instruction::Branch {
                cond: BranchCond::Lt,
                rs1: r(1),
                rs2: r(2),
                target: 1
            }
        );
    }

    #[test]
    fn unknown_label_is_an_error() {
        let mut asm = Asm::new();
        asm.jmp("nowhere").halt();
        assert!(matches!(asm.assemble(), Err(AsmError::UnknownLabel { .. })));
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut asm = Asm::new();
        asm.label("a").label("a");
    }

    #[test]
    fn too_long_program() {
        let mut asm = Asm::new();
        for _ in 0..=INST_BUFFER_ENTRIES {
            asm.nop();
        }
        assert!(matches!(
            asm.assemble(),
            Err(AsmError::ProgramTooLong { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "v.v.nop")]
    fn vv_nop_rejected() {
        let mut asm = Asm::new();
        asm.vec_vec(VerticalOp::Nop, ElemType::I16, r(0), r(1), r(2));
    }
}

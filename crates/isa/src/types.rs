//! Fundamental ISA types: registers and element types.

use std::fmt;
use std::str::FromStr;

/// Number of scalar registers in a PE (§III-B: "the scalar register file
/// contains 64 elements").
pub const NUM_REGS: usize = 64;

/// A scalar register name, `r0` through `r63`.
///
/// All registers are general purpose; VIP has no architecturally-zero
/// register. Registers are 64 bits wide.
///
/// ```
/// use vip_isa::Reg;
/// let r: Reg = "r61".parse()?;
/// assert_eq!(r.index(), 61);
/// assert_eq!(r.to_string(), "r61");
/// # Ok::<(), vip_isa::RegParseError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 64`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (index as usize) < NUM_REGS,
            "register index {index} out of range (0..{NUM_REGS})"
        );
        Reg(index)
    }

    /// Creates a register, returning `None` if the index is out of range.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Self> {
        ((index as usize) < NUM_REGS).then_some(Reg(index))
    }

    /// The register's index, in `0..64`.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterates over all 64 registers in order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..NUM_REGS as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Error returned when parsing a register name fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegParseError(pub String);

impl fmt::Display for RegParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid register name `{}`", self.0)
    }
}

impl std::error::Error for RegParseError {}

impl FromStr for Reg {
    type Err = RegParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || RegParseError(s.to_owned());
        let digits = s.strip_prefix('r').ok_or_else(err)?;
        let index: u8 = digits.parse().map_err(|_| err())?;
        Reg::try_new(index).ok_or_else(err)
    }
}

/// Vector element width. The 64-bit datapath performs one 64-bit, two
/// 32-bit, four 16-bit, or eight 8-bit operations per cycle (§III-B).
///
/// All element types are signed fixed-point integers; the evaluated
/// workloads use [`ElemType::I16`] ("16-bit dynamic fixed point", §IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum ElemType {
    /// 8-bit lanes, eight per beat.
    I8,
    /// 16-bit lanes, four per beat (the workloads' default).
    #[default]
    I16,
    /// 32-bit lanes, two per beat.
    I32,
    /// 64-bit lanes, one per beat.
    I64,
}

impl ElemType {
    /// Size of one element in bytes.
    #[must_use]
    pub fn size_bytes(self) -> usize {
        match self {
            ElemType::I8 => 1,
            ElemType::I16 => 2,
            ElemType::I32 => 4,
            ElemType::I64 => 8,
        }
    }

    /// Number of lanes processed per 64-bit datapath beat.
    #[must_use]
    pub fn lanes_per_beat(self) -> usize {
        8 / self.size_bytes()
    }

    /// The mnemonic suffix used by the assembler (`i8`, `i16`, …).
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            ElemType::I8 => "i8",
            ElemType::I16 => "i16",
            ElemType::I32 => "i32",
            ElemType::I64 => "i64",
        }
    }

    /// All element types, narrowest first.
    #[must_use]
    pub fn all() -> [ElemType; 4] {
        [ElemType::I8, ElemType::I16, ElemType::I32, ElemType::I64]
    }

    /// Parses an assembler suffix (`i8`/`i16`/`i32`/`i64`).
    #[must_use]
    pub fn from_suffix(s: &str) -> Option<Self> {
        match s {
            "i8" => Some(ElemType::I8),
            "i16" => Some(ElemType::I16),
            "i32" => Some(ElemType::I32),
            "i64" => Some(ElemType::I64),
            _ => None,
        }
    }

    /// Encoding tag used by the binary instruction format.
    #[must_use]
    pub(crate) fn code(self) -> u8 {
        match self {
            ElemType::I8 => 0,
            ElemType::I16 => 1,
            ElemType::I32 => 2,
            ElemType::I64 => 3,
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<Self> {
        match code {
            0 => Some(ElemType::I8),
            1 => Some(ElemType::I16),
            2 => Some(ElemType::I32),
            3 => Some(ElemType::I64),
            _ => None,
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for r in Reg::all() {
            let parsed: Reg = r.to_string().parse().unwrap();
            assert_eq!(parsed, r);
        }
    }

    #[test]
    fn reg_rejects_out_of_range() {
        assert!("r64".parse::<Reg>().is_err());
        assert!("r999".parse::<Reg>().is_err());
        assert!("x3".parse::<Reg>().is_err());
        assert!("r".parse::<Reg>().is_err());
        assert!("r-1".parse::<Reg>().is_err());
        assert!(Reg::try_new(64).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_new_panics() {
        let _ = Reg::new(64);
    }

    #[test]
    fn elem_type_geometry() {
        assert_eq!(ElemType::I8.lanes_per_beat(), 8);
        assert_eq!(ElemType::I16.lanes_per_beat(), 4);
        assert_eq!(ElemType::I32.lanes_per_beat(), 2);
        assert_eq!(ElemType::I64.lanes_per_beat(), 1);
        for ty in ElemType::all() {
            assert_eq!(ty.size_bytes() * ty.lanes_per_beat(), 8);
            assert_eq!(ElemType::from_suffix(ty.suffix()), Some(ty));
            assert_eq!(ElemType::from_code(ty.code()), Some(ty));
        }
    }
}

//! Operator enumerations for the vector and scalar pipelines.

use std::fmt;

/// Vertical (element-wise) vector operators (Table II).
///
/// The vertical unit combines corresponding lanes of its two inputs. In
/// `m.v` (matrix-vector) instructions the programmer composes a vertical
/// operator with a [`HorizontalOp`]; `Nop` passes the matrix row through
/// unchanged so that the horizontal unit performs a pure reduction (used,
/// e.g., for max-pooling windows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VerticalOp {
    /// Lane-wise saturating multiply (4-stage pipeline in hardware).
    Mul,
    /// Lane-wise saturating add.
    Add,
    /// Lane-wise saturating subtract.
    Sub,
    /// Lane-wise minimum.
    Min,
    /// Lane-wise maximum.
    Max,
    /// Pass the first operand through (only valid in `m.v` instructions).
    Nop,
}

impl VerticalOp {
    /// The assembler mnemonic fragment.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            VerticalOp::Mul => "mul",
            VerticalOp::Add => "add",
            VerticalOp::Sub => "sub",
            VerticalOp::Min => "min",
            VerticalOp::Max => "max",
            VerticalOp::Nop => "nop",
        }
    }

    /// Whether this operator uses the multiplier array (4-cycle latency,
    /// and the dominant datapath power term — §VII).
    #[must_use]
    pub fn is_multiply(self) -> bool {
        matches!(self, VerticalOp::Mul)
    }

    /// All vertical operators.
    #[must_use]
    pub fn all() -> [VerticalOp; 6] {
        [
            VerticalOp::Mul,
            VerticalOp::Add,
            VerticalOp::Sub,
            VerticalOp::Min,
            VerticalOp::Max,
            VerticalOp::Nop,
        ]
    }

    #[must_use]
    pub(crate) fn code(self) -> u8 {
        match self {
            VerticalOp::Mul => 0,
            VerticalOp::Add => 1,
            VerticalOp::Sub => 2,
            VerticalOp::Min => 3,
            VerticalOp::Max => 4,
            VerticalOp::Nop => 5,
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<Self> {
        Self::all().into_iter().find(|op| op.code() == code)
    }

    pub(crate) fn from_mnemonic(s: &str) -> Option<Self> {
        Self::all().into_iter().find(|op| op.mnemonic() == s)
    }
}

impl fmt::Display for VerticalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Horizontal (reduction) vector operators (Table II).
///
/// The horizontal unit folds the vertical unit's output into a single
/// scalar per matrix row. `Add` composed with `Mul` yields a dot product
/// (sum-product matrix-vector multiply); `Min` composed with `Add` yields
/// the min-sum belief-propagation message update of Equation (1b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HorizontalOp {
    /// Saturating sum reduction.
    Add,
    /// Minimum reduction.
    Min,
    /// Maximum reduction.
    Max,
}

impl HorizontalOp {
    /// The assembler mnemonic fragment.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            HorizontalOp::Add => "add",
            HorizontalOp::Min => "min",
            HorizontalOp::Max => "max",
        }
    }

    /// All horizontal operators.
    #[must_use]
    pub fn all() -> [HorizontalOp; 3] {
        [HorizontalOp::Add, HorizontalOp::Min, HorizontalOp::Max]
    }

    #[must_use]
    pub(crate) fn code(self) -> u8 {
        match self {
            HorizontalOp::Add => 0,
            HorizontalOp::Min => 1,
            HorizontalOp::Max => 2,
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<Self> {
        Self::all().into_iter().find(|op| op.code() == code)
    }

    pub(crate) fn from_mnemonic(s: &str) -> Option<Self> {
        Self::all().into_iter().find(|op| op.mnemonic() == s)
    }
}

impl fmt::Display for HorizontalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Scalar ALU operators (Table II, reg-reg / reg-imm group).
///
/// The scalar unit has a 64-bit datapath and exists to run control flow and
/// address arithmetic in the shadow of long-running vector operations
/// (§III-A). Scalar arithmetic wraps (two's complement), unlike the
/// saturating vector lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarAluOp {
    Add,
    Sub,
    /// Shift left logical.
    Sll,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    And,
    Or,
    Xor,
}

impl ScalarAluOp {
    /// The assembler mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            ScalarAluOp::Add => "add",
            ScalarAluOp::Sub => "sub",
            ScalarAluOp::Sll => "sll",
            ScalarAluOp::Srl => "srl",
            ScalarAluOp::Sra => "sra",
            ScalarAluOp::And => "and",
            ScalarAluOp::Or => "or",
            ScalarAluOp::Xor => "xor",
        }
    }

    /// Evaluates the operator on 64-bit operands (wrapping semantics;
    /// shifts use the low 6 bits of the second operand).
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> u64 {
        let sh = (b & 63) as u32;
        match self {
            ScalarAluOp::Add => a.wrapping_add(b),
            ScalarAluOp::Sub => a.wrapping_sub(b),
            ScalarAluOp::Sll => a << sh,
            ScalarAluOp::Srl => a >> sh,
            ScalarAluOp::Sra => ((a as i64) >> sh) as u64,
            ScalarAluOp::And => a & b,
            ScalarAluOp::Or => a | b,
            ScalarAluOp::Xor => a ^ b,
        }
    }

    /// All scalar ALU operators.
    #[must_use]
    pub fn all() -> [ScalarAluOp; 8] {
        [
            ScalarAluOp::Add,
            ScalarAluOp::Sub,
            ScalarAluOp::Sll,
            ScalarAluOp::Srl,
            ScalarAluOp::Sra,
            ScalarAluOp::And,
            ScalarAluOp::Or,
            ScalarAluOp::Xor,
        ]
    }

    #[must_use]
    pub(crate) fn code(self) -> u8 {
        self.all_index()
    }

    fn all_index(self) -> u8 {
        Self::all().iter().position(|&op| op == self).unwrap() as u8
    }

    pub(crate) fn from_code(code: u8) -> Option<Self> {
        Self::all().get(code as usize).copied()
    }

    pub(crate) fn from_mnemonic(s: &str) -> Option<Self> {
        Self::all().into_iter().find(|op| op.mnemonic() == s)
    }
}

impl fmt::Display for ScalarAluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Conditional-branch comparisons (Table II). Comparisons are signed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Branch if less than (signed).
    Lt,
    /// Branch if greater than or equal (signed).
    Ge,
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
}

impl BranchCond {
    /// The assembler mnemonic (`blt`, `bge`, `beq`, `bne`).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
        }
    }

    /// Evaluates the comparison on two register values.
    #[must_use]
    pub fn eval(self, a: u64, b: u64) -> bool {
        let (a, b) = (a as i64, b as i64);
        match self {
            BranchCond::Lt => a < b,
            BranchCond::Ge => a >= b,
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
        }
    }

    /// All branch conditions.
    #[must_use]
    pub fn all() -> [BranchCond; 4] {
        [
            BranchCond::Lt,
            BranchCond::Ge,
            BranchCond::Eq,
            BranchCond::Ne,
        ]
    }

    #[must_use]
    pub(crate) fn code(self) -> u8 {
        match self {
            BranchCond::Lt => 0,
            BranchCond::Ge => 1,
            BranchCond::Eq => 2,
            BranchCond::Ne => 3,
        }
    }

    pub(crate) fn from_code(code: u8) -> Option<Self> {
        Self::all().into_iter().find(|c| c.code() == code)
    }

    pub(crate) fn from_mnemonic(s: &str) -> Option<Self> {
        Self::all().into_iter().find(|c| c.mnemonic() == s)
    }
}

impl fmt::Display for BranchCond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_alu_semantics() {
        assert_eq!(ScalarAluOp::Add.eval(u64::MAX, 1), 0);
        assert_eq!(ScalarAluOp::Sub.eval(0, 1), u64::MAX);
        assert_eq!(ScalarAluOp::Sll.eval(1, 8), 256);
        assert_eq!(ScalarAluOp::Srl.eval(u64::MAX, 63), 1);
        assert_eq!(ScalarAluOp::Sra.eval(u64::MAX, 63), u64::MAX);
        assert_eq!(ScalarAluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(ScalarAluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(ScalarAluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        // Shift amounts use only the low six bits.
        assert_eq!(ScalarAluOp::Sll.eval(1, 64), 1);
    }

    #[test]
    fn branch_cond_is_signed() {
        let minus_one = (-1i64) as u64;
        assert!(BranchCond::Lt.eval(minus_one, 0));
        assert!(!BranchCond::Ge.eval(minus_one, 0));
        assert!(BranchCond::Eq.eval(7, 7));
        assert!(BranchCond::Ne.eval(7, 8));
    }

    #[test]
    fn mnemonic_roundtrip() {
        for op in VerticalOp::all() {
            assert_eq!(VerticalOp::from_mnemonic(op.mnemonic()), Some(op));
            assert_eq!(VerticalOp::from_code(op.code()), Some(op));
        }
        for op in HorizontalOp::all() {
            assert_eq!(HorizontalOp::from_mnemonic(op.mnemonic()), Some(op));
            assert_eq!(HorizontalOp::from_code(op.code()), Some(op));
        }
        for op in ScalarAluOp::all() {
            assert_eq!(ScalarAluOp::from_mnemonic(op.mnemonic()), Some(op));
            assert_eq!(ScalarAluOp::from_code(op.code()), Some(op));
        }
        for c in BranchCond::all() {
            assert_eq!(BranchCond::from_mnemonic(c.mnemonic()), Some(c));
            assert_eq!(BranchCond::from_code(c.code()), Some(c));
        }
    }
}

//! The VIP instruction representation (Table II).

use std::fmt;

use crate::ops::{BranchCond, HorizontalOp, ScalarAluOp, VerticalOp};
use crate::types::{ElemType, Reg};

/// One VIP instruction.
///
/// Instructions fall into three groups, dispatched by the unified decode
/// stage to independent back-end pipelines (§III-B, Figure 1):
///
/// * **vector** — `set.vl` / `set.mr` / `v.drain` configuration, `m.v.*.*`
///   matrix-vector, `v.v.*` vector-vector, and `v.s.*` vector-scalar
///   operations. Vector operands are *scratchpad addresses* held in scalar
///   registers (the vector memory-memory paradigm, §III-A);
/// * **scalar** — 64-bit ALU operations, moves, and control flow;
/// * **load-store** — transfers between DRAM and either the scratchpad
///   (`ld.sram` / `st.sram`) or scalar registers (`ld.reg` / `st.reg`),
///   plus `memfence`. `ld.reg.fe` / `st.reg.ff` are the full-empty
///   synchronization accesses the paper's software design relies on
///   (§IV-A); they execute atomically at the vault controller.
///
/// Branch targets are absolute instruction-buffer indices; the assembler
/// and [`Asm`](crate::Asm) builder resolve labels to indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    // ---- vector configuration ----
    /// `set.vl rs` — set the vector length (in elements) from a scalar
    /// register.
    SetVl { rs: Reg },
    /// `set.mr rs` — set the matrix row count for `m.v` operations from a
    /// scalar register.
    SetMr { rs: Reg },
    /// `v.drain` — stall issue until the vector pipeline is empty
    /// (conservative hazard avoidance, §III-A).
    VDrain,

    // ---- vector operations (operands are scratchpad addresses in regs) ----
    /// `m.v.<vop>.<hop>.<ty> rd, rs_mat, rs_vec` — for each of the `mr`
    /// matrix rows starting at scratchpad address `rs_mat`, combine the row
    /// with the vector at `rs_vec` using `vop`, reduce with `hop`, and
    /// write the `mr` scalar results contiguously at scratchpad address
    /// `rd` (the f₆-category operation of §II-E).
    MatVec {
        vop: VerticalOp,
        hop: HorizontalOp,
        ty: ElemType,
        rd: Reg,
        rs_mat: Reg,
        rs_vec: Reg,
    },
    /// `v.v.<op>.<ty> rd, rs1, rs2` — element-wise operation between two
    /// scratchpad vectors (f₃ category).
    VecVec {
        op: VerticalOp,
        ty: ElemType,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `v.s.<op>.<ty> rd, rs_vec, rs_scalar` — element-wise operation
    /// between a scratchpad vector and a broadcast scalar register value
    /// (f₄ category).
    VecScalar {
        op: VerticalOp,
        ty: ElemType,
        rd: Reg,
        rs_vec: Reg,
        rs_scalar: Reg,
    },

    // ---- scalar ----
    /// `<op> rd, rs1, rs2` — register-register scalar ALU operation.
    Scalar {
        op: ScalarAluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `<op>i rd, rs1, imm` — register-immediate scalar ALU operation.
    ScalarImm {
        op: ScalarAluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// `mov rd, rs` — register move.
    Mov { rd: Reg, rs: Reg },
    /// `mov.imm rd, imm` — load a sign-extended immediate.
    MovImm { rd: Reg, imm: i64 },
    /// `b<cond> rs1, rs2, target` — conditional branch to an absolute
    /// instruction index.
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: u32,
    },
    /// `jmp target` — unconditional jump to an absolute instruction index.
    Jmp { target: u32 },

    // ---- load-store ----
    /// `ld.sram.<ty> rd_sp, rs_addr, rs_len` — copy `rs_len` elements from
    /// DRAM address `rs_addr` into scratchpad address `rd_sp`. Creates an
    /// ARC entry covering the destination range until completion.
    LdSram {
        ty: ElemType,
        rd_sp: Reg,
        rs_addr: Reg,
        rs_len: Reg,
    },
    /// `st.sram.<ty> rs_sp, rs_addr, rs_len` — copy `rs_len` elements from
    /// scratchpad address `rs_sp` to DRAM address `rs_addr`.
    StSram {
        ty: ElemType,
        rs_sp: Reg,
        rs_addr: Reg,
        rs_len: Reg,
    },
    /// `ld.reg rd, rs_addr` — load a 64-bit word from DRAM into a scalar
    /// register.
    LdReg { rd: Reg, rs_addr: Reg },
    /// `st.reg rs, rs_addr` — store a scalar register to DRAM.
    StReg { rs: Reg, rs_addr: Reg },
    /// `ld.reg.fe rd, rs_addr` — full-empty load: blocks until the word's
    /// full bit is set, reads it, and atomically clears the bit.
    LdRegFe { rd: Reg, rs_addr: Reg },
    /// `st.reg.ff rs, rs_addr` — full-empty store: blocks until the word's
    /// full bit is clear, writes it, and atomically sets the bit.
    StRegFf { rs: Reg, rs_addr: Reg },
    /// `memfence` — stall issue until all outstanding loads and stores
    /// from this PE have completed.
    MemFence,

    // ---- miscellany ----
    /// `nop` — consume an issue slot.
    Nop,
    /// `halt` — terminate this PE's program.
    Halt,
}

/// Which back-end pipeline an instruction is dispatched to (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipeline {
    /// Vector pipeline (vertical + horizontal units) and its configuration.
    Vector,
    /// Scalar ALU and control flow.
    Scalar,
    /// Load-store unit.
    LoadStore,
    /// Front-end only (`nop`, `halt`, `v.drain`, `memfence` are resolved at
    /// decode/issue).
    FrontEnd,
}

impl Instruction {
    /// The pipeline this instruction is dispatched to.
    #[must_use]
    pub fn pipeline(&self) -> Pipeline {
        use Instruction::*;
        match self {
            SetVl { .. } | SetMr { .. } | MatVec { .. } | VecVec { .. } | VecScalar { .. } => {
                Pipeline::Vector
            }
            Scalar { .. }
            | ScalarImm { .. }
            | Mov { .. }
            | MovImm { .. }
            | Branch { .. }
            | Jmp { .. } => Pipeline::Scalar,
            LdSram { .. }
            | StSram { .. }
            | LdReg { .. }
            | StReg { .. }
            | LdRegFe { .. }
            | StRegFf { .. } => Pipeline::LoadStore,
            VDrain | MemFence | Nop | Halt => Pipeline::FrontEnd,
        }
    }

    /// Scalar registers read by this instruction.
    #[must_use]
    pub fn reads(&self) -> Vec<Reg> {
        use Instruction::*;
        match *self {
            SetVl { rs } | SetMr { rs } => vec![rs],
            MatVec {
                rd, rs_mat, rs_vec, ..
            } => vec![rd, rs_mat, rs_vec],
            VecVec { rd, rs1, rs2, .. } => vec![rd, rs1, rs2],
            VecScalar {
                rd,
                rs_vec,
                rs_scalar,
                ..
            } => vec![rd, rs_vec, rs_scalar],
            Scalar { rs1, rs2, .. } => vec![rs1, rs2],
            ScalarImm { rs1, .. } => vec![rs1],
            Mov { rs, .. } => vec![rs],
            MovImm { .. } => vec![],
            Branch { rs1, rs2, .. } => vec![rs1, rs2],
            Jmp { .. } => vec![],
            LdSram {
                rd_sp,
                rs_addr,
                rs_len,
                ..
            } => vec![rd_sp, rs_addr, rs_len],
            StSram {
                rs_sp,
                rs_addr,
                rs_len,
                ..
            } => vec![rs_sp, rs_addr, rs_len],
            LdReg { rs_addr, .. } => vec![rs_addr],
            StReg { rs, rs_addr } | StRegFf { rs, rs_addr } => vec![rs, rs_addr],
            LdRegFe { rs_addr, .. } => vec![rs_addr],
            VDrain | MemFence | Nop | Halt => vec![],
        }
    }

    /// The scalar register written by this instruction, if any.
    ///
    /// Note that vector instructions write the *scratchpad*, not scalar
    /// registers; their `rd` operand is read (it holds the destination
    /// scratchpad address).
    #[must_use]
    pub fn writes(&self) -> Option<Reg> {
        use Instruction::*;
        match *self {
            Scalar { rd, .. }
            | ScalarImm { rd, .. }
            | Mov { rd, .. }
            | MovImm { rd, .. }
            | LdReg { rd, .. }
            | LdRegFe { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Whether this is a control-flow instruction.
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(self, Instruction::Branch { .. } | Instruction::Jmp { .. })
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Instruction::*;
        match *self {
            SetVl { rs } => write!(f, "set.vl {rs}"),
            SetMr { rs } => write!(f, "set.mr {rs}"),
            VDrain => write!(f, "v.drain"),
            MatVec {
                vop,
                hop,
                ty,
                rd,
                rs_mat,
                rs_vec,
            } => {
                write!(f, "m.v.{vop}.{hop}.{ty} {rd}, {rs_mat}, {rs_vec}")
            }
            VecVec {
                op,
                ty,
                rd,
                rs1,
                rs2,
            } => write!(f, "v.v.{op}.{ty} {rd}, {rs1}, {rs2}"),
            VecScalar {
                op,
                ty,
                rd,
                rs_vec,
                rs_scalar,
            } => {
                write!(f, "v.s.{op}.{ty} {rd}, {rs_vec}, {rs_scalar}")
            }
            Scalar { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            ScalarImm { op, rd, rs1, imm } => write!(f, "{op}i {rd}, {rs1}, {imm}"),
            Mov { rd, rs } => write!(f, "mov {rd}, {rs}"),
            MovImm { rd, imm } => write!(f, "mov.imm {rd}, {imm}"),
            Branch {
                cond,
                rs1,
                rs2,
                target,
            } => write!(f, "{cond} {rs1}, {rs2}, {target}"),
            Jmp { target } => write!(f, "jmp {target}"),
            LdSram {
                ty,
                rd_sp,
                rs_addr,
                rs_len,
            } => {
                write!(f, "ld.sram.{ty} {rd_sp}, {rs_addr}, {rs_len}")
            }
            StSram {
                ty,
                rs_sp,
                rs_addr,
                rs_len,
            } => {
                write!(f, "st.sram.{ty} {rs_sp}, {rs_addr}, {rs_len}")
            }
            LdReg { rd, rs_addr } => write!(f, "ld.reg {rd}, {rs_addr}"),
            StReg { rs, rs_addr } => write!(f, "st.reg {rs}, {rs_addr}"),
            LdRegFe { rd, rs_addr } => write!(f, "ld.reg.fe {rd}, {rs_addr}"),
            StRegFf { rs, rs_addr } => write!(f, "st.reg.ff {rs}, {rs_addr}"),
            MemFence => write!(f, "memfence"),
            Nop => write!(f, "nop"),
            Halt => write!(f, "halt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn display_matches_figure2_style() {
        let inst = Instruction::MatVec {
            vop: VerticalOp::Add,
            hop: HorizontalOp::Min,
            ty: ElemType::I16,
            rd: r(10),
            rs_mat: r(15),
            rs_vec: r(11),
        };
        assert_eq!(inst.to_string(), "m.v.add.min.i16 r10, r15, r11");
    }

    #[test]
    fn pipelines() {
        assert_eq!(Instruction::VDrain.pipeline(), Pipeline::FrontEnd);
        assert_eq!(Instruction::SetVl { rs: r(1) }.pipeline(), Pipeline::Vector);
        assert_eq!(
            Instruction::Mov { rd: r(1), rs: r(2) }.pipeline(),
            Pipeline::Scalar
        );
        assert_eq!(Instruction::MemFence.pipeline(), Pipeline::FrontEnd);
        assert_eq!(
            Instruction::LdReg {
                rd: r(1),
                rs_addr: r(2)
            }
            .pipeline(),
            Pipeline::LoadStore
        );
    }

    #[test]
    fn read_write_sets() {
        let ld = Instruction::LdSram {
            ty: ElemType::I16,
            rd_sp: r(11),
            rs_addr: r(7),
            rs_len: r(61),
        };
        assert_eq!(ld.reads(), vec![r(11), r(7), r(61)]);
        assert_eq!(ld.writes(), None);

        let add = Instruction::ScalarImm {
            op: ScalarAluOp::Add,
            rd: r(3),
            rs1: r(4),
            imm: 1,
        };
        assert_eq!(add.reads(), vec![r(4)]);
        assert_eq!(add.writes(), Some(r(3)));

        // Vector instructions read their "destination" register: it holds a
        // scratchpad address.
        let vv = Instruction::VecVec {
            op: VerticalOp::Add,
            ty: ElemType::I16,
            rd: r(1),
            rs1: r(2),
            rs2: r(3),
        };
        assert_eq!(vv.writes(), None);
        assert!(vv.reads().contains(&r(1)));
    }
}

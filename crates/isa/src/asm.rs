//! Two-pass text assembler for VIP assembly.
//!
//! The accepted syntax follows the paper's Figure 2 with explicit element
//! type suffixes:
//!
//! ```text
//! ; min-sum BP message update (Figure 2)
//!         ld.sram.i16 r11, r7, r61      ; load messages
//!         v.v.add.i16 r11, r11, r12     ; update message
//!         m.v.add.min.i16 r10, r15, r11 ; r15 = smoothness cost
//!         st.sram.i16 r10, r14, r61
//!         halt
//! ```
//!
//! Labels are `name:` definitions; branch/jump operands may be a label or a
//! literal instruction index. Comments start with `;` or `#`.

use std::fmt;

use crate::inst::Instruction;
use crate::ops::{BranchCond, HorizontalOp, ScalarAluOp, VerticalOp};
use crate::program::Program;
use crate::types::{ElemType, Reg};
use crate::INST_BUFFER_ENTRIES;

/// Errors produced by the text assembler and the [`Asm`](crate::Asm)
/// builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A line failed to parse.
    Parse {
        /// 1-based source line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// A label was defined more than once.
    DuplicateLabel {
        /// The offending label.
        label: String,
    },
    /// A branch or jump referenced an undefined label.
    UnknownLabel {
        /// The unresolved label.
        label: String,
    },
    /// The program does not fit the 1,024-entry instruction buffer.
    ProgramTooLong {
        /// Number of instructions in the over-long program.
        len: usize,
    },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            AsmError::DuplicateLabel { label } => write!(f, "label `{label}` defined twice"),
            AsmError::UnknownLabel { label } => write!(f, "unknown label `{label}`"),
            AsmError::ProgramTooLong { len } => write!(
                f,
                "program has {len} instructions; the instruction buffer holds {INST_BUFFER_ENTRIES}"
            ),
        }
    }
}

impl std::error::Error for AsmError {}

/// A statement recognized by the first pass.
#[derive(Debug)]
enum Stmt {
    Inst {
        line: usize,
        mnemonic: String,
        operands: Vec<String>,
    },
    Label {
        name: String,
    },
}

fn strip_comment(line: &str) -> &str {
    match line.find([';', '#']) {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn tokenize(source: &str) -> Vec<Stmt> {
    let mut stmts = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let mut text = strip_comment(raw).trim();
        // Allow `label: inst ...` on one line.
        while let Some(colon) = text.find(':') {
            let (name, rest) = text.split_at(colon);
            let name = name.trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                break;
            }
            stmts.push(Stmt::Label {
                name: name.to_owned(),
            });
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let mut parts = text.split_whitespace();
        let mnemonic = parts.next().expect("non-empty").to_owned();
        let rest: String = parts.collect::<Vec<_>>().join(" ");
        let operands = rest
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
        stmts.push(Stmt::Inst {
            line,
            mnemonic,
            operands,
        });
    }
    stmts
}

struct Parser<'a> {
    line: usize,
    mnemonic: &'a str,
    operands: &'a [String],
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> AsmError {
        AsmError::Parse {
            line: self.line,
            msg: msg.into(),
        }
    }

    fn expect_operands(&self, n: usize) -> Result<(), AsmError> {
        if self.operands.len() == n {
            Ok(())
        } else {
            Err(self.err(format!(
                "`{}` expects {n} operand(s), found {}",
                self.mnemonic,
                self.operands.len()
            )))
        }
    }

    fn reg(&self, i: usize) -> Result<Reg, AsmError> {
        self.operands[i]
            .parse()
            .map_err(|e: crate::types::RegParseError| self.err(e.to_string()))
    }

    fn imm(&self, i: usize) -> Result<i64, AsmError> {
        let s = &self.operands[i];
        let parsed = if let Some(hex) = s.strip_prefix("0x") {
            i64::from_str_radix(hex, 16)
        } else if let Some(hex) = s.strip_prefix("-0x") {
            i64::from_str_radix(hex, 16).map(|v| -v)
        } else {
            s.parse()
        };
        parsed.map_err(|_| self.err(format!("invalid immediate `{s}`")))
    }
}

/// A branch target: either already numeric or a label for pass two.
#[derive(Debug)]
enum PendingTarget {
    Index(u32),
    Label(String),
}

#[derive(Debug)]
enum PendingInst {
    Done(Instruction),
    Branch {
        cond: BranchCond,
        rs1: Reg,
        rs2: Reg,
        target: PendingTarget,
        line: usize,
    },
    Jmp {
        target: PendingTarget,
        line: usize,
    },
}

fn parse_target(p: &Parser<'_>, i: usize) -> PendingTarget {
    let s = &p.operands[i];
    match s.parse::<u32>() {
        Ok(idx) => PendingTarget::Index(idx),
        Err(_) => PendingTarget::Label(s.clone()),
    }
}

fn parse_inst(p: &Parser<'_>) -> Result<PendingInst, AsmError> {
    let pieces: Vec<&str> = p.mnemonic.split('.').collect();
    let inst = match pieces.as_slice() {
        ["set", "vl"] => {
            p.expect_operands(1)?;
            Instruction::SetVl { rs: p.reg(0)? }
        }
        ["set", "mr"] => {
            p.expect_operands(1)?;
            Instruction::SetMr { rs: p.reg(0)? }
        }
        ["v", "drain"] => {
            p.expect_operands(0)?;
            Instruction::VDrain
        }
        ["m", "v", vop, hop, ty] => {
            p.expect_operands(3)?;
            let vop = VerticalOp::from_mnemonic(vop)
                .ok_or_else(|| p.err(format!("unknown vertical op `{vop}`")))?;
            let hop = HorizontalOp::from_mnemonic(hop)
                .ok_or_else(|| p.err(format!("unknown horizontal op `{hop}`")))?;
            let ty = ElemType::from_suffix(ty)
                .ok_or_else(|| p.err(format!("unknown element type `{ty}`")))?;
            Instruction::MatVec {
                vop,
                hop,
                ty,
                rd: p.reg(0)?,
                rs_mat: p.reg(1)?,
                rs_vec: p.reg(2)?,
            }
        }
        ["v", kind @ ("v" | "s"), op, ty] => {
            p.expect_operands(3)?;
            let op = VerticalOp::from_mnemonic(op)
                .filter(|&op| op != VerticalOp::Nop)
                .ok_or_else(|| p.err(format!("unknown vector op `{op}`")))?;
            let ty = ElemType::from_suffix(ty)
                .ok_or_else(|| p.err(format!("unknown element type `{ty}`")))?;
            if *kind == "v" {
                Instruction::VecVec {
                    op,
                    ty,
                    rd: p.reg(0)?,
                    rs1: p.reg(1)?,
                    rs2: p.reg(2)?,
                }
            } else {
                Instruction::VecScalar {
                    op,
                    ty,
                    rd: p.reg(0)?,
                    rs_vec: p.reg(1)?,
                    rs_scalar: p.reg(2)?,
                }
            }
        }
        ["mov"] => {
            p.expect_operands(2)?;
            Instruction::Mov {
                rd: p.reg(0)?,
                rs: p.reg(1)?,
            }
        }
        ["mov", "imm"] => {
            p.expect_operands(2)?;
            Instruction::MovImm {
                rd: p.reg(0)?,
                imm: p.imm(1)?,
            }
        }
        ["jmp"] => {
            p.expect_operands(1)?;
            return Ok(PendingInst::Jmp {
                target: parse_target(p, 0),
                line: p.line,
            });
        }
        ["ld", "sram", ty] => {
            p.expect_operands(3)?;
            let ty = ElemType::from_suffix(ty)
                .ok_or_else(|| p.err(format!("unknown element type `{ty}`")))?;
            Instruction::LdSram {
                ty,
                rd_sp: p.reg(0)?,
                rs_addr: p.reg(1)?,
                rs_len: p.reg(2)?,
            }
        }
        ["st", "sram", ty] => {
            p.expect_operands(3)?;
            let ty = ElemType::from_suffix(ty)
                .ok_or_else(|| p.err(format!("unknown element type `{ty}`")))?;
            Instruction::StSram {
                ty,
                rs_sp: p.reg(0)?,
                rs_addr: p.reg(1)?,
                rs_len: p.reg(2)?,
            }
        }
        ["ld", "reg"] => {
            p.expect_operands(2)?;
            Instruction::LdReg {
                rd: p.reg(0)?,
                rs_addr: p.reg(1)?,
            }
        }
        ["st", "reg"] => {
            p.expect_operands(2)?;
            Instruction::StReg {
                rs: p.reg(0)?,
                rs_addr: p.reg(1)?,
            }
        }
        ["ld", "reg", "fe"] => {
            p.expect_operands(2)?;
            Instruction::LdRegFe {
                rd: p.reg(0)?,
                rs_addr: p.reg(1)?,
            }
        }
        ["st", "reg", "ff"] => {
            p.expect_operands(2)?;
            Instruction::StRegFf {
                rs: p.reg(0)?,
                rs_addr: p.reg(1)?,
            }
        }
        ["memfence"] => {
            p.expect_operands(0)?;
            Instruction::MemFence
        }
        ["nop"] => {
            p.expect_operands(0)?;
            Instruction::Nop
        }
        ["halt"] => {
            p.expect_operands(0)?;
            Instruction::Halt
        }
        [one] => {
            // Scalar ALU (`add r1, r2, r3`), immediate form (`addi`), or a
            // branch (`blt r1, r2, target`).
            if let Some(cond) = BranchCond::from_mnemonic(one) {
                p.expect_operands(3)?;
                return Ok(PendingInst::Branch {
                    cond,
                    rs1: p.reg(0)?,
                    rs2: p.reg(1)?,
                    target: parse_target(p, 2),
                    line: p.line,
                });
            }
            if let Some(base) = one.strip_suffix('i') {
                if let Some(op) = ScalarAluOp::from_mnemonic(base) {
                    p.expect_operands(3)?;
                    let imm = p.imm(2)?;
                    let imm = i32::try_from(imm)
                        .map_err(|_| p.err(format!("immediate `{imm}` out of i32 range")))?;
                    return Ok(PendingInst::Done(Instruction::ScalarImm {
                        op,
                        rd: p.reg(0)?,
                        rs1: p.reg(1)?,
                        imm,
                    }));
                }
            }
            if let Some(op) = ScalarAluOp::from_mnemonic(one) {
                p.expect_operands(3)?;
                Instruction::Scalar {
                    op,
                    rd: p.reg(0)?,
                    rs1: p.reg(1)?,
                    rs2: p.reg(2)?,
                }
            } else {
                return Err(p.err(format!("unknown mnemonic `{one}`")));
            }
        }
        _ => return Err(p.err(format!("unknown mnemonic `{}`", p.mnemonic))),
    };
    Ok(PendingInst::Done(inst))
}

/// Assembles VIP assembly text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] describing the first problem found: a parse
/// error with its line number, a duplicate or unknown label, or a program
/// that exceeds the instruction buffer.
///
/// ```
/// let p = vip_isa::assemble("mov.imm r1, 7\nhalt")?;
/// assert_eq!(p.len(), 2);
/// # Ok::<(), vip_isa::AsmError>(())
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let stmts = tokenize(source);

    // Pass 1: compute label positions and parse instructions.
    let mut labels = std::collections::HashMap::new();
    let mut pending = Vec::new();
    for stmt in &stmts {
        match stmt {
            Stmt::Label { name } => {
                if labels.insert(name.clone(), pending.len() as u32).is_some() {
                    return Err(AsmError::DuplicateLabel {
                        label: name.clone(),
                    });
                }
            }
            Stmt::Inst {
                line,
                mnemonic,
                operands,
            } => {
                let parser = Parser {
                    line: *line,
                    mnemonic,
                    operands,
                };
                pending.push(parse_inst(&parser)?);
            }
        }
    }
    if pending.len() > INST_BUFFER_ENTRIES {
        return Err(AsmError::ProgramTooLong { len: pending.len() });
    }

    // Pass 2: resolve targets.
    let len = pending.len() as u32;
    let resolve = |target: &PendingTarget, line: usize| -> Result<u32, AsmError> {
        let idx = match target {
            PendingTarget::Index(i) => *i,
            PendingTarget::Label(l) => *labels
                .get(l)
                .ok_or_else(|| AsmError::UnknownLabel { label: l.clone() })?,
        };
        if idx >= len {
            return Err(AsmError::Parse {
                line,
                msg: format!("branch target {idx} is past the end of the program"),
            });
        }
        Ok(idx)
    };
    let insts = pending
        .iter()
        .map(|pi| {
            Ok(match pi {
                PendingInst::Done(i) => *i,
                PendingInst::Branch {
                    cond,
                    rs1,
                    rs2,
                    target,
                    line,
                } => Instruction::Branch {
                    cond: *cond,
                    rs1: *rs1,
                    rs2: *rs2,
                    target: resolve(target, *line)?,
                },
                PendingInst::Jmp { target, line } => Instruction::Jmp {
                    target: resolve(target, *line)?,
                },
            })
        })
        .collect::<Result<Vec<_>, AsmError>>()?;
    Ok(Program::new(insts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_fragment_assembles() {
        let p = assemble(
            "; Figure 2: min-sum BP message update
             ld.sram.i16 r11, r7, r61   ; load messages
             ld.sram.i16 r12, r8, r61
             ld.sram.i16 r13, r9, r61
             v.v.add.i16 r11, r11, r12  ; update message
             v.v.add.i16 r11, r11, r13
             m.v.add.min.i16 r10, r15, r11
             st.sram.i16 r10, r14, r61
             halt",
        )
        .unwrap();
        assert_eq!(p.len(), 8);
        assert_eq!(p[5].to_string(), "m.v.add.min.i16 r10, r15, r11");
    }

    #[test]
    fn labels_and_loops() {
        let p = assemble(
            "mov.imm r1, 0
             mov.imm r2, 4
             loop: addi r1, r1, 1
             blt r1, r2, loop
             halt",
        )
        .unwrap();
        assert_eq!(
            p[3],
            Instruction::Branch {
                cond: BranchCond::Lt,
                rs1: Reg::new(1),
                rs2: Reg::new(2),
                target: 2,
            }
        );
    }

    #[test]
    fn label_on_own_line_and_numeric_target() {
        let p = assemble("start:\nnop\njmp 0\nhalt").unwrap();
        assert_eq!(p[1], Instruction::Jmp { target: 0 });
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn display_roundtrips_through_assembler() {
        let src = "set.vl r61
            m.v.mul.add.i16 r1, r2, r3
            v.s.max.i16 r4, r5, r6
            sra r7, r8, r9
            addi r1, r1, -4
            mov.imm r3, 0x10
            ld.reg.fe r1, r2
            st.reg.ff r1, r2
            memfence
            v.drain
            halt";
        let p1 = assemble(src).unwrap();
        let listing: String = p1.iter().map(|i| format!("{i}\n")).collect();
        let p2 = assemble(&listing).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("nop\nbogus r1, r2").unwrap_err();
        assert!(matches!(err, AsmError::Parse { line: 2, .. }), "{err:?}");
    }

    #[test]
    fn duplicate_and_unknown_labels() {
        assert!(matches!(
            assemble("a:\na:\nnop").unwrap_err(),
            AsmError::DuplicateLabel { .. }
        ));
        assert!(matches!(
            assemble("jmp nowhere").unwrap_err(),
            AsmError::UnknownLabel { .. }
        ));
    }

    #[test]
    fn out_of_range_target() {
        let err = assemble("jmp 9").unwrap_err();
        assert!(matches!(err, AsmError::Parse { .. }));
    }

    #[test]
    fn operand_count_checked() {
        assert!(assemble("add r1, r2").is_err());
        assert!(assemble("v.drain r1").is_err());
        assert!(assemble("mov r1").is_err());
    }

    #[test]
    fn hex_immediates() {
        let p = assemble("mov.imm r1, 0xff\nmov.imm r2, -0x10\nhalt").unwrap();
        assert_eq!(
            p[0],
            Instruction::MovImm {
                rd: Reg::new(1),
                imm: 255
            }
        );
        assert_eq!(
            p[1],
            Instruction::MovImm {
                rd: Reg::new(2),
                imm: -16
            }
        );
    }
}

//! # vip-isa — the VIP instruction set
//!
//! This crate defines the instruction set of the Versatile Inference
//! Processor (VIP) from *"VIP: A Versatile Inference Processor"* (Hurkat &
//! Martínez, HPCA 2019), Table II, together with everything needed to write,
//! inspect, and execute VIP programs:
//!
//! * [`Instruction`] — the typed instruction representation, covering the
//!   vector (`m.v.*`, `v.v.*`, `v.s.*`), scalar, and load-store groups;
//! * [`Program`] — an assembled instruction sequence that fits the PE's
//!   1,024-entry instruction buffer;
//! * [`Asm`] — a label-aware program builder for generating code from Rust;
//! * [`assemble`] — a two-pass text assembler accepting the syntax used in
//!   the paper's Figure 2 (e.g. `m.v.add.min.i16 r10, r15, r11`);
//! * [`encode`](Instruction::encode) / [`decode`](Instruction::decode) — a
//!   fixed-width 64-bit binary encoding with round-trip guarantees;
//! * [`alu`] — the *exact* arithmetic semantics of the 64-bit sub-word
//!   datapath (saturating fixed-point lanes), shared by the cycle-level
//!   simulator and the golden reference kernels so that simulated results
//!   are bit-identical to the references.
//!
//! ## Example
//!
//! Assemble and inspect the min-sum belief-propagation message update from
//! the paper's Figure 2:
//!
//! ```
//! use vip_isa::{assemble, Instruction};
//!
//! # fn main() -> Result<(), vip_isa::AsmError> {
//! let program = assemble(
//!     "ld.sram.i16 r11, r7, r61
//!      v.v.add.i16 r11, r11, r12
//!      m.v.add.min.i16 r10, r15, r11
//!      st.sram.i16 r10, r14, r61
//!      halt",
//! )?;
//! assert_eq!(program.len(), 5);
//! assert!(matches!(program[2], Instruction::MatVec { .. }));
//! # Ok(())
//! # }
//! ```

pub mod alu;
mod asm;
mod block;
mod builder;
mod encode;
mod inst;
mod ops;
mod program;
mod trap;
mod types;

pub use asm::{assemble, AsmError};
pub use block::{program_fingerprint, scan_block, Block, BlockEnd};
pub use builder::Asm;
pub use encode::{DecodeError, EncodeError};
pub use inst::Instruction;
pub use ops::{BranchCond, HorizontalOp, ScalarAluOp, VerticalOp};
pub use program::Program;
pub use trap::Trap;
pub use types::{ElemType, Reg, RegParseError, NUM_REGS};

/// Capacity of a PE's instruction buffer, in instructions (§III-B).
pub const INST_BUFFER_ENTRIES: usize = 1024;

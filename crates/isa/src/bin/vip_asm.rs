//! `vip-asm` — a command-line assembler/disassembler for VIP programs.
//!
//! ```sh
//! # Assemble a source file to 64-bit instruction words (hex, one per line):
//! cargo run -p vip-isa --bin vip_asm -- assemble kernel.s
//!
//! # Disassemble hex words back to a listing:
//! cargo run -p vip-isa --bin vip_asm -- disassemble kernel.hex
//!
//! # Check a source file and print its listing:
//! cargo run -p vip-isa --bin vip_asm -- check kernel.s
//! ```

use std::process::ExitCode;

use vip_isa::{assemble, Instruction};

fn usage() -> ExitCode {
    eprintln!("usage: vip_asm <assemble|disassemble|check> <file>");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [mode, path] = args.as_slice() else {
        return usage();
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("vip_asm: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match mode.as_str() {
        "assemble" => match assemble(&source) {
            Ok(program) => {
                for inst in &program {
                    match inst.encode() {
                        Ok(word) => println!("{word:016x}"),
                        Err(e) => {
                            eprintln!("vip_asm: {e}");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("vip_asm: {path}: {e}");
                ExitCode::FAILURE
            }
        },
        "disassemble" => {
            for (i, line) in source.lines().enumerate() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let word = match u64::from_str_radix(line, 16) {
                    Ok(w) => w,
                    Err(e) => {
                        eprintln!("vip_asm: {path}:{}: bad hex `{line}`: {e}", i + 1);
                        return ExitCode::FAILURE;
                    }
                };
                match Instruction::decode(word) {
                    Ok(inst) => println!("{inst}"),
                    Err(e) => {
                        eprintln!("vip_asm: {path}:{}: {e}", i + 1);
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        "check" => match assemble(&source) {
            Ok(program) => {
                print!("{program}");
                eprintln!(
                    "{path}: {} instructions ({} buffer slots free)",
                    program.len(),
                    vip_isa::INST_BUFFER_ENTRIES - program.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("vip_asm: {path}: {e}");
                ExitCode::FAILURE
            }
        },
        _ => usage(),
    }
}

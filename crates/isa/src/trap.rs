//! Architectural trap classification.
//!
//! The ISA promises nothing about out-of-range accesses: the paper's PE
//! has no precise exceptions (§III-B), so an out-of-bounds scratchpad
//! operand or a misaligned `ld.reg` is a *program bug*, not defined
//! behaviour. Both executable models of the ISA — the cycle-level PE in
//! `vip-core` and the architectural interpreter in `vip-ref` — must
//! reject exactly the same programs, so the classification of what is
//! rejected lives here, next to the instruction definitions, and both
//! sides call the same checks. The cycle-level PE panics on a trap (a
//! codegen bug should abort the simulation); the interpreter returns it
//! as an error so the fuzzing harness can report it.

use std::fmt;

/// An architectural trap: a condition under which a VIP program is
/// illegal and execution cannot continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trap {
    /// A vector or load-store operand range runs past the scratchpad.
    ScratchpadOutOfBounds {
        /// First byte of the offending range.
        addr: usize,
        /// Length of the range in bytes.
        len: usize,
        /// Scratchpad capacity in bytes.
        capacity: usize,
    },
    /// A `ld.reg`/`st.reg` (or full-empty) DRAM address is not 8-byte
    /// aligned.
    MisalignedRegAccess {
        /// The offending DRAM address.
        addr: u64,
    },
    /// `set.vl` of zero (programs must configure a positive length).
    ZeroVectorLength,
    /// `set.mr` of zero.
    ZeroMatRows,
}

impl Trap {
    /// Checks a scratchpad operand range against the capacity.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::ScratchpadOutOfBounds`] if `[addr, addr+len)`
    /// does not fit in `capacity` bytes.
    pub fn check_sp_range(addr: usize, len: usize, capacity: usize) -> Result<(), Trap> {
        if addr.checked_add(len).is_some_and(|end| end <= capacity) {
            Ok(())
        } else {
            Err(Trap::ScratchpadOutOfBounds {
                addr,
                len,
                capacity,
            })
        }
    }

    /// Checks a register load-store DRAM address for 8-byte alignment.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::MisalignedRegAccess`] if `addr % 8 != 0`.
    pub fn check_reg_addr(addr: u64) -> Result<(), Trap> {
        if addr.is_multiple_of(8) {
            Ok(())
        } else {
            Err(Trap::MisalignedRegAccess { addr })
        }
    }

    /// Checks a `set.vl` operand.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::ZeroVectorLength`] if `vl == 0`.
    pub fn check_vl(vl: usize) -> Result<(), Trap> {
        if vl > 0 {
            Ok(())
        } else {
            Err(Trap::ZeroVectorLength)
        }
    }

    /// Checks a `set.mr` operand.
    ///
    /// # Errors
    ///
    /// Returns [`Trap::ZeroMatRows`] if `mr == 0`.
    pub fn check_mr(mr: usize) -> Result<(), Trap> {
        if mr > 0 {
            Ok(())
        } else {
            Err(Trap::ZeroMatRows)
        }
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Trap::ScratchpadOutOfBounds {
                addr,
                len,
                capacity,
            } => write!(
                f,
                "scratchpad access [{addr}, {}) exceeds {capacity} bytes",
                addr.wrapping_add(len),
            ),
            Trap::MisalignedRegAccess { addr } => {
                write!(
                    f,
                    "register load-store address {addr:#x} is not 8-byte aligned"
                )
            }
            Trap::ZeroVectorLength => write!(f, "set.vl of 0"),
            Trap::ZeroMatRows => write!(f, "set.mr of 0"),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sp_range() {
        assert!(Trap::check_sp_range(0, 4096, 4096).is_ok());
        assert!(Trap::check_sp_range(4095, 1, 4096).is_ok());
        assert_eq!(
            Trap::check_sp_range(4090, 8, 4096),
            Err(Trap::ScratchpadOutOfBounds {
                addr: 4090,
                len: 8,
                capacity: 4096
            })
        );
        // Overflow does not wrap into legality.
        assert!(Trap::check_sp_range(usize::MAX, 2, 4096).is_err());
    }

    #[test]
    fn reg_alignment() {
        assert!(Trap::check_reg_addr(0x40).is_ok());
        assert_eq!(
            Trap::check_reg_addr(0x41),
            Err(Trap::MisalignedRegAccess { addr: 0x41 })
        );
    }

    #[test]
    fn vector_config() {
        assert!(Trap::check_vl(1).is_ok());
        assert_eq!(Trap::check_vl(0), Err(Trap::ZeroVectorLength));
        assert_eq!(Trap::check_mr(0), Err(Trap::ZeroMatRows));
    }

    #[test]
    fn messages_match_the_pe_panics() {
        // The cycle-level PE's panic messages are these Displays; tests
        // that assert on panic substrings rely on them.
        assert!(Trap::check_sp_range(4090, 8, 4096)
            .unwrap_err()
            .to_string()
            .contains("exceeds"));
        assert!(Trap::check_reg_addr(1)
            .unwrap_err()
            .to_string()
            .contains("not 8-byte aligned"));
        assert_eq!(Trap::check_vl(0).unwrap_err().to_string(), "set.vl of 0");
    }
}

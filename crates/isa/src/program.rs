//! Assembled VIP programs.

use std::fmt;
use std::ops::Index;

use crate::inst::Instruction;
use crate::INST_BUFFER_ENTRIES;

/// An assembled, label-resolved VIP program.
///
/// A `Program` is an immutable sequence of [`Instruction`]s ready to be
/// loaded into a PE's 1,024-entry instruction buffer. Construct one with
/// [`Program::new`], the [`Asm`](crate::Asm) builder, or the text
/// [`assemble`](crate::assemble)r.
///
/// ```
/// use vip_isa::{Asm, Instruction, Reg};
///
/// let mut asm = Asm::new();
/// asm.mov_imm(Reg::new(1), 5).halt();
/// let program: vip_isa::Program = asm.assemble().unwrap();
/// assert_eq!(program.len(), 2);
/// assert_eq!(program[1], Instruction::Halt);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    insts: Vec<Instruction>,
}

impl Program {
    /// Wraps a list of resolved instructions as a program.
    ///
    /// # Panics
    ///
    /// Panics if the program exceeds the instruction buffer capacity
    /// ([`INST_BUFFER_ENTRIES`]) or if a branch target points past the end
    /// of the program.
    #[must_use]
    pub fn new(insts: Vec<Instruction>) -> Self {
        assert!(
            insts.len() <= INST_BUFFER_ENTRIES,
            "program has {} instructions; the instruction buffer holds {}",
            insts.len(),
            INST_BUFFER_ENTRIES
        );
        for (pc, inst) in insts.iter().enumerate() {
            let target = match *inst {
                Instruction::Branch { target, .. } | Instruction::Jmp { target } => target,
                _ => continue,
            };
            assert!(
                (target as usize) < insts.len(),
                "instruction {pc} (`{inst}`) targets {target}, past the end of the program"
            );
        }
        Program { insts }
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The instruction at `pc`, or `None` past the end.
    #[must_use]
    pub fn get(&self, pc: usize) -> Option<&Instruction> {
        self.insts.get(pc)
    }

    /// Iterates over the instructions in order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.insts.iter()
    }

    /// The instructions as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Instruction] {
        &self.insts
    }

    /// Encodes the whole program into instruction-buffer words.
    ///
    /// # Errors
    ///
    /// Propagates the first [`EncodeError`](crate::encode::EncodeError).
    pub fn encode(&self) -> Result<Vec<u64>, crate::encode::EncodeError> {
        self.insts.iter().map(Instruction::encode).collect()
    }
}

impl Index<usize> for Program {
    type Output = Instruction;

    fn index(&self, pc: usize) -> &Instruction {
        &self.insts[pc]
    }
}

impl<'a> IntoIterator for &'a Program {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (pc, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{pc:4}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Reg;

    #[test]
    fn listing_format() {
        let p = Program::new(vec![
            Instruction::MovImm {
                rd: Reg::new(1),
                imm: 3,
            },
            Instruction::Halt,
        ]);
        let listing = p.to_string();
        assert!(listing.contains("0: mov.imm r1, 3"));
        assert!(listing.contains("1: halt"));
    }

    #[test]
    #[should_panic(expected = "targets")]
    fn rejects_dangling_branch() {
        let _ = Program::new(vec![Instruction::Jmp { target: 5 }]);
    }

    #[test]
    #[should_panic(expected = "instruction buffer")]
    fn rejects_oversize_program() {
        let _ = Program::new(vec![Instruction::Nop; INST_BUFFER_ENTRIES + 1]);
    }

    #[test]
    fn encode_whole_program() {
        let p = Program::new(vec![Instruction::Nop, Instruction::Halt]);
        let words = p.encode().unwrap();
        assert_eq!(words.len(), 2);
        assert_eq!(Instruction::decode(words[1]).unwrap(), Instruction::Halt);
    }
}

//! Decoded straight-line blocks for the functional execution tier.
//!
//! A [`Block`] is a maximal straight-line run of instructions starting
//! at some PC: the body carries every instruction that unconditionally
//! falls through to the next one, and the [`BlockEnd`] names the single
//! instruction (or program-end condition) that decides where control
//! goes next. Scanning is purely syntactic — whether an instruction can
//! *trap* at runtime depends on register values, so trap handling stays
//! with the executor, not the scanner.
//!
//! Block enders are exactly the points where a functional interpreter
//! must stop and consult machine state it does not own:
//!
//! * [`Branch`](Instruction::Branch) / [`Jmp`](Instruction::Jmp) —
//!   control leaves the straight line;
//! * [`LdRegFe`](Instruction::LdRegFe) / [`StRegFf`](Instruction::StRegFf)
//!   — full-empty synchronization can block on another PE;
//! * [`Halt`](Instruction::Halt) and falling off the end of the
//!   program — the PE stops.

use crate::inst::Instruction;
use crate::ops::BranchCond;
use crate::program::Program;
use crate::types::Reg;

/// How a straight-line block hands control onward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockEnd {
    /// A conditional branch: taken goes to `target`, not-taken falls
    /// through to the instruction after the branch.
    Branch {
        /// Branch condition.
        cond: BranchCond,
        /// First comparison operand.
        rs1: Reg,
        /// Second comparison operand.
        rs2: Reg,
        /// Taken-path PC.
        target: u32,
    },
    /// An unconditional jump to `target`.
    Jmp {
        /// Destination PC.
        target: u32,
    },
    /// A full-empty load (`ld.reg.fe`): may block until the word fills.
    LdRegFe {
        /// Destination register.
        rd: Reg,
        /// Register holding the DRAM address.
        rs_addr: Reg,
    },
    /// A full-empty store (`st.reg.ff`): may block until the word
    /// empties.
    StRegFf {
        /// Register holding the value to store.
        rs: Reg,
        /// Register holding the DRAM address.
        rs_addr: Reg,
    },
    /// An explicit `halt`.
    Halt,
    /// The scan ran off the end of the program (which halts the PE).
    ProgramEnd,
}

/// One decoded straight-line block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// PC of the first body instruction (or of the ender, for an empty
    /// body).
    pub start: usize,
    /// The straight-line instructions, in program order.
    pub body: Vec<Instruction>,
    /// What terminates the block.
    pub end: BlockEnd,
}

impl Block {
    /// PC of the ender instruction ([`BlockEnd::ProgramEnd`]: one past
    /// the last program instruction).
    #[must_use]
    pub fn end_pc(&self) -> usize {
        self.start + self.body.len()
    }

    /// Fall-through PC after the ender (meaningful for a not-taken
    /// branch or a completed full-empty op).
    #[must_use]
    pub fn next_pc(&self) -> usize {
        self.end_pc() + 1
    }
}

/// Scans the maximal straight-line block starting at `pc`.
///
/// Always succeeds: a `pc` at or past the end of the program yields an
/// empty body with [`BlockEnd::ProgramEnd`].
#[must_use]
pub fn scan_block(program: &Program, pc: usize) -> Block {
    let mut body = Vec::new();
    let mut at = pc;
    loop {
        let Some(inst) = program.get(at).copied() else {
            return Block {
                start: pc,
                body,
                end: BlockEnd::ProgramEnd,
            };
        };
        use Instruction::*;
        let end = match inst {
            Branch {
                cond,
                rs1,
                rs2,
                target,
            } => Some(BlockEnd::Branch {
                cond,
                rs1,
                rs2,
                target,
            }),
            Jmp { target } => Some(BlockEnd::Jmp { target }),
            LdRegFe { rd, rs_addr } => Some(BlockEnd::LdRegFe { rd, rs_addr }),
            StRegFf { rs, rs_addr } => Some(BlockEnd::StRegFf { rs, rs_addr }),
            Halt => Some(BlockEnd::Halt),
            _ => None,
        };
        match end {
            Some(end) => {
                return Block {
                    start: pc,
                    body,
                    end,
                };
            }
            None => {
                body.push(inst);
                at += 1;
            }
        }
    }
}

/// FNV-1a over a program's encoded instruction words — the key that
/// makes decoded blocks shareable across PEs running the same (SPMD)
/// program and safely discardable when a different program loads.
///
/// # Panics
///
/// Panics if an instruction cannot be encoded — the same
/// code-generation bug `Pe::load_program` rejects.
#[must_use]
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for inst in program.iter() {
        let word = inst.encode().expect("program instructions are encodable");
        for byte in word.to_le_bytes() {
            mix(byte);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Asm;
    use crate::types::ElemType;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn scans_up_to_a_branch() {
        let mut asm = Asm::new();
        asm.mov_imm(r(1), 0)
            .mov_imm(r(2), 10)
            .label("loop")
            .addi(r(1), r(1), 1)
            .blt(r(1), r(2), "loop")
            .halt();
        let p = asm.assemble().unwrap();

        let b = scan_block(&p, 0);
        assert_eq!(b.start, 0);
        assert_eq!(b.body.len(), 3);
        assert_eq!(
            b.end,
            BlockEnd::Branch {
                cond: crate::ops::BranchCond::Lt,
                rs1: r(1),
                rs2: r(2),
                target: 2,
            }
        );
        assert_eq!(b.end_pc(), 3);
        assert_eq!(b.next_pc(), 4);

        // Re-scanning from the loop head sees only the loop body.
        let b = scan_block(&p, 2);
        assert_eq!(b.body.len(), 1);
        assert_eq!(b.end_pc(), 3);

        // The halt is its own (empty-body) block.
        let b = scan_block(&p, 4);
        assert!(b.body.is_empty());
        assert_eq!(b.end, BlockEnd::Halt);
    }

    #[test]
    fn sync_ops_end_blocks() {
        let mut asm = Asm::new();
        asm.mov_imm(r(1), 0x100)
            .ld_reg_fe(r(2), r(1))
            .st_reg_ff(r(2), r(1))
            .halt();
        let p = asm.assemble().unwrap();
        let b = scan_block(&p, 0);
        assert_eq!(b.body.len(), 1);
        assert_eq!(
            b.end,
            BlockEnd::LdRegFe {
                rd: r(2),
                rs_addr: r(1)
            }
        );
        let b = scan_block(&p, 2);
        assert!(b.body.is_empty());
        assert_eq!(
            b.end,
            BlockEnd::StRegFf {
                rs: r(2),
                rs_addr: r(1)
            }
        );
    }

    #[test]
    fn off_end_is_program_end() {
        let mut asm = Asm::new();
        asm.mov_imm(r(1), 1).nop();
        let p = asm.assemble().unwrap();
        let b = scan_block(&p, 0);
        assert_eq!(b.body.len(), 2);
        assert_eq!(b.end, BlockEnd::ProgramEnd);
        assert_eq!(b.end_pc(), 2);
        // Scanning from past the end is legal and empty.
        let b = scan_block(&p, 7);
        assert!(b.body.is_empty());
        assert_eq!(b.end, BlockEnd::ProgramEnd);
    }

    #[test]
    fn vector_and_memory_ops_stay_in_the_body() {
        let mut asm = Asm::new();
        asm.mov_imm(r(1), 16)
            .set_vl(r(1))
            .mov_imm(r(2), 0)
            .mov_imm(r(3), 0x200)
            .mov_imm(r(4), 16)
            .ld_sram(ElemType::I16, r(2), r(3), r(4))
            .vec_vec(crate::ops::VerticalOp::Add, ElemType::I16, r(2), r(2), r(2))
            .st_sram(ElemType::I16, r(2), r(3), r(4))
            .memfence()
            .halt();
        let p = asm.assemble().unwrap();
        let b = scan_block(&p, 0);
        assert_eq!(b.body.len(), 9, "everything but the halt falls through");
        assert_eq!(b.end, BlockEnd::Halt);
    }

    #[test]
    fn fingerprint_distinguishes_programs() {
        let mut a = Asm::new();
        a.mov_imm(r(1), 1).halt();
        let pa = a.assemble().unwrap();
        let mut b = Asm::new();
        b.mov_imm(r(1), 2).halt();
        let pb = b.assemble().unwrap();
        assert_ne!(program_fingerprint(&pa), program_fingerprint(&pb));
        assert_eq!(program_fingerprint(&pa), program_fingerprint(&pa));
        assert_eq!(program_fingerprint(&Program::default()), {
            // Empty program: plain FNV offset basis.
            0xcbf2_9ce4_8422_2325
        });
    }
}

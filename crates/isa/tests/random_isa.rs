//! Seeded-random tests for the VIP ISA: encode/decode and
//! display/assemble round-trips, and algebraic laws of the datapath
//! arithmetic. Fixed SplitMix64 seeds make every failure reproducible.

use vip_isa::alu;
use vip_isa::{
    assemble, BranchCond, ElemType, HorizontalOp, Instruction, Reg, ScalarAluOp, VerticalOp,
};
use vip_rng::SplitMix64;

fn reg(rng: &mut SplitMix64) -> Reg {
    Reg::new(rng.below(64) as u8)
}

fn elem_ty(rng: &mut SplitMix64) -> ElemType {
    [ElemType::I8, ElemType::I16, ElemType::I32, ElemType::I64][rng.usize_in(0..4)]
}

fn vop(rng: &mut SplitMix64) -> VerticalOp {
    let all = VerticalOp::all();
    all[rng.usize_in(0..all.len())]
}

fn vop_no_nop(rng: &mut SplitMix64) -> VerticalOp {
    loop {
        let op = vop(rng);
        if op != VerticalOp::Nop {
            return op;
        }
    }
}

fn hop(rng: &mut SplitMix64) -> HorizontalOp {
    let all = HorizontalOp::all();
    all[rng.usize_in(0..all.len())]
}

fn scalar_op(rng: &mut SplitMix64) -> ScalarAluOp {
    let all = ScalarAluOp::all();
    all[rng.usize_in(0..all.len())]
}

fn cond(rng: &mut SplitMix64) -> BranchCond {
    let all = BranchCond::all();
    all[rng.usize_in(0..all.len())]
}

fn random_inst(rng: &mut SplitMix64) -> Instruction {
    match rng.below(21) {
        0 => Instruction::SetVl { rs: reg(rng) },
        1 => Instruction::SetMr { rs: reg(rng) },
        2 => Instruction::VDrain,
        3 => Instruction::MatVec {
            vop: vop(rng),
            hop: hop(rng),
            ty: elem_ty(rng),
            rd: reg(rng),
            rs_mat: reg(rng),
            rs_vec: reg(rng),
        },
        4 => Instruction::VecVec {
            op: vop_no_nop(rng),
            ty: elem_ty(rng),
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        5 => Instruction::VecScalar {
            op: vop_no_nop(rng),
            ty: elem_ty(rng),
            rd: reg(rng),
            rs_vec: reg(rng),
            rs_scalar: reg(rng),
        },
        6 => Instruction::Scalar {
            op: scalar_op(rng),
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        7 => Instruction::ScalarImm {
            op: scalar_op(rng),
            rd: reg(rng),
            rs1: reg(rng),
            imm: rng.i64_in(-(1 << 23)..(1 << 23)) as i32,
        },
        8 => Instruction::Mov {
            rd: reg(rng),
            rs: reg(rng),
        },
        9 => Instruction::MovImm {
            rd: reg(rng),
            imm: rng.i64_in(-(1i64 << 39)..(1i64 << 39)),
        },
        10 => Instruction::Branch {
            cond: cond(rng),
            rs1: reg(rng),
            rs2: reg(rng),
            target: rng.below(1024) as u32,
        },
        11 => Instruction::Jmp {
            target: rng.below(1024) as u32,
        },
        12 => Instruction::LdSram {
            ty: elem_ty(rng),
            rd_sp: reg(rng),
            rs_addr: reg(rng),
            rs_len: reg(rng),
        },
        13 => Instruction::StSram {
            ty: elem_ty(rng),
            rs_sp: reg(rng),
            rs_addr: reg(rng),
            rs_len: reg(rng),
        },
        14 => Instruction::LdReg {
            rd: reg(rng),
            rs_addr: reg(rng),
        },
        15 => Instruction::StReg {
            rs: reg(rng),
            rs_addr: reg(rng),
        },
        16 => Instruction::LdRegFe {
            rd: reg(rng),
            rs_addr: reg(rng),
        },
        17 => Instruction::StRegFf {
            rs: reg(rng),
            rs_addr: reg(rng),
        },
        18 => Instruction::MemFence,
        19 => Instruction::Nop,
        _ => Instruction::Halt,
    }
}

#[test]
fn encode_decode_roundtrip() {
    let mut rng = SplitMix64::new(0xc0de);
    for _ in 0..512 {
        let inst = random_inst(&mut rng);
        let word = inst.encode().unwrap();
        assert_eq!(Instruction::decode(word).unwrap(), inst, "{inst}");
    }
}

/// Any non-control-flow instruction's Display form re-assembles to
/// itself (branch targets print as raw indices, which the assembler
/// accepts too, so control flow also round-trips when in range).
#[test]
fn display_assemble_roundtrip() {
    let mut rng = SplitMix64::new(0xd15a);
    for _ in 0..64 {
        let inst = random_inst(&mut rng);
        // Give branches a valid target by padding with nops.
        let mut src = String::new();
        for _ in 0..1023 {
            src.push_str("nop\n");
        }
        src.push_str(&inst.to_string());
        let p = assemble(&src).unwrap();
        assert_eq!(p[1023], inst);
    }
}

#[test]
fn vertical_saturates_into_range() {
    let mut rng = SplitMix64::new(0x5a7);
    for _ in 0..512 {
        let op = vop(&mut rng);
        let ty = elem_ty(&mut rng);
        let a = alu::saturate(ty, rng.next_u64() as i64);
        let b = alu::saturate(ty, rng.next_u64() as i64);
        let r = alu::vertical(op, ty, a, b);
        assert!(
            r >= alu::lane_min(ty) && r <= alu::lane_max(ty),
            "{op:?} {ty:?} {a} {b}"
        );
    }
}

#[test]
fn add_and_mul_are_commutative() {
    let mut rng = SplitMix64::new(0xc0117);
    for _ in 0..512 {
        let ty = elem_ty(&mut rng);
        let a = alu::saturate(ty, rng.next_u64() as i64);
        let b = alu::saturate(ty, rng.next_u64() as i64);
        assert_eq!(
            alu::vertical(VerticalOp::Add, ty, a, b),
            alu::vertical(VerticalOp::Add, ty, b, a)
        );
        assert_eq!(
            alu::vertical(VerticalOp::Mul, ty, a, b),
            alu::vertical(VerticalOp::Mul, ty, b, a)
        );
    }
}

#[test]
fn reductions_are_order_insensitive_for_min_max() {
    let mut rng = SplitMix64::new(0x41ed);
    for _ in 0..64 {
        let hop = [HorizontalOp::Min, HorizontalOp::Max][rng.usize_in(0..2)];
        let n = rng.usize_in(1..32);
        let mut vals: Vec<i64> = (0..n).map(|_| rng.i64_in(-1000..1000)).collect();
        let ty = ElemType::I16;
        let fwd = vals.iter().fold(alu::reduce_identity(hop, ty), |acc, &x| {
            alu::reduce(hop, ty, acc, x)
        });
        vals.reverse();
        let rev = vals.iter().fold(alu::reduce_identity(hop, ty), |acc, &x| {
            alu::reduce(hop, ty, acc, x)
        });
        assert_eq!(fwd, rev);
    }
}

#[test]
fn mat_vec_matches_scalar_loop() {
    let mut rng = SplitMix64::new(0x3a7);
    for _ in 0..64 {
        let rows = rng.usize_in(1..6);
        let len = rng.usize_in(1..12);
        let vop = vop(&mut rng);
        let hop = hop(&mut rng);
        let ty = ElemType::I16;
        let mut mat = vec![0u8; rows * len * 2];
        let mut v = vec![0u8; len * 2];
        for i in 0..rows * len {
            alu::write_lane(&mut mat, i, ty, rng.i64_in(-100..100));
        }
        for i in 0..len {
            alu::write_lane(&mut v, i, ty, rng.i64_in(-100..100));
        }
        let mut dst = vec![0u8; rows * 2];
        alu::mat_vec(vop, hop, ty, &mut dst, &mat, &v, rows, len);
        for r in 0..rows {
            let mut acc = alu::reduce_identity(hop, ty);
            for i in 0..len {
                let m = alu::read_lane(&mat, r * len + i, ty);
                let x = alu::read_lane(&v, i, ty);
                acc = alu::reduce(hop, ty, acc, alu::vertical(vop, ty, m, x));
            }
            assert_eq!(alu::read_lane(&dst, r, ty), acc, "row {r}");
        }
    }
}

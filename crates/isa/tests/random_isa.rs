//! Seeded-random tests for the VIP ISA: four-way round-trips between
//! in-memory instructions, encoded words, and assembly text — for every
//! Table II instruction form and for whole generated programs — plus
//! algebraic laws of the datapath arithmetic. Failures print their seed
//! and re-run alone under `VIP_TEST_SEED`.

use vip_isa::alu;
use vip_isa::{
    assemble, BranchCond, ElemType, HorizontalOp, Instruction, Reg, ScalarAluOp, VerticalOp,
};
use vip_rng::{for_each_seed, SplitMix64};

fn reg(rng: &mut SplitMix64) -> Reg {
    Reg::new(rng.below(64) as u8)
}

fn elem_ty(rng: &mut SplitMix64) -> ElemType {
    [ElemType::I8, ElemType::I16, ElemType::I32, ElemType::I64][rng.usize_in(0..4)]
}

fn vop(rng: &mut SplitMix64) -> VerticalOp {
    let all = VerticalOp::all();
    all[rng.usize_in(0..all.len())]
}

fn vop_no_nop(rng: &mut SplitMix64) -> VerticalOp {
    loop {
        let op = vop(rng);
        if op != VerticalOp::Nop {
            return op;
        }
    }
}

fn hop(rng: &mut SplitMix64) -> HorizontalOp {
    let all = HorizontalOp::all();
    all[rng.usize_in(0..all.len())]
}

fn scalar_op(rng: &mut SplitMix64) -> ScalarAluOp {
    let all = ScalarAluOp::all();
    all[rng.usize_in(0..all.len())]
}

fn cond(rng: &mut SplitMix64) -> BranchCond {
    let all = BranchCond::all();
    all[rng.usize_in(0..all.len())]
}

fn random_inst(rng: &mut SplitMix64) -> Instruction {
    match rng.below(21) {
        0 => Instruction::SetVl { rs: reg(rng) },
        1 => Instruction::SetMr { rs: reg(rng) },
        2 => Instruction::VDrain,
        3 => Instruction::MatVec {
            vop: vop(rng),
            hop: hop(rng),
            ty: elem_ty(rng),
            rd: reg(rng),
            rs_mat: reg(rng),
            rs_vec: reg(rng),
        },
        4 => Instruction::VecVec {
            op: vop_no_nop(rng),
            ty: elem_ty(rng),
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        5 => Instruction::VecScalar {
            op: vop_no_nop(rng),
            ty: elem_ty(rng),
            rd: reg(rng),
            rs_vec: reg(rng),
            rs_scalar: reg(rng),
        },
        6 => Instruction::Scalar {
            op: scalar_op(rng),
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        7 => Instruction::ScalarImm {
            op: scalar_op(rng),
            rd: reg(rng),
            rs1: reg(rng),
            imm: rng.i64_in(-(1 << 23)..(1 << 23)) as i32,
        },
        8 => Instruction::Mov {
            rd: reg(rng),
            rs: reg(rng),
        },
        9 => Instruction::MovImm {
            rd: reg(rng),
            imm: rng.i64_in(-(1i64 << 39)..(1i64 << 39)),
        },
        10 => Instruction::Branch {
            cond: cond(rng),
            rs1: reg(rng),
            rs2: reg(rng),
            target: rng.below(1024) as u32,
        },
        11 => Instruction::Jmp {
            target: rng.below(1024) as u32,
        },
        12 => Instruction::LdSram {
            ty: elem_ty(rng),
            rd_sp: reg(rng),
            rs_addr: reg(rng),
            rs_len: reg(rng),
        },
        13 => Instruction::StSram {
            ty: elem_ty(rng),
            rs_sp: reg(rng),
            rs_addr: reg(rng),
            rs_len: reg(rng),
        },
        14 => Instruction::LdReg {
            rd: reg(rng),
            rs_addr: reg(rng),
        },
        15 => Instruction::StReg {
            rs: reg(rng),
            rs_addr: reg(rng),
        },
        16 => Instruction::LdRegFe {
            rd: reg(rng),
            rs_addr: reg(rng),
        },
        17 => Instruction::StRegFf {
            rs: reg(rng),
            rs_addr: reg(rng),
        },
        18 => Instruction::MemFence,
        19 => Instruction::Nop,
        _ => Instruction::Halt,
    }
}

/// The four-way conformance check for one instruction:
///
/// ```text
/// Instruction --encode--> word --decode--> Instruction
///      ^                                        |
///      +-- assemble <-- text <-- Display -------+
/// ```
///
/// Branches need an in-range target, so the textual leg pads the program
/// with `nop`s up to index 1023 (the largest target `random_inst`
/// emits) before appending the instruction under test.
fn assert_four_way(inst: Instruction) {
    let word = inst.encode().unwrap();
    let decoded = Instruction::decode(word).unwrap();
    assert_eq!(decoded, inst, "encode/decode changed {inst}");
    let mut src = "nop\n".repeat(1023);
    src.push_str(&decoded.to_string());
    let p = assemble(&src).unwrap_or_else(|e| panic!("`{decoded}` does not assemble: {e}"));
    assert_eq!(p[1023], inst, "display/assemble changed {inst}");
    assert_eq!(p[1023].encode().unwrap(), word, "re-encode changed {inst}");
}

#[test]
fn every_instruction_form_roundtrips_four_ways() {
    for_each_seed(
        "every_instruction_form_roundtrips_four_ways",
        0xc0de,
        16,
        |seed| {
            let mut rng = SplitMix64::new(seed);
            for _ in 0..24 {
                assert_four_way(random_inst(&mut rng));
            }
        },
    );
}

/// Whole programs from the conformance-harness generator round-trip:
/// per-instruction through the binary encoding, and as a complete
/// listing through the assembler (branch targets resolve to the same
/// indices). This pins the fuzzer's repro listings to the programs that
/// actually ran.
#[test]
fn generated_programs_roundtrip_four_ways() {
    for_each_seed(
        "generated_programs_roundtrip_four_ways",
        0x6e4a11,
        32,
        |seed| {
            let case = vip_ref::generate(seed, &vip_ref::GenConfig::default());
            let m = case.materialize_full();
            for p in &m.programs {
                let words: Vec<u64> = p.iter().map(|i| i.encode().unwrap()).collect();
                for (&inst, &word) in p.iter().zip(&words) {
                    assert_eq!(Instruction::decode(word).unwrap(), inst, "{inst}");
                }
                let listing: String = p.iter().map(|i| format!("{i}\n")).collect();
                let q = assemble(&listing).unwrap();
                assert_eq!(&q, p, "listing re-assembled differently");
                let rewords: Vec<u64> = q.iter().map(|i| i.encode().unwrap()).collect();
                assert_eq!(rewords, words);
            }
        },
    );
}

#[test]
fn vertical_saturates_into_range() {
    for_each_seed("vertical_saturates_into_range", 0x5a7, 16, |seed| {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..64 {
            let op = vop(&mut rng);
            let ty = elem_ty(&mut rng);
            let a = alu::saturate(ty, rng.next_u64() as i64);
            let b = alu::saturate(ty, rng.next_u64() as i64);
            let r = alu::vertical(op, ty, a, b);
            assert!(
                r >= alu::lane_min(ty) && r <= alu::lane_max(ty),
                "{op:?} {ty:?} {a} {b}"
            );
        }
    });
}

#[test]
fn add_and_mul_are_commutative() {
    for_each_seed("add_and_mul_are_commutative", 0xc0117, 16, |seed| {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..64 {
            let ty = elem_ty(&mut rng);
            let a = alu::saturate(ty, rng.next_u64() as i64);
            let b = alu::saturate(ty, rng.next_u64() as i64);
            assert_eq!(
                alu::vertical(VerticalOp::Add, ty, a, b),
                alu::vertical(VerticalOp::Add, ty, b, a)
            );
            assert_eq!(
                alu::vertical(VerticalOp::Mul, ty, a, b),
                alu::vertical(VerticalOp::Mul, ty, b, a)
            );
        }
    });
}

#[test]
fn reductions_are_order_insensitive_for_min_max() {
    for_each_seed(
        "reductions_are_order_insensitive_for_min_max",
        0x41ed,
        16,
        |seed| {
            let mut rng = SplitMix64::new(seed);
            for _ in 0..8 {
                let hop = [HorizontalOp::Min, HorizontalOp::Max][rng.usize_in(0..2)];
                let n = rng.usize_in(1..32);
                let mut vals: Vec<i64> = (0..n).map(|_| rng.i64_in(-1000..1000)).collect();
                let ty = ElemType::I16;
                let fwd = vals.iter().fold(alu::reduce_identity(hop, ty), |acc, &x| {
                    alu::reduce(hop, ty, acc, x)
                });
                vals.reverse();
                let rev = vals.iter().fold(alu::reduce_identity(hop, ty), |acc, &x| {
                    alu::reduce(hop, ty, acc, x)
                });
                assert_eq!(fwd, rev);
            }
        },
    );
}

#[test]
fn mat_vec_matches_scalar_loop() {
    for_each_seed("mat_vec_matches_scalar_loop", 0x3a7, 16, |seed| {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..8 {
            let rows = rng.usize_in(1..6);
            let len = rng.usize_in(1..12);
            let vop = vop(&mut rng);
            let hop = hop(&mut rng);
            let ty = ElemType::I16;
            let mut mat = vec![0u8; rows * len * 2];
            let mut v = vec![0u8; len * 2];
            for i in 0..rows * len {
                alu::write_lane(&mut mat, i, ty, rng.i64_in(-100..100));
            }
            for i in 0..len {
                alu::write_lane(&mut v, i, ty, rng.i64_in(-100..100));
            }
            let mut dst = vec![0u8; rows * 2];
            alu::mat_vec(vop, hop, ty, &mut dst, &mat, &v, rows, len);
            for r in 0..rows {
                let mut acc = alu::reduce_identity(hop, ty);
                for i in 0..len {
                    let m = alu::read_lane(&mat, r * len + i, ty);
                    let x = alu::read_lane(&v, i, ty);
                    acc = alu::reduce(hop, ty, acc, alu::vertical(vop, ty, m, x));
                }
                assert_eq!(alu::read_lane(&dst, r, ty), acc, "row {r}");
            }
        }
    });
}

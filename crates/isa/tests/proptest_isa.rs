//! Property-based tests for the VIP ISA: encode/decode and
//! display/assemble round-trips, and algebraic laws of the datapath
//! arithmetic.

use proptest::prelude::*;
use vip_isa::alu;
use vip_isa::{
    assemble, BranchCond, ElemType, HorizontalOp, Instruction, Reg, ScalarAluOp, VerticalOp,
};

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..64).prop_map(Reg::new)
}

fn elem_ty() -> impl Strategy<Value = ElemType> {
    prop_oneof![
        Just(ElemType::I8),
        Just(ElemType::I16),
        Just(ElemType::I32),
        Just(ElemType::I64),
    ]
}

fn vop() -> impl Strategy<Value = VerticalOp> {
    proptest::sample::select(VerticalOp::all().to_vec())
}

fn vop_no_nop() -> impl Strategy<Value = VerticalOp> {
    vop().prop_filter("nop only valid in m.v", |&op| op != VerticalOp::Nop)
}

fn hop() -> impl Strategy<Value = HorizontalOp> {
    proptest::sample::select(HorizontalOp::all().to_vec())
}

fn scalar_op() -> impl Strategy<Value = ScalarAluOp> {
    proptest::sample::select(ScalarAluOp::all().to_vec())
}

fn cond() -> impl Strategy<Value = BranchCond> {
    proptest::sample::select(BranchCond::all().to_vec())
}

fn inst_strategy() -> impl Strategy<Value = Instruction> {
    prop_oneof![
        reg_strategy().prop_map(|rs| Instruction::SetVl { rs }),
        reg_strategy().prop_map(|rs| Instruction::SetMr { rs }),
        Just(Instruction::VDrain),
        (vop(), hop(), elem_ty(), reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
            |(vop, hop, ty, rd, rs_mat, rs_vec)| Instruction::MatVec {
                vop,
                hop,
                ty,
                rd,
                rs_mat,
                rs_vec
            }
        ),
        (vop_no_nop(), elem_ty(), reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, ty, rd, rs1, rs2)| Instruction::VecVec { op, ty, rd, rs1, rs2 }),
        (vop_no_nop(), elem_ty(), reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
            |(op, ty, rd, rs_vec, rs_scalar)| Instruction::VecScalar {
                op,
                ty,
                rd,
                rs_vec,
                rs_scalar
            }
        ),
        (scalar_op(), reg_strategy(), reg_strategy(), reg_strategy())
            .prop_map(|(op, rd, rs1, rs2)| Instruction::Scalar { op, rd, rs1, rs2 }),
        (scalar_op(), reg_strategy(), reg_strategy(), -(1i32 << 23)..(1i32 << 23))
            .prop_map(|(op, rd, rs1, imm)| Instruction::ScalarImm { op, rd, rs1, imm }),
        (reg_strategy(), reg_strategy()).prop_map(|(rd, rs)| Instruction::Mov { rd, rs }),
        (reg_strategy(), -(1i64 << 39)..(1i64 << 39))
            .prop_map(|(rd, imm)| Instruction::MovImm { rd, imm }),
        (cond(), reg_strategy(), reg_strategy(), 0u32..1024)
            .prop_map(|(cond, rs1, rs2, target)| Instruction::Branch { cond, rs1, rs2, target }),
        (0u32..1024).prop_map(|target| Instruction::Jmp { target }),
        (elem_ty(), reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
            |(ty, rd_sp, rs_addr, rs_len)| Instruction::LdSram { ty, rd_sp, rs_addr, rs_len }
        ),
        (elem_ty(), reg_strategy(), reg_strategy(), reg_strategy()).prop_map(
            |(ty, rs_sp, rs_addr, rs_len)| Instruction::StSram { ty, rs_sp, rs_addr, rs_len }
        ),
        (reg_strategy(), reg_strategy()).prop_map(|(rd, rs_addr)| Instruction::LdReg {
            rd,
            rs_addr
        }),
        (reg_strategy(), reg_strategy()).prop_map(|(rs, rs_addr)| Instruction::StReg {
            rs,
            rs_addr
        }),
        (reg_strategy(), reg_strategy()).prop_map(|(rd, rs_addr)| Instruction::LdRegFe {
            rd,
            rs_addr
        }),
        (reg_strategy(), reg_strategy()).prop_map(|(rs, rs_addr)| Instruction::StRegFf {
            rs,
            rs_addr
        }),
        Just(Instruction::MemFence),
        Just(Instruction::Nop),
        Just(Instruction::Halt),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(inst in inst_strategy()) {
        let word = inst.encode().unwrap();
        prop_assert_eq!(Instruction::decode(word).unwrap(), inst);
    }

    /// Any non-control-flow instruction's Display form re-assembles to
    /// itself (branch targets print as raw indices, which the assembler
    /// accepts too, so control flow also round-trips when in range).
    #[test]
    fn display_assemble_roundtrip(inst in inst_strategy()) {
        // Give branches a valid target by padding with nops.
        let mut src = String::new();
        for _ in 0..1023 {
            src.push_str("nop\n");
        }
        src.push_str(&inst.to_string());
        let p = assemble(&src).unwrap();
        prop_assert_eq!(p[1023], inst);
    }

    #[test]
    fn vertical_saturates_into_range(
        op in vop(),
        ty in elem_ty(),
        a in any::<i64>(),
        b in any::<i64>(),
    ) {
        let a = alu::saturate(ty, a);
        let b = alu::saturate(ty, b);
        let r = alu::vertical(op, ty, a, b);
        prop_assert!(r >= alu::lane_min(ty) && r <= alu::lane_max(ty));
    }

    #[test]
    fn add_is_commutative(ty in elem_ty(), a in any::<i64>(), b in any::<i64>()) {
        let a = alu::saturate(ty, a);
        let b = alu::saturate(ty, b);
        prop_assert_eq!(
            alu::vertical(VerticalOp::Add, ty, a, b),
            alu::vertical(VerticalOp::Add, ty, b, a)
        );
        prop_assert_eq!(
            alu::vertical(VerticalOp::Mul, ty, a, b),
            alu::vertical(VerticalOp::Mul, ty, b, a)
        );
    }

    #[test]
    fn reductions_are_order_insensitive_for_min_max(
        hop in prop_oneof![Just(HorizontalOp::Min), Just(HorizontalOp::Max)],
        mut vals in proptest::collection::vec(-1000i64..1000, 1..32),
    ) {
        let ty = ElemType::I16;
        let fwd = vals.iter().fold(alu::reduce_identity(hop, ty), |acc, &x| {
            alu::reduce(hop, ty, acc, x)
        });
        vals.reverse();
        let rev = vals.iter().fold(alu::reduce_identity(hop, ty), |acc, &x| {
            alu::reduce(hop, ty, acc, x)
        });
        prop_assert_eq!(fwd, rev);
    }

    #[test]
    fn mat_vec_matches_scalar_loop(
        rows in 1usize..6,
        len in 1usize..12,
        seed in any::<u64>(),
        vop in vop(),
        hop in hop(),
    ) {
        let ty = ElemType::I16;
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i64 % 200) - 100
        };
        let mut mat = vec![0u8; rows * len * 2];
        let mut v = vec![0u8; len * 2];
        for i in 0..rows * len {
            alu::write_lane(&mut mat, i, ty, next());
        }
        for i in 0..len {
            alu::write_lane(&mut v, i, ty, next());
        }
        let mut dst = vec![0u8; rows * 2];
        alu::mat_vec(vop, hop, ty, &mut dst, &mat, &v, rows, len);
        for r in 0..rows {
            let mut acc = alu::reduce_identity(hop, ty);
            for i in 0..len {
                let m = alu::read_lane(&mat, r * len + i, ty);
                let x = alu::read_lane(&v, i, ty);
                acc = alu::reduce(hop, ty, acc, alu::vertical(vop, ty, m, x));
            }
            prop_assert_eq!(alu::read_lane(&dst, r, ty), acc);
        }
    }
}

//! The differential conformance fuzzer: ≥ 512 seeded random multi-PE
//! programs, each executed on the architectural reference interpreter
//! and on all three cycle-level stepping engines (naive, fast-forward,
//! sharded), with complete final architectural state compared.
//!
//! On a failure the panic message carries the seed, the disagreeing
//! engine, the first mismatching locations, and the minimized
//! disassembled programs. Re-run just the failing case with
//! `VIP_TEST_SEED=<seed> cargo test -p vip-ref`.
//!
//! The seed space is split across four `#[test]` functions so the
//! default test runner parallelizes the sweep.

use vip_ref::{fuzz_one, GenConfig};
use vip_rng::for_each_seed;

fn fuzz_range(label: &str, base: u64, count: u64) {
    let cfg = GenConfig::default();
    for_each_seed(label, base, count, |seed| {
        if let Err(d) = fuzz_one(seed, &cfg) {
            panic!("{d}");
        }
    });
}

#[test]
fn differential_seeds_a() {
    fuzz_range("differential_seeds_a", 0x0000, 128);
}

#[test]
fn differential_seeds_b() {
    fuzz_range("differential_seeds_b", 0x1000, 128);
}

#[test]
fn differential_seeds_c() {
    fuzz_range("differential_seeds_c", 0x2000, 128);
}

#[test]
fn differential_seeds_d() {
    fuzz_range("differential_seeds_d", 0x3000, 128);
}

#[test]
fn differential_single_pe_cases() {
    // A single-PE configuration exercises nothing concurrent: any
    // failure here is purely a PE-pipeline conformance bug, which makes
    // repros much easier to read.
    let cfg = GenConfig {
        num_pes: 1,
        max_ring_rounds: 0,
        ..GenConfig::default()
    };
    for_each_seed("differential_single_pe_cases", 0x4000, 64, |seed| {
        if let Err(d) = fuzz_one(seed, &cfg) {
            panic!("{d}");
        }
    });
}

#[test]
fn differential_sync_heavy_cases() {
    // Bias toward full-empty traffic: many ring rounds, few segments.
    let cfg = GenConfig {
        max_segments: 4,
        max_ring_rounds: 6,
        ..GenConfig::default()
    };
    for_each_seed("differential_sync_heavy_cases", 0x5000, 64, |seed| {
        if let Err(d) = fuzz_one(seed, &cfg) {
            panic!("{d}");
        }
    });
}

//! Fault-injector inertness, checked differentially: the same seeded
//! random multi-PE programs the conformance fuzzer uses are run on
//! every cycle-level stepping engine twice — once with no injector
//! wired at all ([`FaultConfig::disabled`]) and once with every
//! injector wired at zero rate ([`FaultConfig::zero_rate`]) — and the
//! complete final architectural state, the cycle count, and every
//! statistics counter must be bit-identical. This is the PR's core
//! safety contract: with faults disabled the machine is
//! indistinguishable from a build without the fault subsystem.

use vip_core::{System, SystemConfig, SystemStats};
use vip_faults::FaultConfig;
use vip_ref::diff::{diff_snapshots, ArchSnapshot, Engine, MAX_CYCLES};
use vip_ref::{generate, GenConfig, Materialized};
use vip_rng::for_each_seed;

/// Runs `m` on one engine with the given fault configuration and
/// returns the final architectural snapshot plus the full statistics
/// record (cycles included).
fn run_with(m: &Materialized, engine: Engine, faults: &FaultConfig) -> (ArchSnapshot, SystemStats) {
    let mut sys = System::new(SystemConfig::small_test().with_faults(faults));
    assert!(m.programs.len() <= sys.total_pes());
    if engine == Engine::Sharded {
        sys.set_step_shards(2);
    }
    for (addr, bytes) in &m.mem_init {
        sys.hmc_mut().host_write(*addr, bytes);
    }
    for addr in &m.full_init {
        sys.hmc_mut().host_set_full(*addr, true);
    }
    for (pe, sp) in m.sp_init.iter().enumerate() {
        sys.pe_mut(pe)
            .scratchpad_mut()
            .write(0, sp)
            .expect("generated scratchpad image fits");
    }
    for (pe, p) in m.programs.iter().enumerate() {
        sys.load_program(pe, p);
    }
    match engine {
        Engine::Naive => sys.run_naive(MAX_CYCLES),
        Engine::FastForward | Engine::Sharded => sys.run(MAX_CYCLES),
        Engine::Functional => {
            // Small cases: shrink the windows so the functional tier
            // engages instead of finishing inside the calibration run.
            sys.set_func_config(vip_core::FuncConfig {
                warmup_cycles: 64,
                sample_cycles: 256,
                stretch_work: 2_000,
                quantum: 64,
                drain_cycles: 5_000,
            });
            sys.run_functional(MAX_CYCLES)
        }
    }
    .unwrap_or_else(|e| panic!("{engine} engine with {faults:?}: {e}"));
    let snapshot = ArchSnapshot {
        pes: (0..m.programs.len())
            .map(|i| sys.pe(i).arch_state())
            .collect(),
        dram: m
            .check_ranges
            .iter()
            .map(|&(addr, len)| (addr, sys.hmc().host_read(addr, len)))
            .collect(),
        full: m
            .check_ranges
            .iter()
            .map(|&(addr, len)| {
                (
                    addr,
                    (0..len / 8)
                        .map(|w| sys.hmc().host_is_full(addr + w as u64 * 8))
                        .collect(),
                )
            })
            .collect(),
    };
    (snapshot, sys.stats())
}

#[test]
fn zero_rate_injector_is_bit_identical_on_every_engine() {
    let cfg = GenConfig::default();
    for_each_seed("faults_off_differential", 0x6000, 24, |seed| {
        let m = generate(seed, &cfg).materialize_full();
        // The injector seed deliberately varies with the program seed:
        // inertness must not depend on which seed the inert draws use.
        let wired = FaultConfig::zero_rate(seed ^ 0x5eed);
        assert!(wired.is_inert());
        for engine in Engine::all() {
            let (plain_snap, plain_stats) = run_with(&m, engine, &FaultConfig::disabled());
            let (wired_snap, wired_stats) = run_with(&m, engine, &wired);
            if let Some(detail) = diff_snapshots(&plain_snap, &wired_snap) {
                panic!(
                    "seed {seed:#x}, {engine} engine: zero-rate injector changed \
                     architectural state:\n{detail}"
                );
            }
            assert_eq!(
                plain_stats, wired_stats,
                "seed {seed:#x}, {engine} engine: zero-rate injector changed \
                 cycle count or statistics"
            );
            assert_eq!(wired_stats.mem.retention_faults, 0);
            assert_eq!(wired_stats.noc.crc_detected + wired_stats.noc.dropped, 0);
            assert_eq!(wired_stats.pe.writeback_flips, 0);
        }
    });
}

#[test]
fn engines_agree_with_a_wired_zero_rate_injector() {
    // Cross-engine agreement (not just plain-vs-wired within one
    // engine): all three engines with the injector wired must still
    // land on the same state and cycle count as each other.
    let cfg = GenConfig::default();
    for_each_seed("faults_off_cross_engine", 0x7000, 12, |seed| {
        let m = generate(seed, &cfg).materialize_full();
        let wired = FaultConfig::zero_rate(seed);
        let (base_snap, base_stats) = run_with(&m, Engine::Naive, &wired);
        for engine in [Engine::FastForward, Engine::Sharded] {
            let (snap, stats) = run_with(&m, engine, &wired);
            if let Some(detail) = diff_snapshots(&base_snap, &snap) {
                panic!("seed {seed:#x}: naive vs {engine} under wired injector:\n{detail}");
            }
            assert_eq!(base_stats, stats, "seed {seed:#x}: naive vs {engine} stats");
        }
        // The functional tier promises bit-identical architectural
        // state and retirement counters; its cycle-dependent numbers
        // (estimated clock, refresh counts, occupancy) legitimately
        // differ, so compare only the retirement side of the record.
        let (func_snap, func_stats) = run_with(&m, Engine::Functional, &wired);
        if let Some(detail) = diff_snapshots(&base_snap, &func_snap) {
            panic!("seed {seed:#x}: naive vs functional under wired injector:\n{detail}");
        }
        for (name, base, func) in [
            (
                "instructions",
                base_stats.pe.instructions,
                func_stats.pe.instructions,
            ),
            (
                "scalar_instructions",
                base_stats.pe.scalar_instructions,
                func_stats.pe.scalar_instructions,
            ),
            (
                "vector_instructions",
                base_stats.pe.vector_instructions,
                func_stats.pe.vector_instructions,
            ),
            (
                "ldst_instructions",
                base_stats.pe.ldst_instructions,
                func_stats.pe.ldst_instructions,
            ),
            ("lane_ops", base_stats.pe.lane_ops, func_stats.pe.lane_ops),
            (
                "lane_mul_ops",
                base_stats.pe.lane_mul_ops,
                func_stats.pe.lane_mul_ops,
            ),
            ("sp_beats", base_stats.pe.sp_beats, func_stats.pe.sp_beats),
            (
                "work_units",
                base_stats.pe.work_units,
                func_stats.pe.work_units,
            ),
            (
                "writeback_flips",
                base_stats.pe.writeback_flips,
                func_stats.pe.writeback_flips,
            ),
        ] {
            assert_eq!(base, func, "seed {seed:#x}: naive vs functional {name}");
        }
    });
}

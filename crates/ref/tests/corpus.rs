//! Replays every checked-in repro in `crates/ref/corpus/` through the
//! reference interpreter and all three cycle-level engines. Fuzzer
//! finds get minimized, serialized with [`vip_ref::corpus::to_text`],
//! and committed here so they stay fixed forever.

use std::path::PathBuf;

use vip_ref::{check_materialized, corpus};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

#[test]
fn corpus_replays_cleanly() {
    let mut paths: Vec<_> = std::fs::read_dir(corpus_dir())
        .expect("crates/ref/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "vip"))
        .collect();
    paths.sort();
    assert!(
        !paths.is_empty(),
        "corpus directory has no .vip files — the regression anchors are gone"
    );
    for path in paths {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).expect("corpus file reads");
        let m = corpus::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        if let Err((engine, detail)) = check_materialized(&m) {
            panic!("{name}: reference vs {engine} engine diverged:\n{detail}");
        }
    }
}

#[test]
fn corpus_round_trips_through_to_text() {
    // Serializing a parsed case and re-parsing it must preserve the
    // programs and host state, so fuzzer finds can be checked in
    // mechanically.
    for entry in std::fs::read_dir(corpus_dir()).expect("corpus exists") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|e| e != "vip") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("reads");
        let m = corpus::parse(&text).expect("parses");
        let again = corpus::parse(&corpus::to_text(&m, "round-trip")).expect("re-parses");
        assert_eq!(m.programs, again.programs, "{path:?}");
        assert_eq!(m.full_init, again.full_init, "{path:?}");
        assert_eq!(m.check_ranges, again.check_ranges, "{path:?}");
    }
}

//! Closes the golden-reference ↔ architectural-interpreter loop: the
//! generated kernel programs that `crates/kernels/tests` verifies
//! against the cycle-level simulator must also produce golden-exact
//! results on the untimed interpreter. With the differential fuzzer
//! tying the interpreter to the cycle-level engines, all three levels
//! of the test pyramid are pinned to each other.

use vip_kernels::cnn::FcLayer;
use vip_kernels::mlp::{self, FcLayout};
use vip_kernels::schedule::FcSchedule;
use vip_kernels::sync::{bytes_to_i16s, i16s_to_bytes};
use vip_ref::RefSystem;

fn pattern(n: usize, scale: i16, offset: i16) -> Vec<i16> {
    (0..n)
        .map(|i| ((i * 7 + 3) % 11) as i16 * scale - offset)
        .collect()
}

/// The interpreter-side equivalent of [`FcLayout::load_into`].
fn stage(sys: &mut RefSystem, layout: &FcLayout, input: &[i16], weights: &[i16], bias: &[i16]) {
    let mem = sys.mem_mut();
    mem.write(layout.input_base, &i16s_to_bytes(input));
    mem.write(
        layout.weights_base,
        &i16s_to_bytes(&mlp::pack_weights(&layout.layer, weights)),
    );
    mem.write(layout.bias_base, &i16s_to_bytes(bias));
}

fn run_fc_on_ref(layout: &FcLayout, input: &[i16], weights: &[i16], bias: &[i16]) -> Vec<i16> {
    let pes = 4;
    let mut sys = RefSystem::new(pes, 4096);
    stage(&mut sys, layout, input, weights, bias);
    for (pe, p) in mlp::fc_tile_programs(
        layout,
        &FcSchedule {
            pes,
            ..FcSchedule::default()
        },
    )
    .iter()
    .enumerate()
    {
        sys.load_program(pe, p);
    }
    sys.run(10_000_000).expect("fc tile completes");
    bytes_to_i16s(
        &sys.mem()
            .read_vec(layout.output_base, layout.layer.outputs * 2),
    )
}

#[test]
fn fc_tile_on_interpreter_matches_golden() {
    let layer = FcLayer {
        name: "fc",
        inputs: 512,
        outputs: 16,
    };
    let input = pattern(512, 1, 5);
    let weights = pattern(512 * 16, 1, 5);
    let bias = pattern(16, 3, 10);
    let layout = FcLayout {
        layer,
        input_base: 0,
        weights_base: 0x10000,
        bias_base: 0x40000,
        output_base: 0x50000,
        relu: true,
    };
    let got = run_fc_on_ref(&layout, &input, &weights, &bias);
    let expect = mlp::fc_forward(&layer, &input, &weights, &bias, true);
    assert_eq!(got, expect);
}

#[test]
fn fc_tile_without_relu_on_interpreter_matches_golden() {
    let layer = FcLayer {
        name: "fc8",
        inputs: 256,
        outputs: 16,
    };
    let input = pattern(256, 1, 5);
    let weights = pattern(256 * 16, 1, 6);
    let bias = vec![-100i16; 16];
    let layout = FcLayout {
        layer,
        input_base: 0,
        weights_base: 0x10000,
        bias_base: 0x40000,
        output_base: 0x50000,
        relu: false,
    };
    let got = run_fc_on_ref(&layout, &input, &weights, &bias);
    let expect = mlp::fc_forward(&layer, &input, &weights, &bias, false);
    assert_eq!(got, expect);
    assert!(expect.iter().any(|&v| v < 0), "exercises negatives");
}

//! The differential conformance harness.
//!
//! For one seed: generate a [`TestCase`], run it on the architectural
//! interpreter AND on every cycle-level stepping engine, and compare
//! the complete final architectural state — all 64 scalar registers and
//! the full scratchpad of every PE, plus the bytes *and* full-empty
//! bits of every DRAM window the generator declared architectural. Any
//! mismatch is a conformance bug in one of the models; the harness
//! greedily minimizes the program (segments are the removal unit; ring
//! rounds drop on every PE at once) and reports the seed plus the
//! minimized, disassembled programs so the failure is reproducible and
//! readable without re-running the fuzzer.

use std::fmt;

use vip_core::{PeArchState, System, SystemConfig};
use vip_isa::Reg;

use crate::gen::{generate, GenConfig, Materialized, SegmentSpec, TestCase};
use crate::interp::{RefRunError, RefSystem};

/// Cycle budget for one cycle-level run; generated cases finish in a
/// few thousand cycles, so hitting this means a hang (itself a bug).
pub const MAX_CYCLES: u64 = 4_000_000;

/// Step budget for one reference run.
pub const MAX_REF_STEPS: u64 = 1_000_000;

/// The cycle-level stepping engines under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Cycle-by-cycle [`System::run_naive`].
    Naive,
    /// Event-driven fast-forward [`System::run`].
    FastForward,
    /// [`System::run`] with two stepping shards (threaded).
    Sharded,
    /// Two-tier block-cached functional execution
    /// ([`System::run_functional`]). Cycle counts are estimates, but
    /// the architectural contract is the same bit-identical one.
    Functional,
}

impl Engine {
    /// All engines, in the order the harness tries them.
    #[must_use]
    pub fn all() -> [Engine; 4] {
        [
            Engine::Naive,
            Engine::FastForward,
            Engine::Sharded,
            Engine::Functional,
        ]
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Engine::Naive => write!(f, "naive"),
            Engine::FastForward => write!(f, "fast-forward"),
            Engine::Sharded => write!(f, "sharded"),
            Engine::Functional => write!(f, "functional"),
        }
    }
}

/// Final architectural state of a run, in directly comparable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchSnapshot {
    /// Per-PE registers and scratchpad (PEs that ran a program).
    pub pes: Vec<PeArchState>,
    /// Bytes of each declared DRAM check window.
    pub dram: Vec<(u64, Vec<u8>)>,
    /// Full-empty bit of each 8-byte word of each check window.
    pub full: Vec<(u64, Vec<bool>)>,
}

/// A confirmed reference-vs-engine divergence, fully described.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The generator seed.
    pub seed: u64,
    /// The engine that disagreed with the reference.
    pub engine: Engine,
    /// What differed (first few mismatching locations).
    pub detail: String,
    /// Minimized, disassembled per-PE programs.
    pub listings: Vec<String>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "conformance divergence: reference vs {} engine, seed {:#x}",
            self.engine, self.seed
        )?;
        writeln!(
            f,
            "repro: VIP_TEST_SEED={:#x} cargo test -p vip-ref",
            self.seed
        )?;
        writeln!(f, "{}", self.detail)?;
        for (pe, listing) in self.listings.iter().enumerate() {
            writeln!(f, "--- minimized pe{pe} program ---")?;
            writeln!(f, "{listing}")?;
        }
        Ok(())
    }
}

/// Runs `m` on the architectural interpreter.
///
/// # Errors
///
/// Propagates the interpreter's trap/deadlock/step-limit errors.
pub fn run_ref(m: &Materialized) -> Result<ArchSnapshot, RefRunError> {
    let sp_bytes = m.sp_init.first().map_or(4096, Vec::len);
    let mut sys = RefSystem::new(m.programs.len(), sp_bytes);
    for (addr, bytes) in &m.mem_init {
        sys.mem_mut().write(*addr, bytes);
    }
    for addr in &m.full_init {
        sys.mem_mut().set_full(*addr, true);
    }
    for (pe, sp) in m.sp_init.iter().enumerate() {
        sys.pe_mut(pe).write_scratchpad(0, sp);
    }
    for (pe, p) in m.programs.iter().enumerate() {
        sys.load_program(pe, p);
    }
    sys.run(MAX_REF_STEPS)?;
    Ok(ArchSnapshot {
        pes: (0..m.programs.len())
            .map(|i| sys.pes()[i].arch_state())
            .collect(),
        dram: m
            .check_ranges
            .iter()
            .map(|&(addr, len)| (addr, sys.mem().read_vec(addr, len)))
            .collect(),
        full: m
            .check_ranges
            .iter()
            .map(|&(addr, len)| {
                (
                    addr,
                    (0..len / 8)
                        .map(|w| sys.mem().is_full(addr + w as u64 * 8))
                        .collect(),
                )
            })
            .collect(),
    })
}

/// Runs `m` on one cycle-level stepping engine.
///
/// # Errors
///
/// Returns a description if the simulation fails to quiesce in
/// [`MAX_CYCLES`] — itself a conformance failure for a program the
/// reference completed.
///
/// # Panics
///
/// Panics if `m` targets more PEs than [`SystemConfig::small_test`]
/// provides.
pub fn run_engine(m: &Materialized, engine: Engine) -> Result<ArchSnapshot, String> {
    let mut sys = System::new(SystemConfig::small_test());
    assert!(
        m.programs.len() <= sys.total_pes(),
        "case targets more PEs than small_test provides"
    );
    if engine == Engine::Sharded {
        sys.set_step_shards(2);
    }
    for (addr, bytes) in &m.mem_init {
        sys.hmc_mut().host_write(*addr, bytes);
    }
    for addr in &m.full_init {
        sys.hmc_mut().host_set_full(*addr, true);
    }
    for (pe, sp) in m.sp_init.iter().enumerate() {
        sys.pe_mut(pe)
            .scratchpad_mut()
            .write(0, sp)
            .expect("generated scratchpad image fits");
    }
    for (pe, p) in m.programs.iter().enumerate() {
        sys.load_program(pe, p);
    }
    let res = match engine {
        Engine::Naive => sys.run_naive(MAX_CYCLES),
        Engine::FastForward | Engine::Sharded => sys.run(MAX_CYCLES),
        Engine::Functional => {
            // Generated cases are small; shrink the duty-cycle windows
            // so they actually cross the functional/accurate boundary
            // (stretches, drains, re-calibration) instead of finishing
            // inside the first calibration window.
            sys.set_func_config(vip_core::FuncConfig {
                warmup_cycles: 64,
                sample_cycles: 256,
                stretch_work: 2_000,
                quantum: 64,
                drain_cycles: 5_000,
            });
            sys.run_functional(MAX_CYCLES)
        }
    };
    res.map_err(|e| format!("{engine} engine: {e}"))?;
    Ok(ArchSnapshot {
        pes: (0..m.programs.len())
            .map(|i| sys.pe(i).arch_state())
            .collect(),
        dram: m
            .check_ranges
            .iter()
            .map(|&(addr, len)| (addr, sys.hmc().host_read(addr, len)))
            .collect(),
        full: m
            .check_ranges
            .iter()
            .map(|&(addr, len)| {
                (
                    addr,
                    (0..len / 8)
                        .map(|w| sys.hmc().host_is_full(addr + w as u64 * 8))
                        .collect(),
                )
            })
            .collect(),
    })
}

/// Describes the first few differences between two snapshots, or `None`
/// if they agree everywhere.
#[must_use]
pub fn diff_snapshots(reference: &ArchSnapshot, observed: &ArchSnapshot) -> Option<String> {
    let mut lines = Vec::new();
    const LIMIT: usize = 8;
    for (pe, (r, o)) in reference.pes.iter().zip(&observed.pes).enumerate() {
        for i in 0..r.regs.len() {
            if r.regs[i] != o.regs[i] && lines.len() < LIMIT {
                lines.push(format!(
                    "pe{pe} {}: ref {:#x} vs engine {:#x}",
                    Reg::new(i as u8),
                    r.regs[i],
                    o.regs[i]
                ));
            }
        }
        for (i, (a, b)) in r.scratchpad.iter().zip(&o.scratchpad).enumerate() {
            if a != b && lines.len() < LIMIT {
                lines.push(format!(
                    "pe{pe} scratchpad[{i:#x}]: ref {a:#04x} vs engine {b:#04x}"
                ));
            }
        }
        if r.scratchpad != o.scratchpad && lines.len() >= LIMIT {
            break;
        }
    }
    for ((base, r), (_, o)) in reference.dram.iter().zip(&observed.dram) {
        for (i, (a, b)) in r.iter().zip(o).enumerate() {
            if a != b && lines.len() < LIMIT {
                lines.push(format!(
                    "dram[{:#x}]: ref {a:#04x} vs engine {b:#04x}",
                    base + i as u64
                ));
            }
        }
    }
    for ((base, r), (_, o)) in reference.full.iter().zip(&observed.full) {
        for (w, (a, b)) in r.iter().zip(o).enumerate() {
            if a != b && lines.len() < LIMIT {
                lines.push(format!(
                    "full[{:#x}]: ref {a} vs engine {b}",
                    base + w as u64 * 8
                ));
            }
        }
    }
    if lines.is_empty() && reference == observed {
        None
    } else if lines.is_empty() {
        Some("snapshots differ in shape".to_owned())
    } else {
        Some(lines.join("\n"))
    }
}

/// Checks one materialized case against every engine (used by corpus
/// regression tests, where there is no seed to minimize from).
///
/// # Errors
///
/// The engine and difference description on any divergence.
///
/// # Panics
///
/// Panics if the reference run itself fails — corpus programs are
/// expected to be legal and deadlock-free.
pub fn check_materialized(m: &Materialized) -> Result<(), (Engine, String)> {
    let reference = run_ref(m).expect("reference run of a legal program succeeds");
    for engine in Engine::all() {
        let observed = run_engine(m, engine).map_err(|e| (engine, e))?;
        if let Some(detail) = diff_snapshots(&reference, &observed) {
            return Err((engine, detail));
        }
    }
    Ok(())
}

/// How one fuzzing case fared.
fn first_divergence(m: &Materialized) -> Option<(Engine, String)> {
    let reference = match run_ref(m) {
        Ok(s) => s,
        // Generator bug: it must only emit legal, terminating programs.
        Err(e) => panic!("reference rejected a generated program: {e}"),
    };
    for engine in Engine::all() {
        match run_engine(m, engine) {
            Ok(observed) => {
                if let Some(detail) = diff_snapshots(&reference, &observed) {
                    return Some((engine, detail));
                }
            }
            Err(e) => return Some((engine, e)),
        }
    }
    None
}

/// Re-checks a masked case against one engine only (minimization).
fn still_diverges(case: &TestCase, mask: &[Vec<bool>], engine: Engine) -> bool {
    let m = case.materialize(mask);
    let Ok(reference) = run_ref(&m) else {
        return false; // the subset lost the property; keep looking
    };
    match run_engine(&m, engine) {
        Ok(observed) => diff_snapshots(&reference, &observed).is_some(),
        Err(_) => true,
    }
}

/// Greedily minimizes a diverging case: tries removing each segment
/// (ring rounds across all PEs at once) and keeps removals that
/// preserve the divergence, looping until a fixpoint.
fn minimize(case: &TestCase, engine: Engine) -> Vec<Vec<bool>> {
    let mut mask = case.full_mask();
    loop {
        let mut shrunk = false;
        // Ring rounds first: they are the coarsest units.
        for round in 0..case.ring_rounds {
            let mut candidate = mask.clone();
            let mut present = false;
            for (pe, pe_specs) in case.specs.iter().enumerate() {
                for (i, seg) in pe_specs.iter().enumerate() {
                    if seg.is_ring_round(round) && candidate[pe][i] {
                        candidate[pe][i] = false;
                        present = true;
                    }
                }
            }
            if present && still_diverges(case, &candidate, engine) {
                mask = candidate;
                shrunk = true;
            }
        }
        for (pe, pe_specs) in case.specs.iter().enumerate() {
            for (i, seg) in pe_specs.iter().enumerate() {
                if !mask[pe][i] || matches!(seg, SegmentSpec::FeRing { .. }) {
                    continue;
                }
                let mut candidate = mask.clone();
                candidate[pe][i] = false;
                if still_diverges(case, &candidate, engine) {
                    mask = candidate;
                    shrunk = true;
                }
            }
        }
        if !shrunk {
            return mask;
        }
    }
}

/// Fuzzes one seed differentially across every engine.
///
/// # Errors
///
/// A minimized, disassembled [`Divergence`] if any engine disagrees
/// with the architectural reference.
pub fn fuzz_one(seed: u64, cfg: &GenConfig) -> Result<(), Box<Divergence>> {
    let case = generate(seed, cfg);
    let m = case.materialize_full();
    let Some((engine, _)) = first_divergence(&m) else {
        return Ok(());
    };
    let mask = minimize(&case, engine);
    let minimized = case.materialize(&mask);
    let detail = first_divergence(&minimized).map_or_else(
        || "divergence did not survive re-run".to_owned(),
        |(_, d)| d,
    );
    Err(Box::new(Divergence {
        seed,
        engine,
        detail,
        listings: minimized.programs.iter().map(|p| p.to_string()).collect(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshots_of_identical_runs_agree() {
        let cfg = GenConfig::default();
        let m = generate(3, &cfg).materialize_full();
        let a = run_ref(&m).unwrap();
        let b = run_ref(&m).unwrap();
        assert_eq!(diff_snapshots(&a, &b), None);
    }

    #[test]
    fn diff_reports_a_register_mismatch() {
        let cfg = GenConfig::default();
        let m = generate(3, &cfg).materialize_full();
        let a = run_ref(&m).unwrap();
        let mut b = a.clone();
        b.pes[0].regs[17] ^= 1;
        let detail = diff_snapshots(&a, &b).unwrap();
        assert!(detail.contains("pe0 r17"), "{detail}");
    }
}

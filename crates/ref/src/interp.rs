//! The architectural reference interpreter.
//!
//! Executes VIP programs functionally, with no notion of time: each PE
//! runs its instruction stream in program order, and memory operations
//! take effect immediately. This is the architectural contract the
//! cycle-level model must preserve — the PE executes instructions
//! functionally *at issue* in program order, and the LSU/vault ordering
//! rules make same-PE memory traffic look sequential — so for any legal
//! program the two must reach identical final state. Arithmetic is
//! bit-exact by construction: both models call the same
//! [`vip_isa::alu`] routines.
//!
//! The only inter-PE coupling is through shared DRAM, including its
//! full-empty bits. Those are the one place the architecture exposes
//! *synchronization*, so the interpreter models blocking: a `ld.reg.fe`
//! on an empty word (or `st.reg.ff` on a full one) parks the PE, and
//! [`RefSystem::run`] round-robins the PEs until all halt, reporting a
//! deadlock if a round passes with every live PE parked. Programs whose
//! final state depends on inter-PE races beyond that pairwise handoff
//! discipline are not conformance-testable; the fuzzer's generator is
//! careful to emit only race-free programs.

use std::fmt;

use vip_core::PeArchState;
use vip_isa::{alu, Instruction, Program, Reg, Trap, NUM_REGS};
use vip_mem::Storage;

/// What one interpreted step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// An instruction executed (or the PE just halted).
    Progress,
    /// The PE is parked on a full-empty word in the wrong state.
    Blocked,
    /// The PE has halted.
    Halted,
}

/// Why a reference run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RefRunError {
    /// A PE executed an illegal instruction.
    Trap {
        /// The PE that trapped.
        pe: usize,
        /// Program counter of the trapping instruction.
        pc: usize,
        /// The trapping instruction.
        inst: Instruction,
        /// The architectural trap.
        trap: Trap,
    },
    /// Every live PE is parked on a full-empty word: the program can
    /// never finish.
    Deadlock {
        /// PEs still parked.
        blocked: Vec<usize>,
    },
    /// The program exceeded the interpreter's step budget (a runaway
    /// loop).
    StepLimit,
}

impl fmt::Display for RefRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefRunError::Trap { pe, pc, inst, trap } => {
                write!(f, "pe{pe} trapped at pc {pc} (`{inst}`): {trap}")
            }
            RefRunError::Deadlock { blocked } => {
                write!(f, "full-empty deadlock; blocked PEs: {blocked:?}")
            }
            RefRunError::StepLimit => write!(f, "step limit exceeded (runaway loop?)"),
        }
    }
}

impl std::error::Error for RefRunError {}

/// One PE of the reference machine: registers, scratchpad, PC, and the
/// vector configuration — nothing else, because nothing else is
/// architectural.
#[derive(Debug, Clone)]
pub struct RefPe {
    program: Program,
    pc: usize,
    halted: bool,
    regs: [u64; NUM_REGS],
    sp: Vec<u8>,
    vl: usize,
    mr: usize,
}

impl RefPe {
    /// A PE with a `bytes`-byte scratchpad and no program (halted).
    #[must_use]
    pub fn new(bytes: usize) -> Self {
        RefPe {
            program: Program::default(),
            pc: 0,
            halted: true,
            regs: [0; NUM_REGS],
            sp: vec![0; bytes],
            vl: 1,
            mr: 1,
        }
    }

    /// Loads a program and resets the PC.
    pub fn load_program(&mut self, program: &Program) {
        self.program = program.clone();
        self.pc = 0;
        self.halted = program.is_empty();
    }

    /// Whether the PE has halted.
    #[must_use]
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Host access to a scalar register.
    #[must_use]
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Host mutation of a scalar register.
    pub fn set_reg(&mut self, r: Reg, value: u64) {
        self.regs[r.index()] = value;
    }

    /// Host access to the scratchpad image.
    #[must_use]
    pub fn scratchpad(&self) -> &[u8] {
        &self.sp
    }

    /// Host mutation of the scratchpad (test preloading).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the scratchpad.
    pub fn write_scratchpad(&mut self, addr: usize, bytes: &[u8]) {
        self.sp[addr..addr + bytes.len()].copy_from_slice(bytes);
    }

    /// This PE's architectural state, in the same shape the cycle-level
    /// [`vip_core::Pe::arch_state`] reports for comparison.
    #[must_use]
    pub fn arch_state(&self) -> PeArchState {
        PeArchState {
            regs: self.regs,
            scratchpad: self.sp.clone(),
        }
    }

    fn sp_read(&self, addr: usize, len: usize) -> Result<Vec<u8>, Trap> {
        Trap::check_sp_range(addr, len, self.sp.len())?;
        Ok(self.sp[addr..addr + len].to_vec())
    }

    fn sp_write(&mut self, addr: usize, data: &[u8]) -> Result<(), Trap> {
        Trap::check_sp_range(addr, data.len(), self.sp.len())?;
        self.sp[addr..addr + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Executes at most one instruction against `mem`.
    ///
    /// A blocked full-empty access leaves the PC unchanged and returns
    /// [`Step::Blocked`]; the caller retries after other PEs have run.
    ///
    /// # Errors
    ///
    /// Returns the [`Trap`] for an illegal instruction (the cycle-level
    /// PE panics on the same programs).
    pub fn step(&mut self, mem: &mut Storage) -> Result<Step, Trap> {
        if self.halted {
            return Ok(Step::Halted);
        }
        let Some(inst) = self.program.get(self.pc).copied() else {
            // Fell off the end of the program: treat as halt.
            self.halted = true;
            return Ok(Step::Halted);
        };

        use Instruction::*;
        match inst {
            SetVl { rs } => {
                let vl = self.regs[rs.index()] as usize;
                Trap::check_vl(vl)?;
                self.vl = vl;
            }
            SetMr { rs } => {
                let mr = self.regs[rs.index()] as usize;
                Trap::check_mr(mr)?;
                self.mr = mr;
            }
            VDrain | MemFence | Nop => {}
            MatVec {
                vop,
                hop,
                ty,
                rd,
                rs_mat,
                rs_vec,
            } => {
                let (vl, mr, es) = (self.vl, self.mr, ty.size_bytes());
                let d = self.regs[rd.index()] as usize;
                let mat = self.sp_read(self.regs[rs_mat.index()] as usize, mr * vl * es)?;
                let vec = self.sp_read(self.regs[rs_vec.index()] as usize, vl * es)?;
                let mut dst = vec![0u8; mr * es];
                alu::mat_vec(vop, hop, ty, &mut dst, &mat, &vec, mr, vl);
                self.sp_write(d, &dst)?;
            }
            VecVec {
                op,
                ty,
                rd,
                rs1,
                rs2,
            } => {
                let len = self.vl * ty.size_bytes();
                let d = self.regs[rd.index()] as usize;
                let a = self.sp_read(self.regs[rs1.index()] as usize, len)?;
                let b = self.sp_read(self.regs[rs2.index()] as usize, len)?;
                let mut dst = vec![0u8; len];
                alu::vec_vec(op, ty, &mut dst, &a, &b, self.vl);
                self.sp_write(d, &dst)?;
            }
            VecScalar {
                op,
                ty,
                rd,
                rs_vec,
                rs_scalar,
            } => {
                let len = self.vl * ty.size_bytes();
                let d = self.regs[rd.index()] as usize;
                let a = self.sp_read(self.regs[rs_vec.index()] as usize, len)?;
                let s = self.regs[rs_scalar.index()];
                let mut dst = vec![0u8; len];
                alu::vec_scalar(op, ty, &mut dst, &a, s, self.vl);
                self.sp_write(d, &dst)?;
            }
            Scalar { op, rd, rs1, rs2 } => {
                self.regs[rd.index()] = op.eval(self.regs[rs1.index()], self.regs[rs2.index()]);
            }
            ScalarImm { op, rd, rs1, imm } => {
                self.regs[rd.index()] = op.eval(self.regs[rs1.index()], imm as i64 as u64);
            }
            Mov { rd, rs } => self.regs[rd.index()] = self.regs[rs.index()],
            MovImm { rd, imm } => self.regs[rd.index()] = imm as u64,
            Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.eval(self.regs[rs1.index()], self.regs[rs2.index()]) {
                    self.pc = target as usize;
                } else {
                    self.pc += 1;
                }
                return Ok(Step::Progress);
            }
            Jmp { target } => {
                self.pc = target as usize;
                return Ok(Step::Progress);
            }
            LdSram {
                ty,
                rd_sp,
                rs_addr,
                rs_len,
            } => {
                let sp = self.regs[rd_sp.index()] as usize;
                let dram = self.regs[rs_addr.index()];
                let len = self.regs[rs_len.index()] as usize * ty.size_bytes();
                Trap::check_sp_range(sp, len, self.sp.len())?;
                let data = mem.read_vec(dram, len);
                self.sp_write(sp, &data)?;
            }
            StSram {
                ty,
                rs_sp,
                rs_addr,
                rs_len,
            } => {
                let sp = self.regs[rs_sp.index()] as usize;
                let dram = self.regs[rs_addr.index()];
                let len = self.regs[rs_len.index()] as usize * ty.size_bytes();
                let data = self.sp_read(sp, len)?;
                mem.write(dram, &data);
            }
            LdReg { rd, rs_addr } => {
                let dram = self.regs[rs_addr.index()];
                Trap::check_reg_addr(dram)?;
                self.regs[rd.index()] = mem.read_u64(dram);
            }
            StReg { rs, rs_addr } => {
                let dram = self.regs[rs_addr.index()];
                Trap::check_reg_addr(dram)?;
                mem.write_u64(dram, self.regs[rs.index()]);
            }
            LdRegFe { rd, rs_addr } => {
                let dram = self.regs[rs_addr.index()];
                Trap::check_reg_addr(dram)?;
                if !mem.is_full(dram) {
                    return Ok(Step::Blocked);
                }
                self.regs[rd.index()] = mem.read_u64(dram);
                mem.set_full(dram, false);
            }
            StRegFf { rs, rs_addr } => {
                let dram = self.regs[rs_addr.index()];
                Trap::check_reg_addr(dram)?;
                if mem.is_full(dram) {
                    return Ok(Step::Blocked);
                }
                mem.write_u64(dram, self.regs[rs.index()]);
                mem.set_full(dram, true);
            }
            Halt => {
                self.halted = true;
                return Ok(Step::Progress);
            }
        }
        self.pc += 1;
        Ok(Step::Progress)
    }
}

/// The whole reference machine: `n` PEs sharing one flat DRAM image.
#[derive(Debug, Clone)]
pub struct RefSystem {
    pes: Vec<RefPe>,
    mem: Storage,
}

impl RefSystem {
    /// `num_pes` PEs with `scratchpad_bytes` scratchpads and empty DRAM.
    #[must_use]
    pub fn new(num_pes: usize, scratchpad_bytes: usize) -> Self {
        RefSystem {
            pes: (0..num_pes).map(|_| RefPe::new(scratchpad_bytes)).collect(),
            mem: Storage::new(),
        }
    }

    /// The PEs.
    #[must_use]
    pub fn pes(&self) -> &[RefPe] {
        &self.pes
    }

    /// Mutable PE access (host initialization).
    pub fn pe_mut(&mut self, pe: usize) -> &mut RefPe {
        &mut self.pes[pe]
    }

    /// The DRAM image.
    #[must_use]
    pub fn mem(&self) -> &Storage {
        &self.mem
    }

    /// Mutable DRAM access (host initialization).
    pub fn mem_mut(&mut self) -> &mut Storage {
        &mut self.mem
    }

    /// Loads `program` into PE `pe`.
    pub fn load_program(&mut self, pe: usize, program: &Program) {
        self.pes[pe].load_program(program);
    }

    /// Runs every PE to completion, round-robin with run-to-block
    /// scheduling: each round, every live PE executes until it halts or
    /// parks on a full-empty word; parked PEs retry next round after
    /// their peers have run.
    ///
    /// `max_steps` bounds total executed instructions across all PEs.
    ///
    /// # Errors
    ///
    /// [`RefRunError::Trap`] for an illegal instruction,
    /// [`RefRunError::Deadlock`] if a whole round passes with every live
    /// PE parked, [`RefRunError::StepLimit`] past the step budget.
    pub fn run(&mut self, max_steps: u64) -> Result<(), RefRunError> {
        let mut steps = 0u64;
        loop {
            let mut progressed = false;
            let mut blocked = Vec::new();
            for i in 0..self.pes.len() {
                loop {
                    let pe = &mut self.pes[i];
                    let (pc, inst) = (pe.pc, pe.program.get(pe.pc).copied());
                    match pe.step(&mut self.mem) {
                        Ok(Step::Progress) => {
                            progressed = true;
                            steps += 1;
                            if steps > max_steps {
                                return Err(RefRunError::StepLimit);
                            }
                        }
                        Ok(Step::Blocked) => {
                            blocked.push(i);
                            break;
                        }
                        Ok(Step::Halted) => break,
                        Err(trap) => {
                            return Err(RefRunError::Trap {
                                pe: i,
                                pc,
                                inst: inst.unwrap_or(Instruction::Nop),
                                trap,
                            });
                        }
                    }
                }
            }
            if self.pes.iter().all(|pe| pe.halted) {
                return Ok(());
            }
            if !progressed {
                return Err(RefRunError::Deadlock { blocked });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vip_isa::{Asm, ElemType};

    #[test]
    fn scalar_loop_sums() {
        // Sum 0..10 with a backwards branch.
        let mut a = Asm::new();
        a.mov_imm(Reg::new(1), 0); // acc
        a.mov_imm(Reg::new(2), 0); // i
        a.mov_imm(Reg::new(3), 10); // limit
        a.label("loop");
        a.add(Reg::new(1), Reg::new(1), Reg::new(2));
        a.addi(Reg::new(2), Reg::new(2), 1);
        a.blt(Reg::new(2), Reg::new(3), "loop");
        a.halt();
        let p = a.assemble().unwrap();

        let mut sys = RefSystem::new(1, 4096);
        sys.load_program(0, &p);
        sys.run(10_000).unwrap();
        assert_eq!(sys.pes()[0].reg(Reg::new(1)), 45);
    }

    #[test]
    fn vector_add_matches_alu() {
        let mut a = Asm::new();
        a.mov_imm(Reg::new(1), 16); // vl
        a.set_vl(Reg::new(1));
        a.mov_imm(Reg::new(2), 0); // src a
        a.mov_imm(Reg::new(3), 32); // src b
        a.mov_imm(Reg::new(4), 64); // dst
        a.vec_vec(
            vip_isa::VerticalOp::Add,
            ElemType::I16,
            Reg::new(4),
            Reg::new(2),
            Reg::new(3),
        );
        a.halt();
        let p = a.assemble().unwrap();

        let mut sys = RefSystem::new(1, 4096);
        for i in 0..16u16 {
            let off = i as usize * 2;
            sys.pe_mut(0).sp[off..off + 2].copy_from_slice(&i.to_le_bytes());
            sys.pe_mut(0).sp[32 + off..32 + off + 2].copy_from_slice(&(100 * i).to_le_bytes());
        }
        sys.load_program(0, &p);
        sys.run(10_000).unwrap();
        for i in 0..16u16 {
            let off = 64 + i as usize * 2;
            let got = i16::from_le_bytes([sys.pes()[0].sp[off], sys.pes()[0].sp[off + 1]]);
            assert_eq!(got, (101 * i) as i16);
        }
    }

    #[test]
    fn full_empty_handoff_and_deadlock() {
        // PE 0 produces into an empty word; PE 1 consumes it.
        let addr = 0x1000u64;
        let mut prod = Asm::new();
        prod.mov_imm(Reg::new(1), addr as i64);
        prod.mov_imm(Reg::new(2), 0xfeed);
        prod.st_reg_ff(Reg::new(2), Reg::new(1));
        prod.halt();
        let mut cons = Asm::new();
        cons.mov_imm(Reg::new(1), addr as i64);
        cons.ld_reg_fe(Reg::new(3), Reg::new(1));
        cons.halt();

        // Consumer first in the round-robin order: it must park, then
        // be woken by the producer.
        let mut sys = RefSystem::new(2, 4096);
        sys.load_program(0, &cons.assemble().unwrap());
        sys.load_program(1, &prod.assemble().unwrap());
        sys.run(10_000).unwrap();
        assert_eq!(sys.pes()[0].reg(Reg::new(3)), 0xfeed);
        assert!(!sys.mem().is_full(addr), "fe load clears the bit");

        // A lone consumer with nobody filling the word deadlocks.
        let mut cons2 = Asm::new();
        cons2.mov_imm(Reg::new(1), addr as i64);
        cons2.ld_reg_fe(Reg::new(3), Reg::new(1));
        cons2.halt();
        let mut sys = RefSystem::new(1, 4096);
        sys.load_program(0, &cons2.assemble().unwrap());
        assert_eq!(
            sys.run(10_000),
            Err(RefRunError::Deadlock { blocked: vec![0] })
        );
    }

    #[test]
    fn traps_are_reported_not_panicked() {
        let mut a = Asm::new();
        a.mov_imm(Reg::new(1), 4096); // one past the end
        a.mov_imm(Reg::new(2), 0x100);
        a.mov_imm(Reg::new(3), 4);
        a.ld_sram(ElemType::I16, Reg::new(1), Reg::new(2), Reg::new(3));
        a.halt();
        let mut sys = RefSystem::new(1, 4096);
        sys.load_program(0, &a.assemble().unwrap());
        match sys.run(10_000) {
            Err(RefRunError::Trap {
                pe: 0, pc: 3, trap, ..
            }) => {
                assert!(matches!(trap, Trap::ScratchpadOutOfBounds { .. }));
            }
            other => panic!("expected a trap, got {other:?}"),
        }
    }
}

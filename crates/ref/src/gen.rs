//! Seeded generator of random-but-valid VIP test programs.
//!
//! A generated [`TestCase`] is a *deterministic multi-PE workload*: its
//! final architectural state is a function of the programs and the
//! initial memory image alone, never of engine timing. That is what
//! makes it usable for differential conformance testing — the
//! architectural interpreter and every cycle-level stepping engine must
//! all land on the same final state. Determinism comes from a memory
//! discipline, not from avoiding sharing:
//!
//! * every PE owns a private DRAM *arena*; stores go only there;
//! * loads target the PE's own arena or a shared *read-only* region;
//! * full-empty words are used at most once per direction (one
//!   `st.reg.ff`, one `ld.reg.fe`), so their final value and state are
//!   race-free;
//! * the only cross-PE traffic is a full-empty *ring handoff*: in round
//!   `r`, PE `i` fills its slot and then drains PE `i-1`'s slot. Stores
//!   precede loads in program order, so the ring cannot deadlock.
//!
//! A test case is a list of independent *segments* per PE, each drawn
//! from its own sub-seed. Segments are the unit of minimization: the
//! harness re-materializes the case with segments masked off (ring
//! rounds drop on every PE at once) and keeps the divergence-preserving
//! subsets, without perturbing the surviving segments' randomness.

use vip_isa::{Asm, BranchCond, ElemType, HorizontalOp, Program, Reg, ScalarAluOp, VerticalOp};
use vip_rng::SplitMix64;

/// Base of the shared read-only DRAM region (pseudo-random bytes).
pub const RO_BASE: u64 = 0x1_0000;
/// Length of the read-only region.
pub const RO_LEN: usize = 4096;
/// Base of PE 0's private read-write arena.
pub const ARENA_BASE: u64 = 0x2_0000;
/// Address stride between consecutive PEs' arenas.
pub const ARENA_STRIDE: u64 = 0x1_0000;
/// Length of each PE's arena.
pub const ARENA_LEN: usize = 4096;
/// Base of the private full-empty word region.
pub const FE_BASE: u64 = 0x8_0000;
/// Full-empty slots reserved per PE.
pub const FE_SLOTS_PER_PE: usize = 256;
/// Base of the ring-handoff full-empty region.
pub const RING_BASE: u64 = 0x9_0000;

/// PE `pe`'s private arena base.
#[must_use]
pub fn arena_base(pe: usize) -> u64 {
    ARENA_BASE + pe as u64 * ARENA_STRIDE
}

/// PE `pe`'s `slot`-th private full-empty word.
#[must_use]
pub fn fe_addr(pe: usize, slot: usize) -> u64 {
    FE_BASE + ((pe * FE_SLOTS_PER_PE + slot) * 8) as u64
}

/// The round-`round` ring slot owned by PE `i` (of `n`).
#[must_use]
pub fn ring_addr(round: usize, i: usize, n: usize) -> u64 {
    RING_BASE + ((round * n + i) * 8) as u64
}

/// Scratch registers r1–r5 hold addresses and configuration; r6/r7 are
/// loop state; r16–r31 carry data between segments.
const DATA_REG_BASE: u8 = 16;
const DATA_REGS: u8 = 16;

fn data_reg(rng: &mut SplitMix64) -> Reg {
    Reg::new(DATA_REG_BASE + rng.below(u64::from(DATA_REGS)) as u8)
}

/// Generator knobs.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Number of PEs the case targets.
    pub num_pes: usize,
    /// Scratchpad capacity per PE in bytes.
    pub scratchpad_bytes: usize,
    /// Maximum random segments per PE (at least 2 are drawn).
    pub max_segments: usize,
    /// Maximum ring-handoff rounds (0 disables the ring).
    pub max_ring_rounds: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            num_pes: 4,
            scratchpad_bytes: 4096,
            max_segments: 10,
            max_ring_rounds: 3,
        }
    }
}

/// One independently generated, independently removable piece of a PE's
/// program. Each carries the sub-seed its contents are drawn from, so
/// masking one segment off never changes what another emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentSpec {
    /// Straight-line scalar ALU ops over the data registers.
    Scalar { sub_seed: u64, n: usize },
    /// One vector instruction (`m.v`/`v.v`/`v.s`) with fresh `vl`/`mr`.
    Vector { sub_seed: u64 },
    /// `ld.sram` from the read-only region or the PE's arena.
    SramLoad { sub_seed: u64 },
    /// `st.sram` into the PE's arena.
    SramStore { sub_seed: u64 },
    /// `ld.reg` from the read-only region or the PE's arena.
    RegLoad { sub_seed: u64 },
    /// `st.reg` into the PE's arena.
    RegStore { sub_seed: u64 },
    /// A counted backwards-branch loop over scalar ops.
    Loop { sub_seed: u64, count: i64, n: usize },
    /// A forward branch that may skip a block of scalar ops.
    Skip { sub_seed: u64, n: usize },
    /// `st.reg.ff` then `ld.reg.fe` on a fresh private word.
    FePrivate { sub_seed: u64, slot: usize },
    /// `ld.reg.fe` of a word the host pre-fills.
    FeSeeded { sub_seed: u64, slot: usize },
    /// One round of the cross-PE ring handoff. Present on every PE;
    /// removable only on every PE at once.
    FeRing { sub_seed: u64, round: usize },
}

impl SegmentSpec {
    /// Whether this is a ring segment of round `round`.
    #[must_use]
    pub fn is_ring_round(&self, round: usize) -> bool {
        matches!(self, SegmentSpec::FeRing { round: r, .. } if *r == round)
    }
}

/// A generated multi-PE test case: per-PE segment lists plus everything
/// derived from the seed. Programs and the host memory image are
/// *materialized* from the specs, optionally under a mask.
#[derive(Debug, Clone)]
pub struct TestCase {
    /// The seed this case was generated from.
    pub seed: u64,
    /// Generator knobs used.
    pub cfg: GenConfig,
    /// Per-PE segment lists.
    pub specs: Vec<Vec<SegmentSpec>>,
    /// Ring rounds present (each appears once per PE).
    pub ring_rounds: usize,
}

/// A materialized test case: what to load and poke before running, and
/// which DRAM windows to compare afterwards.
#[derive(Debug, Clone)]
pub struct Materialized {
    /// One program per PE.
    pub programs: Vec<Program>,
    /// Initial scratchpad image per PE.
    pub sp_init: Vec<Vec<u8>>,
    /// Host DRAM writes `(addr, bytes)` before the run.
    pub mem_init: Vec<(u64, Vec<u8>)>,
    /// Words the host marks *full* before the run.
    pub full_init: Vec<u64>,
    /// DRAM windows `(addr, len)` whose bytes and full bits are part of
    /// the architectural result.
    pub check_ranges: Vec<(u64, usize)>,
}

/// Generates the test case for `seed`.
#[must_use]
pub fn generate(seed: u64, cfg: &GenConfig) -> TestCase {
    let mut rng = SplitMix64::new(seed);
    let ring_rounds = if cfg.max_ring_rounds > 0 && cfg.num_pes > 1 {
        rng.below(cfg.max_ring_rounds as u64 + 1) as usize
    } else {
        0
    };

    let mut specs = Vec::with_capacity(cfg.num_pes);
    for _ in 0..cfg.num_pes {
        let n_segs = rng.usize_in(2..cfg.max_segments.max(3));
        let mut pe_specs: Vec<SegmentSpec> = (0..n_segs)
            .map(|_| {
                let sub_seed = rng.next_u64();
                match rng.below(10) {
                    0 | 1 => SegmentSpec::Scalar {
                        sub_seed,
                        n: rng.usize_in(2..8),
                    },
                    2 | 3 => SegmentSpec::Vector { sub_seed },
                    4 => SegmentSpec::SramLoad { sub_seed },
                    5 => SegmentSpec::SramStore { sub_seed },
                    6 => SegmentSpec::RegLoad { sub_seed },
                    7 => SegmentSpec::RegStore { sub_seed },
                    8 => SegmentSpec::Loop {
                        sub_seed,
                        count: rng.i64_in(2..5),
                        n: rng.usize_in(1..4),
                    },
                    _ => SegmentSpec::Skip {
                        sub_seed,
                        n: rng.usize_in(1..4),
                    },
                }
            })
            .collect();
        // Sprinkle in private full-empty traffic; each segment gets a
        // fresh slot so no word is reused.
        for slot in 0..rng.below(3) as usize {
            let sub_seed = rng.next_u64();
            let seg = if rng.bool() {
                SegmentSpec::FePrivate { sub_seed, slot }
            } else {
                SegmentSpec::FeSeeded { sub_seed, slot }
            };
            let at = rng.usize_in(0..pe_specs.len() + 1);
            pe_specs.insert(at, seg);
        }
        // Ring rounds, in round order at random positions.
        for round in 0..ring_rounds {
            let sub_seed = rng.next_u64();
            let after = pe_specs
                .iter()
                .position(|s| s.is_ring_round(round.wrapping_sub(1)))
                .map_or(0, |p| p + 1);
            let at = rng.usize_in(after..pe_specs.len() + 1);
            pe_specs.insert(at, SegmentSpec::FeRing { sub_seed, round });
        }
        specs.push(pe_specs);
    }

    TestCase {
        seed,
        cfg: *cfg,
        specs,
        ring_rounds,
    }
}

impl TestCase {
    /// A mask enabling every segment.
    #[must_use]
    pub fn full_mask(&self) -> Vec<Vec<bool>> {
        self.specs.iter().map(|s| vec![true; s.len()]).collect()
    }

    /// Materializes programs and host state with every segment enabled.
    #[must_use]
    pub fn materialize_full(&self) -> Materialized {
        let mask = self.full_mask();
        self.materialize(&mask)
    }

    /// Materializes programs and host state for the enabled segments.
    ///
    /// # Panics
    ///
    /// Panics if `mask` does not match the spec shape or if a program
    /// fails to assemble (a generator bug).
    #[must_use]
    pub fn materialize(&self, mask: &[Vec<bool>]) -> Materialized {
        assert_eq!(mask.len(), self.specs.len(), "mask shape mismatch");
        let n = self.cfg.num_pes;
        let mut programs = Vec::with_capacity(n);
        let mut sp_init = Vec::with_capacity(n);
        let mut mem_init = Vec::new();
        let mut full_init = Vec::new();

        // Seed-derived, mask-independent host images.
        let mut img_rng = SplitMix64::new(self.seed ^ 0x1ace_5eed_0f00_d000);
        let ro = img_rng.bytes(RO_LEN);
        mem_init.push((RO_BASE, ro));

        for (pe, pe_specs) in self.specs.iter().enumerate() {
            assert_eq!(mask[pe].len(), pe_specs.len(), "mask shape mismatch");
            sp_init.push(img_rng.bytes(self.cfg.scratchpad_bytes));
            // Give each arena deterministic initial contents so loads
            // that precede stores still read defined data.
            mem_init.push((arena_base(pe), img_rng.bytes(ARENA_LEN)));

            let mut asm = Asm::new();
            let mut label = 0usize;
            let mut init_rng = SplitMix64::new(self.seed ^ (pe as u64).wrapping_mul(0x9e37));
            for i in 0..DATA_REGS {
                let v = init_rng.i64_in(-(1 << 39)..(1 << 39));
                asm.mov_imm(Reg::new(DATA_REG_BASE + i), v);
            }
            for (seg, &enabled) in pe_specs.iter().zip(&mask[pe]) {
                if !enabled {
                    continue;
                }
                seg.emit(pe, n, self.cfg.scratchpad_bytes, &mut asm, &mut label);
                if let SegmentSpec::FeSeeded { sub_seed, slot } = *seg {
                    let addr = fe_addr(pe, slot);
                    let value = SplitMix64::new(sub_seed).next_u64();
                    mem_init.push((addr, value.to_le_bytes().to_vec()));
                    full_init.push(addr);
                }
            }
            asm.halt();
            programs.push(asm.assemble().expect("generated programs assemble"));
        }

        let mut check_ranges = vec![(RO_BASE, RO_LEN)];
        for pe in 0..n {
            check_ranges.push((arena_base(pe), ARENA_LEN));
            check_ranges.push((fe_addr(pe, 0), FE_SLOTS_PER_PE * 8));
        }
        if self.ring_rounds > 0 {
            check_ranges.push((RING_BASE, self.ring_rounds * n * 8));
        }

        Materialized {
            programs,
            sp_init,
            mem_init,
            full_init,
            check_ranges,
        }
    }
}

impl SegmentSpec {
    /// Emits this segment's instructions for PE `pe` of `n`.
    fn emit(&self, pe: usize, n: usize, sp_bytes: usize, asm: &mut Asm, label: &mut usize) {
        let (r1, r2, r3, r5) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(5));
        let (r6, r7) = (Reg::new(6), Reg::new(7));
        match *self {
            SegmentSpec::Scalar { sub_seed, n } => {
                let mut rng = SplitMix64::new(sub_seed);
                for _ in 0..n {
                    emit_scalar_op(&mut rng, asm);
                }
            }
            SegmentSpec::Vector { sub_seed } => {
                let mut rng = SplitMix64::new(sub_seed);
                let ty = ElemType::all()[rng.below(4) as usize];
                let es = ty.size_bytes();
                match rng.below(3) {
                    0 => {
                        // m.v: mat is mr x vl, result is mr lanes.
                        let mr = rng.usize_in(1..9);
                        let vl_max = 64.min(sp_bytes / (mr * es)).max(1);
                        let vl = rng.usize_in(1..vl_max + 1);
                        let mat_len = mr * vl * es;
                        let vec_len = vl * es;
                        let dst_len = mr * es;
                        let mat = rng.usize_in(0..sp_bytes - mat_len + 1);
                        let vec = rng.usize_in(0..sp_bytes - vec_len + 1);
                        let dst = rng.usize_in(0..sp_bytes - dst_len + 1);
                        let vop = VerticalOp::all()[rng.below(6) as usize];
                        let hop = HorizontalOp::all()[rng.below(3) as usize];
                        asm.mov_imm(r1, vl as i64).set_vl(r1);
                        asm.mov_imm(r5, mr as i64).set_mr(r5);
                        asm.mov_imm(r1, dst as i64);
                        asm.mov_imm(r2, mat as i64);
                        asm.mov_imm(r3, vec as i64);
                        asm.mat_vec(vop, hop, ty, r1, r2, r3);
                    }
                    1 => {
                        let vl = rng.usize_in(1..65);
                        let len = vl * es;
                        let a = rng.usize_in(0..sp_bytes - len + 1);
                        let b = rng.usize_in(0..sp_bytes - len + 1);
                        let dst = rng.usize_in(0..sp_bytes - len + 1);
                        let op = non_nop_vop(&mut rng);
                        asm.mov_imm(r1, vl as i64).set_vl(r1);
                        asm.mov_imm(r1, dst as i64);
                        asm.mov_imm(r2, a as i64);
                        asm.mov_imm(r3, b as i64);
                        asm.vec_vec(op, ty, r1, r2, r3);
                    }
                    _ => {
                        let vl = rng.usize_in(1..65);
                        let len = vl * es;
                        let a = rng.usize_in(0..sp_bytes - len + 1);
                        let dst = rng.usize_in(0..sp_bytes - len + 1);
                        let op = non_nop_vop(&mut rng);
                        let s = data_reg(&mut rng);
                        asm.mov_imm(r1, vl as i64).set_vl(r1);
                        asm.mov_imm(r1, dst as i64);
                        asm.mov_imm(r2, a as i64);
                        asm.vec_scalar(op, ty, r1, r2, s);
                    }
                }
                if rng.below(4) == 0 {
                    asm.v_drain();
                }
            }
            SegmentSpec::SramLoad { sub_seed } => {
                let mut rng = SplitMix64::new(sub_seed);
                let ty = ElemType::all()[rng.below(4) as usize];
                let es = ty.size_bytes();
                let elems = rng.usize_in(1..512 / es + 1);
                let len = elems * es;
                let sp = rng.usize_in(0..sp_bytes - len + 1);
                let dram = if rng.bool() {
                    RO_BASE + rng.usize_in(0..RO_LEN - len + 1) as u64
                } else {
                    arena_base(pe) + rng.usize_in(0..ARENA_LEN - len + 1) as u64
                };
                asm.mov_imm(r1, sp as i64);
                asm.mov_imm(r2, dram as i64);
                asm.mov_imm(r3, elems as i64);
                asm.ld_sram(ty, r1, r2, r3);
            }
            SegmentSpec::SramStore { sub_seed } => {
                let mut rng = SplitMix64::new(sub_seed);
                let ty = ElemType::all()[rng.below(4) as usize];
                let es = ty.size_bytes();
                let elems = rng.usize_in(1..512 / es + 1);
                let len = elems * es;
                let sp = rng.usize_in(0..sp_bytes - len + 1);
                let dram = arena_base(pe) + rng.usize_in(0..ARENA_LEN - len + 1) as u64;
                asm.mov_imm(r1, sp as i64);
                asm.mov_imm(r2, dram as i64);
                asm.mov_imm(r3, elems as i64);
                asm.st_sram(ty, r1, r2, r3);
            }
            SegmentSpec::RegLoad { sub_seed } => {
                let mut rng = SplitMix64::new(sub_seed);
                let dram = if rng.bool() {
                    RO_BASE + rng.below((RO_LEN / 8) as u64) * 8
                } else {
                    arena_base(pe) + rng.below((ARENA_LEN / 8) as u64) * 8
                };
                let rd = data_reg(&mut rng);
                asm.mov_imm(r2, dram as i64);
                asm.ld_reg(rd, r2);
            }
            SegmentSpec::RegStore { sub_seed } => {
                let mut rng = SplitMix64::new(sub_seed);
                let dram = arena_base(pe) + rng.below((ARENA_LEN / 8) as u64) * 8;
                let rs = data_reg(&mut rng);
                asm.mov_imm(r2, dram as i64);
                asm.st_reg(rs, r2);
            }
            SegmentSpec::Loop { sub_seed, count, n } => {
                let mut rng = SplitMix64::new(sub_seed);
                let name = format!("loop_{pe}_{label}");
                *label += 1;
                asm.mov_imm(r6, 0);
                asm.mov_imm(r7, count);
                asm.label(&name);
                for _ in 0..n {
                    emit_scalar_op(&mut rng, asm);
                }
                asm.addi(r6, r6, 1);
                asm.blt(r6, r7, &name);
            }
            SegmentSpec::Skip { sub_seed, n } => {
                let mut rng = SplitMix64::new(sub_seed);
                let name = format!("skip_{pe}_{label}");
                *label += 1;
                let cond = BranchCond::all()[rng.below(4) as usize];
                asm.mov_imm(r1, rng.i64_in(-2..3));
                asm.mov_imm(r2, rng.i64_in(-2..3));
                asm.branch(cond, r1, r2, &name);
                for _ in 0..n {
                    emit_scalar_op(&mut rng, asm);
                }
                asm.label(&name);
            }
            SegmentSpec::FePrivate { sub_seed, slot } => {
                let mut rng = SplitMix64::new(sub_seed);
                let addr = fe_addr(pe, slot);
                let src = data_reg(&mut rng);
                let rd = data_reg(&mut rng);
                asm.mov_imm(r1, addr as i64);
                asm.st_reg_ff(src, r1);
                asm.ld_reg_fe(rd, r1);
            }
            SegmentSpec::FeSeeded { sub_seed, slot } => {
                let mut rng = SplitMix64::new(sub_seed);
                let _value = rng.next_u64(); // consumed by materialize()
                let addr = fe_addr(pe, slot);
                let rd = data_reg(&mut rng);
                asm.mov_imm(r1, addr as i64);
                asm.ld_reg_fe(rd, r1);
            }
            SegmentSpec::FeRing { sub_seed, round } => {
                let mut rng = SplitMix64::new(sub_seed);
                let own = ring_addr(round, pe, n);
                let pred = ring_addr(round, (pe + n - 1) % n, n);
                let src = data_reg(&mut rng);
                let rd = data_reg(&mut rng);
                asm.mov_imm(r1, own as i64);
                asm.st_reg_ff(src, r1);
                asm.mov_imm(r2, pred as i64);
                asm.ld_reg_fe(rd, r2);
            }
        }
    }
}

fn non_nop_vop(rng: &mut SplitMix64) -> VerticalOp {
    loop {
        let op = VerticalOp::all()[rng.below(6) as usize];
        if op != VerticalOp::Nop {
            return op;
        }
    }
}

fn emit_scalar_op(rng: &mut SplitMix64, asm: &mut Asm) {
    let op = ScalarAluOp::all()[rng.below(8) as usize];
    let rd = data_reg(rng);
    let rs1 = data_reg(rng);
    if rng.bool() {
        let rs2 = data_reg(rng);
        asm.scalar(op, rd, rs1, rs2);
    } else {
        let imm = rng.i64_in(-(1 << 23)..(1 << 23)) as i32;
        asm.scalar_imm(op, rd, rs1, imm);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate(42, &cfg).materialize_full();
        let b = generate(42, &cfg).materialize_full();
        assert_eq!(a.programs, b.programs);
        assert_eq!(a.mem_init, b.mem_init);
        assert_eq!(a.full_init, b.full_init);
    }

    #[test]
    fn masking_preserves_surviving_segments() {
        let cfg = GenConfig::default();
        let case = generate(7, &cfg);
        let mut mask = case.full_mask();
        // Disable the first segment of PE 0; PE 1's program must be
        // unchanged.
        mask[0][0] = false;
        let full = case.materialize_full();
        let cut = case.materialize(&mask);
        assert_eq!(full.programs[1], cut.programs[1]);
        assert!(cut.programs[0].len() <= full.programs[0].len());
    }

    #[test]
    fn programs_fit_the_instruction_buffer() {
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let m = generate(seed, &cfg).materialize_full();
            for p in &m.programs {
                assert!(p.len() <= vip_isa::INST_BUFFER_ENTRIES);
            }
        }
    }
}

//! # vip-ref — architectural reference + differential conformance
//!
//! The middle layer of the repo's test pyramid:
//!
//! ```text
//! golden kernels (vip-kernels)     what the math should be
//!          ↑ verified against
//! architectural interpreter (here) what the ISA says happens
//!          ↑ fuzzed against
//! cycle-level engines (vip-core)   what the microarchitecture does
//! ```
//!
//! [`interp`] is a fast, untimed interpreter for the full VIP ISA. It
//! shares [`vip_isa::alu`] with the cycle-level simulator, so its
//! arithmetic is bit-exact by construction; everything else — program
//! order, memory effects, full-empty blocking — is written down here in
//! the simplest possible form and serves as the executable definition
//! of the architecture.
//!
//! [`gen`] produces seeded random-but-valid multi-PE programs whose
//! final state is deterministic by construction, [`diff`] runs them on
//! the interpreter and on every cycle-level stepping engine and
//! compares complete final architectural state, minimizing and
//! disassembling any divergence, and [`corpus`] replays previously
//! found repros as permanent regression tests.

#![forbid(unsafe_code)]

pub mod corpus;
pub mod diff;
pub mod gen;
pub mod interp;

pub use diff::{check_materialized, fuzz_one, Divergence, Engine};
pub use gen::{generate, GenConfig, Materialized, TestCase};
pub use interp::{RefPe, RefRunError, RefSystem};

//! The on-disk repro corpus format.
//!
//! When the differential fuzzer finds a divergence, its minimized repro
//! is checked into `crates/ref/corpus/` as a `.vip` file and replayed
//! forever by the corpus regression test. The format is line-oriented
//! text so repros stay reviewable in a diff:
//!
//! ```text
//! # comment
//! @pe 0            # subsequent lines assemble into PE 0's program
//! mov.imm r1, 16
//! halt
//! @mem 0x10000 0011aabb   # host DRAM bytes (hex) at an address
//! @full 0x80000 0xfeed    # host-filled full-empty word and its value
//! @check 0x20000 0x1000   # DRAM window compared after the run
//! ```
//!
//! Programs use the standard assembler syntax with numeric branch
//! targets (what [`vip_isa::Program`]'s `Display` emits, minus the
//! `pc:` prefixes).

use vip_isa::assemble;

use crate::gen::Materialized;

/// Parses corpus text into a runnable [`Materialized`] case.
///
/// PEs not mentioned get empty programs; scratchpads start zeroed.
///
/// # Errors
///
/// A message naming the offending line on any syntax error.
pub fn parse(text: &str) -> Result<Materialized, String> {
    let mut programs_src: Vec<String> = Vec::new();
    let mut current: Option<usize> = None;
    let mut mem_init = Vec::new();
    let mut full_init = Vec::new();
    let mut check_ranges = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        if let Some(rest) = line.strip_prefix('@') {
            let mut parts = rest.split_whitespace();
            let kind = parts.next().unwrap_or("");
            match kind {
                "pe" => {
                    let pe: usize = parse_num(
                        parts
                            .next()
                            .ok_or_else(|| err("@pe needs an index".into()))?,
                    )
                    .map_err(&err)? as usize;
                    while programs_src.len() <= pe {
                        programs_src.push(String::new());
                    }
                    current = Some(pe);
                }
                "mem" => {
                    let addr = parse_num(
                        parts
                            .next()
                            .ok_or_else(|| err("@mem needs an address".into()))?,
                    )
                    .map_err(&err)?;
                    let hex = parts
                        .next()
                        .ok_or_else(|| err("@mem needs hex bytes".into()))?;
                    mem_init.push((addr, parse_hex_bytes(hex).map_err(&err)?));
                }
                "full" => {
                    let addr = parse_num(
                        parts
                            .next()
                            .ok_or_else(|| err("@full needs an address".into()))?,
                    )
                    .map_err(&err)?;
                    // Optional value; without one only the bit is set
                    // (the word's bytes come from a preceding @mem).
                    if let Some(v) = parts.next() {
                        let value = parse_num(v).map_err(&err)?;
                        mem_init.push((addr, value.to_le_bytes().to_vec()));
                    }
                    full_init.push(addr);
                }
                "check" => {
                    let addr = parse_num(
                        parts
                            .next()
                            .ok_or_else(|| err("@check needs an address".into()))?,
                    )
                    .map_err(&err)?;
                    let len = parse_num(
                        parts
                            .next()
                            .ok_or_else(|| err("@check needs a length".into()))?,
                    )
                    .map_err(&err)? as usize;
                    check_ranges.push((addr, len));
                }
                other => return Err(err(format!("unknown directive `@{other}`"))),
            }
        } else {
            let pe = current.ok_or_else(|| err("instruction before any @pe".into()))?;
            programs_src[pe].push_str(line);
            programs_src[pe].push('\n');
        }
    }

    let programs = programs_src
        .iter()
        .enumerate()
        .map(|(pe, src)| {
            if src.is_empty() {
                Ok(vip_isa::Program::default())
            } else {
                assemble(src).map_err(|e| format!("pe{pe}: {e}"))
            }
        })
        .collect::<Result<Vec<_>, _>>()?;
    let sp_init = vec![vec![0u8; 4096]; programs.len()];

    Ok(Materialized {
        programs,
        sp_init,
        mem_init,
        full_init,
        check_ranges,
    })
}

fn parse_num(s: &str) -> Result<u64, String> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|e| format!("bad number `{s}`: {e}"))
}

fn parse_hex_bytes(s: &str) -> Result<Vec<u8>, String> {
    if !s.len().is_multiple_of(2) {
        return Err(format!("odd-length hex string `{s}`"));
    }
    (0..s.len() / 2)
        .map(|i| {
            u8::from_str_radix(&s[2 * i..2 * i + 2], 16).map_err(|e| format!("bad hex `{s}`: {e}"))
        })
        .collect()
}

/// Serializes a materialized case as corpus text (what gets checked in
/// when a fuzzer failure is converted into a regression test).
#[must_use]
pub fn to_text(m: &Materialized, header: &str) -> String {
    let mut out = String::new();
    for line in header.lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    for (pe, p) in m.programs.iter().enumerate() {
        if p.is_empty() {
            continue;
        }
        out.push_str(&format!("@pe {pe}\n"));
        for inst in p.iter() {
            out.push_str(&format!("{inst}\n"));
        }
    }
    for (addr, bytes) in &m.mem_init {
        out.push_str(&format!("@mem {addr:#x} "));
        for b in bytes {
            out.push_str(&format!("{b:02x}"));
        }
        out.push('\n');
    }
    for addr in &m.full_init {
        out.push_str(&format!("@full {addr:#x}\n"));
    }
    for (addr, len) in &m.check_ranges {
        out.push_str(&format!("@check {addr:#x} {len:#x}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_a_two_pe_case() {
        let text = "\
# a producer-consumer pair
@pe 0
mov.imm r1, 0x80000
mov.imm r2, 7
st.reg.ff r2, r1
halt
@pe 1
mov.imm r1, 0x80000
ld.reg.fe r3, r1
halt
@check 0x80000 0x8
";
        let m = parse(text).unwrap();
        assert_eq!(m.programs.len(), 2);
        assert_eq!(m.programs[0].len(), 4);
        assert_eq!(m.check_ranges, vec![(0x80000, 8)]);
    }

    #[test]
    fn errors_name_the_line() {
        let e = parse("@mem zzz 00").unwrap_err();
        assert!(e.starts_with("line 1:"), "{e}");
        let e = parse("nop").unwrap_err();
        assert!(e.contains("before any @pe"), "{e}");
    }
}

//! Decoder fuzzing: no input — truncated, bit-flipped, spliced, or
//! extended — may ever panic the codec or provoke an unbounded
//! allocation. Every failure is a typed [`SnapError`]; journal scans
//! additionally degrade to a clean torn-tail truncation.
//!
//! The corpus is seeded and structured: realistic fleet-checkpoint-like
//! values (nested containers, strings, optional blobs) and multi-frame
//! journal segments, mutated deterministically so a failing seed
//! reproduces with `VIP_TEST_SEED`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use vip_rng::{for_each_seed, seed_override, SplitMix64};
use vip_snap::{
    frame, journal_header, read_header, read_journal_header, scan_frames, write_header, Reader,
    SnapError, Snapshot, Writer, FRAME_OVERHEAD, JOURNAL_HEADER_LEN,
};

/// Counts every mutated input the suite pushes through a decoder, so the
/// "≥ 1000 mutated inputs, zero panics" contract is asserted rather than
/// assumed.
static MUTATIONS: AtomicU64 = AtomicU64::new(0);

/// A checkpoint-shaped value exercising every codec construct: nested
/// containers, strings, optional byte blobs, tuples, fixed arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Job {
    id: u64,
    key: String,
    attempts: u8,
    snapshot: Option<Vec<u8>>,
    trail: Vec<u16>,
}

impl Snapshot for Job {
    fn save(&self, w: &mut Writer) {
        self.id.save(w);
        self.key.save(w);
        self.attempts.save(w);
        self.snapshot.save(w);
        self.trail.save(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(Job {
            id: u64::restore(r)?,
            key: String::restore(r)?,
            attempts: u8::restore(r)?,
            snapshot: Option::restore(r)?,
            trail: Vec::restore(r)?,
        })
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct FleetImage {
    seq: u64,
    queues: [VecDeque<u64>; 2],
    jobs: Vec<Job>,
    flags: Vec<bool>,
    blob: Vec<u8>,
    pairs: Vec<(u64, bool)>,
}

impl Snapshot for FleetImage {
    fn save(&self, w: &mut Writer) {
        self.seq.save(w);
        self.queues.save(w);
        self.jobs.save(w);
        self.flags.save(w);
        self.blob.save(w);
        self.pairs.save(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(FleetImage {
            seq: u64::restore(r)?,
            queues: <[VecDeque<u64>; 2]>::restore(r)?,
            jobs: Vec::restore(r)?,
            flags: Vec::restore(r)?,
            blob: Vec::restore(r)?,
            pairs: Vec::restore(r)?,
        })
    }
}

fn random_image(rng: &mut SplitMix64) -> FleetImage {
    let job = |rng: &mut SplitMix64| Job {
        id: rng.next_u64(),
        key: format!("mlp-{}x{}", rng.below(4096), rng.below(512)),
        attempts: rng.next_u64() as u8,
        snapshot: if rng.bool() {
            let n = rng.usize_in(0..64);
            Some(rng.bytes(n))
        } else {
            None
        },
        trail: (0..rng.usize_in(0..6))
            .map(|_| rng.next_u64() as u16)
            .collect(),
    };
    FleetImage {
        seq: rng.next_u64(),
        queues: [
            (0..rng.usize_in(0..8)).map(|_| rng.next_u64()).collect(),
            (0..rng.usize_in(0..8)).map(|_| rng.next_u64()).collect(),
        ],
        jobs: (0..rng.usize_in(1..8)).map(|_| job(rng)).collect(),
        flags: (0..rng.usize_in(0..16)).map(|_| rng.bool()).collect(),
        blob: {
            let n = rng.usize_in(0..128);
            rng.bytes(n)
        },
        pairs: (0..rng.usize_in(0..5))
            .map(|_| (rng.next_u64(), rng.bool()))
            .collect(),
    }
}

fn encode(image: &FleetImage, fingerprint: u64) -> Vec<u8> {
    let mut w = Writer::new();
    write_header(&mut w, fingerprint);
    image.save(&mut w);
    w.into_bytes()
}

/// Full decode path for a checkpoint buffer, including the final
/// whole-buffer-consumed check — the decoder the mutations attack.
fn decode(buf: &[u8], fingerprint: u64) -> Result<FleetImage, SnapError> {
    let mut r = Reader::new(buf);
    read_header(&mut r, fingerprint)?;
    let image = FleetImage::restore(&mut r)?;
    r.finish()?;
    Ok(image)
}

/// Decodes a mutated buffer and demands totality: a typed error or a
/// structurally valid value, never a panic (a panic fails the test and
/// `for_each_seed` prints the reproducing seed).
fn assert_total(buf: &[u8], fingerprint: u64) {
    MUTATIONS.fetch_add(1, Ordering::Relaxed);
    match decode(buf, fingerprint) {
        Ok(_) | Err(_) => {}
    }
}

fn flip_bits(rng: &mut SplitMix64, buf: &mut [u8], flips: usize) {
    for _ in 0..flips {
        let bit = rng.usize_in(0..buf.len() * 8);
        buf[bit / 8] ^= 1 << (bit % 8);
    }
}

#[test]
fn mutated_checkpoints_never_panic_the_decoder() {
    for_each_seed("snap-fuzz-ckpt", 0x5eed, 40, |seed| {
        let mut rng = SplitMix64::new(seed);
        let fingerprint = rng.next_u64();
        let image = random_image(&mut rng);
        let buf = encode(&image, fingerprint);
        assert_eq!(decode(&buf, fingerprint).as_ref(), Ok(&image));

        // Truncations at random offsets, plus the empty buffer.
        assert_total(&[], fingerprint);
        for _ in 0..10 {
            let cut = rng.usize_in(0..buf.len());
            let r = decode(&buf[..cut], fingerprint);
            assert_ne!(r, Ok(image.clone()), "truncation decoded to the original");
            MUTATIONS.fetch_add(1, Ordering::Relaxed);
        }

        // Bit flips, 1..=4 at a time.
        for round in 0..12 {
            let mut m = buf.clone();
            flip_bits(&mut rng, &mut m, 1 + round % 4);
            assert_total(&m, fingerprint);
        }

        // Splices: a random region overwritten with random bytes — the
        // classic way a length prefix becomes absurd. The guarded
        // decoder must reject it with a typed error before reserving.
        for _ in 0..5 {
            let mut m = buf.clone();
            let at = rng.usize_in(0..m.len());
            let n = rng.usize_in(1..9).min(m.len() - at);
            let junk = rng.bytes(n);
            m[at..at + n].copy_from_slice(&junk);
            assert_total(&m, fingerprint);
        }

        // Extensions: appended garbage must surface as TrailingBytes
        // (or an earlier typed error if the tail got consumed).
        for _ in 0..3 {
            let mut m = buf.clone();
            let n = rng.usize_in(1..16);
            m.extend_from_slice(&rng.bytes(n));
            MUTATIONS.fetch_add(1, Ordering::Relaxed);
            assert!(decode(&m, fingerprint).is_err(), "trailing bytes accepted");
        }
    });
}

#[test]
fn absurd_length_prefixes_fail_before_any_reservation() {
    // Hand-build buffers whose only defect is a huge element count and
    // make sure the typed rejection arrives immediately — the decoder
    // must never trust a length prefix further than the bytes on hand.
    for_each_seed("snap-fuzz-len", 0x1e9, 16, |seed| {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..8 {
            let mut w = Writer::new();
            w.u64(rng.next_u64() | (1 << 40)); // length ≥ 2^40
            let pad = rng.usize_in(0..32);
            w.raw(&rng.bytes(pad));
            let buf = w.into_bytes();
            MUTATIONS.fetch_add(1, Ordering::Relaxed);
            let mut r = Reader::new(&buf);
            assert!(matches!(
                Vec::<u8>::restore(&mut r),
                Err(SnapError::Truncated { .. })
            ));
            let mut r = Reader::new(&buf);
            assert!(matches!(
                VecDeque::<u64>::restore(&mut r),
                Err(SnapError::Truncated { .. })
            ));
            let mut r = Reader::new(&buf);
            assert!(matches!(
                String::restore(&mut r),
                Err(SnapError::Truncated { .. })
            ));
        }
    });
}

#[test]
fn mutated_journals_scan_to_a_clean_prefix() {
    for_each_seed("snap-fuzz-journal", 0x10e, 24, |seed| {
        let mut rng = SplitMix64::new(seed);
        let fingerprint = rng.next_u64();
        let payloads: Vec<Vec<u8>> = (0..rng.usize_in(1..10))
            .map(|_| {
                let n = rng.usize_in(0..48);
                rng.bytes(n)
            })
            .collect();
        let mut seg = journal_header(fingerprint);
        for p in &payloads {
            seg.extend_from_slice(&frame(p));
        }
        let body = read_journal_header(&seg, fingerprint).unwrap();
        {
            let scan = scan_frames(&seg[body..]);
            assert!(!scan.torn);
            assert_eq!(
                scan.frames,
                payloads.iter().map(Vec::as_slice).collect::<Vec<_>>()
            );
        }

        // Truncation anywhere: the scan keeps whole frames only, the
        // valid prefix re-scans identically, and nothing panics.
        for _ in 0..12 {
            let cut = rng.usize_in(body..seg.len() + 1);
            let scan = scan_frames(&seg[body..cut]);
            MUTATIONS.fetch_add(1, Ordering::Relaxed);
            assert!(scan.frames.len() <= payloads.len());
            for (got, want) in scan.frames.iter().zip(&payloads) {
                assert_eq!(*got, want.as_slice(), "scan returned a corrupt frame");
            }
            // Torn-tail rule: truncating to the valid prefix yields the
            // same frames with no tear.
            let again = scan_frames(&seg[body..body + scan.valid_len]);
            assert!(!again.torn);
            assert_eq!(again.frames, scan.frames);
        }

        // Bit flips: every intact frame returned is a byte-exact prefix
        // of the original list — a flipped frame can only tear the
        // journal, never smuggle altered bytes past the CRC.
        for round in 0..12 {
            let mut m = seg[body..].to_vec();
            flip_bits(&mut rng, &mut m, 1 + round % 3);
            let scan = scan_frames(&m);
            MUTATIONS.fetch_add(1, Ordering::Relaxed);
            for (i, got) in scan.frames.iter().enumerate() {
                if m[..scan.valid_len] == seg[body..body + scan.valid_len] {
                    assert_eq!(*got, payloads[i].as_slice());
                }
            }
        }

        // Header mutations are typed errors, never panics.
        for _ in 0..6 {
            let mut m = seg.clone();
            flip_bits(&mut rng, &mut m[..JOURNAL_HEADER_LEN], 1);
            MUTATIONS.fetch_add(1, Ordering::Relaxed);
            assert!(read_journal_header(&m, fingerprint).is_err());
        }

        // A frame length prefix spliced to an absurd value cannot make
        // the scanner read past the buffer.
        if let Some(first) = payloads.first() {
            let mut m = seg[body..].to_vec();
            m[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
            let scan = scan_frames(&m);
            MUTATIONS.fetch_add(1, Ordering::Relaxed);
            assert!(scan.frames.is_empty());
            assert!(scan.torn);
            assert_eq!(scan.valid_len, 0);
            let _ = (first, FRAME_OVERHEAD);
        }
    });
}

#[test]
fn fuzz_volume_meets_the_contract() {
    // The acceptance bar is ≥ 1000 mutated inputs with zero panics.
    // This test observes the counter after the other tests in this
    // binary ran; under a VIP_TEST_SEED override the range narrows by
    // design, so the floor only applies to full runs.
    if seed_override().is_some() {
        return;
    }
    // Run the suites in-process (tests may execute in any order across
    // threads, so recount deterministically here instead of relying on
    // sibling tests having finished).
    mutated_checkpoints_never_panic_the_decoder();
    absurd_length_prefixes_fail_before_any_reservation();
    mutated_journals_scan_to_a_clean_prefix();
    let total = MUTATIONS.load(Ordering::Relaxed);
    assert!(total >= 1000, "only {total} mutated inputs were exercised");
}

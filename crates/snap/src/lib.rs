//! # vip-snap — versioned binary snapshot codec
//!
//! The deterministic checkpoint/restore subsystem serializes every piece
//! of simulator state — PE microarchitectural state, vault controller
//! queues, in-flight NoC packets, the backing store — into one flat byte
//! buffer so a run can be frozen at an arbitrary cycle and resumed
//! bit-identically (same final cycle count, same statistics, same memory
//! image) under any stepping engine.
//!
//! The codec is deliberately primitive: little-endian fixed-width
//! integers, length-prefixed byte strings, and nothing self-describing.
//! Determinism demands that encoding a given machine state always
//! produces the same bytes, so unordered containers must be serialized
//! in a canonical (sorted) order by their owners, and order-sensitive
//! containers (the NoC's flight list, a vault's completion list) in
//! their exact in-memory order.
//!
//! A snapshot starts with a [`Header`]: magic bytes, the
//! [`FORMAT_VERSION`], and a fingerprint of the *structural*
//! configuration the machine was built with. Restore targets a machine
//! freshly constructed from the same configuration; the fingerprint
//! check turns a config mismatch into a typed
//! [`SnapError::ConfigMismatch`] instead of garbage state.
//!
//! The [`Snapshot`] trait covers value-like state (stats blocks,
//! requests, banks); components whose restore needs an already
//! constructed host (the full `System`, a `Torus` with a generic
//! payload) expose inherent `save_state`/`restore_state` methods built
//! from the same [`Writer`]/[`Reader`] primitives.

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::fmt;

/// Magic bytes opening every snapshot file or buffer.
pub const MAGIC: [u8; 8] = *b"VIPSNAP\0";

/// Bumped whenever the serialized layout of any component changes.
/// Restore rejects other versions — there is no cross-version migration,
/// because a snapshot is a resumable suspension of one build, not an
/// archival format.
pub const FORMAT_VERSION: u32 = 3;

/// Errors surfaced while decoding a snapshot. Encoding is infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapError {
    /// The buffer ended before the requested field.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually remaining.
        available: usize,
    },
    /// The buffer does not begin with [`MAGIC`].
    BadMagic,
    /// The snapshot was written by a different codec version.
    BadVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// The snapshot was taken on a machine with a different structural
    /// configuration than the restore target.
    ConfigMismatch {
        /// Fingerprint found in the header.
        found: u64,
        /// Fingerprint of the restore target.
        expected: u64,
    },
    /// A decoded value violates an invariant (described by the message).
    Corrupt(&'static str),
    /// Decoding finished but bytes remain — the snapshot and the decoder
    /// disagree about the layout.
    TrailingBytes {
        /// How many bytes were left over.
        count: usize,
    },
}

impl fmt::Display for SnapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapError::Truncated { needed, available } => {
                write!(
                    f,
                    "snapshot truncated: needed {needed} bytes, {available} left"
                )
            }
            SnapError::BadMagic => f.write_str("not a VIP snapshot (bad magic)"),
            SnapError::BadVersion { found, expected } => {
                write!(
                    f,
                    "snapshot format version {found}, this build reads {expected}"
                )
            }
            SnapError::ConfigMismatch { found, expected } => {
                write!(
                    f,
                    "snapshot taken under config fingerprint {found:#018x}, restore \
                     target has {expected:#018x}"
                )
            }
            SnapError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapError::TrailingBytes { count } => {
                write!(f, "snapshot has {count} trailing bytes after decode")
            }
        }
    }
}

impl std::error::Error for SnapError {}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Writer::default()
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded buffer.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` so 32- and 64-bit hosts agree.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a `bool` as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes raw bytes with no length prefix (the reader must know the
    /// exact length from context, e.g. a fixed page size).
    pub fn raw(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over an encoded buffer; every read is bounds-checked.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf`, positioned at the start.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        if self.remaining() < n {
            return Err(SnapError::Truncated {
                needed: n,
                available: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, SnapError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `usize` encoded as a `u64`.
    pub fn usize(&mut self) -> Result<usize, SnapError> {
        usize::try_from(self.u64()?).map_err(|_| SnapError::Corrupt("usize overflows host"))
    }

    /// Reads a `bool`; any byte other than 0 or 1 is corrupt.
    pub fn bool(&mut self) -> Result<bool, SnapError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapError::Corrupt("bool byte not 0 or 1")),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Reads exactly `n` raw bytes (no length prefix).
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], SnapError> {
        self.take(n)
    }

    /// Asserts the buffer is fully consumed — call once after the last
    /// field so layout drift fails loudly instead of silently ignoring a
    /// tail.
    pub fn finish(&self) -> Result<(), SnapError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapError::TrailingBytes {
                count: self.remaining(),
            })
        }
    }
}

/// State that round-trips through the codec by value. Implementations
/// must be canonical: the same logical state always encodes to the same
/// bytes (sort unordered containers), and `restore(save(x)) == x`
/// exactly.
pub trait Snapshot: Sized {
    /// Appends this value's encoding to `w`.
    fn save(&self, w: &mut Writer);
    /// Decodes one value from `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapError`] on truncation or invariant violations.
    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError>;
}

macro_rules! impl_snapshot_prim {
    ($($t:ty => $m:ident),* $(,)?) => {
        $(impl Snapshot for $t {
            fn save(&self, w: &mut Writer) {
                w.$m(*self);
            }
            fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
                r.$m()
            }
        })*
    };
}

impl_snapshot_prim!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize, bool => bool);

impl<T: Snapshot> Snapshot for Option<T> {
    fn save(&self, w: &mut Writer) {
        match self {
            None => w.bool(false),
            Some(v) => {
                w.bool(true);
                v.save(w);
            }
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(if r.bool()? {
            Some(T::restore(r)?)
        } else {
            None
        })
    }
}

/// Validates a decoded element count against the bytes actually left in
/// the reader, before any allocation. Every element type the codec
/// serializes occupies at least one byte, so `len > remaining` can only
/// mean a corrupt or truncated length prefix — reject it up front
/// instead of looping (or worse, reserving) on an attacker-controlled
/// count.
fn checked_len(r: &Reader<'_>, len: usize) -> Result<usize, SnapError> {
    if len > r.remaining() {
        return Err(SnapError::Truncated {
            needed: len,
            available: r.remaining(),
        });
    }
    Ok(len)
}

impl<T: Snapshot> Snapshot for Vec<T> {
    fn save(&self, w: &mut Writer) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let len = r.usize()?;
        let len = checked_len(r, len)?;
        // Safe to reserve: `len` is bounded by the bytes remaining, so a
        // corrupt length fails with Truncated above instead of aborting
        // on an absurd allocation here.
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::restore(r)?);
        }
        Ok(out)
    }
}

impl<T: Snapshot> Snapshot for VecDeque<T> {
    fn save(&self, w: &mut Writer) {
        w.usize(self.len());
        for v in self {
            v.save(w);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let len = r.usize()?;
        let len = checked_len(r, len)?;
        let mut out = VecDeque::with_capacity(len);
        for _ in 0..len {
            out.push_back(T::restore(r)?);
        }
        Ok(out)
    }
}

impl Snapshot for String {
    fn save(&self, w: &mut Writer) {
        w.bytes(self.as_bytes());
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let raw = r.bytes()?;
        String::from_utf8(raw.to_vec()).map_err(|_| SnapError::Corrupt("string not valid UTF-8"))
    }
}

impl<A: Snapshot, B: Snapshot> Snapshot for (A, B) {
    fn save(&self, w: &mut Writer) {
        self.0.save(w);
        self.1.save(w);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok((A::restore(r)?, B::restore(r)?))
    }
}

impl<T: Snapshot, const N: usize> Snapshot for [T; N] {
    fn save(&self, w: &mut Writer) {
        for v in self {
            v.save(w);
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::restore(r)?);
        }
        out.try_into()
            .map_err(|_| SnapError::Corrupt("array length"))
    }
}

/// Writes the snapshot header: magic, format version, and the structural
/// configuration fingerprint of the machine being saved.
pub fn write_header(w: &mut Writer, fingerprint: u64) {
    w.raw(&MAGIC);
    w.u32(FORMAT_VERSION);
    w.u64(fingerprint);
}

/// Validates a snapshot header against the restore target's fingerprint.
///
/// # Errors
///
/// [`SnapError::BadMagic`], [`SnapError::BadVersion`], or
/// [`SnapError::ConfigMismatch`] (plus truncation) when the snapshot
/// cannot be restored onto this machine.
pub fn read_header(r: &mut Reader<'_>, expected_fingerprint: u64) -> Result<(), SnapError> {
    if r.raw(MAGIC.len())? != MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapError::BadVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let found = r.u64()?;
    if found != expected_fingerprint {
        return Err(SnapError::ConfigMismatch {
            found,
            expected: expected_fingerprint,
        });
    }
    Ok(())
}

/// Magic bytes opening every write-ahead journal segment.
pub const JOURNAL_MAGIC: [u8; 8] = *b"VIPJRNL\0";

/// Bytes occupied by a journal segment header: magic, format version,
/// and the run's configuration fingerprint.
pub const JOURNAL_HEADER_LEN: usize = 8 + 4 + 8;

/// Bytes of framing overhead per journal record: a `u32` payload length
/// followed by a `u32` CRC-32 of the payload.
pub const FRAME_OVERHEAD: usize = 8;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB8_8320`) over a byte
/// string. Guards each journal frame so a torn or bit-flipped record is
/// detected and the journal truncated at the last intact frame instead
/// of replaying garbage.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffff_u32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Encodes the header that opens a journal segment file.
#[must_use]
pub fn journal_header(fingerprint: u64) -> Vec<u8> {
    let mut w = Writer::new();
    w.raw(&JOURNAL_MAGIC);
    w.u32(FORMAT_VERSION);
    w.u64(fingerprint);
    debug_assert_eq!(w.len(), JOURNAL_HEADER_LEN);
    w.into_bytes()
}

/// Validates a journal segment header and returns the offset where
/// frames begin.
///
/// # Errors
///
/// [`SnapError::BadMagic`], [`SnapError::BadVersion`], or
/// [`SnapError::ConfigMismatch`] (plus truncation) when the segment was
/// not written by this build for this run configuration.
pub fn read_journal_header(buf: &[u8], expected_fingerprint: u64) -> Result<usize, SnapError> {
    let mut r = Reader::new(buf);
    if r.raw(JOURNAL_MAGIC.len())? != JOURNAL_MAGIC {
        return Err(SnapError::BadMagic);
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapError::BadVersion {
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let found = r.u64()?;
    if found != expected_fingerprint {
        return Err(SnapError::ConfigMismatch {
            found,
            expected: expected_fingerprint,
        });
    }
    Ok(JOURNAL_HEADER_LEN)
}

/// Wraps one journal record payload in a CRC frame:
/// `u32 payload length | u32 CRC-32(payload) | payload`.
///
/// # Panics
///
/// Panics if the payload exceeds `u32::MAX` bytes — journal records are
/// single scheduler events, orders of magnitude smaller.
#[must_use]
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let len = u32::try_from(payload.len()).expect("journal frame payload fits u32");
    let mut out = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The result of scanning a journal segment's frame region: every intact
/// frame in order, the byte length of the valid prefix, and whether a
/// torn (incomplete or corrupt) tail followed it.
#[derive(Debug)]
pub struct JournalScan<'a> {
    /// Payloads of every frame with an intact length prefix and CRC, in
    /// file order.
    pub frames: Vec<&'a [u8]>,
    /// Byte length of the valid prefix (relative to the start of `buf`).
    /// Truncating the file to `header + valid_len` drops the torn tail.
    pub valid_len: usize,
    /// Whether bytes remained past the last intact frame — a torn final
    /// record from a crash mid-append.
    pub torn: bool,
}

/// Scans the frame region of a journal segment (the bytes *after* the
/// header), stopping at the first frame that is incomplete or fails its
/// CRC. Never fails: a journal is append-only, so anything past the last
/// intact frame is a torn tail from a crash mid-write, reported via
/// `torn`/`valid_len` for the caller to truncate.
#[must_use]
pub fn scan_frames(buf: &[u8]) -> JournalScan<'_> {
    let mut frames = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &buf[pos..];
        if rest.len() < FRAME_OVERHEAD {
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let Some(payload) = rest.get(FRAME_OVERHEAD..FRAME_OVERHEAD + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        frames.push(payload);
        pos += FRAME_OVERHEAD + len;
    }
    JournalScan {
        frames,
        valid_len: pos,
        torn: pos != buf.len(),
    }
}

/// FNV-1a accumulator for configuration fingerprints (and for hashing
/// experiment-point names in the bench harness). Stable across platforms
/// and builds — it hashes only values the caller feeds it.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint {
    state: u64,
}

impl Default for Fingerprint {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh accumulator at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fingerprint {
            state: Self::OFFSET,
        }
    }

    /// Absorbs raw bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Absorbs a `u64` (little-endian).
    pub fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    /// Absorbs a `usize` as a `u64`.
    pub fn push_usize(&mut self, v: usize) {
        self.push_u64(v as u64);
    }

    /// Absorbs a `bool`.
    pub fn push_bool(&mut self, v: bool) {
        self.push_bytes(&[u8::from(v)]);
    }

    /// The accumulated 64-bit fingerprint.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a hash of a byte string (experiment-point keys).
#[must_use]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut f = Fingerprint::new();
    f.push_bytes(bytes);
    f.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut w = Writer::new();
        w.u8(0xab);
        w.u16(0xbeef);
        w.u32(0xdead_beef);
        w.u64(0x0123_4567_89ab_cdef);
        w.usize(42);
        w.bool(true);
        w.bool(false);
        w.bytes(b"hello");
        w.raw(&[9, 9]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xab);
        assert_eq!(r.u16().unwrap(), 0xbeef);
        assert_eq!(r.u32().unwrap(), 0xdead_beef);
        assert_eq!(r.u64().unwrap(), 0x0123_4567_89ab_cdef);
        assert_eq!(r.usize().unwrap(), 42);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.raw(2).unwrap(), &[9, 9]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_is_typed() {
        let mut w = Writer::new();
        w.u32(7);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(
            r.u64(),
            Err(SnapError::Truncated {
                needed: 8,
                available: 4
            })
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut w = Writer::new();
        w.u64(1);
        w.u8(0);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        r.u64().unwrap();
        assert_eq!(r.finish(), Err(SnapError::TrailingBytes { count: 1 }));
    }

    #[test]
    fn containers_roundtrip() {
        let v: Vec<u64> = vec![1, 2, 3];
        let d: VecDeque<u32> = VecDeque::from(vec![4, 5]);
        let o: Option<bool> = Some(true);
        let n: Option<u8> = None;
        let t: (u64, bool) = (99, false);
        let a: [u64; 3] = [7, 8, 9];
        let mut w = Writer::new();
        v.save(&mut w);
        d.save(&mut w);
        o.save(&mut w);
        n.save(&mut w);
        t.save(&mut w);
        a.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(Vec::<u64>::restore(&mut r).unwrap(), v);
        assert_eq!(VecDeque::<u32>::restore(&mut r).unwrap(), d);
        assert_eq!(Option::<bool>::restore(&mut r).unwrap(), o);
        assert_eq!(Option::<u8>::restore(&mut r).unwrap(), n);
        assert_eq!(<(u64, bool)>::restore(&mut r).unwrap(), t);
        assert_eq!(<[u64; 3]>::restore(&mut r).unwrap(), a);
        r.finish().unwrap();
    }

    #[test]
    fn corrupt_container_length_truncates_cleanly() {
        let mut w = Writer::new();
        w.usize(usize::MAX / 2); // absurd element count
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(matches!(
            Vec::<u64>::restore(&mut r),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn header_roundtrip_and_rejection() {
        let mut w = Writer::new();
        write_header(&mut w, 0x1111);
        let buf = w.into_bytes();

        let mut r = Reader::new(&buf);
        read_header(&mut r, 0x1111).unwrap();
        r.finish().unwrap();

        let mut r = Reader::new(&buf);
        assert!(matches!(
            read_header(&mut r, 0x2222),
            Err(SnapError::ConfigMismatch {
                found: 0x1111,
                expected: 0x2222
            })
        ));

        let mut bad = buf.clone();
        bad[0] ^= 0xff;
        let mut r = Reader::new(&bad);
        assert_eq!(read_header(&mut r, 0x1111), Err(SnapError::BadMagic));

        let mut wrong_ver = buf;
        wrong_ver[8] = FORMAT_VERSION as u8 + 1;
        let mut r = Reader::new(&wrong_ver);
        assert!(matches!(
            read_header(&mut r, 0x1111),
            Err(SnapError::BadVersion { .. })
        ));
    }

    #[test]
    fn strings_roundtrip_and_reject_bad_utf8() {
        let s = String::from("mlp-1024x256 ∘ batch");
        let mut w = Writer::new();
        s.save(&mut w);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(String::restore(&mut r).unwrap(), s);
        r.finish().unwrap();

        let mut w = Writer::new();
        w.bytes(&[0xff, 0xfe, 0x41]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(
            String::restore(&mut r),
            Err(SnapError::Corrupt("string not valid UTF-8"))
        );
    }

    #[test]
    fn absurd_container_length_fails_before_allocation() {
        // A length prefix larger than the remaining input must be
        // rejected up front — no per-element loop, no reservation.
        let mut w = Writer::new();
        w.usize(usize::MAX / 2);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(
            Vec::<u8>::restore(&mut r),
            Err(SnapError::Truncated {
                needed: usize::MAX / 2,
                available: 0
            })
        );
        let mut r = Reader::new(&buf);
        assert!(matches!(
            VecDeque::<u64>::restore(&mut r),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn journal_frames_roundtrip_in_order() {
        let mut seg = journal_header(0xfeed);
        seg.extend_from_slice(&frame(b"admit 0"));
        seg.extend_from_slice(&frame(b""));
        seg.extend_from_slice(&frame(b"dispatch 0 -> dev2"));
        let start = read_journal_header(&seg, 0xfeed).unwrap();
        let scan = scan_frames(&seg[start..]);
        assert_eq!(
            scan.frames,
            vec![b"admit 0".as_slice(), b"".as_slice(), b"dispatch 0 -> dev2"]
        );
        assert!(!scan.torn);
        assert_eq!(start + scan.valid_len, seg.len());
    }

    #[test]
    fn journal_header_is_validated() {
        let seg = journal_header(0xfeed);
        assert!(matches!(
            read_journal_header(&seg, 0xbeef),
            Err(SnapError::ConfigMismatch { .. })
        ));
        let mut bad = seg.clone();
        bad[0] ^= 0x80;
        assert_eq!(read_journal_header(&bad, 0xfeed), Err(SnapError::BadMagic));
        let mut old = seg.clone();
        old[8] = old[8].wrapping_add(1);
        assert!(matches!(
            read_journal_header(&old, 0xfeed),
            Err(SnapError::BadVersion { .. })
        ));
        assert!(matches!(
            read_journal_header(&seg[..4], 0xfeed),
            Err(SnapError::Truncated { .. })
        ));
    }

    #[test]
    fn torn_tail_truncates_at_the_last_intact_frame() {
        let a = frame(b"first");
        let b = frame(b"second");
        let mut buf = Vec::new();
        buf.extend_from_slice(&a);
        buf.extend_from_slice(&b);

        // Crash mid-append: any strict prefix of the second frame keeps
        // exactly the first frame and reports the tear.
        for cut in a.len()..buf.len() {
            let scan = scan_frames(&buf[..cut]);
            assert_eq!(scan.frames.len(), 1);
            assert_eq!(scan.frames[0], b"first");
            assert_eq!(scan.valid_len, a.len());
            assert_eq!(scan.torn, cut != a.len());
        }

        // A bit flip anywhere in the final frame tears it off cleanly.
        for bit in 0..b.len() * 8 {
            let mut flipped = buf.clone();
            let off = a.len() + bit / 8;
            flipped[off] ^= 1 << (bit % 8);
            let scan = scan_frames(&flipped);
            assert!(scan.frames.len() <= 1, "flipped frame survived");
            assert!(scan.torn);
        }
    }

    #[test]
    fn fingerprint_is_stable_and_sensitive() {
        let mut a = Fingerprint::new();
        a.push_u64(1);
        a.push_usize(2);
        a.push_bool(true);
        let mut b = Fingerprint::new();
        b.push_u64(1);
        b.push_usize(2);
        b.push_bool(true);
        assert_eq!(a.finish(), b.finish());
        let mut c = Fingerprint::new();
        c.push_u64(1);
        c.push_usize(2);
        c.push_bool(false);
        assert_ne!(a.finish(), c.finish());
        // Known FNV-1a vector: empty input is the offset basis.
        assert_eq!(hash_bytes(b""), 0xcbf2_9ce4_8422_2325);
    }
}

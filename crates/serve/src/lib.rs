//! # vip-serve — multi-tenant serving over a pool of simulated VIP devices
//!
//! The ROADMAP's production-scale serving layer: a deterministic
//! discrete-event request scheduler (hand-rolled executor, no async
//! runtime — determinism for a fixed seed is the house contract)
//! multiplexing seeded open- and closed-loop inference workloads over
//! a fleet of N independently simulated single-vault VIP devices.
//!
//! The pieces, bottom up:
//!
//! * [`tiles`] — the servable tile classes (mlp / cnn / bp in mixed
//!   sizes), their batchable stagers, and the per-request result
//!   readback; tuned schedules are resolved through
//!   [`vip_kernels::schedule_store`] exactly like the bench stagers.
//! * [`cache`] — the prepared-program cache, keyed like the bench
//!   runner's durable points (shape key + schedule encoding + config
//!   fingerprint + batch) with hit/miss counters.
//! * [`device`] — the stepping-engine selector; every device advances
//!   in bounded quanta via the `*_until` pause points, so preemption
//!   decisions only ever happen at slice boundaries.
//! * [`workload`] — seeded request mixes and the open/closed load
//!   modes.
//! * [`scheduler`] — the discrete-event fleet executor: bounded
//!   admission queues with typed rejection, same-key batching,
//!   priority preemption via bit-exact snapshots, and migration of a
//!   parked job onto whichever device frees up first.
//! * [`chaos`] — the seeded failure model (fault-poisoned devices,
//!   induced hangs, crashes and decommissions) and the recovery
//!   policy's knobs: periodic checkpoints, bounded retry with backoff,
//!   quarantine behind health probes, deadlines, load shedding —
//!   plus the chaos sweep and `BENCH_chaos.json`.
//! * [`durable`] — host-crash durability: the CRC-framed write-ahead
//!   journal of scheduler events, whole-fleet checkpoints (device
//!   snapshots, queues, RNG cursors, cache keys), and the
//!   verified-replay resume behind `--resume` — a resumed run's
//!   report is byte-identical to an uninterrupted one's.
//! * [`metrics`] / [`sweep`] — per-request latency records, integer
//!   nearest-rank percentiles, availability and recovery summaries,
//!   the offered-load sweep, and the `BENCH_serving.json` report
//!   (byte-identical for a fixed seed at any `--jobs`).

pub mod cache;
pub mod chaos;
pub mod device;
pub mod durable;
pub mod metrics;
pub mod scheduler;
pub mod sweep;
pub mod tiles;
pub mod workload;

pub use cache::ProgramCache;
pub use chaos::{
    chaos_gate, chaos_report_json, run_chaos_sweep, run_chaos_sweep_durable, ChaosConfig,
    ChaosPoint, ChaosStats, ChaosSweepConfig, FailureKind, Terminal,
};
pub use device::Engine;
pub use durable::{run_dir, DurableConfig, DurableError, LoadedPoint, PointStore};
pub use scheduler::{
    serve, serve_durable, serve_durable_interrupted, Rejection, RequestRecord, ServeConfig,
    ServeOutcome,
};
pub use sweep::{gate, report_json, run_sweep, run_sweep_durable, SweepConfig, SweepPoint};
pub use tiles::{StagedJob, TileClass};
pub use workload::{LoadMode, MixEntry, Workload};

//! Host-crash durability: the write-ahead journal and whole-fleet
//! checkpoint store behind `serve --resume`.
//!
//! The scheduler is a pure function of its seed and configuration, so
//! durability here is *verified replay* rather than command sourcing:
//! every settled event appends one CRC-framed record (its ordinal,
//! fleet time, kind, and a digest of the fleet state it left behind)
//! to a journal segment, and every `checkpoint_every` events the whole
//! fleet — device snapshots, queues, parked jobs, RNG cursors, the
//! program cache's key set, the partial outcome — is written to a
//! `.ckpt` file with the bench runner's write-then-rename discipline.
//! On resume, the latest valid checkpoint restores the fleet and the
//! journal tail is replayed: the scheduler re-executes each event and
//! byte-compares what it produced against the recorded frame, so a
//! stale or foreign journal surfaces as [`DurableError::Diverged`]
//! instead of silently wrong output. A torn final record — the crash
//! landed mid-append — is truncated at the last intact CRC frame.
//!
//! Layout, under a run directory keyed by the sweep configuration's
//! fingerprint (`run-<fp>/`): point `i` at checkpoint ordinal `n` owns
//! `p{i}-{n}.ckpt` plus journal segment `p{i}-{n}.journal` holding the
//! events settled *after* that checkpoint; ordinal 0 is the fresh
//! start (no `.ckpt`). Writing checkpoint `n+1` rotates to segment
//! `n+1` and prunes ordinal `n` — segment rotation *is* the journal's
//! garbage collection, so disk usage is one checkpoint plus one
//! partial segment per point. A finished point collapses to a single
//! `p{i}.done` record holding its encoded outcome.

use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use vip_snap::{frame, journal_header, read_journal_header, scan_frames, SnapError};

/// Where and how often durable serving persists its state.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// Root directory for run directories (one per config fingerprint).
    pub dir: PathBuf,
    /// Whole-fleet checkpoint cadence in settled events (`0` journals
    /// without checkpoints; resume then replays from the start).
    pub checkpoint_every: u64,
    /// Continue from persisted state when present. When `false`, any
    /// prior state for this configuration is wiped first.
    pub resume: bool,
}

/// Why a durable serving run could not complete. Every corrupted-input
/// failure decodes to one of these — never a panic.
#[derive(Debug)]
pub enum DurableError {
    /// The filesystem refused an operation.
    Io {
        /// What was being attempted.
        op: &'static str,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// A checkpoint or done-record failed to decode (bad header, torn
    /// body, invariant violation).
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// The typed decode failure.
        source: SnapError,
    },
    /// Replay produced a record that differs from the journal — the
    /// persisted state belongs to a different run or configuration.
    Diverged {
        /// Ordinal of the first mismatching event.
        event: u64,
    },
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io { op, path, source } => {
                write!(f, "cannot {op} {}: {source}", path.display())
            }
            DurableError::Corrupt { path, source } => {
                write!(f, "corrupt durable state in {}: {source}", path.display())
            }
            DurableError::Diverged { event } => {
                write!(
                    f,
                    "journal diverged from replay at event {event} (state from a \
                     different run?)"
                )
            }
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io { source, .. } => Some(source),
            DurableError::Corrupt { source, .. } => Some(source),
            DurableError::Diverged { .. } => None,
        }
    }
}

fn io_err(op: &'static str, path: &Path, source: io::Error) -> DurableError {
    DurableError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

/// The run directory for one configuration fingerprint under `root`.
#[must_use]
pub fn run_dir(root: &Path, fingerprint: u64) -> PathBuf {
    root.join(format!("run-{fingerprint:016x}"))
}

/// What [`PointStore::load`] found on disk for a point.
#[derive(Debug)]
pub enum LoadedPoint {
    /// The point already finished; the encoded outcome.
    Done(Vec<u8>),
    /// The point is fresh or was interrupted.
    Resume {
        /// Latest valid checkpoint bytes, if one was taken.
        ckpt: Option<Vec<u8>>,
        /// Journal frames settled after that checkpoint, torn tail
        /// already truncated.
        journal: Vec<Vec<u8>>,
    },
}

/// Durable state for one sweep point: its checkpoint files, its
/// journal segments, and its done-record, all under one run directory.
#[derive(Debug)]
pub struct PointStore {
    dir: PathBuf,
    idx: usize,
    fingerprint: u64,
    ordinal: u64,
    journal: Option<fs::File>,
}

impl PointStore {
    /// Opens (creating the run directory if needed) the store for
    /// point `idx` of the run fingerprinted `fingerprint`.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] if the directory cannot be created.
    pub fn open(root: &Path, idx: usize, fingerprint: u64) -> Result<Self, DurableError> {
        let dir = run_dir(root, fingerprint);
        fs::create_dir_all(&dir).map_err(|e| io_err("create run directory", &dir, e))?;
        Ok(PointStore {
            dir,
            idx,
            fingerprint,
            ordinal: 0,
            journal: None,
        })
    }

    /// The run fingerprint this store was opened with.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The run directory holding this point's files.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub(crate) fn done_path(&self) -> PathBuf {
        self.dir.join(format!("p{}.done", self.idx))
    }

    fn ckpt_path(&self, ordinal: u64) -> PathBuf {
        self.dir.join(format!("p{}-{}.ckpt", self.idx, ordinal))
    }

    fn segment_path(&self, ordinal: u64) -> PathBuf {
        self.dir.join(format!("p{}-{}.journal", self.idx, ordinal))
    }

    /// The path of the latest checkpoint file (for error reports).
    #[must_use]
    pub fn latest_ckpt_path(&self) -> PathBuf {
        self.ckpt_path(self.ordinal)
    }

    /// File names `p{idx}-<ordinal>.<ext>` for this point, parsed.
    fn ordinals_on_disk(&self, ext: &str) -> Result<Vec<u64>, DurableError> {
        let prefix = format!("p{}-", self.idx);
        let suffix = format!(".{ext}");
        let mut found = Vec::new();
        let entries =
            fs::read_dir(&self.dir).map_err(|e| io_err("list run directory", &self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("list run directory", &self.dir, e))?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(mid) = name
                .strip_prefix(&prefix)
                .and_then(|rest| rest.strip_suffix(&suffix))
            {
                if let Ok(n) = mid.parse::<u64>() {
                    found.push(n);
                }
            }
        }
        found.sort_unstable();
        Ok(found)
    }

    /// Removes every file of this point except checkpoint + segment
    /// `keep` (pass `None` to remove everything, done-record included).
    /// Best-effort: a file another pruner already removed is fine.
    fn prune_except(&self, keep: Option<u64>) -> Result<(), DurableError> {
        for ext in ["ckpt", "journal"] {
            for n in self.ordinals_on_disk(ext)? {
                if Some(n) != keep {
                    let path = match ext {
                        "ckpt" => self.ckpt_path(n),
                        _ => self.segment_path(n),
                    };
                    let _ = fs::remove_file(path);
                }
            }
        }
        // Leftover temporaries from a crash mid-checkpoint-write.
        let prefix = format!("p{}", self.idx);
        if let Ok(entries) = fs::read_dir(&self.dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                if let Some(name) = name.to_str() {
                    if name.starts_with(&prefix) && name.ends_with(".tmp") {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }
        if keep.is_none() {
            let _ = fs::remove_file(self.done_path());
        }
        Ok(())
    }

    /// Creates (truncating) segment `ordinal` with a journal header and
    /// leaves it open for appends.
    fn fresh_segment(&mut self, ordinal: u64) -> Result<(), DurableError> {
        let path = self.segment_path(ordinal);
        let mut file = fs::File::create(&path).map_err(|e| io_err("create journal", &path, e))?;
        file.write_all(&journal_header(self.fingerprint))
            .map_err(|e| io_err("write journal header", &path, e))?;
        self.ordinal = ordinal;
        self.journal = Some(file);
        Ok(())
    }

    /// Loads whatever this point left behind: its done-record, or the
    /// latest valid checkpoint plus the journal tail (torn final frame
    /// truncated away), or nothing. Superseded checkpoint ordinals and
    /// stray temporaries are pruned here, so resume only ever depends
    /// on the retained set. Leaves the journal open for appends.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] on filesystem failures;
    /// [`DurableError::Corrupt`] if the latest checkpoint's CRC frame
    /// fails to validate. Unreadable journal *content* is not an
    /// error: the checkpoint is authoritative and a segment that lost
    /// its header is recreated empty.
    pub fn load(&mut self) -> Result<LoadedPoint, DurableError> {
        let done = self.done_path();
        match fs::read(&done) {
            Ok(bytes) => return Ok(LoadedPoint::Done(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("read done record", &done, e)),
        }
        let latest = self.ordinals_on_disk("ckpt")?.last().copied();
        self.prune_except(Some(latest.unwrap_or(0)))?;
        let ordinal = latest.unwrap_or(0);
        let ckpt = match latest {
            None => None,
            Some(n) => {
                let path = self.ckpt_path(n);
                let raw = fs::read(&path).map_err(|e| io_err("read checkpoint", &path, e))?;
                // A checkpoint is one CRC frame; anything else — torn,
                // bit-flipped, trailing garbage — is typed corruption
                // (the caller recovers by resetting and recomputing).
                let scan = scan_frames(&raw);
                if scan.frames.len() != 1 || scan.valid_len != raw.len() {
                    return Err(DurableError::Corrupt {
                        path,
                        source: SnapError::Corrupt("checkpoint is not one intact CRC frame"),
                    });
                }
                Some(scan.frames[0].to_vec())
            }
        };
        let seg_path = self.segment_path(ordinal);
        let journal = match fs::read(&seg_path) {
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // Crash between checkpoint rename and segment creation.
                self.fresh_segment(ordinal)?;
                Vec::new()
            }
            Err(e) => return Err(io_err("read journal", &seg_path, e)),
            Ok(bytes) => match read_journal_header(&bytes, self.fingerprint) {
                Err(_) => {
                    // The segment never got a whole header (or belongs
                    // to another build): the checkpoint still holds the
                    // authoritative state, so restart the segment.
                    self.fresh_segment(ordinal)?;
                    Vec::new()
                }
                Ok(start) => {
                    let scan = scan_frames(&bytes[start..]);
                    let frames: Vec<Vec<u8>> = scan.frames.iter().map(|f| f.to_vec()).collect();
                    // Append mode: writes land past the valid prefix
                    // even after the torn-tail truncation below.
                    let file = fs::OpenOptions::new()
                        .append(true)
                        .open(&seg_path)
                        .map_err(|e| io_err("open journal", &seg_path, e))?;
                    if scan.torn {
                        // The torn-tail rule: truncate at the last
                        // intact CRC frame.
                        file.set_len((start + scan.valid_len) as u64)
                            .map_err(|e| io_err("truncate journal", &seg_path, e))?;
                    }
                    self.ordinal = ordinal;
                    self.journal = Some(file);
                    frames
                }
            },
        };
        Ok(LoadedPoint::Resume { ckpt, journal })
    }

    /// Appends one CRC-framed record to the open journal segment.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] if the write fails.
    ///
    /// # Panics
    ///
    /// Panics if called before [`PointStore::load`] (or
    /// [`PointStore::reset`]) opened a segment.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), DurableError> {
        let framed = frame(payload);
        let path = self.segment_path(self.ordinal);
        let file = self.journal.as_mut().expect("journal segment is open");
        let nth = APPENDS.fetch_add(1, Ordering::Relaxed) + 1;
        if crash_armed(CrashPoint::Journal, nth) {
            // Simulated host death mid-append: half a frame reaches the
            // disk, then the process dies without unwinding.
            let _ = file.write_all(&framed[..framed.len() / 2]);
            let _ = file.sync_all();
            std::process::abort();
        }
        file.write_all(&framed)
            .map_err(|e| io_err("append journal record", &path, e))?;
        if crash_armed(CrashPoint::Event, nth) {
            // Simulated host death between records: the frame is whole.
            let _ = file.sync_all();
            std::process::abort();
        }
        Ok(())
    }

    /// Writes checkpoint `ordinal + 1` atomically (write-then-rename,
    /// the body wrapped in one CRC frame so corruption is detectable),
    /// rotates the journal to a fresh segment, and prunes the
    /// superseded checkpoint and segment.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] if any write fails.
    pub fn checkpoint(&mut self, bytes: &[u8]) -> Result<(), DurableError> {
        let next = self.ordinal + 1;
        let path = self.ckpt_path(next);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        let framed = frame(bytes);
        let nth = CKPTS.fetch_add(1, Ordering::Relaxed) + 1;
        if crash_armed(CrashPoint::Ckpt, nth) {
            // Simulated host death mid-checkpoint: a torn temporary is
            // left behind; the rename never happens.
            let _ = fs::write(&tmp, &framed[..framed.len() / 2]);
            std::process::abort();
        }
        fs::write(&tmp, &framed).map_err(|e| io_err("write checkpoint", &tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err("publish checkpoint", &path, e))?;
        self.fresh_segment(next)?;
        self.prune_except(Some(next))
    }

    /// Publishes the point's encoded outcome as its done-record and
    /// removes the now-superseded checkpoint and journal files.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] if the write fails.
    pub fn finish(&mut self, bytes: &[u8]) -> Result<(), DurableError> {
        let path = self.done_path();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        fs::write(&tmp, bytes).map_err(|e| io_err("write done record", &tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err("publish done record", &path, e))?;
        self.journal = None;
        self.prune_except(Some(u64::MAX))?;
        Ok(())
    }

    /// Wipes every file of this point and reopens fresh at ordinal 0 —
    /// the recovery of last resort when persisted state is corrupt or
    /// diverged.
    ///
    /// # Errors
    ///
    /// [`DurableError::Io`] if the fresh segment cannot be created.
    pub fn reset(&mut self) -> Result<(), DurableError> {
        self.journal = None;
        self.prune_except(None)?;
        self.fresh_segment(0)
    }
}

/// Where the `VIP_DURABLE_CRASH` hook can kill the process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashPoint {
    /// After the Nth whole journal append (clean inter-record kill).
    Event,
    /// During the Nth checkpoint write (torn temporary).
    Ckpt,
    /// During the Nth journal append (torn frame).
    Journal,
}

static APPENDS: AtomicU64 = AtomicU64::new(0);
static CKPTS: AtomicU64 = AtomicU64::new(0);

fn crash_spec() -> Option<(CrashPoint, u64)> {
    static SPEC: OnceLock<Option<(CrashPoint, u64)>> = OnceLock::new();
    *SPEC.get_or_init(|| {
        let raw = std::env::var("VIP_DURABLE_CRASH").ok()?;
        let (kind, n) = raw.split_once(':')?;
        let n: u64 = n.parse().ok()?;
        let point = match kind {
            "event" => CrashPoint::Event,
            "ckpt" => CrashPoint::Ckpt,
            "journal" => CrashPoint::Journal,
            _ => return None,
        };
        Some((point, n))
    })
}

/// The crash-injection hook the durability integration tests use:
/// `VIP_DURABLE_CRASH=event:N|ckpt:N|journal:N` aborts the process at
/// the Nth occurrence of that point (1-based, process-wide — run the
/// fan-out with `--jobs 1` for a deterministic kill site).
fn crash_armed(point: CrashPoint, nth: u64) -> bool {
    crash_spec() == Some((point, nth))
}

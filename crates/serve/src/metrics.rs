//! Latency and throughput summaries over a serving outcome.
//!
//! All integer arithmetic on the cycle domain (nearest-rank
//! percentiles over sorted latencies); floats only appear at the very
//! edge, converting cycles to wall-clock milliseconds at the device
//! clock for the report.

use vip_core::{cycles_to_ms, CLOCK_HZ};

use crate::scheduler::ServeOutcome;

/// Latency distribution of the completed requests, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Completed-request count the summary covers.
    pub completed: usize,
    /// Median latency.
    pub p50: u64,
    /// 99th-percentile latency (nearest rank).
    pub p99: u64,
    /// Mean latency (integer division).
    pub mean: u64,
    /// Worst latency.
    pub max: u64,
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// value with at least `pct`% of the samples at or below it.
///
/// # Panics
///
/// Panics if `sorted` is empty or `pct` is outside `1..=100`.
#[must_use]
pub fn percentile(sorted: &[u64], pct: u64) -> u64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!((1..=100).contains(&pct), "percentile rank out of range");
    let n = sorted.len() as u64;
    let rank = (n * pct).div_ceil(100).max(1);
    sorted[usize::try_from(rank - 1).expect("rank fits")]
}

/// Summarizes the completed requests' latencies (`None` if nothing
/// completed).
#[must_use]
pub fn latency_summary(outcome: &ServeOutcome) -> Option<LatencySummary> {
    let mut lat: Vec<u64> = outcome.records.iter().filter_map(|r| r.latency()).collect();
    if lat.is_empty() {
        return None;
    }
    lat.sort_unstable();
    let sum: u64 = lat.iter().sum();
    Some(LatencySummary {
        completed: lat.len(),
        p50: percentile(&lat, 50),
        p99: percentile(&lat, 99),
        mean: sum / lat.len() as u64,
        max: *lat.last().expect("non-empty"),
    })
}

/// Completed requests per (simulated) second over the run's makespan.
#[must_use]
pub fn throughput_rps(outcome: &ServeOutcome) -> f64 {
    if outcome.makespan == 0 {
        return 0.0;
    }
    let completed = outcome
        .records
        .iter()
        .filter(|r| r.completion.is_some())
        .count();
    completed as f64 * CLOCK_HZ / outcome.makespan as f64
}

/// Cycles → milliseconds at the device clock (re-exported shape the
/// report writer uses).
#[must_use]
pub fn ms(cycles: u64) -> f64 {
    cycles_to_ms(cycles)
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&v, 100), 100);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 99), 7);
        // 3 samples: p50 is the 2nd, p99 the 3rd.
        assert_eq!(percentile(&[1, 2, 3], 50), 2);
        assert_eq!(percentile(&[1, 2, 3], 99), 3);
    }
}

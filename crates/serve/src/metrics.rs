//! Latency, throughput, availability, and recovery summaries over a
//! serving outcome.
//!
//! All integer arithmetic on the cycle domain (nearest-rank
//! percentiles over sorted latencies); floats only appear at the very
//! edge, converting cycles to wall-clock milliseconds at the device
//! clock for the report. Every summary here is *total*: empty or
//! degenerate outcomes (nothing completed, nothing recovered, an
//! all-shed run) yield `None` or a defined value, never a panic — the
//! chaos sweep summarizes runs where anything may have happened.

use vip_core::{cycles_to_ms, CLOCK_HZ};

use crate::chaos::Terminal;
use crate::scheduler::ServeOutcome;

/// Latency distribution of a set of requests, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySummary {
    /// Request count the summary covers.
    pub completed: usize,
    /// Median latency.
    pub p50: u64,
    /// 99th-percentile latency (nearest rank).
    pub p99: u64,
    /// Mean latency (integer division).
    pub mean: u64,
    /// Worst latency.
    pub max: u64,
}

/// Nearest-rank percentile of an ascending-sorted slice: the smallest
/// value with at least `pct`% of the samples at or below it. Total:
/// `None` when the sample is empty or `pct` is outside `1..=100`.
#[must_use]
pub fn percentile(sorted: &[u64], pct: u64) -> Option<u64> {
    if sorted.is_empty() || !(1..=100).contains(&pct) {
        return None;
    }
    let n = sorted.len() as u64;
    let rank = (n * pct).div_ceil(100).max(1);
    Some(sorted[usize::try_from(rank - 1).expect("rank fits")])
}

/// Summarizes an unsorted latency sample (`None` if empty).
fn summarize(mut lat: Vec<u64>) -> Option<LatencySummary> {
    if lat.is_empty() {
        return None;
    }
    lat.sort_unstable();
    let sum: u64 = lat.iter().sum();
    Some(LatencySummary {
        completed: lat.len(),
        p50: percentile(&lat, 50)?,
        p99: percentile(&lat, 99)?,
        mean: sum / lat.len() as u64,
        max: *lat.last().expect("non-empty"),
    })
}

/// Summarizes the completed requests' latencies (`None` if nothing
/// completed).
#[must_use]
pub fn latency_summary(outcome: &ServeOutcome) -> Option<LatencySummary> {
    summarize(outcome.records.iter().filter_map(|r| r.latency()).collect())
}

/// Summarizes the latencies of failed-then-recovered requests only —
/// arrival to completion, so it includes the failed attempts, the
/// backoff, and the re-run. `None` when nothing recovered.
#[must_use]
pub fn recovery_summary(outcome: &ServeOutcome) -> Option<LatencySummary> {
    summarize(
        outcome
            .records
            .iter()
            .filter(|r| matches!(r.status, Terminal::Recovered { .. }))
            .filter_map(|r| r.latency())
            .collect(),
    )
}

/// Served requests (completed or recovered) as a percentage of issued.
/// An empty outcome counts as fully available: nothing was refused.
#[must_use]
pub fn availability_pct(outcome: &ServeOutcome) -> f64 {
    if outcome.records.is_empty() {
        return 100.0;
    }
    let served = outcome
        .records
        .iter()
        .filter(|r| r.status.is_served())
        .count();
    served as f64 * 100.0 / outcome.records.len() as f64
}

/// Completed requests per (simulated) second over the run's makespan.
#[must_use]
pub fn throughput_rps(outcome: &ServeOutcome) -> f64 {
    if outcome.makespan == 0 {
        return 0.0;
    }
    let completed = outcome
        .records
        .iter()
        .filter(|r| r.completion.is_some())
        .count();
    completed as f64 * CLOCK_HZ / outcome.makespan as f64
}

/// Cycles → milliseconds at the device clock (re-exported shape the
/// report writer uses).
#[must_use]
pub fn ms(cycles: u64) -> f64 {
    cycles_to_ms(cycles)
}

#[cfg(test)]
mod tests {
    use super::percentile;
    use vip_rng::SplitMix64;

    #[test]
    fn nearest_rank_percentiles() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), Some(50));
        assert_eq!(percentile(&v, 99), Some(99));
        assert_eq!(percentile(&v, 100), Some(100));
        assert_eq!(percentile(&[7], 50), Some(7));
        assert_eq!(percentile(&[7], 99), Some(7));
        // 3 samples: p50 is the 2nd, p99 the 3rd.
        assert_eq!(percentile(&[1, 2, 3], 50), Some(2));
        assert_eq!(percentile(&[1, 2, 3], 99), Some(3));
    }

    #[test]
    fn percentile_is_total_over_degenerate_inputs() {
        assert_eq!(percentile(&[], 50), None);
        assert_eq!(percentile(&[], 1), None);
        assert_eq!(percentile(&[1, 2, 3], 0), None);
        assert_eq!(percentile(&[1, 2, 3], 101), None);
    }

    /// The definition, computed the slow way: the smallest sample
    /// value `v` such that at least `pct`% of samples are ≤ `v`.
    fn naive_nearest_rank(sorted: &[u64], pct: u64) -> Option<u64> {
        if sorted.is_empty() || !(1..=100).contains(&pct) {
            return None;
        }
        let n = sorted.len() as u64;
        sorted
            .iter()
            .copied()
            .find(|v| {
                let at_or_below = sorted.iter().filter(|s| **s <= *v).count() as u64;
                at_or_below * 100 >= pct * n
            })
            .or_else(|| sorted.last().copied())
    }

    #[test]
    fn percentile_matches_naive_reference_on_random_samples() {
        let mut rng = SplitMix64::new(0x9e3779b97f4a7c15);
        for round in 0..200 {
            let len = (round % 17) as usize; // includes empty
            let mut v: Vec<u64> = (0..len).map(|_| rng.below(1000)).collect();
            v.sort_unstable();
            for pct in [0u64, 1, 25, 50, 75, 90, 99, 100, 101] {
                assert_eq!(
                    percentile(&v, pct),
                    naive_nearest_rank(&v, pct),
                    "len {len} pct {pct} sample {v:?}"
                );
            }
        }
    }
}

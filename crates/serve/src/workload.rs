//! Seeded request workloads: what arrives, when, and how eagerly.
//!
//! A [`Workload`] is a weighted mix of [`TileClass`]es plus a load
//! mode. Everything downstream of the seed is deterministic — class
//! draws, inter-arrival gaps, and think times all come from dedicated
//! [`SplitMix64`] streams, so the same seed always produces the same
//! request trace regardless of fleet size or host thread count.

use vip_rng::SplitMix64;

use crate::tiles::TileClass;

/// One entry in the request mix.
#[derive(Debug, Clone, Copy)]
pub struct MixEntry {
    /// The tile class this entry issues.
    pub class: TileClass,
    /// Relative draw weight.
    pub weight: u32,
    /// Priority class: 0 = interactive (may preempt), 1 = batch.
    pub priority: u8,
}

/// How load is offered to the fleet.
#[derive(Debug, Clone, Copy)]
pub enum LoadMode {
    /// Open loop: arrivals on an independent clock, uniform gaps with
    /// the given mean (cycles). Rejected requests are lost.
    Open {
        /// Mean inter-arrival gap in device cycles.
        mean_gap: u64,
    },
    /// Closed loop: `clients` concurrent clients, each thinking a
    /// uniform `0..=2*think` cycles between completion and its next
    /// request. Rejected requests back off and retry.
    Closed {
        /// Concurrent clients.
        clients: usize,
        /// Mean think time in device cycles.
        think: u64,
    },
}

/// A complete seeded workload description.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Seed for every stream the workload derives.
    pub seed: u64,
    /// Total requests to issue before the trace ends.
    pub requests: usize,
    /// Open or closed loop.
    pub mode: LoadMode,
    /// Weighted class mix (must be non-empty).
    pub mix: Vec<MixEntry>,
}

impl Workload {
    /// The standard serving mix: interactive fc and conv tiles
    /// dominating, with occasional long BP batch jobs to exercise
    /// preemption.
    #[must_use]
    pub fn standard_mix() -> Vec<MixEntry> {
        vec![
            MixEntry {
                class: TileClass::Mlp {
                    inputs: 2048,
                    outputs: 64,
                },
                weight: 6,
                priority: 0,
            },
            MixEntry {
                class: TileClass::Cnn {
                    in_channels: 4,
                    out_channels: 8,
                    filters_per_group: 8,
                },
                weight: 3,
                priority: 0,
            },
            MixEntry {
                class: TileClass::Bp {
                    width: 64,
                    height: 32,
                    labels: 16,
                    iters: 1,
                },
                weight: 1,
                priority: 1,
            },
        ]
    }

    /// A smaller mix for tests and `--quick` runs (BP at the minimum
    /// 32×32 grid the 4-PE strip alignment allows).
    #[must_use]
    pub fn small_mix() -> Vec<MixEntry> {
        vec![
            MixEntry {
                class: TileClass::Mlp {
                    inputs: 512,
                    outputs: 32,
                },
                weight: 6,
                priority: 0,
            },
            MixEntry {
                class: TileClass::Cnn {
                    in_channels: 4,
                    out_channels: 8,
                    filters_per_group: 8,
                },
                weight: 3,
                priority: 0,
            },
            MixEntry {
                class: TileClass::Bp {
                    width: 32,
                    height: 32,
                    labels: 16,
                    iters: 1,
                },
                weight: 1,
                priority: 1,
            },
        ]
    }

    /// Draws the class and priority of request number `id` — a pure
    /// function of the seed and `id`, so open and closed loops (and
    /// retries) agree on what each request is.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty or entirely zero-weighted.
    #[must_use]
    pub fn draw(&self, id: u64) -> MixEntry {
        assert!(!self.mix.is_empty(), "workload mix is empty");
        let total: u32 = self.mix.iter().map(|e| e.weight).sum();
        assert!(total > 0, "workload mix has zero total weight");
        let mut rng =
            SplitMix64::new(self.seed ^ 0x006d_6978 ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut pick = rng.below(u64::from(total)) as u32;
        for entry in &self.mix {
            if pick < entry.weight {
                return *entry;
            }
            pick -= entry.weight;
        }
        unreachable!("weighted draw out of range")
    }

    /// The arrival RNG stream (open loop), seeded independently of the
    /// class-draw streams.
    #[must_use]
    pub fn arrival_rng(&self) -> SplitMix64 {
        SplitMix64::new(self.seed ^ 0x6172_7269_7665)
    }

    /// Client `c`'s think-time RNG stream (closed loop).
    #[must_use]
    pub fn think_rng(&self, client: usize) -> SplitMix64 {
        SplitMix64::new(self.seed ^ 0x0074_6869_6e6b ^ ((client as u64) << 40))
    }
}

//! The prepared-program cache.
//!
//! Program generation (schedule resolution + codegen) is a pure
//! function of the tile class, the chosen schedule, the machine
//! fingerprint, and the batch size — none of which depend on a
//! request's payload — so prepared per-PE programs are shared across
//! every dispatch of a compatible batch. Keys follow the bench
//! runner's durable-point idiom (name + structural configuration
//! fingerprint), extended with the schedule encoding and the batch
//! size the codegen specialized for.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vip_isa::Program;
use vip_snap::{Reader, SnapError, Snapshot, Writer};

/// Identity of one prepared program set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// The tile's shape key (`fc-2048x64`, `conv-4x8x16x8`, …) — the
    /// same string the schedule store files under.
    pub key: String,
    /// Encoding of the schedule the programs were generated for.
    pub encoding: String,
    /// Structural configuration fingerprint of the target device
    /// ([`vip_core::SystemConfig::snapshot_fingerprint`]).
    pub fingerprint: u64,
    /// Batch size the codegen specialized for.
    pub batch: usize,
}

impl Snapshot for CacheKey {
    fn save(&self, w: &mut Writer) {
        self.key.save(w);
        self.encoding.save(w);
        w.u64(self.fingerprint);
        w.usize(self.batch);
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(CacheKey {
            key: String::restore(r)?,
            encoding: String::restore(r)?,
            fingerprint: r.u64()?,
            batch: r.usize()?,
        })
    }
}

/// A concurrent map from [`CacheKey`] to shared prepared programs,
/// with hit/miss counters. Builds happen under the lock, so a key is
/// generated at most once even when parallel sweep points race for it
/// (and the counters stay deterministic in single-threaded use — the
/// resume test asserts on them).
///
/// Checkpoints persist the cache as its key set plus the counters
/// ([`ProgramCache::keys`] / [`ProgramCache::prime`]): programs are a
/// pure function of their key, so a restored run rebuilds each primed
/// entry silently on first touch — counted as the hit it was in the
/// original run, keeping resumed reports byte-identical.
#[derive(Debug, Default)]
pub struct ProgramCache {
    map: Mutex<HashMap<CacheKey, Arc<Vec<Program>>>>,
    /// Keys present at the restored checkpoint whose programs have not
    /// been rebuilt yet. A lookup of one counts a hit, not a miss.
    primed: Mutex<HashSet<CacheKey>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the prepared programs for `key`, building (and
    /// retaining) them via `build` on the first request.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a prior builder
    /// panicked).
    pub fn get_or_build(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Vec<Program>,
    ) -> Arc<Vec<Program>> {
        let mut map = self.map.lock().expect("program cache lock");
        if let Some(found) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        // A primed key was cached when the checkpoint was taken: the
        // original run would have hit, so the resumed run counts the
        // hit and quietly regenerates the (key-determined) programs.
        if self.primed.lock().expect("primed set lock").remove(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let built = Arc::new(build());
        map.insert(key, Arc::clone(&built));
        built
    }

    /// Every key the cache answers for — built and primed alike —
    /// sorted so checkpoints are canonical.
    ///
    /// # Panics
    ///
    /// Panics if an internal lock is poisoned.
    #[must_use]
    pub fn keys(&self) -> Vec<CacheKey> {
        let mut keys: Vec<CacheKey> = self
            .map
            .lock()
            .expect("program cache lock")
            .keys()
            .cloned()
            .collect();
        keys.extend(self.primed.lock().expect("primed set lock").iter().cloned());
        keys.sort();
        keys.dedup();
        keys
    }

    /// Restores the cache to a checkpointed state: `keys` become
    /// primed (rebuilt silently on first touch) and the counters are
    /// set to their checkpointed values.
    ///
    /// # Panics
    ///
    /// Panics if an internal lock is poisoned.
    pub fn prime(&self, keys: Vec<CacheKey>, hits: u64, misses: u64) {
        let mut primed = self.primed.lock().expect("primed set lock");
        primed.clear();
        primed.extend(keys);
        self.hits.store(hits, Ordering::Relaxed);
        self.misses.store(misses, Ordering::Relaxed);
    }

    /// Lookups served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct program sets currently retained.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("program cache lock").len()
    }

    /// Whether the cache holds nothing yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(batch: usize) -> CacheKey {
        CacheKey {
            key: "fc-8x8".into(),
            encoding: "kc8".into(),
            fingerprint: 0xfeed,
            batch,
        }
    }

    #[test]
    fn counts_hits_and_misses() {
        let cache = ProgramCache::new();
        let a = cache.get_or_build(key(1), Vec::new);
        let b = cache.get_or_build(key(1), || panic!("second lookup must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different batch size is a different prepared-program set.
        let _ = cache.get_or_build(key(2), Vec::new);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn primed_keys_rebuild_as_hits() {
        let cache = ProgramCache::new();
        cache.prime(vec![key(1)], 5, 3);
        assert_eq!((cache.hits(), cache.misses()), (5, 3));
        assert_eq!(cache.keys(), vec![key(1)]);
        // First touch of a primed key rebuilds but counts the hit the
        // original run took.
        let _ = cache.get_or_build(key(1), Vec::new);
        assert_eq!((cache.hits(), cache.misses()), (6, 3));
        // A never-seen key is still a miss.
        let _ = cache.get_or_build(key(2), Vec::new);
        assert_eq!((cache.hits(), cache.misses()), (6, 4));
        let mut keys = cache.keys();
        keys.sort();
        assert_eq!(keys, vec![key(1), key(2)]);
    }
}

//! The prepared-program cache.
//!
//! Program generation (schedule resolution + codegen) is a pure
//! function of the tile class, the chosen schedule, the machine
//! fingerprint, and the batch size — none of which depend on a
//! request's payload — so prepared per-PE programs are shared across
//! every dispatch of a compatible batch. Keys follow the bench
//! runner's durable-point idiom (name + structural configuration
//! fingerprint), extended with the schedule encoding and the batch
//! size the codegen specialized for.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use vip_isa::Program;

/// Identity of one prepared program set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The tile's shape key (`fc-2048x64`, `conv-4x8x16x8`, …) — the
    /// same string the schedule store files under.
    pub key: String,
    /// Encoding of the schedule the programs were generated for.
    pub encoding: String,
    /// Structural configuration fingerprint of the target device
    /// ([`vip_core::SystemConfig::snapshot_fingerprint`]).
    pub fingerprint: u64,
    /// Batch size the codegen specialized for.
    pub batch: usize,
}

/// A concurrent map from [`CacheKey`] to shared prepared programs,
/// with hit/miss counters. Builds happen under the lock, so a key is
/// generated at most once even when parallel sweep points race for it
/// (and the counters stay deterministic in single-threaded use — the
/// resume test asserts on them).
#[derive(Debug, Default)]
pub struct ProgramCache {
    map: Mutex<HashMap<CacheKey, Arc<Vec<Program>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ProgramCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the prepared programs for `key`, building (and
    /// retaining) them via `build` on the first request.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned (a prior builder
    /// panicked).
    pub fn get_or_build(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Vec<Program>,
    ) -> Arc<Vec<Program>> {
        let mut map = self.map.lock().expect("program cache lock");
        if let Some(found) = map.get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(found);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(build());
        map.insert(key, Arc::clone(&built));
        built
    }

    /// Lookups served from the cache.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct program sets currently retained.
    ///
    /// # Panics
    ///
    /// Panics if the internal lock is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().expect("program cache lock").len()
    }

    /// Whether the cache holds nothing yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(batch: usize) -> CacheKey {
        CacheKey {
            key: "fc-8x8".into(),
            encoding: "kc8".into(),
            fingerprint: 0xfeed,
            batch,
        }
    }

    #[test]
    fn counts_hits_and_misses() {
        let cache = ProgramCache::new();
        let a = cache.get_or_build(key(1), Vec::new);
        let b = cache.get_or_build(key(1), || panic!("second lookup must hit"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different batch size is a different prepared-program set.
        let _ = cache.get_or_build(key(2), Vec::new);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
    }
}

//! The servable tile classes and their batchable stagers.
//!
//! A request names a [`TileClass`]; the scheduler batches compatible
//! requests (same class, same priority) and stages one simulated tile
//! per dispatch. Staging mirrors the bench stagers: tuned schedule
//! artifacts are resolved through [`vip_kernels::schedule_store`]
//! (keyed by shape string + structural configuration fingerprint) and
//! fall back to the hand-picked defaults; per-PE programs come from
//! the shared [`ProgramCache`] so repeat dispatches skip codegen
//! entirely.
//!
//! Only the fully-connected family batches above 1: its batched
//! codegen ([`vip_kernels::mlp::fc_batch_tile_programs`]) streams each
//! weight chunk once for the whole batch — the real economic win. The
//! conv and BP generators are single-image tiles (growing an image
//! loop would overflow the 1,024-entry instruction buffer), so their
//! classes declare a batch limit of 1 and multiplex across devices
//! instead.

use std::path::Path;
use std::sync::Arc;

use vip_core::{System, SystemConfig};
use vip_isa::Program;
use vip_kernels::bp::{self, bp_iteration_programs, BpLayout, Messages, Mrf, MrfParams};
use vip_kernels::cnn::{self, conv_tile_programs, ConvLayer, ConvLayout, ConvMode, FcLayer};
use vip_kernels::mlp::{self, FcBatchLayout, FcLayout};
use vip_kernels::schedule::{BpSchedule, ConvSchedule, FcSchedule, Schedule};
use vip_kernels::schedule_store as store;
use vip_kernels::sync::i16s_to_bytes;
use vip_mem::Hmc;
use vip_snap::{Reader, SnapError, Snapshot, Writer};

use crate::cache::{CacheKey, ProgramCache};

/// Ceiling on the fully-connected batch size: the batched codegen
/// keeps `batch` input segments and accumulators resident beside one
/// weight chunk, which fits the 4 KiB scratchpad comfortably up to 16
/// at the batching column width.
pub const MAX_MLP_BATCH: usize = 16;

/// Column-chunk width of the batched fully-connected tile (narrower
/// than the single-image default so the batch fits the scratchpad —
/// the value the paper's batch-16 experiments use).
const BATCH_KC: usize = 64;

/// Deterministic small-magnitude test values (weights/activations) —
/// the bench crate's `pattern` re-rolled here (this crate sits below
/// it in the dependency order).
fn pattern(n: usize, scale: i16, offset: i16) -> Vec<i16> {
    (0..n)
        .map(|i| ((i * 7 + 3) % 11) as i16 * scale - offset)
        .collect()
}

/// One servable inference tile shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileClass {
    /// A fully-connected (tiled GEMV) layer of `inputs`×`outputs`.
    Mlp {
        /// Input vector length.
        inputs: usize,
        /// Output rows.
        outputs: usize,
    },
    /// A convolution tile (16×8 spatial, 3×3 kernel, pad 1) over the
    /// given channel shard.
    Cnn {
        /// Input channels resident in the shard.
        in_channels: usize,
        /// Output channels produced by the shard.
        out_channels: usize,
        /// Filters resident per scratchpad pass (the default-schedule
        /// grouping when no tuned artifact matches).
        filters_per_group: usize,
    },
    /// `iters` BP-M message-passing iterations over a `width`×`height`
    /// grid with `labels` labels.
    Bp {
        /// Grid width.
        width: usize,
        /// Grid height.
        height: usize,
        /// Labels per pixel.
        labels: usize,
        /// Iterations per request.
        iters: usize,
    },
}

impl TileClass {
    /// The schedule-store shape key ([`vip_kernels::schedule_store`]).
    #[must_use]
    pub fn key(&self) -> String {
        match *self {
            TileClass::Mlp { inputs, outputs } => store::fc_key(&fc_layer(inputs, outputs)),
            TileClass::Cnn {
                in_channels,
                out_channels,
                ..
            } => store::conv_key(&conv_layer(in_channels, out_channels)),
            TileClass::Bp {
                width,
                height,
                labels,
                ..
            } => store::bp_key(width, height, labels),
        }
    }

    /// How many requests of this class one staged tile can serve.
    #[must_use]
    pub fn batch_limit(&self) -> usize {
        match *self {
            // Batched fc codegen needs the batching column width to
            // divide the input length; shapes that don't divide stay
            // unbatched rather than faulting at stage time.
            TileClass::Mlp { inputs, .. } if inputs % BATCH_KC == 0 => MAX_MLP_BATCH,
            _ => 1,
        }
    }

    /// Simulated-cycle budget before a dispatch of `batch` requests
    /// counts as hung.
    #[must_use]
    pub fn cycle_limit(&self, batch: usize) -> u64 {
        if batch > 1 {
            160_000_000
        } else {
            80_000_000
        }
    }

    /// Stages one tile serving `batch` requests of this class: builds
    /// the device system, loads inputs/weights/messages, and resolves
    /// prepared programs through `cache` (tuned schedules looked up
    /// under `sched_dir`). Programs are *not* yet loaded into the PEs —
    /// the scheduler loads them at dispatch.
    ///
    /// # Panics
    ///
    /// Panics if `batch` exceeds [`TileClass::batch_limit`] or the
    /// shape violates the generated kernel's divisibility rules.
    #[must_use]
    pub fn stage(
        &self,
        cfg: &SystemConfig,
        batch: usize,
        sched_dir: &Path,
        cache: &ProgramCache,
    ) -> StagedJob {
        assert!(
            batch >= 1 && batch <= self.batch_limit(),
            "batch {batch} outside this class's limit"
        );
        let fingerprint = cfg.snapshot_fingerprint();
        let key = self.key();
        match *self {
            TileClass::Mlp { inputs, outputs } => {
                let layer = fc_layer(inputs, outputs);
                if batch == 1 {
                    let sched = fc_schedule(sched_dir, &layer, fingerprint);
                    let layout = FcLayout {
                        layer,
                        input_base: 0,
                        weights_base: 0x10_0100,
                        bias_base: 0x80_0200,
                        output_base: 0x90_0300,
                        relu: true,
                    };
                    let mut sys = System::new(cfg.clone());
                    layout.load_into_scheduled(
                        sys.hmc_mut(),
                        &sched,
                        &pattern(inputs, 1, 5),
                        &pattern(inputs * outputs, 1, 5),
                        &pattern(outputs, 1, 2),
                    );
                    let programs = cache.get_or_build(
                        CacheKey {
                            key,
                            encoding: Schedule::Fc(sched).encoding(),
                            fingerprint,
                            batch,
                        },
                        || mlp::fc_tile_programs(&layout, &sched),
                    );
                    StagedJob {
                        sys,
                        programs,
                        limit: self.cycle_limit(batch),
                        reader: ResultReader::Fc(layout),
                    }
                } else {
                    let layout = FcBatchLayout {
                        layer,
                        batch,
                        kc: BATCH_KC,
                        input_base: 0,
                        weights_base: 0x10_0100,
                        bias_base: 0x80_0200,
                        output_base: 0x90_0300,
                        relu: true,
                    };
                    let mut sys = System::new(cfg.clone());
                    layout.load_into(
                        sys.hmc_mut(),
                        &pattern(inputs * batch, 1, 5),
                        &pattern(inputs * outputs, 1, 5),
                        &pattern(outputs, 1, 2),
                    );
                    let programs = cache.get_or_build(
                        CacheKey {
                            key,
                            encoding: format!("batch-kc{BATCH_KC}"),
                            fingerprint,
                            batch,
                        },
                        || mlp::fc_batch_tile_programs(&layout, 4),
                    );
                    StagedJob {
                        sys,
                        programs,
                        limit: self.cycle_limit(batch),
                        reader: ResultReader::FcBatch(layout),
                    }
                }
            }
            TileClass::Cnn {
                in_channels,
                out_channels,
                filters_per_group,
            } => {
                let layer = conv_layer(in_channels, out_channels);
                let sched = conv_schedule(sched_dir, &layer, filters_per_group, fingerprint);
                let input = cnn::pad_input(
                    layer.width,
                    layer.height,
                    layer.in_channels,
                    layer.pad,
                    &pattern(layer.width * layer.height * layer.in_channels, 1, 5),
                );
                let layout = ConvLayout {
                    layer,
                    input_base: 0,
                    weights_base: 0x40_0100,
                    bias_base: 0x80_0200,
                    output_base: 0xc0_0300,
                    filters_per_group: sched.filters_per_group,
                    mode: ConvMode::Full,
                };
                let mut sys = System::new(cfg.clone());
                layout.load_into(
                    sys.hmc_mut(),
                    &input,
                    &pattern(layer.weights(), 1, 3),
                    &pattern(layer.out_channels, 1, 2),
                );
                let programs = cache.get_or_build(
                    CacheKey {
                        key,
                        encoding: Schedule::Conv(sched).encoding(),
                        fingerprint,
                        batch,
                    },
                    || conv_tile_programs(&layout, &sched),
                );
                StagedJob {
                    sys,
                    programs,
                    limit: self.cycle_limit(batch),
                    reader: ResultReader::Conv(layout),
                }
            }
            TileClass::Bp {
                width,
                height,
                labels,
                iters,
            } => {
                let costs = bp::stereo_data_costs(width, height, labels, 7);
                let mrf = Mrf::new(
                    MrfParams::truncated_linear(width, height, labels, 2, 12),
                    costs,
                );
                let sched = bp_schedule(sched_dir, width, height, labels, fingerprint);
                let layout = BpLayout::with_row_pad(0, width, height, labels, sched.row_pad);
                let mut sys = System::new(cfg.clone());
                layout.load_into(
                    sys.hmc_mut(),
                    &mrf,
                    &Messages::new_unnormalized(&mrf.params),
                );
                let programs = cache.get_or_build(
                    CacheKey {
                        key,
                        encoding: Schedule::Bp(sched).encoding(),
                        fingerprint,
                        batch,
                    },
                    || bp_iteration_programs(&layout, &sched, iters, false),
                );
                StagedJob {
                    sys,
                    programs,
                    limit: self.cycle_limit(batch),
                    reader: ResultReader::Bp(layout),
                }
            }
        }
    }
}

impl TileClass {
    /// Rebuilds the [`ResultReader`] a dispatch of `batch` requests of
    /// this class would have been staged with — the piece of job state
    /// a fleet checkpoint cannot serialize (layouts carry static
    /// names), reconstructed instead from the class, the batch size,
    /// and the same schedule resolution [`TileClass::stage`] performs.
    #[must_use]
    pub fn reader_for(&self, batch: usize, sched_dir: &Path, fingerprint: u64) -> ResultReader {
        match *self {
            TileClass::Mlp { inputs, outputs } => {
                let layer = fc_layer(inputs, outputs);
                if batch == 1 {
                    ResultReader::Fc(FcLayout {
                        layer,
                        input_base: 0,
                        weights_base: 0x10_0100,
                        bias_base: 0x80_0200,
                        output_base: 0x90_0300,
                        relu: true,
                    })
                } else {
                    ResultReader::FcBatch(FcBatchLayout {
                        layer,
                        batch,
                        kc: BATCH_KC,
                        input_base: 0,
                        weights_base: 0x10_0100,
                        bias_base: 0x80_0200,
                        output_base: 0x90_0300,
                        relu: true,
                    })
                }
            }
            TileClass::Cnn {
                in_channels,
                out_channels,
                filters_per_group,
            } => {
                let layer = conv_layer(in_channels, out_channels);
                let sched = conv_schedule(sched_dir, &layer, filters_per_group, fingerprint);
                ResultReader::Conv(ConvLayout {
                    layer,
                    input_base: 0,
                    weights_base: 0x40_0100,
                    bias_base: 0x80_0200,
                    output_base: 0xc0_0300,
                    filters_per_group: sched.filters_per_group,
                    mode: ConvMode::Full,
                })
            }
            TileClass::Bp {
                width,
                height,
                labels,
                ..
            } => {
                let sched = bp_schedule(sched_dir, width, height, labels, fingerprint);
                ResultReader::Bp(BpLayout::with_row_pad(
                    0,
                    width,
                    height,
                    labels,
                    sched.row_pad,
                ))
            }
        }
    }
}

impl Snapshot for TileClass {
    fn save(&self, w: &mut Writer) {
        match *self {
            TileClass::Mlp { inputs, outputs } => {
                w.u8(0);
                w.usize(inputs);
                w.usize(outputs);
            }
            TileClass::Cnn {
                in_channels,
                out_channels,
                filters_per_group,
            } => {
                w.u8(1);
                w.usize(in_channels);
                w.usize(out_channels);
                w.usize(filters_per_group);
            }
            TileClass::Bp {
                width,
                height,
                labels,
                iters,
            } => {
                w.u8(2);
                w.usize(width);
                w.usize(height);
                w.usize(labels);
                w.usize(iters);
            }
        }
    }

    fn restore(r: &mut Reader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => TileClass::Mlp {
                inputs: r.usize()?,
                outputs: r.usize()?,
            },
            1 => TileClass::Cnn {
                in_channels: r.usize()?,
                out_channels: r.usize()?,
                filters_per_group: r.usize()?,
            },
            2 => TileClass::Bp {
                width: r.usize()?,
                height: r.usize()?,
                labels: r.usize()?,
                iters: r.usize()?,
            },
            _ => return Err(SnapError::Corrupt("tile class tag")),
        })
    }
}

fn fc_layer(inputs: usize, outputs: usize) -> FcLayer {
    FcLayer {
        name: "tile",
        inputs,
        outputs,
    }
}

fn conv_layer(in_channels: usize, out_channels: usize) -> ConvLayer {
    ConvLayer {
        name: "tile",
        in_channels,
        out_channels,
        width: 16,
        height: 8,
        kernel: 3,
        pad: 1,
    }
}

fn fc_schedule(dir: &Path, layer: &FcLayer, fingerprint: u64) -> FcSchedule {
    match store::load_from(dir, &store::fc_key(layer), fingerprint) {
        Some(Schedule::Fc(s)) if s.validate(layer).is_ok() => s,
        _ => FcSchedule::default(),
    }
}

fn conv_schedule(
    dir: &Path,
    layer: &ConvLayer,
    filters_per_group: usize,
    fingerprint: u64,
) -> ConvSchedule {
    match store::load_from(dir, &store::conv_key(layer), fingerprint) {
        Some(Schedule::Conv(s)) if s.validate(layer).is_ok() => s,
        _ => ConvSchedule::default_for(layer, filters_per_group),
    }
}

fn bp_schedule(dir: &Path, w: usize, h: usize, l: usize, fingerprint: u64) -> BpSchedule {
    match store::load_from(dir, &store::bp_key(w, h, l), fingerprint) {
        Some(Schedule::Bp(s)) if s.validate(w, h, l).is_ok() => s,
        _ => BpSchedule::default(),
    }
}

/// A staged dispatch: device system built and loaded with data,
/// prepared programs resolved, result readback captured.
#[derive(Debug)]
pub struct StagedJob {
    /// The device about to run the tile (programs not yet loaded).
    pub sys: System,
    /// Shared per-PE programs from the [`ProgramCache`].
    pub programs: Arc<Vec<Program>>,
    /// Simulated-cycle budget.
    pub limit: u64,
    /// Per-request result readback.
    pub reader: ResultReader,
}

impl StagedJob {
    /// Loads the prepared programs into the device's PEs.
    pub fn load_programs(&mut self) {
        for (pe, p) in self.programs.iter().enumerate() {
            self.sys.load_program(pe, p);
        }
    }
}

/// Knows where a finished tile's outputs live and how to split them
/// per batched request.
#[derive(Debug)]
pub enum ResultReader {
    /// Single-image fully-connected output vector.
    Fc(FcLayout),
    /// Batched fully-connected `[batch][outputs]` matrix — one chunk
    /// per request.
    FcBatch(FcBatchLayout),
    /// Convolution output planes.
    Conv(ConvLayout),
    /// BP message arrays — the full tile region, bit-exact.
    Bp(BpLayout),
}

impl ResultReader {
    /// Reads the finished tile's outputs, one byte blob per batched
    /// request (host-side, after quiescence).
    #[must_use]
    pub fn read(&self, hmc: &Hmc) -> Vec<Vec<u8>> {
        match self {
            ResultReader::Fc(l) => vec![i16s_to_bytes(&l.read_output(hmc))],
            ResultReader::FcBatch(l) => l
                .read_output(hmc)
                .chunks(l.layer.outputs)
                .map(i16s_to_bytes)
                .collect(),
            ResultReader::Conv(l) => vec![i16s_to_bytes(&l.read_output(hmc))],
            ResultReader::Bp(l) => {
                vec![hmc.host_read(l.base, usize::try_from(l.total_bytes()).expect("tile fits"))]
            }
        }
    }
}

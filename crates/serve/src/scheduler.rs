//! The discrete-event fleet scheduler.
//!
//! One fleet-wide virtual clock, one event heap. Devices are full
//! simulated `System`s; the scheduler advances the one holding a job
//! in bounded quanta (eagerly simulating each slice when it is
//! dispatched, then scheduling the completion event at the fleet time
//! the slice ends). Everything is ordered by `(cycle, sequence)` with
//! a monotone sequence counter, so execution is a pure function of
//! the workload seed — no host threads, no wall clock, no hashmap
//! iteration order anywhere near a decision.
//!
//! Admission: two FIFO queues (priority 0 = interactive, 1 = batch)
//! with a shared depth bound; an arrival that would exceed the bound
//! gets a typed [`Rejection`] (terminal in open loop, retry-after-
//! backoff in closed loop). Dispatch prefers interactive work, batches
//! same-key compatible requests up to the class's batch limit, and
//! resumes parked jobs before starting new batch-class work.
//!
//! Preemption: a batch-priority job that pauses at a slice boundary
//! while interactive work is queued is snapshotted (the bit-exact
//! checkpoint of [`vip_core::System::save_snapshot`]) and parked; the
//! snapshot restores onto whichever device frees up first — migration
//! across devices is safe because every device in the fleet shares
//! one structural configuration fingerprint.
//!
//! Failure and recovery: a dispatch that dies — a typed
//! [`SimError`](vip_core::SimError) from the engine, or a chaos-model
//! device crash ([`ChaosConfig`]) — is a policy decision, never a
//! panic. The job retries with exponential backoff on whatever healthy
//! device frees up, restoring its last periodic snapshot where one
//! exists and re-running from admission otherwise; the sick device is
//! quarantined behind health probes (circuit-breaker style) or
//! permanently decommissioned; jobs that exhaust their attempts, miss
//! their deadline, or arrive while surviving capacity is below the
//! shedding floor resolve to typed terminal statuses ([`Terminal`]).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::path::PathBuf;

use vip_core::{RunOutcome, SimError, System, SystemConfig};
use vip_faults::{FaultConfig, PPM_SCALE};
use vip_mem::MemConfig;
use vip_rng::SplitMix64;

use crate::cache::ProgramCache;
use crate::chaos::{ChaosConfig, ChaosStats, FailureKind, Terminal};
use crate::device::Engine;
use crate::tiles::{ResultReader, TileClass};
use crate::workload::{LoadMode, Workload};

/// Fleet and policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Simulated devices in the pool.
    pub devices: usize,
    /// Shared admission bound: queued requests across both priority
    /// classes may not exceed this.
    pub queue_depth: usize,
    /// Device slice length in cycles; preemption and completion are
    /// only observed at slice boundaries.
    pub quantum: u64,
    /// Upper bound on requests batched into one tile (further capped
    /// by each class's [`TileClass::batch_limit`]).
    pub batch_max: usize,
    /// Stepping engine for every device.
    pub engine: Engine,
    /// Per-device memory configuration (devices are single-vault).
    pub mem: MemConfig,
    /// Where tuned schedule artifacts live.
    pub schedule_dir: PathBuf,
    /// The chaos model: seeded device failures and the recovery
    /// policy. `None` runs the fleet clean (failures in staged tiles
    /// still resolve to typed terminal statuses, with no retries).
    pub chaos: Option<ChaosConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            devices: 4,
            queue_depth: 64,
            quantum: 100_000,
            batch_max: 8,
            engine: Engine::Fast,
            mem: MemConfig::baseline(),
            schedule_dir: vip_kernels::schedule_store::dir(),
            chaos: None,
        }
    }
}

/// Why an arrival or queued request was terminally refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejection {
    /// The shared queue bound was already met.
    QueueFull {
        /// The rejected request's priority class.
        priority: u8,
        /// Queue occupancy at the instant of rejection.
        depth: usize,
    },
    /// The per-job deadline expired before the request could (re)run.
    Timeout {
        /// The configured deadline in fleet cycles.
        deadline: u64,
        /// Fleet cycles the request had waited when it was cut.
        waited: u64,
    },
    /// Surviving healthy capacity fell below the shedding floor and
    /// the request's priority class was sacrificed.
    Shed {
        /// Healthy devices at the instant of shedding.
        healthy: usize,
        /// Total devices in the fleet.
        devices: usize,
    },
}

/// The full life of one request, as the report records it.
#[derive(Debug, Clone)]
pub struct RequestRecord {
    /// Request id (issue order).
    pub id: u64,
    /// Issuing client (closed loop only).
    pub client: Option<usize>,
    /// What was asked for.
    pub class: TileClass,
    /// The class's schedule-store shape key.
    pub key: String,
    /// Priority class (0 interactive, 1 batch).
    pub priority: u8,
    /// Fleet cycle the request (finally) arrived.
    pub arrival: u64,
    /// Fleet cycle its tile started running, if it ever did.
    pub dispatch: Option<u64>,
    /// Fleet cycle its results were read back.
    pub completion: Option<u64>,
    /// Device the tile finished on.
    pub device: Option<usize>,
    /// Requests sharing its tile (1 = unbatched).
    pub batch: usize,
    /// Times its job moved to a different device via snapshot.
    pub migrations: u32,
    /// Closed-loop admission retries before it got in.
    pub retries: u32,
    /// Terminal rejection, if any (queue-full, timeout, shed).
    pub rejection: Option<Rejection>,
    /// Dispatch attempts its job consumed (0 if never dispatched;
    /// >1 means the job failed and was re-dispatched).
    pub attempts: u32,
    /// Every device its job ran slices on, in first-visit order
    /// (consecutive duplicates collapsed).
    pub devices: Vec<usize>,
    /// The typed terminal status (never [`Terminal::Pending`] in a
    /// returned outcome).
    pub status: Terminal,
    /// FNV-1a hash of the request's result blob.
    pub result_hash: u64,
}

impl RequestRecord {
    /// Queueing + service latency in cycles, if the request completed.
    #[must_use]
    pub fn latency(&self) -> Option<u64> {
        self.completion.map(|c| c - self.arrival)
    }
}

/// Everything one serving run produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-request records, in id order, one per issued request.
    pub records: Vec<RequestRecord>,
    /// Fleet cycle the last event settled.
    pub makespan: u64,
    /// Slice-boundary preemptions taken.
    pub preemptions: u64,
    /// Parked jobs resumed on a device other than the one they left.
    pub migrations: u64,
    /// Tiles dispatched serving more than one request.
    pub batches: u64,
    /// Total tiles dispatched.
    pub dispatches: u64,
    /// High-water queue occupancy per priority class.
    pub max_queue_depth: [usize; 2],
    /// Arrivals refused admission at the queue bound (terminal in open
    /// loop, retried in closed loop). Deadline and shedding rejections
    /// are counted in [`ChaosStats`] instead.
    pub rejections: u64,
    /// Busy cycles per device (failed slices included — the device
    /// was occupied while they ran).
    pub device_busy: Vec<u64>,
    /// Prepared-program cache hits over the run.
    pub cache_hits: u64,
    /// Prepared-program cache misses (program builds) over the run.
    pub cache_misses: u64,
    /// Chaos and recovery counters.
    pub chaos: ChaosStats,
}

/// A queued request awaiting dispatch.
#[derive(Debug, Clone)]
struct Pending {
    id: u64,
    class: TileClass,
    priority: u8,
}

/// The scheduler's view of one in-flight tile.
#[derive(Debug)]
struct JobMeta {
    reqs: Vec<u64>,
    class: TileClass,
    limit: u64,
    reader: ResultReader,
    home: usize,
    /// Dispatch attempts so far (1 = first).
    attempt: u32,
    /// The job failed at least once and was re-dispatched.
    recovered: bool,
    /// The most recent recovery restored a snapshot (vs. restaged).
    via_snapshot: bool,
    /// What killed the most recent attempt, if any.
    last_failure: Option<FailureKind>,
    /// Last periodic checkpoint, bit-exact, restorable on any device.
    ckpt: Option<Vec<u8>>,
    /// Paused slices since the last periodic checkpoint.
    slices_since_ckpt: u32,
}

/// A job parked mid-flight: either a bit-exact snapshot (preemption,
/// checkpoint recovery) or a restage-from-admission marker.
#[derive(Debug)]
struct Parked {
    meta: JobMeta,
    /// `Some`: restore these bytes. `None`: re-stage the class from
    /// scratch (the job had no usable checkpoint).
    snapshot: Option<Vec<u8>>,
    /// Earliest fleet cycle this job may dispatch (retry backoff).
    not_before: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SliceEnd {
    Done,
    Paused,
    /// The slice died with a typed failure; the job needs recovery.
    Failed(FailureKind),
}

struct Running {
    meta: JobMeta,
    sys: Box<System>,
    end: SliceEnd,
}

/// One device's health, as the recovery policy sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Health {
    Healthy,
    Quarantined,
    Dead,
}

/// Per-device chaos state: the device's own draw stream, its wired
/// fault injector (if the flaky draw selected it), and its health.
struct DeviceChaos {
    rng: SplitMix64,
    flaky: bool,
    faults: FaultConfig,
    health: Health,
    /// Failed health probes since the last pass (the circuit
    /// breaker's open count).
    strikes: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EvKind {
    /// Request with this id arrives (or retries admission).
    Arrive(u64),
    /// The device's current slice ends.
    Device(usize),
    /// A quarantined device runs its health probe.
    Probe(usize),
    /// A retry backoff expired: try dispatching idle devices.
    Kick,
}

type EventHeap = BinaryHeap<Reverse<(u64, u64, EvKind)>>;

/// The read-only context the event handlers share.
struct Ctx<'a> {
    cfg: &'a ServeConfig,
    dev_cfg: &'a SystemConfig,
    cache: &'a ProgramCache,
    workload: &'a Workload,
}

/// Shared mutable bookkeeping the event handlers thread through.
struct Fleet {
    heap: EventHeap,
    seq: u64,
    issued: u64,
    client_of: HashMap<u64, usize>,
    think_rngs: Vec<SplitMix64>,
    queues: [VecDeque<Pending>; 2],
    parked: VecDeque<Parked>,
    devices: Vec<Option<Running>>,
    chaos: Vec<DeviceChaos>,
    outcome: ServeOutcome,
}

impl Fleet {
    fn post(&mut self, at: u64, kind: EvKind) {
        self.heap.push(Reverse((at, self.seq, kind)));
        self.seq += 1;
    }

    /// Issues request number `issued` at fleet time `at` and returns
    /// its id (the record is appended; the arrival event is not).
    fn issue(&mut self, workload: &Workload, at: u64, client: Option<usize>) -> u64 {
        let id = self.issued;
        self.issued += 1;
        let entry = workload.draw(id);
        self.outcome.records.push(RequestRecord {
            id,
            client,
            class: entry.class,
            key: entry.class.key(),
            priority: entry.priority,
            arrival: at,
            dispatch: None,
            completion: None,
            device: None,
            batch: 1,
            migrations: 0,
            retries: 0,
            rejection: None,
            attempts: 0,
            devices: Vec::new(),
            status: Terminal::Pending,
            result_hash: 0,
        });
        if let Some(c) = client {
            self.client_of.insert(id, c);
        }
        id
    }

    /// Whether device `d` is idle and healthy enough to take work.
    fn device_available(&self, d: usize) -> bool {
        self.devices[d].is_none()
            && self
                .chaos
                .get(d)
                .is_none_or(|c| c.health == Health::Healthy)
    }

    /// Devices currently healthy (all of them when chaos is off).
    fn healthy_count(&self) -> usize {
        if self.chaos.is_empty() {
            self.devices.len()
        } else {
            self.chaos
                .iter()
                .filter(|c| c.health == Health::Healthy)
                .count()
        }
    }

    /// Devices not permanently decommissioned.
    fn alive_count(&self) -> usize {
        if self.chaos.is_empty() {
            self.devices.len()
        } else {
            self.chaos
                .iter()
                .filter(|c| c.health != Health::Dead)
                .count()
        }
    }

    /// Removes and returns the first parked job whose retry backoff
    /// has expired.
    fn take_parked(&mut self, now: u64) -> Option<Parked> {
        let i = self.parked.iter().position(|p| p.not_before <= now)?;
        self.parked.remove(i)
    }

    /// Appends `d` to each request's device trail (consecutive
    /// duplicates collapsed) and refreshes the attempt count.
    fn note_dispatch(&mut self, reqs: &[u64], attempt: u32, d: usize) {
        for req in reqs {
            let rec = &mut self.outcome.records[usize::try_from(*req).expect("id fits")];
            rec.attempts = attempt;
            if rec.devices.last() != Some(&d) {
                rec.devices.push(d);
            }
        }
    }
}

/// Sets the request's terminal status (mirroring a rejection into the
/// legacy field) and, in closed loop, lets the issuing client move on
/// to its next request — terminal outcomes must not starve the loop.
fn resolve(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, id: u64, status: Terminal) {
    let rec = &mut fleet.outcome.records[usize::try_from(id).expect("id fits")];
    debug_assert_eq!(rec.status, Terminal::Pending, "double-resolved request");
    rec.status = status;
    if let Terminal::Rejected(r) = status {
        rec.rejection = Some(r);
    }
    if let LoadMode::Closed { think, .. } = ctx.workload.mode {
        if (fleet.issued as usize) < ctx.workload.requests {
            if let Some(&c) = fleet.client_of.get(&id) {
                let gap = fleet.think_rngs[c].below(2 * think + 1);
                let at = now + gap;
                let next = fleet.issue(ctx.workload, at, Some(c));
                fleet.post(at, EvKind::Arrive(next));
            }
        }
    }
}

/// Runs `workload` over the fleet described by `cfg` and returns the
/// full outcome. Deterministic: same config + same workload ⇒
/// identical outcome, field for field — with or without chaos.
///
/// # Panics
///
/// Panics if the fleet is empty, the queue bound is zero, or the
/// quantum is zero. A device failure (hang, trap, machine check,
/// chaos crash) is a policy outcome, not a panic.
#[must_use]
pub fn serve(cfg: &ServeConfig, workload: &Workload) -> ServeOutcome {
    assert!(cfg.devices > 0, "fleet needs at least one device");
    assert!(cfg.queue_depth > 0, "queue bound must admit something");
    assert!(cfg.quantum > 0, "a zero quantum cannot make progress");
    let dev_cfg = SystemConfig::single_vault(cfg.mem.clone());
    let cache = ProgramCache::new();
    let ctx = Ctx {
        cfg,
        dev_cfg: &dev_cfg,
        cache: &cache,
        workload,
    };

    let chaos_state = cfg.chaos.map_or_else(Vec::new, |ch| {
        (0..cfg.devices)
            .map(|d| {
                let mut rng = ch.device_rng(d);
                let flaky = ch.flaky_ppm > 0 && rng.below(PPM_SCALE) < u64::from(ch.flaky_ppm);
                DeviceChaos {
                    rng,
                    flaky,
                    faults: ch.device_faults(d),
                    health: Health::Healthy,
                    strikes: 0,
                }
            })
            .collect()
    });

    let mut fleet = Fleet {
        heap: BinaryHeap::new(),
        seq: 0,
        issued: 0,
        client_of: HashMap::new(),
        think_rngs: Vec::new(),
        queues: [VecDeque::new(), VecDeque::new()],
        parked: VecDeque::new(),
        devices: (0..cfg.devices).map(|_| None).collect(),
        chaos: chaos_state,
        outcome: ServeOutcome {
            records: Vec::with_capacity(workload.requests),
            makespan: 0,
            preemptions: 0,
            migrations: 0,
            batches: 0,
            dispatches: 0,
            max_queue_depth: [0, 0],
            rejections: 0,
            device_busy: vec![0; cfg.devices],
            cache_hits: 0,
            cache_misses: 0,
            chaos: ChaosStats::default(),
        },
    };

    match workload.mode {
        LoadMode::Open { mean_gap } => {
            let mut rng = workload.arrival_rng();
            let mut t = 0u64;
            for _ in 0..workload.requests {
                t += rng.below(2 * mean_gap + 1);
                let id = fleet.issue(workload, t, None);
                fleet.post(t, EvKind::Arrive(id));
            }
        }
        LoadMode::Closed { clients, think: _ } => {
            assert!(clients > 0, "closed loop needs at least one client");
            for c in 0..clients {
                fleet.think_rngs.push(workload.think_rng(c));
                if (fleet.issued as usize) < workload.requests {
                    let id = fleet.issue(workload, 0, Some(c));
                    fleet.post(0, EvKind::Arrive(id));
                }
            }
        }
    }

    while let Some(Reverse((now, _, kind))) = fleet.heap.pop() {
        fleet.outcome.makespan = fleet.outcome.makespan.max(now);
        match kind {
            EvKind::Arrive(id) => on_arrive(&mut fleet, &ctx, now, id),
            EvKind::Device(d) => on_device(&mut fleet, &ctx, now, d),
            EvKind::Probe(d) => on_probe(&mut fleet, &ctx, now, d),
            EvKind::Kick => {
                for d in 0..ctx.cfg.devices {
                    if fleet.device_available(d) {
                        dispatch(&mut fleet, &ctx, now, d);
                    }
                }
            }
        }
    }

    // Defensive totality: a fleet collapse resolves everything at the
    // instant of collapse, so nothing should still be pending — but a
    // typed terminal status is a contract, so sweep rather than trust.
    let devices = cfg.devices;
    let makespan = fleet.outcome.makespan;
    for i in 0..fleet.outcome.records.len() {
        if fleet.outcome.records[i].status == Terminal::Pending {
            fleet.outcome.chaos.shed += 1;
            let rec = &mut fleet.outcome.records[i];
            rec.status = Terminal::Rejected(Rejection::Shed {
                healthy: 0,
                devices,
            });
            rec.rejection = Some(Rejection::Shed {
                healthy: 0,
                devices,
            });
            let _ = makespan;
        }
    }

    fleet.outcome.cache_hits = cache.hits();
    fleet.outcome.cache_misses = cache.misses();
    fleet.outcome
}

fn on_arrive(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, id: u64) {
    let idx = usize::try_from(id).expect("id fits");
    let priority = fleet.outcome.records[idx].priority;
    if let Some(ch) = ctx.cfg.chaos {
        // A dead fleet can serve nothing: shed terminally instead of
        // retrying forever.
        if fleet.alive_count() == 0 {
            fleet.outcome.chaos.shed += 1;
            resolve(
                fleet,
                ctx,
                now,
                id,
                Terminal::Rejected(Rejection::Shed {
                    healthy: 0,
                    devices: ctx.cfg.devices,
                }),
            );
            return;
        }
        // Load shedding: below the floor, batch-priority work is
        // sacrificed so surviving capacity serves interactive work.
        let healthy = fleet.healthy_count();
        if ch.shed_floor_pct > 0
            && priority > 0
            && healthy * 100 < (ch.shed_floor_pct as usize) * ctx.cfg.devices
        {
            fleet.outcome.chaos.shed += 1;
            resolve(
                fleet,
                ctx,
                now,
                id,
                Terminal::Rejected(Rejection::Shed {
                    healthy,
                    devices: ctx.cfg.devices,
                }),
            );
            return;
        }
    }
    let depth = fleet.queues[0].len() + fleet.queues[1].len();
    let rec = &mut fleet.outcome.records[idx];
    if depth >= ctx.cfg.queue_depth {
        fleet.outcome.rejections += 1;
        match ctx.workload.mode {
            LoadMode::Open { .. } => {
                let rejection = Rejection::QueueFull {
                    priority: rec.priority,
                    depth,
                };
                resolve(fleet, ctx, now, id, Terminal::Rejected(rejection));
            }
            LoadMode::Closed { .. } => {
                // Back off one quantum and retry; the arrival time
                // moves so latency measures from the admitting
                // attempt.
                rec.retries += 1;
                let at = now + ctx.cfg.quantum;
                rec.arrival = at;
                fleet.post(at, EvKind::Arrive(id));
            }
        }
        return;
    }
    let q = usize::from(rec.priority.min(1));
    let pending = Pending {
        id,
        class: rec.class,
        priority: rec.priority,
    };
    fleet.queues[q].push_back(pending);
    fleet.outcome.max_queue_depth[q] = fleet.outcome.max_queue_depth[q].max(fleet.queues[q].len());
    assert!(
        fleet.queues[0].len() + fleet.queues[1].len() <= ctx.cfg.queue_depth,
        "admission bound violated"
    );
    if let Some(d) = (0..ctx.cfg.devices).find(|&d| fleet.device_available(d)) {
        dispatch(fleet, ctx, now, d);
    }
}

fn on_device(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, d: usize) {
    let running = fleet.devices[d].take().expect("device event without a job");
    // The chaos crash draw happens at every slice end, before the
    // slice's outcome is believed: a crash loses the slice (even a
    // completed one — results are only read back from live devices).
    if let Some(ch) = ctx.cfg.chaos {
        if ch.crash_ppm > 0 && fleet.chaos[d].rng.below(PPM_SCALE) < u64::from(ch.crash_ppm) {
            fleet.outcome.chaos.crashes += 1;
            let permanent = ch.decommission_ppm > 0
                && fleet.chaos[d].rng.below(PPM_SCALE) < u64::from(ch.decommission_ppm);
            recover_job(fleet, ctx, now, running.meta, FailureKind::Crash);
            take_down(fleet, ctx, now, d, permanent);
            return;
        }
    }
    match running.end {
        SliceEnd::Done => {
            let Running { meta, sys, .. } = running;
            let blobs = meta.reader.read(sys.hmc());
            assert!(
                blobs.len() >= meta.reqs.len(),
                "tile produced fewer result blobs than batched requests"
            );
            let batch = meta.reqs.len();
            let status = if meta.recovered {
                Terminal::Recovered {
                    attempts: meta.attempt,
                    via_snapshot: meta.via_snapshot,
                }
            } else {
                Terminal::Completed
            };
            for (req, blob) in meta.reqs.iter().zip(&blobs) {
                let i = usize::try_from(*req).expect("id fits");
                let rec = &mut fleet.outcome.records[i];
                rec.completion = Some(now);
                rec.device = Some(d);
                rec.batch = batch;
                rec.result_hash = vip_snap::hash_bytes(blob);
                // `resolve` chains the closed-loop client, preserving
                // the issue order of the pre-failure-handling
                // scheduler: batched requests chain in batch order.
                resolve(fleet, ctx, now, *req, status);
            }
            dispatch(fleet, ctx, now, d);
        }
        SliceEnd::Paused => {
            let batch_job =
                running.meta.reqs.iter().all(|r| {
                    fleet.outcome.records[usize::try_from(*r).expect("id fits")].priority > 0
                });
            if batch_job && !fleet.queues[0].is_empty() {
                // Interactive work is waiting: park the batch job
                // bit-exactly and give the queue the device.
                fleet.outcome.preemptions += 1;
                let snapshot = running.sys.save_snapshot();
                fleet.parked.push_back(Parked {
                    meta: running.meta,
                    snapshot: Some(snapshot),
                    not_before: now,
                });
                dispatch(fleet, ctx, now, d);
            } else {
                let mut running = running;
                run_slice(fleet, ctx, &mut running, now, d);
                fleet.devices[d] = Some(running);
            }
        }
        SliceEnd::Failed(kind) => {
            match kind {
                FailureKind::Sim(vip_core::FailureClass::Hang) => {
                    fleet.outcome.chaos.hang_failures += 1;
                }
                FailureKind::Sim(_) => fleet.outcome.chaos.fault_failures += 1,
                FailureKind::Crash => unreachable!("crashes are drawn, not slice outcomes"),
            }
            recover_job(fleet, ctx, now, running.meta, kind);
            if ctx.cfg.chaos.is_some() {
                // A failure is evidence of a sick device: open the
                // breaker and probe before trusting it again.
                take_down(fleet, ctx, now, d, false);
            } else {
                dispatch(fleet, ctx, now, d);
            }
        }
    }
}

/// Re-queues a failed job for another attempt — restoring its last
/// periodic checkpoint where one exists, restaging from admission
/// otherwise — or resolves its requests terminally when the retry
/// budget, the deadline, or the fleet itself has run out.
fn recover_job(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, meta: JobMeta, kind: FailureKind) {
    let ch = ctx.cfg.chaos;
    let attempts = meta.attempt;
    let max_attempts = ch.map_or(1, |c| c.max_attempts.max(1));
    let deadline = ch.map_or(0, |c| c.deadline);
    if deadline > 0 {
        let all_expired = meta.reqs.iter().all(|req| {
            let rec = &fleet.outcome.records[usize::try_from(*req).expect("id fits")];
            now > rec.arrival.saturating_add(deadline)
        });
        if all_expired {
            for req in meta.reqs.clone() {
                let waited =
                    now - fleet.outcome.records[usize::try_from(req).expect("id fits")].arrival;
                fleet.outcome.chaos.timeouts += 1;
                resolve(
                    fleet,
                    ctx,
                    now,
                    req,
                    Terminal::Rejected(Rejection::Timeout { deadline, waited }),
                );
            }
            return;
        }
    }
    if attempts >= max_attempts || fleet.alive_count() == 0 {
        for req in meta.reqs {
            fleet.outcome.chaos.failed += 1;
            resolve(fleet, ctx, now, req, Terminal::Failed { kind, attempts });
        }
        return;
    }
    fleet.outcome.chaos.job_retries += 1;
    let mut meta = meta;
    meta.attempt += 1;
    meta.recovered = true;
    meta.last_failure = Some(kind);
    let snapshot = meta.ckpt.clone();
    meta.via_snapshot = snapshot.is_some();
    if snapshot.is_some() {
        fleet.outcome.chaos.recoveries_snapshot += 1;
    } else {
        fleet.outcome.chaos.recoveries_restart += 1;
    }
    let backoff = ch.map_or(0, |c| c.retry_backoff << (attempts - 1).min(6));
    let at = now + backoff;
    fleet.parked.push_back(Parked {
        meta,
        snapshot,
        not_before: at,
    });
    fleet.post(at, EvKind::Kick);
}

/// Quarantines device `d` behind a health probe, or decommissions it
/// permanently. A collapse (no device left alive) resolves every
/// queued and parked request on the spot.
fn take_down(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, d: usize, permanent: bool) {
    let ch = ctx.cfg.chaos.expect("take_down is a chaos-path action");
    if permanent {
        fleet.chaos[d].health = Health::Dead;
        fleet.outcome.chaos.decommissions += 1;
        if fleet.alive_count() == 0 {
            collapse(fleet, ctx, now);
        }
    } else {
        fleet.chaos[d].health = Health::Quarantined;
        fleet.outcome.chaos.quarantines += 1;
        let strikes = fleet.chaos[d].strikes;
        fleet.post(
            now + (ch.quarantine.max(1) << strikes.min(6)),
            EvKind::Probe(d),
        );
    }
}

/// A quarantined device's health probe: pass rejoins the fleet, fail
/// adds a strike and re-quarantines with doubled backoff until the
/// breaker opens for good.
fn on_probe(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, d: usize) {
    let ch = ctx.cfg.chaos.expect("probe events only exist under chaos");
    if fleet.chaos[d].health != Health::Quarantined {
        return;
    }
    fleet.outcome.chaos.probes += 1;
    if fleet.chaos[d].rng.below(PPM_SCALE) < u64::from(ch.probe_pass_ppm) {
        fleet.chaos[d].health = Health::Healthy;
        fleet.chaos[d].strikes = 0;
        dispatch(fleet, ctx, now, d);
    } else {
        fleet.outcome.chaos.probe_failures += 1;
        fleet.chaos[d].strikes += 1;
        if fleet.chaos[d].strikes >= ch.max_strikes.max(1) {
            fleet.chaos[d].health = Health::Dead;
            fleet.outcome.chaos.decommissions += 1;
            if fleet.alive_count() == 0 {
                collapse(fleet, ctx, now);
            }
        } else {
            let strikes = fleet.chaos[d].strikes;
            fleet.post(
                now + (ch.quarantine.max(1) << strikes.min(6)),
                EvKind::Probe(d),
            );
        }
    }
}

/// The whole fleet is dead: resolve every queued and parked request
/// terminally so the run still accounts for everything it admitted.
fn collapse(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64) {
    let devices = ctx.cfg.devices;
    let queued: Vec<u64> = fleet
        .queues
        .iter_mut()
        .flat_map(|q| q.drain(..))
        .map(|p| p.id)
        .collect();
    for id in queued {
        fleet.outcome.chaos.shed += 1;
        resolve(
            fleet,
            ctx,
            now,
            id,
            Terminal::Rejected(Rejection::Shed {
                healthy: 0,
                devices,
            }),
        );
    }
    let parked: Vec<Parked> = fleet.parked.drain(..).collect();
    for p in parked {
        let kind = p.meta.last_failure.unwrap_or(FailureKind::Crash);
        for req in p.meta.reqs {
            fleet.outcome.chaos.failed += 1;
            resolve(
                fleet,
                ctx,
                now,
                req,
                Terminal::Failed {
                    kind,
                    attempts: p.meta.attempt,
                },
            );
        }
    }
}

/// Picks the next job for idle, healthy device `d` and starts its
/// first slice. Preference order: fresh interactive batch, then a
/// parked job whose backoff expired, then fresh batch-class work.
fn dispatch(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, d: usize) {
    debug_assert!(fleet.devices[d].is_none());
    let mut running = if let Some(r) = start_batch(fleet, ctx, now, d, 0) {
        r
    } else if let Some(p) = fleet.take_parked(now) {
        resume_parked(fleet, ctx, d, p)
    } else if let Some(r) = start_batch(fleet, ctx, now, d, 1) {
        r
    } else {
        return;
    };
    run_slice(fleet, ctx, &mut running, now, d);
    fleet.devices[d] = Some(running);
}

/// Brings a parked job back onto device `d`: restores its snapshot
/// (counting a migration if the device changed), or restages it from
/// admission when it parked without one.
fn resume_parked(fleet: &mut Fleet, ctx: &Ctx<'_>, d: usize, p: Parked) -> Running {
    let mut meta = p.meta;
    let sys = if let Some(bytes) = &p.snapshot {
        let mut sys = Box::new(System::new(ctx.dev_cfg.clone()));
        sys.restore_snapshot(bytes)
            .expect("fleet devices share one fingerprint");
        if meta.home != d {
            fleet.outcome.migrations += 1;
            for req in &meta.reqs {
                let i = usize::try_from(*req).expect("id fits");
                fleet.outcome.records[i].migrations += 1;
            }
        }
        // The snapshot carries the *source* device's fault wiring;
        // the job now runs under the destination's.
        apply_device_faults(fleet, ctx, &mut sys, d);
        sys
    } else {
        let batch = meta.reqs.len();
        let mut staged = meta
            .class
            .stage(ctx.dev_cfg, batch, &ctx.cfg.schedule_dir, ctx.cache);
        staged.load_programs();
        fleet.outcome.dispatches += 1;
        if batch > 1 {
            fleet.outcome.batches += 1;
        }
        meta.reader = staged.reader;
        meta.limit = staged.limit;
        meta.slices_since_ckpt = 0;
        let mut sys = Box::new(staged.sys);
        apply_device_faults(fleet, ctx, &mut sys, d);
        sys
    };
    meta.home = d;
    fleet.note_dispatch(&meta.reqs.clone(), meta.attempt, d);
    Running {
        meta,
        sys,
        end: SliceEnd::Paused,
    }
}

/// Wires device `d`'s fault injector into `sys` (flaky devices get
/// their per-device config, healthy ones an explicit all-off). A
/// no-op when chaos is disabled, preserving the clean fleet's exact
/// behaviour.
fn apply_device_faults(fleet: &Fleet, ctx: &Ctx<'_>, sys: &mut System, d: usize) {
    if ctx.cfg.chaos.is_none() {
        return;
    }
    if fleet.chaos[d].flaky && !fleet.chaos[d].faults.is_inert() {
        sys.set_fault_config(&fleet.chaos[d].faults);
    } else {
        sys.set_fault_config(&FaultConfig::disabled());
    }
}

/// Pops queue `q`'s head plus every same-class follower (in arrival
/// order, up to the batch bound), stages the tile, and returns it
/// ready for its first slice — or `None` if the queue ran out
/// (including when every queued request had blown its deadline).
/// Batching is the only reordering the FIFO-fairness property
/// permits: it may lift same-key requests past other keys, but never
/// reorders requests of one key.
fn start_batch(fleet: &mut Fleet, ctx: &Ctx<'_>, now: u64, d: usize, q: usize) -> Option<Running> {
    let deadline = ctx.cfg.chaos.map_or(0, |c| c.deadline);
    let expired = |rec: &RequestRecord| deadline > 0 && now > rec.arrival.saturating_add(deadline);
    let head = loop {
        let head = fleet.queues[q].pop_front()?;
        let idx = usize::try_from(head.id).expect("id fits");
        if expired(&fleet.outcome.records[idx]) {
            let waited = now - fleet.outcome.records[idx].arrival;
            fleet.outcome.chaos.timeouts += 1;
            resolve(
                fleet,
                ctx,
                now,
                head.id,
                Terminal::Rejected(Rejection::Timeout { deadline, waited }),
            );
            continue;
        }
        break head;
    };
    let limit = ctx.cfg.batch_max.min(head.class.batch_limit()).max(1);
    let mut reqs = vec![head.id];
    if limit > 1 {
        let mut i = 0;
        while i < fleet.queues[q].len() && reqs.len() < limit {
            if fleet.queues[q][i].class == head.class
                && fleet.queues[q][i].priority == head.priority
            {
                let p = fleet.queues[q]
                    .remove(i)
                    .expect("scanned index is in range");
                let idx = usize::try_from(p.id).expect("id fits");
                if expired(&fleet.outcome.records[idx]) {
                    let waited = now - fleet.outcome.records[idx].arrival;
                    fleet.outcome.chaos.timeouts += 1;
                    resolve(
                        fleet,
                        ctx,
                        now,
                        p.id,
                        Terminal::Rejected(Rejection::Timeout { deadline, waited }),
                    );
                } else {
                    reqs.push(p.id);
                }
            } else {
                i += 1;
            }
        }
    }
    let batch = reqs.len();
    fleet.outcome.dispatches += 1;
    if batch > 1 {
        fleet.outcome.batches += 1;
    }
    let mut staged = head
        .class
        .stage(ctx.dev_cfg, batch, &ctx.cfg.schedule_dir, ctx.cache);
    staged.load_programs();
    for req in &reqs {
        let i = usize::try_from(*req).expect("id fits");
        let rec = &mut fleet.outcome.records[i];
        rec.dispatch = Some(now);
        rec.batch = batch;
    }
    let mut sys = Box::new(staged.sys);
    apply_device_faults(fleet, ctx, &mut sys, d);
    fleet.note_dispatch(&reqs, 1, d);
    Some(Running {
        meta: JobMeta {
            reqs,
            class: head.class,
            limit: staged.limit,
            reader: staged.reader,
            home: d,
            attempt: 1,
            recovered: false,
            via_snapshot: false,
            last_failure: None,
            ckpt: None,
            slices_since_ckpt: 0,
        },
        sys,
        end: SliceEnd::Paused,
    })
}

/// Simulates one quantum on the job's own system (eagerly) and posts
/// the slice-end event at the fleet time it lands. A chaos hang draw
/// caps the engine's budget at the slice boundary, so a wedged slice
/// surfaces the engine's own typed [`SimError::Hang`] with a genuine
/// report of the live machine; any other engine error becomes a typed
/// slice failure for the recovery path.
fn run_slice(fleet: &mut Fleet, ctx: &Ctx<'_>, running: &mut Running, now: u64, d: usize) {
    let start = running.sys.now();
    let pause = start
        .saturating_add(ctx.cfg.quantum)
        .min(running.meta.limit);
    let mut limit = running.meta.limit;
    let mut induced = false;
    if let Some(ch) = ctx.cfg.chaos {
        if ch.hang_ppm > 0 && fleet.chaos[d].rng.below(PPM_SCALE) < u64::from(ch.hang_ppm) {
            limit = pause;
            induced = true;
        }
    }
    match ctx.cfg.engine.advance(&mut running.sys, pause, limit) {
        Ok(res) => {
            running.end = match res {
                RunOutcome::Quiesced(_) => SliceEnd::Done,
                RunOutcome::Paused(_) => SliceEnd::Paused,
            };
            if running.end == SliceEnd::Paused {
                if let Some(ch) = ctx.cfg.chaos {
                    if ch.checkpoint_every > 0 {
                        running.meta.slices_since_ckpt += 1;
                        if running.meta.slices_since_ckpt >= ch.checkpoint_every {
                            running.meta.ckpt = Some(running.sys.save_snapshot());
                            running.meta.slices_since_ckpt = 0;
                        }
                    }
                }
            }
        }
        Err(e) => {
            if induced && matches!(e, SimError::Hang(_)) {
                fleet.outcome.chaos.induced_hangs += 1;
            }
            running.end = SliceEnd::Failed(FailureKind::Sim(e.class()));
        }
    }
    let end = running.sys.now();
    let delta = end - start;
    fleet.outcome.device_busy[d] += delta;
    fleet.post(now + delta, EvKind::Device(d));
}
